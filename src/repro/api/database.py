"""The Database layer: node arena, document catalog, shared plan cache.

A :class:`Database` is the process-wide, shareable state — every
:class:`~repro.api.session.Session` connected to it sees the same
documents and benefits from the same compile-once plan cache.  Sessions
carry the per-client state (settings, variable bindings, statistics).

Document catalog semantics:

* ``load_document(uri, xml)`` shreds and registers a document.  Loading
  an already-registered URI raises unless ``replace=True``, which swaps
  the catalog entry for a freshly shredded tree and invalidates every
  cached plan that reads that document.  (The old tree's rows stay in
  the arena — the XPath Accelerator encoding is append-only — so
  ``replace``/``unload`` reclaim no storage, they only update the
  catalog.)
* **The first loaded document implicitly becomes the default** used by
  absolute paths (``/site/...``) unless/until ``default=True`` or
  :meth:`set_default_document` says otherwise.  This implicit behaviour
  is kept for convenience and backward compatibility; call
  :meth:`set_default_document` to be explicit, and check
  :attr:`default_is_implicit` to know which case you are in.
* every load/replace bumps the document's *epoch*; the plan cache
  revalidates entries against these epochs, so only plans reading a
  changed document recompile.

Concurrency model (the serving contract):

* the catalog is guarded by a write-preferring
  :class:`~repro.api.concurrency.RWLock` — query compilation and
  execution hold it *shared*, ``load_document`` / ``unload_document`` /
  ``set_default_document`` hold it *exclusive*.  A hot document replace
  therefore waits for in-flight queries, then swaps the catalog entry
  and bumps the epoch before the next query starts: readers never see a
  torn catalog.
* plan compilation is *single-flight*: N sessions racing on the same
  cache key compile the plan once (the others wait and adopt the
  result), so a cache-invalidating replace does not trigger a
  compilation stampede.
* sessions share nothing mutable with each other — settings, variable
  bindings and statistics are per-:class:`~repro.api.session.Session` —
  so each server worker (or client thread) owning its own session needs
  no further locking.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager

from repro.api.concurrency import RWLock, SingleFlight
from repro.api.plan_cache import CachedPlan, PlanCache, plan_documents
from repro.compiler.loop_lifting import Compiler
from repro.encoding.arena import NodeArena
from repro.encoding.shred import shred_text
from repro.encoding.storage import StorageReport, measure_storage
from repro.encoding.store import (
    DocumentStore,
    materialize_delta,
    serialize_delta,
    shard_of,
)
from repro.errors import PathfinderError
from repro.relational import algebra as alg
from repro.relational.optimizer import (
    CardinalityEstimator,
    OptimizerStats,
    optimize,
)
from repro.xquery.core import desugar_module
from repro.xquery.parser import parse_query


class Database:
    """Documents + arena + plan cache; the shared, thread-safe layer of
    the API (see the module docstring for the locking contract)."""

    def __init__(
        self,
        plan_cache_size: int = 128,
        store: "DocumentStore | str | None" = None,
        checkpoint_wal_bytes: int | None = 4 * 1024 * 1024,
        page_budget_bytes: int | None = None,
        shard: "tuple[int, int] | None" = None,
    ):
        if page_budget_bytes is not None and store is None:
            raise PathfinderError(
                "page_budget_bytes needs a persistent store to page from "
                "(pass store=PATH)"
            )
        if shard is not None and store is None:
            raise PathfinderError(
                "a shard-scoped open needs a persistent store (pass "
                "store=PATH)"
            )
        self.arena = NodeArena()
        #: eviction budget for mmap-paged fragments (None = eager arena)
        self.page_budget_bytes = page_budget_bytes
        if page_budget_bytes is not None:
            self.arena.enable_paging(page_budget_bytes)
        self.documents: dict[str, int] = {}
        self.doc_epochs: dict[str, int] = {}
        self.plan_cache = PlanCache(plan_cache_size)
        self._default_document: str | None = None
        self._default_explicit = False
        self._epoch_counter = itertools.count(1)
        self._xml_bytes = 0
        # catalog lock: queries shared, load/unload/replace exclusive
        self._rwlock = RWLock()
        # duplicate suppression for concurrent same-key compilations
        self._flight = SingleFlight()
        self._estimator_lock = threading.Lock()
        # arena statistics for the optimizer, rebuilt when the catalog
        # changes (same invalidation points as the plan cache)
        self._estimator: CardinalityEstimator | None = None
        #: the attached persistent store (None = pure in-memory catalog)
        self.store: DocumentStore | None = None
        #: this database's shard-scoped view, ``(index, count)`` or None
        self.shard = shard
        #: auto-checkpoint once the WAL outgrows this (None disables)
        self.checkpoint_wal_bytes = checkpoint_wal_bytes
        if store is not None:
            if not isinstance(store, DocumentStore):
                store = DocumentStore(store, shard=shard)
            elif shard is not None and store.shard != tuple(shard):
                raise PathfinderError(
                    "the given DocumentStore was opened with a different "
                    "shard spec"
                )
            self.store = store
            self.shard = store.shard
            with self._rwlock.write_locked():
                self._recover_locked()

    @classmethod
    def open(
        cls,
        path: "DocumentStore | str",
        plan_cache_size: int = 128,
        checkpoint_wal_bytes: int | None = 4 * 1024 * 1024,
        page_budget_bytes: int | None = None,
        shard: "tuple[int, int] | None" = None,
    ) -> "Database":
        """Open (or create) a persistent database at ``path``.

        Restart is an mmap + WAL replay, not a re-parse: every document
        in the store manifest is adopted from its memory-mapped column
        files, then any un-checkpointed
        :class:`~repro.encoding.arena.TreeDelta` records in the WAL tail
        are replayed on top, leaving the catalog exactly as the last
        fsynced update saw it.

        With ``page_budget_bytes`` set, adoption is *lazy*: fragments
        stay mmap-cold until a query touches them and are evicted LRU
        once resident bytes exceed the budget — the catalog may be
        several times larger than the budget (docs/storage.md).

        ``shard=(index, count)`` opens a shard-scoped view for one
        cluster worker: only documents :func:`~repro.encoding.store.shard_of`
        assigns to ``index`` are adopted, foreign WAL records are skipped
        on replay, and writes go to a private per-shard WAL with
        merge-committed manifests (docs/serving.md).
        """
        return cls(
            plan_cache_size=plan_cache_size,
            store=path,
            checkpoint_wal_bytes=checkpoint_wal_bytes,
            page_budget_bytes=page_budget_bytes,
            shard=shard,
        )

    def _recover_locked(self) -> None:
        """Load manifest fragments, replay the WAL tail, restore epochs.

        A shard-scoped open adopts only the documents it owns; foreign
        WAL records are skipped by the same base-epoch check that makes
        replay idempotent (a document never loaded has no epoch to
        match).  An *unsharded* open that found per-shard WAL files (a
        previous cluster session) checkpoints immediately after replay,
        so later appends to the shared log can never be interleaved
        out of order with the per-shard leftovers.
        """
        store = self.store
        store.gc_unreferenced()
        had_shard_wals = bool(store.shard_wal_paths())
        for uri, meta in sorted(store.manifest["documents"].items()):
            if not store.owns(uri):
                continue
            self.documents[uri] = store.load_fragment(self.arena, uri)
            self.doc_epochs[uri] = meta["epoch"]
            self._xml_bytes += meta.get("xml_bytes", 0)
        last_epoch = store.manifest.get("last_epoch", 0)
        for record in store.read_wal():
            for part in record.get("docs", ()):
                uri = part["uri"]
                if self.doc_epochs.get(uri) != part["base_epoch"]:
                    continue  # already folded in by a checkpoint/replace
                delta = materialize_delta(
                    self.arena, self.documents[uri], part["delta"]
                )
                old_root = self.documents[uri]
                self.documents[uri] = self.arena.rebuild_with_delta(
                    old_root, delta
                )
                # the superseded fragment is unreachable from the
                # catalog; untrack it so the pager never re-faults a
                # backing the next checkpoint garbage-collects
                self.arena.retire_fragment(old_root)
                self.doc_epochs[uri] = part["new_epoch"]
                store.dirty.add(uri)
                store.replayed += 1
            last_epoch = max(
                last_epoch,
                max((p["new_epoch"] for p in record.get("docs", ())), default=0),
            )
        self._epoch_counter = itertools.count(last_epoch + 1)
        default = store.manifest.get("default_document")
        if default is not None and default in self.documents:
            self._default_document = default
            self._default_explicit = True
        elif self.documents:
            # same implicit rule as in-memory first-load (manifest order)
            self._default_document = next(iter(sorted(self.documents)))
            self._default_explicit = False
        if store.shard is None and had_shard_wals:
            # fold a cluster session's per-shard logs away now — see
            # the docstring; also removes the wal-NN.log files
            self._checkpoint_locked()

    @contextmanager
    def read_locked(self):
        """Context manager holding the catalog lock shared.

        Execution paths (``PreparedQuery.execute``, ``Session.explain``)
        use this so no catalog mutation lands mid-query; reentrant per
        thread, so nested API calls are safe.  A page scope opens with
        the shared hold: every paged fragment the reader touches stays
        pinned against eviction until the scope closes (eviction-vs-
        readers, see :mod:`repro.api.concurrency`).
        """
        with self._rwlock.read_locked():
            with self.arena.page_scope():
                yield self

    # ------------------------------------------------------------ documents
    @property
    def default_document(self) -> str | None:
        """The document absolute paths resolve against (see module docs
        for the implicit-first-load rule)."""
        return self._default_document

    @property
    def default_is_implicit(self) -> bool:
        """True when the default document was chosen by the first-load
        rule rather than by ``default=True``/``set_default_document``."""
        return self._default_document is not None and not self._default_explicit

    def set_default_document(self, uri: str, persist: bool = True) -> None:
        """Explicitly pick the document absolute paths resolve against.

        ``persist=False`` skips the store commit — used by cluster
        workers pinning the router's cluster-wide default locally
        without contending for the shared manifest.
        """
        with self._rwlock.write_locked():
            if uri not in self.documents:
                raise PathfinderError(f"document {uri!r} is not loaded")
            self._default_document = uri
            self._default_explicit = True
            if self.store is not None and persist:
                self.store.set_default(uri)

    def load_document(
        self,
        uri: str,
        xml_text: str,
        default: bool = False,
        replace: bool = False,
    ) -> int:
        """Parse, shred and register a document; returns its node count.

        ``replace=True`` allows re-loading an existing URI: the catalog
        entry is swapped and cached plans reading it are invalidated.
        The swap is atomic for concurrent readers — it runs under the
        exclusive catalog lock, so every query sees either the old or
        the new tree, never a partially shredded one.
        """
        with self._rwlock.write_locked():
            return self._load_document_locked(uri, xml_text, default, replace)

    def replace_document(self, uri: str, xml_text: str) -> dict:
        """Load-or-replace in one exclusive hold (the ``PUT /documents``
        semantics): returns uri, node count, whether an existing entry
        was replaced, and the new epoch — all observed atomically."""
        with self._rwlock.write_locked():
            replaced = uri in self.documents
            nodes = self._load_document_locked(uri, xml_text, False, True)
            return {
                "uri": uri,
                "nodes": nodes,
                "replaced": replaced,
                "epoch": self.doc_epochs[uri],
            }

    def _load_document_locked(
        self, uri: str, xml_text: str, default: bool, replace: bool
    ) -> int:
        """The load/replace body; caller holds the catalog lock exclusive."""
        if self.store is not None and not self.store.owns(uri):
            index, count = self.store.shard
            raise PathfinderError(
                f"document {uri!r} belongs to shard "
                f"{shard_of(uri, count)}, not this worker's shard {index}"
            )
        if uri in self.documents:
            if not replace:
                raise PathfinderError(
                    f"document {uri!r} already loaded "
                    "(pass replace=True to swap it)"
                )
            self.plan_cache.invalidate_document(uri)
        before = self.arena.num_nodes
        root = shred_text(self.arena, xml_text)
        epoch = next(self._epoch_counter)
        xml_bytes = len(xml_text.encode("utf-8"))
        if default:
            new_default, explicit = uri, True
        elif self._default_document is None:
            # implicit first-load default — see the module docstring
            new_default, explicit = uri, False
        else:
            new_default, explicit = self._default_document, self._default_explicit
        if self.store is not None:
            # a replace supersedes the old fragment's backing files:
            # materialize-and-untrack it before the store GCs them, or
            # the pager could later fault from a deleted directory
            old_root = self.documents.get(uri)
            if old_root is not None:
                self.arena.retire_fragment(old_root)
            # persist before publishing: a failed write leaves the
            # catalog unchanged (the shredded rows are harmless orphans
            # in the append-only arena)
            self.store.persist_document(
                uri,
                epoch,
                self.arena,
                root,
                xml_bytes=xml_bytes,
                default_document=new_default,
            )
            if self.arena.pager is not None:
                # the freshly persisted fragment files can now back the
                # in-arena rows: track them so the span is evictable
                self.arena.register_paged_backing(
                    root, self.store.open_paged(self.arena.pool, uri)
                )
        self.documents[uri] = root
        self.doc_epochs[uri] = epoch
        self._estimator = None
        self._xml_bytes += xml_bytes
        self._default_document = new_default
        self._default_explicit = explicit
        return self.arena.num_nodes - before

    def apply_update(
        self,
        core_module,
        bindings: dict | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Apply one updating module (XQuery Update Facility) atomically.

        The whole update — pending-update-list collection, structural
        rebuild, catalog swap, epoch bump and plan-cache invalidation —
        runs under the **exclusive** catalog lock: in-flight queries
        finish against the old tree first, and every query starting after
        this returns sees the new epoch.  This is the same write path a
        hot document replace takes, but the rebuild works from the
        existing pre/size/level rows (an append-only delta), not from
        re-shredding XML text.

        With a persistent store attached this is the WAL write path:
        the collected deltas are serialized and fsynced to the log
        *before* the arena mutates, so once this method returns the
        update survives a crash — recovery replays the record on top of
        the last checkpointed fragments.  The WAL is folded away (and
        truncated) by :meth:`checkpoint`, which also runs automatically
        once the log outgrows ``checkpoint_wal_bytes``.

        Returns a JSON-ready summary: primitive counts under
        ``"applied"`` and the new per-document node counts/epochs under
        ``"documents"``.
        """
        from repro.compiler.updates import collect_update_deltas

        with self._rwlock.write_locked(), self.arena.page_scope():
            t0 = time.perf_counter()
            # delta collection and serialization read arena rows through
            # many paths; pin everything resident for the duration (the
            # scope exit trims back to budget)
            self.arena.ensure_all()
            deltas, applied = collect_update_deltas(
                core_module,
                self.arena,
                self.documents,
                self._default_document,
                bindings=bindings,
                deadline=deadline,
            )
            new_epochs = {uri: next(self._epoch_counter) for uri in deltas}
            if self.store is not None and deltas:
                # one record per update: multi-document updates recover
                # atomically (all documents replay or none do)
                self.store.append_wal(
                    {
                        "docs": [
                            {
                                "uri": uri,
                                "base_epoch": self.doc_epochs[uri],
                                "new_epoch": new_epochs[uri],
                                "delta": serialize_delta(
                                    self.arena, self.documents[uri], delta
                                ),
                            }
                            for uri, delta in deltas.items()
                        ]
                    }
                )
            old_roots = {uri: self.documents[uri] for uri in deltas}
            new_roots = {
                uri: self.arena.rebuild_with_delta(self.documents[uri], delta)
                for uri, delta in deltas.items()
            }
            for uri, new_root in new_roots.items():
                self.documents[uri] = new_root
                self.doc_epochs[uri] = new_epochs[uri]
                self.plan_cache.invalidate_document(uri)
                # the superseded fragment is unreachable; untrack it so
                # the next checkpoint's GC cannot strand a cold span
                self.arena.retire_fragment(old_roots[uri])
            if new_roots:
                self._estimator = None
            if (
                self.store is not None
                and self.checkpoint_wal_bytes is not None
                and self.store.wal_bytes >= self.checkpoint_wal_bytes
            ):
                self._checkpoint_locked()
            return {
                "applied": applied,
                "documents": {
                    uri: {
                        "nodes": int(self.arena.size[root]) + 1,
                        "epoch": self.doc_epochs[uri],
                    }
                    for uri, root in new_roots.items()
                },
                "seconds": time.perf_counter() - t0,
            }

    def checkpoint(self) -> dict:
        """Fold the WAL into fragment files and truncate it.

        Rewrites the mmap fragments of every document with logged
        deltas, swaps the manifest atomically, then empties the log —
        after this, reopening needs no replay.  Requires an attached
        store; runs under the exclusive catalog lock (same write path
        as a hot replace).
        """
        if self.store is None:
            raise PathfinderError("no persistent store is attached")
        with self._rwlock.write_locked():
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> dict:
        dirty = {u for u in self.store.dirty if u in self.documents}
        result = self.store.checkpoint(
            self.arena, self.documents, self.doc_epochs, self._default_document
        )
        if self.arena.pager is not None:
            # checkpoint rewrote the fragment files of every dirty
            # document; the rebuilt in-arena spans now have durable
            # backings again, so re-track them as evictable
            for uri in sorted(dirty):
                self.arena.register_paged_backing(
                    self.documents[uri],
                    self.store.open_paged(self.arena.pool, uri),
                )
        return result

    def store_status(self) -> dict | None:
        """The attached store's operational summary (None when absent)."""
        return None if self.store is None else self.store.status()

    def paging_status(self) -> dict | None:
        """The pager's operational summary — budget, resident/mapped
        bytes, fault/eviction counters (None when paging is off)."""
        pager = self.arena.pager
        return None if pager is None else pager.status()

    def unload_document(self, uri: str) -> None:
        """Remove a document from the catalog and invalidate its plans.

        The shredded rows remain in the arena (append-only encoding);
        the document merely stops being addressable by queries.
        """
        with self._rwlock.write_locked():
            if uri not in self.documents:
                raise PathfinderError(f"document {uri!r} is not loaded")
            root = self.documents.pop(uri)
            del self.doc_epochs[uri]
            self._estimator = None
            self.plan_cache.invalidate_document(uri)
            if self._default_document == uri:
                self._default_document = None
                self._default_explicit = False
            if self.store is not None:
                # removal deletes the backing files: stop paging from
                # them first (materializes the span if it was cold)
                self.arena.retire_fragment(root)
                self.store.remove_document(uri, self._default_document)

    def storage_report(self) -> StorageReport:
        """Byte-level storage accounting (Section 3.1 experiment)."""
        return measure_storage(self.arena, self._xml_bytes)

    def catalog_snapshot(self) -> list[dict]:
        """One consistent view of the catalog (the ``/documents`` endpoint):
        per document its URI, node count, load epoch and default flag."""
        with self._rwlock.read_locked():
            return [
                {
                    "uri": uri,
                    # subtree_nodes answers from the paging record for a
                    # cold fragment — listing the catalog must not fault
                    # every document in
                    "nodes": self.arena.subtree_nodes(root),
                    "epoch": self.doc_epochs[uri],
                    "default": uri == self._default_document,
                }
                for uri, root in sorted(self.documents.items())
            ]

    # ------------------------------------------------------------- sessions
    def connect(
        self,
        use_staircase: bool = True,
        use_optimizer: bool = True,
        use_join_recognition: bool = True,
        disabled_passes: frozenset[str] | tuple = frozenset(),
        backend: str = "numpy",
        optimizer_mode: str = "cost",
    ) -> "Session":
        """Open a new session (per-client execution context) over this
        database.  ``backend`` picks the evaluator ("numpy" or
        "sqlhost"; the SQL host falls back to numpy per query when a
        plan is outside its dialect); ``optimizer_mode`` picks the
        planning strategy (see
        :data:`repro.relational.optimizer.OPTIMIZER_MODES`)."""
        from repro.api.session import Session

        return Session(
            self,
            use_staircase=use_staircase,
            use_optimizer=use_optimizer,
            use_join_recognition=use_join_recognition,
            disabled_passes=disabled_passes,
            backend=backend,
            optimizer_mode=optimizer_mode,
        )

    # ------------------------------------------------------------- compiler
    def cache_key(
        self,
        query: str,
        use_optimizer: bool,
        use_join_recognition: bool = True,
        disabled_passes: frozenset[str] = frozenset(),
        optimizer_mode: str = "cost",
    ) -> tuple:
        """The plan-cache key: query text + compiler settings + the
        default document absolute paths were resolved against."""
        return (
            query,
            use_optimizer,
            use_join_recognition,
            optimizer_mode,
            tuple(sorted(disabled_passes)),
            self._default_document,
        )

    def compile_query(
        self,
        query: str,
        use_optimizer: bool,
        use_join_recognition: bool = True,
        disabled_passes: frozenset[str] = frozenset(),
        optimizer_mode: str = "cost",
    ) -> CachedPlan:
        """One full front-end run (parse → desugar → loop-lift →
        optimize), bypassing the plan cache.

        ``disabled_passes`` names optimizer rewrite passes to skip (see
        :data:`repro.relational.optimizer.PASS_NAMES`);
        ``optimizer_mode`` picks the planning strategy.  Cardinality
        estimates are seeded from this database's arena statistics —
        except in ``greedy`` mode, which plans without ever building
        (or waiting on) the statistics.
        """
        with self._rwlock.read_locked():
            t0 = time.perf_counter()
            module = parse_query(query)
            core = desugar_module(module)
            compiler = Compiler(
                self.documents,
                self._default_document,
                use_join_recognition=use_join_recognition,
            )
            plan = compiler.compile_module(core)
            # record document dependencies from the unoptimized plan:
            # rewrites may drop a DocRoot leaf, but the query still
            # depends on it
            doc_deps = plan_documents(plan)
            stats = OptimizerStats()
            if use_optimizer:
                plan = optimize(
                    plan,
                    stats,
                    disabled=disabled_passes,
                    estimator=(
                        None
                        if optimizer_mode == "greedy"
                        else self._get_estimator()
                    ),
                    mode=optimizer_mode,
                )
            else:
                stats.ops_before = stats.ops_after = alg.op_count(plan)
            return CachedPlan(
                query=query,
                plan=plan,
                stats=stats,
                external_vars=tuple(core.external_vars),
                module=module,
                core=core,
                doc_epochs={uri: self.doc_epochs[uri] for uri in doc_deps},
                compile_seconds=time.perf_counter() - t0,
                default_document=self._default_document,
            )

    def _get_estimator(self) -> CardinalityEstimator:
        """The cached arena statistics, rebuilt (once) after a catalog
        change; double-checked so racing compilers build it one time."""
        estimator = self._estimator
        if estimator is None:
            with self._estimator_lock:
                estimator = self._estimator
                if estimator is None:
                    estimator = CardinalityEstimator.from_database(
                        self.arena, self.documents
                    )
                    self._estimator = estimator
        return estimator

    def compile_cached(
        self,
        query: str,
        use_optimizer: bool,
        use_join_recognition: bool = True,
        disabled_passes: frozenset[str] = frozenset(),
        optimizer_mode: str = "cost",
    ) -> tuple[CachedPlan, bool]:
        """Compile ``query`` through the plan cache.

        Returns ``(entry, hit)`` where ``hit`` says whether the plan came
        from the cache — or from a concurrent compilation of the same
        key: on a miss the compilation is *single-flight*, so N racing
        sessions run the front-end once and the waiters adopt the
        leader's entry (reported as hits; they paid no compilation).
        Compilation errors are not cached and propagate to every waiter.
        """
        with self._rwlock.read_locked():
            key = self.cache_key(
                query,
                use_optimizer,
                use_join_recognition,
                disabled_passes,
                optimizer_mode,
            )
            entry = self.plan_cache.get(key, self.doc_epochs)
            if entry is not None:
                return entry, True

            def _compile_and_cache() -> CachedPlan:
                fresh = self.compile_query(
                    query,
                    use_optimizer,
                    use_join_recognition,
                    disabled_passes,
                    optimizer_mode,
                )
                self.plan_cache.put(key, fresh)
                return fresh

            # every flight participant holds the catalog lock shared, so
            # no epoch can change between the leader's compile and a
            # waiter's adoption of the entry
            entry, leader = self._flight.do(key, _compile_and_cache)
            return entry, not leader

    @property
    def single_flight_waits(self) -> int:
        """How many compilations were saved by waiting on a concurrent
        identical one (the single-flight counter, for ``/stats``)."""
        return self._flight.waits


def connect(
    database: Database | None = None,
    use_staircase: bool = True,
    use_optimizer: bool = True,
    use_join_recognition: bool = True,
    disabled_passes: frozenset[str] | tuple = frozenset(),
    backend: str = "numpy",
    store: "DocumentStore | str | None" = None,
    page_budget_bytes: int | None = None,
    optimizer_mode: str = "cost",
) -> "Session":
    """Open a session — the front door of the API.

    ``repro.connect()`` creates a private in-memory :class:`Database` and
    returns a session on it; pass an existing ``database`` to share one
    catalog and plan cache between sessions, or ``store=PATH`` for a
    **persistent** database: documents load from the store's
    memory-mapped fragments (replaying any write-ahead-log tail) and
    every load/update is crash-safely persisted — see ``docs/storage.md``.
    ``page_budget_bytes`` (requires ``store``) caps resident column
    bytes: fragments page in lazily from the store's mmaps and are
    evicted LRU past the budget.  ``disabled_passes`` names optimizer
    rewrite passes this session should skip; ``optimizer_mode`` picks the
    planning strategy ("cost", "greedy" or "wcoj"); ``backend`` picks the
    evaluator ("numpy" or "sqlhost").
    """
    if database is None:
        database = Database(store=store, page_budget_bytes=page_budget_bytes)
    elif store is not None or page_budget_bytes is not None:
        raise PathfinderError(
            "pass store=/page_budget_bytes= when creating the Database, "
            "not to connect() on an existing one"
        )
    return database.connect(
        use_staircase=use_staircase,
        use_optimizer=use_optimizer,
        use_join_recognition=use_join_recognition,
        disabled_passes=disabled_passes,
        backend=backend,
        optimizer_mode=optimizer_mode,
    )
