"""The layered client API: Database → Session → PreparedQuery → QueryResult.

* :class:`~repro.api.database.Database` owns the node arena, the named
  document catalog (load/unload/replace, explicit default) and a shared
  LRU plan cache keyed by query text + document epochs;
* :class:`~repro.api.session.Session` (``Database.connect()`` /
  ``repro.connect()``) is one client's execution context: settings,
  session-level variable bindings and statistics;
* :class:`~repro.api.prepared.PreparedQuery` is a compiled, cacheable
  plan supporting external-variable binding, so one compilation serves
  many parameterized executions;
* :class:`~repro.api.prepared.QueryResult` serialises lazily and
  iterates the result sequence without materialising the text form.

The layer is thread-safe for concurrent serving: the Database guards its
catalog with a readers/writer lock (:mod:`repro.api.concurrency`), the
plan cache is an internally-locked LRU with single-flight compilation,
and sessions share nothing mutable with each other — one session per
thread needs no extra locking.

The legacy :class:`repro.engine.PathfinderEngine` is a thin shim over
these layers.
"""

from repro.api.concurrency import RWLock, SingleFlight
from repro.api.database import Database, connect
from repro.api.plan_cache import CachedPlan, PlanCache, PlanCacheStats
from repro.api.prepared import PreparedQuery, QueryResult
from repro.api.session import Session, SessionStats

__all__ = [
    "Database",
    "Session",
    "SessionStats",
    "PreparedQuery",
    "QueryResult",
    "PlanCache",
    "PlanCacheStats",
    "CachedPlan",
    "RWLock",
    "SingleFlight",
    "connect",
]
