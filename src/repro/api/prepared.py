"""PreparedQuery and the lazily-serializing QueryResult.

A :class:`PreparedQuery` is a handle on one cached plan: compile once,
execute many times.  Each execution resolves the query's external
variables (``declare variable $x external``) from the merge of the
session's variables and the per-call bindings, evaluates the shared
plan DAG and wraps the result table in a :class:`QueryResult` that
serialises on demand, streams the text form in bounded chunks
(:meth:`QueryResult.iter_serialized`) and supports the iterator protocol
for streaming large sequences value by value.
"""

from __future__ import annotations

import time

from repro.compiler.serialize import (
    DEFAULT_CHUNK_CHARS,
    iter_result_values,
    iter_serialized_chunks,
)
from repro.errors import NotSupportedError
from repro.relational.evaluate import EvalContext, evaluate


class QueryResult:
    """The outcome of one query execution.

    Serialisation is lazy (and cached): iterating or ``len()`` never
    builds the XML text, and ``serialize()`` runs the post-processor at
    most once.
    """

    def __init__(
        self,
        table,
        arena,
        plan,
        compile_seconds: float,
        execute_seconds: float,
        from_cache: bool = False,
        trace: dict | None = None,
    ):
        self.table = table
        self.arena = arena
        self.plan = plan
        self.compile_seconds = compile_seconds
        self.execute_seconds = execute_seconds
        self.from_cache = from_cache
        self.trace = trace
        self._serialized: str | None = None

    def serialize(self) -> str:
        """Result sequence as XML/text (the paper's post-processor)."""
        if self._serialized is None:
            self._serialized = "".join(self.iter_serialized())
        return self._serialized

    def iter_serialized(self, chunk_chars: int = DEFAULT_CHUNK_CHARS):
        """Stream the serialized result in bounded-size text chunks.

        The chunks concatenate to exactly :meth:`serialize`'s output but
        the full string is never assembled — this is what the HTTP
        layer's chunked ``/query`` responses iterate.  When
        :meth:`serialize` already ran (and cached), its string is yielded
        whole rather than re-serialised.
        """
        if self._serialized is not None:
            if self._serialized:
                yield self._serialized
            return
        yield from iter_serialized_chunks(
            self.table, self.arena, chunk_chars=chunk_chars
        )

    def values(self) -> list:
        """Result sequence as Python values (nodes become NodeHandles)."""
        return list(self)

    def __len__(self) -> int:
        return self.table.num_rows

    def __bool__(self) -> bool:
        """Always truthy: a QueryResult is an outcome, not a container —
        an empty result sequence is still a successful execution."""
        return True

    def __iter__(self):
        """Stream the result sequence value by value in sequence order."""
        return iter_result_values(self.table, self.arena)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryResult({len(self)} items, cached_plan={self.from_cache}, "
            f"compile={self.compile_seconds * 1000:.2f}ms, "
            f"execute={self.execute_seconds * 1000:.2f}ms)"
        )


class PreparedQuery:
    """A compiled query bound to a session; execute it many times with
    different external-variable bindings — compilation is never repeated."""

    def __init__(self, session, entry, from_cache: bool):
        self.session = session
        self._entry = entry
        self.from_cache = from_cache

    @property
    def query(self) -> str:
        """The original query text this plan was compiled from."""
        return self._entry.query

    @property
    def plan(self):
        """The optimized algebra plan DAG (immutable, shareable)."""
        return self._entry.plan

    @property
    def optimizer_stats(self):
        """Per-pass :class:`~repro.relational.optimizer.OptimizerStats`
        recorded when this plan was compiled."""
        return self._entry.stats

    @property
    def parameters(self) -> tuple:
        """The declared external variables (name + optional type)."""
        return self._entry.external_vars

    @property
    def optimizer_mode(self) -> str:
        """The planning strategy this plan was compiled under (the
        session's ``optimizer_mode`` at preparation time)."""
        return self.session.optimizer_mode

    @property
    def compile_seconds(self) -> float:
        """Time the (possibly cached) compilation took originally."""
        return self._entry.compile_seconds

    def _revalidate(self) -> None:
        """Recompile (through the cache) when a document this plan reads
        was replaced or unloaded, or the default document changed, since
        preparation — a held PreparedQuery never silently runs against a
        stale catalog."""
        database = self.session.database
        stale = database.default_document != self._entry.default_document or any(
            database.doc_epochs.get(uri) != epoch
            for uri, epoch in self._entry.doc_epochs.items()
        )
        if not stale:
            return
        fresh = self.session.prepare(self._entry.query)
        self._entry = fresh._entry
        self.from_cache = fresh.from_cache

    def execute(
        self, bindings: dict | None = None, trace: bool = False, **params
    ) -> QueryResult:
        """Evaluate the plan with the given external-variable bindings.

        Bindings merge, later wins: session variables, then the
        ``bindings`` dict, then keyword arguments.  Binding a name the
        query does not declare raises :class:`PathfinderError`.

        The whole execution holds the Database's catalog lock shared, so
        a concurrent hot replace waits rather than swapping a document
        mid-query.  On a ``backend="sqlhost"`` session the plan runs on
        SQLite when its dialect allows, falling back to the numpy
        evaluator (and counting ``stats.sqlhost_fallbacks``) when not.
        """
        session = self.session
        database = session.database
        with database.read_locked():
            self._revalidate()
            merged = session._merged_bindings(
                self._entry, {**(bindings or {}), **params}
            )
            trace_map: dict | None = {} if trace else None
            t0 = time.perf_counter()
            table = None
            # tracing is a numpy-evaluator feature: a traced execution
            # bypasses the SQL host so the caller gets populated traces
            # instead of a silently empty dict
            if session.backend == "sqlhost" and not trace:
                try:
                    table = session._sqlhost_backend().execute(self._entry.plan)
                    session.stats.sqlhost_queries += 1
                except NotSupportedError:
                    session.stats.sqlhost_fallbacks += 1
            if table is None:
                ctx = EvalContext(
                    database.arena,
                    documents=database.documents,
                    trace=trace_map,
                    use_staircase=session.use_staircase,
                    params=merged,
                )
                table = evaluate(self._entry.plan, ctx)
            elapsed = time.perf_counter() - t0
            session.stats.queries_executed += 1
            session.stats.execute_seconds += elapsed
            return QueryResult(
                table=table,
                arena=database.arena,
                plan=self._entry.plan,
                compile_seconds=self._entry.compile_seconds,
                execute_seconds=elapsed,
                from_cache=self.from_cache,
                trace=trace_map,
            )
