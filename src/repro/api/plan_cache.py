"""The compile-once plan cache shared by every session of a Database.

Pathfinder's whole front-end (parse → desugar → loop-lift → optimize) is
deterministic given the query text, the compiler settings and the
document catalog, and the emitted plan is an immutable DAG — so compiled
plans are perfect cache entries.  The cache is a plain LRU keyed by
``(query text, settings, default document)``; validity against catalog
changes is checked per *document*: each entry records the documents its
plan actually reads (the ``DocRoot`` leaves) together with their load
epochs, and a lookup revalidates those epochs against the catalog.  A
``load_document(..., replace=True)`` or ``unload_document()`` bumps only
the affected document's epoch, so plans over other documents stay hot.

The cache is thread-safe: every operation runs under one internal mutex,
so N sessions (or N server workers) can share it without external
locking.  Compilation itself is *not* serialised here — the Database
layers a :class:`~repro.api.concurrency.SingleFlight` in front of the
cache so a miss raced by many threads compiles once.
"""

from __future__ import annotations

import threading

from collections import OrderedDict
from dataclasses import dataclass

from repro.relational import algebra as alg
from repro.relational.optimizer import OptimizerStats
from repro.xquery import ast


def plan_documents(plan: alg.Op) -> tuple[str, ...]:
    """The URIs of every document a plan DAG reads (its DocRoot leaves)."""
    return tuple(
        sorted({op.uri for op in alg.walk(plan) if isinstance(op, alg.DocRoot)})
    )


@dataclass
class CachedPlan:
    """One compiled query: the plan plus everything needed to re-execute
    and to revalidate the entry."""

    query: str
    plan: alg.Op
    stats: OptimizerStats
    external_vars: tuple[ast.ExternalVar, ...]
    module: ast.Module
    core: ast.Module
    doc_epochs: dict[str, int]
    compile_seconds: float
    #: the catalog default at compile time — absolute paths were resolved
    #: against it, so a held PreparedQuery must recompile when it changes
    default_document: str | None = None


@dataclass
class PlanCacheStats:
    """Cumulative cache counters (all sessions of the Database)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """A bounded, thread-safe LRU mapping cache keys to
    :class:`CachedPlan` entries."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple, doc_epochs: dict[str, int]) -> CachedPlan | None:
        """Look up a plan; a hit requires every document the plan reads to
        still be loaded at the epoch recorded when the plan was compiled."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            for uri, epoch in entry.doc_epochs.items():
                if doc_epochs.get(uri) != epoch:
                    del self._entries[key]
                    self.stats.invalidations += 1
                    self.stats.misses += 1
                    return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry

    def put(self, key: tuple, entry: CachedPlan) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over capacity."""
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def invalidate_document(self, uri: str) -> int:
        """Drop every entry whose plan reads ``uri``; returns the count."""
        with self._lock:
            stale = [
                key
                for key, entry in self._entries.items()
                if uri in entry.doc_epochs
            ]
            for key in stale:
                del self._entries[key]
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()
