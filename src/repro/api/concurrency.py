"""Concurrency primitives for the thread-safe Database layer.

Two small, dependency-free building blocks:

* :class:`RWLock` — a write-preferring readers/writer lock.  Query
  compilation and execution hold the lock *shared* (many concurrent
  readers), catalog mutations (``load_document``/``unload_document``)
  hold it *exclusive*.  Writers are preferred: once a writer is waiting,
  new readers queue behind it, so a stream of queries cannot starve a
  hot document replace.
* :class:`SingleFlight` — per-key duplicate suppression for plan
  compilation.  When N sessions race on the same cache key, one thread
  (the *leader*) compiles while the others wait on its result instead of
  compiling the same plan N times.  Errors propagate to every waiter and
  are never cached.
* :class:`PageScopeRegistry` — thread-local pin scopes mediating between
  the :class:`~repro.encoding.paging.FragmentPager`'s evictions and
  RWLock readers.  The catalog lock says *which* catalog a query sees;
  it says nothing about residency, and a streamed result outlives the
  shared hold entirely.  So every reader opens a page scope
  (``Database.read_locked`` / the chunked serializers): fragments
  touched inside are pinned against eviction until the scope closes,
  at which point the pager trims back to budget.  Scopes nest per
  thread (innermost wins) and the pin bookkeeping itself runs under
  the pager's lock — the registry only answers "which scope is current
  on this thread", which thread-local storage answers without locking.

Both are classic shapes (Go's ``sync.RWMutex``/``singleflight``); the
implementations here are deliberately simple condition-variable code
because the protected sections — catalog updates and plan compilation —
run for milliseconds, not nanoseconds.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """A write-preferring readers/writer lock.

    Any number of readers may hold the lock concurrently; a writer holds
    it alone.  A waiting writer blocks *new* readers (write preference),
    so catalog mutations cannot be starved by a steady query stream.

    The read side is reentrant per thread: a thread already holding a
    shared lock may acquire it again even while a writer waits (the
    writer cannot be active, so this is safe and avoids self-deadlock on
    nested API calls such as ``execute -> revalidate -> prepare``).  The
    write side is not reentrant, and readers must not upgrade.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self._local = threading.local()

    @contextmanager
    def read_locked(self):
        """Context manager: hold the lock shared."""
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """Context manager: hold the lock exclusive."""
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def acquire_read(self) -> None:
        """Block until the lock can be held shared (reentrant per thread)."""
        held = getattr(self._local, "read_count", 0)
        with self._cond:
            if held == 0:
                while self._writer or self._writers_waiting:
                    self._cond.wait()
            self._readers += 1
        self._local.read_count = held + 1

    def release_read(self) -> None:
        """Release one shared hold."""
        self._local.read_count = getattr(self._local, "read_count", 1) - 1
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Block until the lock can be held exclusive."""
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()


class PageScopeRegistry:
    """Per-thread stacks of page-pin scopes (see the module docstring).

    ``push``/``pop`` bracket one reader (a query execution, a streaming
    serialization); ``current`` returns the innermost open scope of the
    calling thread, which is where the pager records its pins.  A scope
    is popped from the stack it was pushed onto, so a generator driven
    on the thread that created it cleans up correctly even when other
    scopes opened and closed in between (removal is by identity, not
    stack order).
    """

    def __init__(self):
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def push(self):
        """Open a new innermost scope on the calling thread."""
        from repro.encoding.paging import PageScope

        scope = PageScope()
        self._stack().append(scope)
        return scope

    def pop(self, scope) -> None:
        """Close ``scope`` (by identity; tolerates out-of-order exits)."""
        try:
            self._stack().remove(scope)
        except ValueError:  # pragma: no cover - exit on a foreign thread
            pass

    def current(self):
        """The calling thread's innermost open scope, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None


class _Flight:
    """One in-progress computation: waiters park on ``done``."""

    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class SingleFlight:
    """Per-key duplicate suppression for concurrent computations.

    ``do(key, fn)`` runs ``fn`` at most once per key *at a time*: the
    first caller becomes the leader and computes, concurrent callers
    with the same key wait and share the leader's result (or exception).
    Once a flight lands, the key is forgotten — a later call computes
    afresh (the plan cache in front of this decides whether that is
    needed).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[object, _Flight] = {}
        #: callers that waited on another thread's computation (stats)
        self.waits = 0

    def do(self, key, fn):
        """Return ``(value, leader)`` where ``leader`` says whether this
        call ran ``fn`` itself rather than adopting a concurrent result."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                leader = False
                self.waits += 1
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value, False
        try:
            flight.value = fn()
            return flight.value, True
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            flight.done.set()
            with self._lock:
                self._flights.pop(key, None)
