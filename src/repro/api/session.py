"""The Session layer: one client's execution context over a Database.

A session carries everything that is *per client* rather than per
database: evaluation settings (``use_staircase``, ``use_optimizer``,
which back-end runs the plans), session-level external-variable bindings
(defaults for prepared-query parameters) and execution statistics.
Several sessions can share one :class:`~repro.api.database.Database` —
they see the same documents and the same plan cache, but their settings,
bindings and stats are independent.

That independence is the concurrency contract of the serving layer:
**sessions share nothing mutable with each other.**  Everything a
session mutates (``variables``, ``stats``, its lazily-built SQL host
back-end) hangs off the session itself; everything shared (catalog,
arena, plan cache) lives in the Database behind its own locks.  One
session per thread therefore needs no further synchronisation — this is
how the HTTP server's worker pool uses the API.

Back-ends: ``backend="numpy"`` (default) evaluates plans with the
column-at-a-time numpy evaluator; ``backend="sqlhost"`` translates them
to SQL and runs them on SQLite, transparently falling back to the numpy
evaluator for plans the SQL host cannot express (node constructors,
external variables) — the fallback is counted in
:attr:`SessionStats.sqlhost_fallbacks`, never surfaced as an error.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.prepared import PreparedQuery
from repro.errors import PathfinderError
from repro.relational.optimizer import OPTIMIZER_MODES

#: back-ends a session can evaluate plans on
BACKENDS = ("numpy", "sqlhost")


@dataclass
class SessionStats:
    """Per-session execution counters."""

    queries_executed: int = 0
    #: updating queries applied via :meth:`Session.execute_update`
    updates_executed: int = 0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    compile_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: plans executed on the SQLite host back-end
    sqlhost_queries: int = 0
    #: sqlhost plans that fell back to the numpy evaluator
    #: (:class:`~repro.errors.NotSupportedError` from the translator)
    sqlhost_fallbacks: int = 0


class Session:
    """Per-client execution context; obtained via ``Database.connect()``
    or ``repro.connect()``."""

    def __init__(
        self,
        database,
        use_staircase: bool = True,
        use_optimizer: bool = True,
        use_join_recognition: bool = True,
        disabled_passes: frozenset[str] | tuple = frozenset(),
        backend: str = "numpy",
        optimizer_mode: str = "cost",
    ):
        if backend not in BACKENDS:
            raise PathfinderError(
                f"unknown backend {backend!r} (available: {', '.join(BACKENDS)})"
            )
        if optimizer_mode not in OPTIMIZER_MODES:
            raise PathfinderError(
                f"unknown optimizer mode {optimizer_mode!r} "
                f"(available: {', '.join(OPTIMIZER_MODES)})"
            )
        self.database = database
        self.use_staircase = use_staircase
        self.use_optimizer = use_optimizer
        self.use_join_recognition = use_join_recognition
        #: planning strategy this session compiles with ("cost",
        #: "greedy" or "wcoj" — see
        #: :data:`repro.relational.optimizer.OPTIMIZER_MODES`)
        self.optimizer_mode = optimizer_mode
        #: optimizer rewrite passes this session skips (names from
        #: :data:`repro.relational.optimizer.PASS_NAMES`)
        self.disabled_passes = frozenset(disabled_passes)
        #: which back-end executes plans ("numpy" or "sqlhost")
        self.backend = backend
        self.variables: dict[str, object] = {}
        self.stats = SessionStats()
        # lazily-built SQLite export + the doc epochs it snapshot
        self._sqlhost = None
        self._sqlhost_epochs: dict[str, int] | None = None

    # ------------------------------------------------------------ bindings
    def set_variable(self, name: str, value) -> None:
        """Bind a session-level default for an external variable.

        Per-execution bindings passed to ``PreparedQuery.execute`` /
        ``Session.execute`` override these.  ``name`` is without the
        leading ``$``.
        """
        self.variables[name.lstrip("$")] = value

    def unset_variable(self, name: str) -> None:
        """Drop a session-level variable binding (no-op when unbound)."""
        self.variables.pop(name.lstrip("$"), None)

    # ------------------------------------------------------------- queries
    def prepare(self, query: str) -> PreparedQuery:
        """Compile a query (through the shared plan cache) into a
        :class:`PreparedQuery` that can be executed many times with
        different external-variable bindings."""
        entry, hit = self.database.compile_cached(
            query,
            self.use_optimizer,
            self.use_join_recognition,
            self.disabled_passes,
            self.optimizer_mode,
        )
        if hit:
            self.stats.plan_cache_hits += 1
        else:
            self.stats.plan_cache_misses += 1
            self.stats.compile_seconds += entry.compile_seconds
        return PreparedQuery(self, entry, from_cache=hit)

    def execute(self, query: str, bindings: dict | None = None, trace: bool = False):
        """One-shot convenience: prepare (cache-backed) and execute.

        The returned :class:`~repro.api.prepared.QueryResult` serialises
        lazily — call ``result.serialize()`` for the buffered text or
        ``result.iter_serialized()`` to stream it in bounded chunks (the
        HTTP server's chunked ``/query`` path).
        """
        return self.prepare(query).execute(bindings, trace=trace)

    def execute_update(
        self,
        query: str,
        bindings: dict | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Apply an updating query (XQuery Update Facility subset).

        ``insert node``/``delete node``/``replace (value of) node``/
        ``rename node`` expressions — standalone or inside FLWOR,
        conditionals and sequences — are collected into a pending update
        list and applied atomically under the database's exclusive
        catalog lock; affected documents get a new epoch and their cached
        plans are invalidated, so other sessions (and this one) observe
        either the pre-update or the post-update tree, never a mix.

        ``bindings`` supplies values for ``declare variable $x external``
        declarations (session variables apply too, per-call wins);
        ``deadline`` bounds target/source evaluation in wall-clock
        seconds.  Returns the applied-primitive summary from
        :meth:`~repro.api.database.Database.apply_update`.
        """
        from repro.xquery.core import desugar_module
        from repro.xquery.parser import parse_query

        core = desugar_module(parse_query(query))
        # same binding discipline as the read path (_merged_bindings):
        # session defaults filtered to declared externals, per-call
        # bindings checked against the declarations
        declared = {v.name for v in core.external_vars}
        merged = {
            name: value
            for name, value in self.variables.items()
            if name in declared
        }
        for name, value in (bindings or {}).items():
            name = name.lstrip("$")
            if name not in declared:
                raise PathfinderError(
                    f"query declares no external variable ${name} "
                    f"(declared: {sorted(declared) or 'none'})"
                )
            merged[name] = value
        result = self.database.apply_update(core, merged, deadline=deadline)
        self.stats.updates_executed += 1
        return result

    def explain(self, query: str):
        """Expose every compilation stage of a query (demo hooks).

        The optimized plan and its stats come from the (cache-backed,
        session-stats-tracked) compiled entry; only the unoptimized
        stage — which the cache intentionally does not keep — is
        recompiled.
        """
        from repro.compiler.loop_lifting import Compiler
        from repro.engine import ExplainReport

        with self.database.read_locked():
            entry = self.prepare(query)._entry
            compiler = Compiler(
                self.database.documents,
                self.database.default_document,
                use_join_recognition=self.use_join_recognition,
            )
            unoptimized = compiler.compile_module(entry.core)
            return ExplainReport(
                query=query,
                module=entry.module,
                core=entry.core,
                plan=unoptimized,
                optimized=entry.plan,
                stats=entry.stats,
                optimizer_mode=self.optimizer_mode,
            )

    # ------------------------------------------------------------ internals
    def _sqlhost_backend(self):
        """The session-private SQLite export, rebuilt when any document
        epoch moved since it was taken (caller holds the catalog lock
        shared, so the snapshot is consistent)."""
        from repro.sqlhost.backend import SQLHostBackend

        database = self.database
        epochs = dict(database.doc_epochs)
        if self._sqlhost is None or self._sqlhost_epochs != epochs:
            if self._sqlhost is not None:
                self._sqlhost.close()
            self._sqlhost = SQLHostBackend(database.arena, database.documents)
            self._sqlhost_epochs = epochs
        return self._sqlhost

    def _merged_bindings(
        self, entry, bindings: dict | None
    ) -> dict[str, object]:
        """Session defaults overlaid with per-execution bindings, checked
        against the query's declared external variables."""
        declared = {v.name for v in entry.external_vars}
        merged = {
            name: value
            for name, value in self.variables.items()
            if name in declared
        }
        for name, value in (bindings or {}).items():
            name = name.lstrip("$")
            if name not in declared:
                raise PathfinderError(
                    f"query declares no external variable ${name} "
                    f"(declared: {sorted(declared) or 'none'})"
                )
            merged[name] = value
        return merged
