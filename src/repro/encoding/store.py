"""The persistent document store: mmap columnar fragments + a WAL.

The paper's encoding is a *disk-resident* columnar layout (Section 3.1:
node/attribute tables plus string pools); this module gives the arena
that durability.  A :class:`DocumentStore` owns one directory::

    store/
      MANIFEST.json            # atomically-replaced catalog (doc -> epoch)
      wal.log                  # append-only log of serialized TreeDeltas
      docs/<slug>-<epoch>/     # one immutable fragment per doc + epoch
        kind.bin size.bin level.bin parent.bin name.bin value.bin
        attr_owner.bin attr_name.bin attr_value.bin
        pool.blob pool_offsets.bin

Each fragment directory holds **one numpy-mappable file per column** of
the XPath Accelerator tables, written once and never modified: node
rows relative to the document root (``parent`` rebased, the root's
parent ``-1``), the attribute triples of the subtree, and a private
string pool (UTF-8 blob + offsets) holding every property string the
fragment references, with ``name``/``value`` columns remapped to local
surrogates.  Reopening a store therefore never re-parses XML:
:meth:`load_fragment` memory-maps the column files and adopts them into
the arena with vectorised appends, re-interning only the distinct pool
strings.

Durability protocol (see ``docs/storage.md``):

* the **manifest** is the single source of truth.  It is replaced
  atomically (write temp + fsync + ``os.replace`` + fsync dir), so a
  crash leaves either the old or the new catalog, never a mix.
  Fragment directories are written and fsynced *before* the manifest
  that references them; unreferenced directories are garbage.
* the **WAL** records updates as position-independent serialized
  :class:`~repro.encoding.arena.TreeDelta` payloads
  (:func:`serialize_delta`), one fsynced JSON line per update, written
  *before* the arena mutates.  A record lists every document the update
  touches with its base and new epoch, so replay is atomic per update
  and idempotent: a record whose base epoch no longer matches the
  manifest (because a checkpoint or replace already folded it in) is
  skipped.
* a **checkpoint** rewrites the fragments of every WAL-dirty document,
  swaps the manifest, then truncates the log.  Recovery = mmap the
  manifest fragments + replay the WAL tail; a torn final record
  (partial write, bad checksum) is discarded.

Every file-system step calls the injectable ``fault_hook`` first, which
is how the crash-recovery suite (``tests/test_store_recovery.py``) kills
the process at each boundary and proves reopening is always consistent.

Shard-scoped opens (the cluster serving tier, docs/serving.md): a store
opened with ``shard=(i, n)`` is one worker process's view of a shared
directory.  The shard map is pure hashing — :func:`shard_of` assigns
every URI to exactly one of ``n`` shards — so re-opening the same
directory with a different worker count is only a different open-time
filter, never a data migration.  A sharded store:

* appends to a **private WAL** (``wal-<i>.log``) so concurrent workers
  never interleave writes in one log; recovery reads the legacy shared
  ``wal.log`` *read-only* (skipping other shards' records happens at
  the Database layer via the idempotent base-epoch check) plus its own
  log.  An unsharded open reads *all* WAL files, so switching a
  directory between single-process and cluster serving is safe in both
  directions.
* **merge-commits the manifest** under an advisory file lock: the commit
  re-reads the manifest from disk and overlays only the documents this
  shard owns, so concurrent workers checkpointing different shards
  cannot lose each other's entries.
* skips :meth:`gc_unreferenced` (a concurrent worker's freshly written
  fragment directory is unreachable *until* its manifest commit, and
  must not be swept by a neighbour).
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import re
import shutil
import zlib
from contextlib import contextmanager

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None

import numpy as np

from repro.encoding.arena import NK_TEXT, NodeArena, TreeDelta
from repro.encoding.storage import persisted_fragment_bytes
from repro.errors import PathfinderError

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
FORMAT_VERSION = 1

#: node-table column files and their on-disk dtypes (paper Section 3.1:
#: narrow physical columns; ``kind`` fits a byte, ``level`` a short)
NODE_COLUMNS = (
    ("kind", "u1"),
    ("size", "<i8"),
    ("level", "<i4"),
    ("parent", "<i8"),
    ("name", "<i8"),
    ("value", "<i8"),
)
#: attribute-table column files (owner rebased to the fragment root)
ATTR_COLUMNS = (
    ("attr_owner", "<i8"),
    ("attr_name", "<i8"),
    ("attr_value", "<i8"),
)

#: TreeDelta fields keyed by node row and carrying content-entry lists
_ROW_CONTENT_FIELDS = (
    "insert_before",
    "insert_after",
    "insert_first",
    "insert_last",
    "replace",
)
#: TreeDelta fields keyed by node row and carrying one pooled string
_ROW_STRING_FIELDS = ("replace_value", "replace_content", "rename")
#: TreeDelta fields keyed by attribute index and carrying one string
_ATTR_STRING_FIELDS = ("replace_attr_value", "rename_attr")


class StoreError(PathfinderError):
    """A persistent-store invariant was violated (corrupt manifest...)."""


class StoreCrash(RuntimeError):
    """Raised by fault hooks to simulate a crash mid-write (tests)."""


def shard_of(uri: str, shards: int) -> int:
    """Deterministic shard owner of a document URI (SHA-1 mod shards).

    This *is* the cluster's shard map: pure hashing, no state, so the
    router, every worker, and any later re-open with a different worker
    count all agree on ownership without coordination.  SHA-1 rather
    than CRC-32 because CRC's linearity leaves near-identical URIs
    (``doc0.xml`` … ``doc5.xml``) with correlated low bits — real
    catalogs name documents in exactly that pattern.
    """
    if shards <= 0:
        raise ValueError("shard count must be positive")
    digest = hashlib.sha1(uri.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _slug(uri: str) -> str:
    """A filesystem-safe (non-unique) name for a document URI."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", uri)[:64] or "doc"


def _fsync_dir(path: str) -> None:
    """fsync a directory so renames/creates inside it are durable."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class PagedFragment:
    """A memory-mapped, relocatable view of one persisted fragment.

    ``cols``/``acols`` are read-only numpy memmaps of the column files
    (root-relative rows, fragment-local surrogates) and ``gsids`` maps
    local surrogate ``i`` to the shared pool's id for the same string —
    everything :func:`~repro.encoding.paging.fill_adopted_span` needs to
    materialise the fragment at any arena base, as often as the pager
    faults it back in.  Holding one keeps the store files mapped (and,
    on POSIX, readable even after the directory is garbage collected);
    it never holds decoded column data.
    """

    __slots__ = ("uri", "nodes", "attrs", "cols", "acols", "gsids",
                 "disk_bytes")

    def __init__(self, uri, nodes, attrs, cols, acols, gsids, disk_bytes):
        self.uri = uri
        self.nodes = nodes
        self.attrs = attrs
        self.cols = cols
        self.acols = acols
        self.gsids = gsids
        self.disk_bytes = disk_bytes


class DocumentStore:
    """One store directory: fragments, manifest, WAL (see module docs).

    The store performs no locking of its own — every mutating call runs
    under the owning Database's exclusive catalog lock, which also
    serialises manifest swaps and WAL appends.  ``fault_hook(point)``
    is invoked before/after each file-system step with a label such as
    ``"wal:fsync"``; raising from the hook simulates a crash there.

    ``shard=(index, count)`` opens the directory as one cluster
    worker's shard-scoped view (see the module docs): a private WAL,
    merge-committed manifest, and :meth:`owns` as the ownership filter
    the Database layer applies during recovery and loads.
    """

    def __init__(self, path: str, fault_hook=None, shard=None):
        self.path = os.path.abspath(str(path))
        self._fault = fault_hook if fault_hook is not None else lambda point: None
        if shard is not None:
            index, count = int(shard[0]), int(shard[1])
            if count < 1 or not (0 <= index < count):
                raise ValueError(f"invalid shard spec {shard!r}")
            shard = (index, count)
        self.shard = shard
        self._default_override = False
        os.makedirs(os.path.join(self.path, "docs"), exist_ok=True)
        self.manifest: dict = {
            "format": FORMAT_VERSION,
            "last_epoch": 0,
            "default_document": None,
            "documents": {},
        }
        manifest_path = os.path.join(self.path, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                self.manifest = json.load(handle)
            if self.manifest.get("format") != FORMAT_VERSION:
                raise StoreError(
                    f"unsupported store format in {manifest_path!r}"
                )
        #: documents with WAL records not yet folded into a fragment
        self.dirty: set[str] = set()
        self.wal_records = 0
        self.wal_seq = 0
        self.checkpoints = 0
        self.replayed = 0

    # ------------------------------------------------------------ plumbing
    def owns(self, uri: str) -> bool:
        """Whether this (possibly shard-scoped) open owns ``uri``."""
        if self.shard is None:
            return True
        return shard_of(uri, self.shard[1]) == self.shard[0]

    @property
    def wal_path(self) -> str:
        """Absolute path of the write-ahead log this open appends to."""
        if self.shard is not None:
            return os.path.join(self.path, f"wal-{self.shard[0]:02d}.log")
        return os.path.join(self.path, WAL_NAME)

    def shard_wal_paths(self) -> list[str]:
        """Per-shard WAL files present in the directory, sorted."""
        return sorted(glob.glob(os.path.join(self.path, "wal-[0-9]*.log")))

    @property
    def wal_bytes(self) -> int:
        """Current byte size of the WAL (0 when absent)."""
        try:
            return os.path.getsize(self.wal_path)
        except OSError:
            return 0

    def _doc_dir(self, meta: dict) -> str:
        return os.path.join(self.path, meta["dir"])

    # ----------------------------------------------------------- fragments
    def write_fragment(
        self, uri: str, epoch: int, arena: NodeArena, root: int, xml_bytes: int = 0
    ) -> dict:
        """Write the document's current fragment as columnar files.

        The subtree ``root .. root+size`` is snapshotted with rows and
        attribute owners rebased to the root, surrogates remapped into a
        fragment-local pool, and each column written + fsynced into a
        fresh ``docs/<slug>-<epoch>`` directory.  Returns the manifest
        entry; the fragment is unreachable until a manifest commit
        references it.
        """
        lo = int(root)
        arena.ensure_rows((lo,))  # snapshotting a cold fragment faults it
        hi = lo + int(arena.size[lo]) + 1
        pool = arena.pool
        name = np.asarray(arena.name[lo:hi], dtype=np.int64).copy()
        value = np.asarray(arena.value[lo:hi], dtype=np.int64).copy()
        parent = np.asarray(arena.parent[lo:hi], dtype=np.int64) - lo
        parent = parent.copy()
        parent[0] = -1
        ids, _ = arena.attrs_in_span(lo, hi)
        aowner = np.asarray(arena.attr_owner[ids], dtype=np.int64) - lo
        aname = np.asarray(arena.attr_name[ids], dtype=np.int64).copy()
        avalue = np.asarray(arena.attr_value[ids], dtype=np.int64).copy()

        # fragment-local string pool: every referenced surrogate, stored
        # once as UTF-8 (blob + offsets), columns remapped to local ids
        used = np.concatenate(
            [col[col >= 0] for col in (name, value, aname, avalue)]
        )
        uniq = np.unique(used)

        def remap(col: np.ndarray) -> np.ndarray:
            mask = col >= 0
            col[mask] = np.searchsorted(uniq, col[mask])
            return col

        strings = pool.values(uniq.tolist())
        encoded = [s.encode("utf-8") for s in strings]
        blob = b"".join(encoded)
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        if encoded:
            np.cumsum([len(b) for b in encoded], out=offsets[1:])

        columns = {
            "kind": np.asarray(arena.kind[lo:hi]),
            "size": np.asarray(arena.size[lo:hi]),
            "level": np.asarray(arena.level[lo:hi]),
            "parent": parent,
            "name": remap(name),
            "value": remap(value),
            "attr_owner": aowner,
            "attr_name": remap(aname),
            "attr_value": remap(avalue),
        }
        # per-shard name suffix: worker epoch counters are only unique
        # per process, and two URIs on different shards can share a slug
        if self.shard is not None:
            frag_name = f"{_slug(uri)}-s{self.shard[0]:02d}-{epoch:08d}"
        else:
            frag_name = f"{_slug(uri)}-{epoch:08d}"
        rel_dir = os.path.join("docs", frag_name)
        frag_dir = os.path.join(self.path, rel_dir)
        os.makedirs(frag_dir, exist_ok=True)
        self._fault("frag:write")
        dtypes = dict(NODE_COLUMNS + ATTR_COLUMNS)
        for cname, arr in columns.items():
            data = np.ascontiguousarray(arr.astype(dtypes[cname]))
            self._write_file(os.path.join(frag_dir, cname + ".bin"), data.tobytes())
        self._write_file(os.path.join(frag_dir, "pool.blob"), blob)
        self._write_file(
            os.path.join(frag_dir, "pool_offsets.bin"), offsets.tobytes()
        )
        self._fault("frag:fsync-dir")
        _fsync_dir(frag_dir)
        return {
            "epoch": int(epoch),
            "dir": rel_dir,
            "nodes": hi - lo,
            "attrs": int(len(ids)),
            "strings": int(len(uniq)),
            "blob_bytes": len(blob),
            "xml_bytes": int(xml_bytes),
        }

    def _write_file(self, path: str, data: bytes) -> None:
        """Write one immutable fragment file and fsync it."""
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            self._fault("frag:fsync")
            os.fsync(handle.fileno())

    def _mapped(self, path: str, dtype: str, count: int) -> np.ndarray:
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(path, dtype=dtype, mode="r", shape=(count,))

    def open_paged(self, pool, uri: str) -> "PagedFragment":
        """mmap one manifest fragment as a :class:`PagedFragment` view.

        The column files are memory-mapped (demand-paged, nothing read
        yet except the string pool, whose distinct strings are interned
        into ``pool`` so the fragment's surrogate translation table
        ``gsids`` is ready before any fault).  This is the relocatable
        half of adoption; :meth:`NodeArena.adopt_fragment
        <repro.encoding.arena.NodeArena.adopt_fragment>` does the span
        reservation and (lazy or eager) materialisation.
        """
        meta = self.manifest["documents"].get(uri)
        if meta is None:
            raise StoreError(f"document {uri!r} is not in the store manifest")
        frag = self._doc_dir(meta)
        n, m, k = meta["nodes"], meta["attrs"], meta["strings"]
        cols = {
            cname: self._mapped(os.path.join(frag, cname + ".bin"), dt, n)
            for cname, dt in NODE_COLUMNS
        }
        acols = {
            cname: self._mapped(os.path.join(frag, cname + ".bin"), dt, m)
            for cname, dt in ATTR_COLUMNS
        }
        offsets = self._mapped(
            os.path.join(frag, "pool_offsets.bin"), "<i8", k + 1
        )
        if k:
            with open(os.path.join(frag, "pool.blob"), "rb") as handle:
                blob = handle.read()
            # materialise the offsets first: per-element indexing into a
            # memmap pays a page-lookup per subscript
            off = np.asarray(offsets, dtype=np.int64).tolist()
            strings = [
                blob[off[i] : off[i + 1]].decode("utf-8") for i in range(k)
            ]
            gsids = np.asarray(pool.intern_many(strings), dtype=np.int64)
        else:
            gsids = np.empty(0, dtype=np.int64)
        return PagedFragment(
            uri=uri,
            nodes=int(n),
            attrs=int(m),
            cols=cols,
            acols=acols,
            gsids=gsids,
            disk_bytes=persisted_fragment_bytes(
                meta["nodes"], meta["attrs"], meta["strings"],
                meta["blob_bytes"],
            ),
        )

    def load_fragment(self, arena: NodeArena, uri: str) -> int:
        """mmap one manifest fragment and adopt it into ``arena``.

        Column files are memory-mapped (demand-paged; no XML parse) and
        adopted as one contiguous fragment, cast straight from the
        memmaps into the flat buffers — a single copy, with nothing but
        the (small) translation table kept alive afterwards.  With a
        pager attached the adoption is *lazy* instead: the span stays
        cold until first touch.  Returns the document's new root row.
        """
        return arena.adopt_fragment(
            self.open_paged(arena.pool, uri), paged=arena.pager is not None
        )

    # ------------------------------------------------------------ manifest
    @contextmanager
    def _manifest_lock(self):
        """Advisory cross-process lock guarding manifest merge-commits."""
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        lock_path = os.path.join(self.path, "MANIFEST.lock")
        with open(lock_path, "a+") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _merge_manifest_from_disk(self) -> None:
        """Overlay this shard's entries onto the manifest on disk.

        Runs under :meth:`_manifest_lock`.  For documents this shard
        owns, the in-memory state is the truth (including absence: an
        owned document missing from memory was deleted); for foreign
        documents the disk state wins, so concurrent workers committing
        different shards never lose each other's entries.  The default
        document follows the disk unless this worker explicitly set it
        (``set_default``) or the disk's choice no longer exists.
        """
        final = os.path.join(self.path, MANIFEST_NAME)
        disk: dict | None = None
        try:
            with open(final, "r", encoding="utf-8") as handle:
                disk = json.load(handle)
        except (OSError, ValueError):
            disk = None
        if not isinstance(disk, dict) or disk.get("format") != FORMAT_VERSION:
            return  # nothing valid on disk; the in-memory state stands
        index, count = self.shard
        merged = {
            uri: meta
            for uri, meta in disk.get("documents", {}).items()
            if shard_of(uri, count) != index
        }
        merged.update(
            {
                uri: meta
                for uri, meta in self.manifest["documents"].items()
                if shard_of(uri, count) == index
            }
        )
        default = disk.get("default_document")
        if self._default_override or (
            default is not None and default not in merged
        ):
            default = self.manifest.get("default_document")
        if default is not None and default not in merged:
            default = None
        self.manifest = {
            "format": FORMAT_VERSION,
            "last_epoch": max(
                int(disk.get("last_epoch", 0)),
                int(self.manifest.get("last_epoch", 0)),
            ),
            "default_document": default,
            "documents": merged,
            "shards": count,
        }

    def commit_manifest(self) -> None:
        """Atomically replace ``MANIFEST.json`` with the in-memory state.

        A shard-scoped store first merges with the manifest on disk
        under an advisory file lock (see :meth:`_merge_manifest_from_disk`)
        so concurrent workers' commits compose instead of clobbering.
        """
        if self.shard is not None:
            with self._manifest_lock():
                self._merge_manifest_from_disk()
                self._commit_manifest_file()
        else:
            self._commit_manifest_file()

    def _commit_manifest_file(self) -> None:
        """The atomic replace itself: temp + fsync + rename + dir fsync."""
        final = os.path.join(self.path, MANIFEST_NAME)
        tmp = final + ".tmp"
        if self.shard is not None:
            tmp = f"{final}.s{self.shard[0]:02d}.tmp"
        self._fault("manifest:write")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.manifest, handle, indent=1, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        self._fault("manifest:replace")
        os.replace(tmp, final)
        self._fault("manifest:done")
        _fsync_dir(self.path)

    def bump_epoch(self, epoch: int) -> None:
        """Record the highest epoch ever handed out (manifest field)."""
        if epoch > self.manifest.get("last_epoch", 0):
            self.manifest["last_epoch"] = int(epoch)

    def persist_document(
        self,
        uri: str,
        epoch: int,
        arena: NodeArena,
        root: int,
        xml_bytes: int = 0,
        default_document: str | None = None,
    ) -> dict:
        """Write a (re)loaded document's fragment and commit the manifest.

        This is the load/replace path: the fragment *is* the checkpoint
        for a fresh shred, so any pending WAL records for ``uri`` (their
        base epoch is now stale) will be skipped on recovery.
        """
        meta = self.write_fragment(uri, epoch, arena, root, xml_bytes)
        old = self.manifest["documents"].get(uri)
        self.manifest["documents"][uri] = meta
        self.manifest["default_document"] = default_document
        self.bump_epoch(epoch)
        self.commit_manifest()
        self.dirty.discard(uri)
        if old is not None:
            self._gc_dir(old["dir"])
        return meta

    def remove_document(self, uri: str, default_document: str | None) -> None:
        """Drop a document from the manifest (``unload_document``)."""
        old = self.manifest["documents"].pop(uri, None)
        self.manifest["default_document"] = default_document
        self.commit_manifest()
        self.dirty.discard(uri)
        if old is not None:
            self._gc_dir(old["dir"])

    def set_default(self, default_document: str | None) -> None:
        """Persist the catalog's default-document choice.

        On a shard-scoped store this marks the default as explicitly
        chosen, so merge-commits carry it over the disk's value.
        """
        self.manifest["default_document"] = default_document
        self._default_override = True
        self.commit_manifest()

    def _gc_dir(self, rel_dir: str) -> None:
        """Best-effort removal of a no-longer-referenced fragment dir."""
        shutil.rmtree(os.path.join(self.path, rel_dir), ignore_errors=True)

    def gc_unreferenced(self) -> int:
        """Delete fragment dirs the manifest no longer references.

        Runs at open: crashes can strand half-written fragment
        directories (they only become reachable at manifest commit).
        Returns how many directories were removed.  A shard-scoped open
        never sweeps: a concurrent worker's freshly written fragment is
        unreachable *until* its manifest commit and must survive.
        """
        if self.shard is not None:
            return 0
        live = {meta["dir"] for meta in self.manifest["documents"].values()}
        removed = 0
        docs = os.path.join(self.path, "docs")
        for entry in os.listdir(docs):
            rel = os.path.join("docs", entry)
            if rel not in live:
                self._gc_dir(rel)
                removed += 1
        return removed

    # ----------------------------------------------------------------- WAL
    def append_wal(self, record: dict) -> None:
        """Append one update record to the WAL and fsync it.

        The record is one JSON line carrying a CRC-32 of its payload;
        recovery treats a line that is truncated or fails the checksum
        as the torn tail of a crashed append and discards it.
        """
        self.wal_seq += 1
        record = {"seq": self.wal_seq, **record}
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF
        line = json.dumps({"crc": crc, "rec": record}, separators=(",", ":"))
        self._fault("wal:append")
        with open(self.wal_path, "ab") as handle:
            handle.write(line.encode("utf-8") + b"\n")
            handle.flush()
            self._fault("wal:fsync")
            os.fsync(handle.fileno())
        self._fault("wal:done")
        self.wal_records += 1
        for part in record.get("docs", ()):
            self.dirty.add(part["uri"])
            self.bump_epoch(part["new_epoch"])

    def _read_wal_file(self, path: str, truncate: bool) -> list[dict]:
        """Parse one WAL file's intact records, discarding a torn tail.

        A record is intact when its line parses as JSON and the CRC of
        the canonical payload matches; the first failure ends the log
        (an fsynced append can never be *followed* by an intact line,
        so nothing valid is thrown away).  With ``truncate`` the file is
        cut back to the surviving prefix so later appends start clean —
        disabled for files this open doesn't own (the legacy shared log
        read by a shard-scoped worker).
        """
        records: list[dict] = []
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return records
        pos = 0
        while pos < len(raw):
            newline = raw.find(b"\n", pos)
            if newline < 0:
                break  # torn tail: the append never finished its line
            line = raw[pos:newline]
            try:
                framed = json.loads(line.decode("utf-8"))
                payload = json.dumps(
                    framed["rec"], sort_keys=True, separators=(",", ":")
                )
                if (zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF) != framed[
                    "crc"
                ]:
                    break
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                break
            records.append(framed["rec"])
            pos = newline + 1
        if truncate and pos < len(raw):
            with open(path, "ab") as handle:
                handle.truncate(pos)
        return records

    def read_wal(self) -> list[dict]:
        """Return every replayable WAL record across the WAL files.

        An unsharded open reads the shared log plus any per-shard logs
        a previous cluster session left behind; a shard-scoped open
        reads the shared log (read-only — other shards still need it)
        followed by its private log.  Cross-file ordering leans on the
        replay loop's base-epoch check: a record whose base epoch no
        longer matches is skipped, and the Database forces a checkpoint
        after an unsharded recovery that consumed per-shard logs so
        stale cross-file interleavings can never accumulate.
        """
        legacy = os.path.join(self.path, WAL_NAME)
        if self.shard is not None:
            files = [(legacy, False), (self.wal_path, False)]
        else:
            files = [(legacy, True)]
            files += [(p, True) for p in self.shard_wal_paths()]
        records: list[dict] = []
        own: list[dict] = []
        for path, truncate in files:
            recs = self._read_wal_file(
                path, truncate or path == self.wal_path
            )
            records.extend(recs)
            if path == self.wal_path:
                own = recs
        tracked = own if self.shard is not None else records
        if tracked:
            self.wal_seq = max(r.get("seq", 0) for r in tracked)
            self.wal_records = len(tracked)
        return records

    def truncate_wal(self) -> None:
        """Empty the WAL (checkpoint already folded its records in).

        A shard-scoped open truncates only its private log (the shared
        log's records for its documents are stale after the checkpoint
        and will be skipped by the base-epoch check); an unsharded open
        also removes any per-shard logs left by a cluster session.
        """
        self._fault("wal:truncate")
        if self.shard is not None:
            # a shard's log is private: remove it outright, so a drained
            # cluster leaves no wal-NN files behind (appends recreate it)
            try:
                os.remove(self.wal_path)
            except OSError:
                pass
        else:
            with open(self.wal_path, "wb") as handle:
                handle.flush()
                os.fsync(handle.fileno())
            for path in self.shard_wal_paths():
                try:
                    os.remove(path)
                except OSError:
                    pass
        self.wal_records = 0

    # ----------------------------------------------------------- checkpoint
    def checkpoint(
        self,
        arena: NodeArena,
        documents: dict[str, int],
        doc_epochs: dict[str, int],
        default_document: str | None,
    ) -> dict:
        """Fold the WAL into fragments: rewrite dirty docs, swap the
        manifest, truncate the log.

        Crash-safe at every boundary: new fragment dirs are unreachable
        until the manifest swap; a crash before the swap replays the WAL
        against the old fragments, a crash after it skips the stale
        records (their base epochs no longer match).
        """
        self._fault("checkpoint:begin")
        rewritten = []
        for uri in sorted(self.dirty):
            if uri not in documents:
                continue  # unloaded since; manifest already dropped it
            old = self.manifest["documents"].get(uri)
            meta = self.write_fragment(
                uri,
                doc_epochs[uri],
                arena,
                documents[uri],
                xml_bytes=(old or {}).get("xml_bytes", 0),
            )
            self.manifest["documents"][uri] = meta
            self.bump_epoch(doc_epochs[uri])
            rewritten.append((uri, old))
        self.manifest["default_document"] = default_document
        self.commit_manifest()
        self.truncate_wal()
        self._fault("checkpoint:done")
        self.dirty.clear()
        self.checkpoints += 1
        for _, old in rewritten:
            if old is not None:
                self._gc_dir(old["dir"])
        return {
            "documents_rewritten": len(rewritten),
            "wal_bytes": self.wal_bytes,
        }

    # --------------------------------------------------------------- status
    def status(self) -> dict:
        """Operational summary (the ``/stats`` ``"store"`` section).

        A shard-scoped store counts only the documents it owns, so the
        cluster's per-shard sections sum to the catalog, not N copies
        of it.
        """
        docs = {
            uri: meta
            for uri, meta in self.manifest["documents"].items()
            if self.owns(uri)
        }
        shard = None
        if self.shard is not None:
            shard = {"index": self.shard[0], "of": self.shard[1]}
        return {
            "path": self.path,
            "shard": shard,
            "documents": len(docs),
            "last_epoch": self.manifest.get("last_epoch", 0),
            "wal_bytes": self.wal_bytes,
            "wal_records": self.wal_records,
            "dirty_documents": len(self.dirty),
            "checkpoints": self.checkpoints,
            "replayed_deltas": self.replayed,
            "fragment_bytes": sum(
                persisted_fragment_bytes(
                    meta["nodes"],
                    meta["attrs"],
                    meta["strings"],
                    meta["blob_bytes"],
                )
                for meta in docs.values()
            ),
        }


# --------------------------------------------------------------------------
# TreeDelta (de)serialization — the WAL record payload
# --------------------------------------------------------------------------
def _entry_to_json(arena: NodeArena, entry) -> dict:
    """One constructor-content entry → a position-independent payload.

    ``("text", sid)`` keeps its string; ``("copy", row)`` of a text node
    degrades to a text payload (copy semantics are by-value); any other
    copied subtree is serialized to XML, which :func:`_entries_from_json`
    re-shreds on replay.
    """
    from repro.xml.serializer import serialize_node

    tag, payload = entry
    if tag == "text":
        return {"t": "text", "v": arena.pool.value(int(payload))}
    row = int(payload)
    if int(arena.kind[row]) == NK_TEXT:
        return {"t": "text", "v": arena.pool.value(int(arena.value[row]))}
    return {"t": "xml", "v": serialize_node(arena, row)}


def _entries_from_json(arena: NodeArena, payloads: list) -> list:
    """Materialise serialized content entries against the current arena.

    XML payloads are shredded (inside a wrapper element, so comments,
    PIs and multi-node document content replay too) into a transient
    fragment whose children become ``("copy", row)`` entries — exactly
    the by-value copy the original update performed.
    """
    from repro.encoding.shred import shred_text

    entries: list = []
    for payload in payloads:
        if payload["t"] == "text":
            entries.append(("text", arena.pool.intern(payload["v"])))
            continue
        doc = shred_text(arena, "<w>" + payload["v"] + "</w>")
        wrapper = doc + 1  # the <w> element under the document node
        for child in arena._child_rows_of(wrapper):
            entries.append(("copy", child))
    return entries


def _attr_pair_to_json(arena: NodeArena, pair) -> list:
    name_sid, value_sid = pair
    return [arena.pool.value(int(name_sid)), arena.pool.value(int(value_sid))]


def _span_attr_ids(arena: NodeArena, root: int) -> np.ndarray:
    lo = int(root)
    arena.ensure_rows((lo,))
    return arena.attrs_in_span(lo, lo + int(arena.size[lo]) + 1)[0]


def serialize_delta(arena: NodeArena, root: int, delta: TreeDelta) -> dict:
    """Encode a :class:`TreeDelta` as a position-independent payload.

    Node targets become pre-order offsets relative to the document root
    and attribute targets become indices into the document's attribute
    list (both stable across restarts for the same epoch); pool
    surrogates become the strings themselves; copied content becomes
    XML text.  :func:`materialize_delta` inverts this against the
    recovered arena.
    """
    attr_ids = _span_attr_ids(arena, root)
    attr_index = {int(aid): i for i, aid in enumerate(attr_ids)}
    rel = lambda row: int(row) - int(root)  # noqa: E731
    out: dict = {}
    for field in _ROW_CONTENT_FIELDS:
        table = getattr(delta, field)
        if table:
            out[field] = {
                str(rel(row)): [_entry_to_json(arena, e) for e in entries]
                for row, entries in table.items()
            }
    if delta.insert_attrs:
        out["insert_attrs"] = {
            str(rel(row)): [_attr_pair_to_json(arena, p) for p in pairs]
            for row, pairs in delta.insert_attrs.items()
        }
    if delta.delete:
        out["delete"] = sorted(rel(row) for row in delta.delete)
    if delta.delete_attrs:
        out["delete_attrs"] = sorted(
            attr_index[int(aid)] for aid in delta.delete_attrs
        )
    if delta.replace_attr:
        out["replace_attr"] = {
            str(attr_index[int(aid)]): [
                _attr_pair_to_json(arena, p) for p in pairs
            ]
            for aid, pairs in delta.replace_attr.items()
        }
    for field in _ROW_STRING_FIELDS:
        table = getattr(delta, field)
        if table:
            out[field] = {
                str(rel(row)): arena.pool.value(int(sid))
                for row, sid in table.items()
            }
    for field in _ATTR_STRING_FIELDS:
        table = getattr(delta, field)
        if table:
            out[field] = {
                str(attr_index[int(aid)]): arena.pool.value(int(sid))
                for aid, sid in table.items()
            }
    return out


def materialize_delta(arena: NodeArena, root: int, payload: dict) -> TreeDelta:
    """Rebuild a :class:`TreeDelta` from :func:`serialize_delta` output.

    ``root`` must be the document's root row at the epoch the record
    applies to (the WAL replay loop checks epochs before calling), so
    relative rows and attribute indices resolve to the same logical
    targets the original update addressed.
    """
    attr_ids = _span_attr_ids(arena, root)
    delta = TreeDelta()
    base = int(root)
    intern = arena.pool.intern
    for field in _ROW_CONTENT_FIELDS:
        for key, entries in payload.get(field, {}).items():
            getattr(delta, field)[base + int(key)] = _entries_from_json(
                arena, entries
            )
    for key, pairs in payload.get("insert_attrs", {}).items():
        delta.insert_attrs[base + int(key)] = [
            (intern(n), intern(v)) for n, v in pairs
        ]
    delta.delete = {base + int(r) for r in payload.get("delete", ())}
    delta.delete_attrs = {
        int(attr_ids[int(i)]) for i in payload.get("delete_attrs", ())
    }
    for key, pairs in payload.get("replace_attr", {}).items():
        delta.replace_attr[int(attr_ids[int(key)])] = [
            (intern(n), intern(v)) for n, v in pairs
        ]
    for field in _ROW_STRING_FIELDS:
        for key, text in payload.get(field, {}).items():
            getattr(delta, field)[base + int(key)] = intern(text)
    for field in _ATTR_STRING_FIELDS:
        for key, text in payload.get(field, {}).items():
            getattr(delta, field)[int(attr_ids[int(key)])] = intern(text)
    return delta


# --------------------------------------------------------------------------
# differential-test helper
# --------------------------------------------------------------------------
def fragment_snapshot(arena: NodeArena, root: int) -> dict:
    """A store-independent, comparable image of one document fragment.

    Rows are rebased to the root and surrogates decoded to strings, so
    two arenas that interned in different orders (e.g. in-memory vs
    reopened-from-store) still compare equal column for column.  The
    differential suites assert this across persist/reopen/replay.
    """
    lo = int(root)
    arena.ensure_rows((lo,))
    hi = lo + int(arena.size[lo]) + 1
    pool = arena.pool
    decode = lambda sid: pool.value(int(sid)) if sid >= 0 else None  # noqa: E731
    parent = (np.asarray(arena.parent[lo:hi], dtype=np.int64) - lo).tolist()
    parent[0] = -1
    ids = _span_attr_ids(arena, lo)
    return {
        "kind": np.asarray(arena.kind[lo:hi]).tolist(),
        "size": np.asarray(arena.size[lo:hi]).tolist(),
        "level": np.asarray(arena.level[lo:hi]).tolist(),
        "parent": parent,
        "name": [decode(s) for s in arena.name[lo:hi]],
        "value": [decode(s) for s in arena.value[lo:hi]],
        "attrs": [
            (
                int(arena.attr_owner[j]) - lo,
                decode(arena.attr_name[j]),
                decode(arena.attr_value[j]),
            )
            for j in ids
        ],
    }
