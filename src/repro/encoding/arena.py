"""The node arena: every document and constructed fragment, one encoding.

The arena is the heart of the tree encoding.  It keeps the XPath
Accelerator tables for *all* trees the engine knows about — loaded
documents as well as fragments constructed at query runtime — as one set
of parallel, growing arrays:

``kind | size | level | frag | parent | name | value``

Rows are appended in pre-order per fragment and fragments are contiguous,
so the **global row id doubles as the pre rank**: ``pre(v) = v -
frag_base(frag(v))`` and, more importantly, integer order on row ids *is*
document order (fragments ordered by creation, as XQuery allows).  The
paper's region predicates then become plain integer range conditions on
row ids, e.g. descendants of ``v`` are exactly rows ``v+1 .. v+size(v)``.

Attributes live in a parallel ``owner | name | value`` table with their own
id space (attribute items carry ``K_ATTR`` kind).  Names and textual values
are surrogates into a shared :class:`~repro.relational.items.StringPool` —
the paper's unique-value property BATs ("surrogate sharing ... avoids
expensive string comparisons and reduces space consumption").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import DynamicError
from repro.relational.items import StringPool

NK_DOC = 0
NK_ELEM = 1
NK_TEXT = 2
NK_COMMENT = 3
NK_PI = 4

NODE_KIND_NAMES = {
    NK_DOC: "document",
    NK_ELEM: "element",
    NK_TEXT: "text",
    NK_COMMENT: "comment",
    NK_PI: "processing-instruction",
}


class _Buf:
    """A growable int64 array with amortised O(1) appends."""

    __slots__ = ("_data", "_len", "on_grow")

    def __init__(self, capacity: int = 1024):
        self._data = np.zeros(capacity, dtype=np.int64)
        self._len = 0
        #: optional callback fired after a reallocation (the fragment
        #: pager re-releases cold spans the growth copy re-resided)
        self.on_grow = None

    def __len__(self) -> int:
        return self._len

    def view(self) -> np.ndarray:
        return self._data[: self._len]

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        if need > len(self._data):
            cap = max(need, 2 * len(self._data))
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._len] = self._data[: self._len]
            self._data = grown
            if self.on_grow is not None:
                self.on_grow()

    def grow(self, extra: int) -> None:
        """Extend the length by ``extra`` rows without writing them.

        The reserved tail reads as zeros until filled — this is how a
        paged fragment's span exists before its first fault-in (calloc
        pages cost no RSS until touched).
        """
        self._reserve(extra)
        self._len += extra

    def append(self, value: int) -> int:
        self._reserve(1)
        self._data[self._len] = value
        self._len += 1
        return self._len - 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._reserve(len(values))
        self._data[self._len : self._len + len(values)] = values
        self._len += len(values)

    def __getitem__(self, idx):
        return self.view()[idx]

    def __setitem__(self, idx, value):
        self.view()[idx] = value


@dataclass
class TreeDelta:
    """Structural edits applied while rebuilding one document fragment.

    This is the arena-level half of the XQuery Update Facility: the
    pending-update-list compiler (:mod:`repro.compiler.updates`) resolves
    update primitives to *old* arena rows/attribute ids and fills these
    maps; :meth:`NodeArena.rebuild_with_delta` then re-emits the document
    as a brand-new fragment with the edits applied.  Content entries are
    ``("copy", row)`` (deep copy of an existing subtree) or ``("text",
    sid)`` (a new text node), exactly like the element constructor spec.
    """

    #: target row → content inserted immediately before/after it
    insert_before: dict[int, list] = field(default_factory=dict)
    insert_after: dict[int, list] = field(default_factory=dict)
    #: parent row → content inserted as first/last children
    insert_first: dict[int, list] = field(default_factory=dict)
    insert_last: dict[int, list] = field(default_factory=dict)
    #: element row → ``(name sid, value sid)`` attributes to add
    insert_attrs: dict[int, list] = field(default_factory=dict)
    #: node rows / attribute ids whose subtrees are dropped
    delete: set = field(default_factory=set)
    delete_attrs: set = field(default_factory=set)
    #: target row → replacement content (``replace node``)
    replace: dict[int, list] = field(default_factory=dict)
    #: attribute id → ``(name sid, value sid)`` replacements
    replace_attr: dict[int, list] = field(default_factory=dict)
    #: text/comment/PI row → new value sid (``replace value of node``)
    replace_value: dict[int, int] = field(default_factory=dict)
    #: element row → text sid replacing its entire content
    replace_content: dict[int, int] = field(default_factory=dict)
    #: attribute id → new value sid
    replace_attr_value: dict[int, int] = field(default_factory=dict)
    #: element/PI row → new name sid (``rename node``)
    rename: dict[int, int] = field(default_factory=dict)
    #: attribute id → new name sid
    rename_attr: dict[int, int] = field(default_factory=dict)


class NodeArena:
    """Container for every tree the engine knows (documents + fragments).

    Concurrency contract: rows are append-only and never change once
    appended, so readers may scan without locking — a reader simply does
    not see fragments appended after it started.  All *mutation* goes
    through ``mutation_lock`` (a reentrant mutex): interleaved appends
    from two threads would violate the fragment-contiguity invariant the
    whole encoding rests on ("the global row id doubles as the pre
    rank"), so constructors hold the lock for their entire fragment.
    The lazy navigation indices are rebuilt under the same lock and
    handed to readers as an immutable snapshot.
    """

    def __init__(self, pool: StringPool | None = None):
        self.pool = pool if pool is not None else StringPool()
        self._kind = _Buf()
        self._size = _Buf()
        self._level = _Buf()
        self._frag = _Buf()
        self._parent = _Buf()
        self._name = _Buf()
        self._value = _Buf()
        self._attr_owner = _Buf(256)
        self._attr_name = _Buf(256)
        self._attr_value = _Buf(256)
        self.frag_base: list[int] = []
        #: serialises every arena mutation (see the class docstring);
        #: reentrant so composite constructors can call the low-level
        #: appenders they are built from
        self.mutation_lock = threading.RLock()
        self._version = 0
        #: (version, child_order, child_parents, attr_order,
        #: attr_owners_sorted, text_rows) — replaced atomically as a unit
        #: so concurrent readers never mix index generations
        self._indices: tuple | None = None
        self._strvalue_cache: dict[int, int] = {}
        #: demand pager for mmap-backed fragments (None = fully eager);
        #: see :meth:`enable_paging` and :mod:`repro.encoding.paging`
        self.pager = None
        self._frag_bases_cache: np.ndarray | None = None

    # -------------------------------------------------------------- paging
    def enable_paging(self, budget_bytes: int | None) -> None:
        """Attach a :class:`~repro.encoding.paging.FragmentPager`.

        Fragments adopted with ``paged=True`` afterwards stay
        mmap-resident until first touch and are evicted LRU once the
        resident tracked bytes exceed ``budget_bytes`` (``None`` = fault
        lazily but never evict).  Must be called before any paged
        adoption; enabling is idempotent per arena lifetime.
        """
        from repro.encoding.paging import FragmentPager

        with self.mutation_lock:
            if self.pager is not None:  # pragma: no cover - defensive
                self.pager.budget_bytes = budget_bytes
                return
            self.pager = FragmentPager(self, budget_bytes)
            for buf in (
                self._kind, self._size, self._level, self._frag,
                self._parent, self._name, self._value,
                self._attr_owner, self._attr_name, self._attr_value,
            ):
                buf.on_grow = self.pager.note_buffer_growth

    def _frag_bases(self) -> np.ndarray:
        """``frag_base`` as a cached array (for row→fragment searches
        that must not read the possibly-cold ``frag`` column)."""
        bases = self._frag_bases_cache
        if bases is None or len(bases) != len(self.frag_base):
            bases = np.asarray(self.frag_base, dtype=np.int64)
            self._frag_bases_cache = bases
        return bases

    def adopt_fragment(self, source, paged: bool = False) -> int:
        """Adopt a persisted fragment (``PagedFragment``); returns its
        root row.

        The fragment's row and attribute spans are *reserved* (length
        extended, nothing written).  With ``paged=True`` and a pager
        attached, the span is filled only on first touch; otherwise it
        is materialised immediately — straight from the memmapped
        columns into the flat buffers, the single-copy eager path.
        """
        from repro.encoding.paging import fill_adopted_span

        with self.mutation_lock:
            fid = self.begin_fragment()
            base = self.num_nodes
            n, m = source.nodes, source.attrs
            for buf in (self._kind, self._size, self._level, self._frag,
                        self._parent, self._name, self._value):
                buf.grow(n)
            for buf in (self._attr_owner, self._attr_name, self._attr_value):
                buf.grow(m)
            abase = self.num_attrs - m
            self._version += 1
            if self.pager is not None:
                self.pager.register(fid, base, abase, source, hot=False)
                if not paged:
                    self.ensure_rows((base,))
            else:
                fill_adopted_span(self, base, abase, source, fid)
            return base

    def register_paged_backing(self, root: int, source) -> bool:
        """Track an already-materialised fragment as evictable.

        Called after a document fragment is (re)written to the store:
        its in-arena span is now byte-identical to what a fault-in from
        ``source`` would produce, so the pager may evict and re-fault
        it.  Returns False (leaving the fragment untracked, i.e. pinned
        in memory) when the span does not match the backing — a
        conservative refusal, never an error.
        """
        pager = self.pager
        if pager is None:
            return False
        with self.mutation_lock:
            bases = self._frag_bases()
            fid = int(np.searchsorted(bases, int(root), side="right") - 1)
            if fid < 0 or int(bases[fid]) != int(root):
                return False
            if pager.record_for_base(int(root)) is not None:
                return False
            n = int(self.size[root]) + 1
            if n != source.nodes:
                return False
            ids, _ = self.attrs_in_span(int(root), int(root) + n)
            m = len(ids)
            if m != source.attrs:
                return False
            if m and not (
                int(ids[0]) + m - 1 == int(ids[-1])
                and bool(np.all(np.diff(ids) == 1))
            ):
                return False
            abase = int(ids[0]) if m else 0
            pager.register(fid, int(root), abase, source, hot=True)
            return True

    def retire_fragment(self, row: int) -> None:
        """Untrack (and materialise) the paged fragment owning ``row``.

        Must run before the fragment's backing files are deleted — the
        span keeps serving stale-but-valid rows to old readers and
        whole-arena scans forever after.  No-op without a pager or for
        untracked rows.
        """
        if self.pager is not None:
            self.pager.retire_rows(row)

    def ensure_rows(self, rows) -> None:
        """Fault in the paged fragments owning ``rows`` (no-op when the
        arena is eager) — the column-access seam every reader of node
        columns goes through before indexing them."""
        pager = self.pager
        if pager is not None:
            pager.ensure_rows(rows)

    def ensure_attrs(self, attr_ids) -> None:
        """Like :meth:`ensure_rows` for attribute-table readers."""
        pager = self.pager
        if pager is not None:
            pager.ensure_attrs(attr_ids)

    def ensure_all(self) -> None:
        """Fault in every paged fragment (whole-arena scans such as the
        SQL-host export)."""
        pager = self.pager
        if pager is not None:
            pager.ensure_all()

    def page_scope(self):
        """Context manager pinning every fragment touched inside it (one
        per query execution / streamed serialization); a no-op context
        for eager arenas."""
        pager = self.pager
        if pager is not None:
            return pager.scope()
        from contextlib import nullcontext

        return nullcontext()

    def subtree_nodes(self, root: int) -> int:
        """Node count of the fragment rooted at ``root`` without
        faulting it in (catalog listings must not page anything)."""
        pager = self.pager
        if pager is not None:
            rec = pager.record_for_base(int(root))
            if rec is not None:
                return rec.source.nodes
        return int(self.size[root]) + 1

    def logical_column(self, name: str) -> np.ndarray:
        """One node/attribute column with cold paged spans patched in
        from their mmap sources — residency-independent reads for the
        optimizer statistics and the navigation indices."""
        pager = self.pager
        if pager is None:
            return getattr(self, name)
        return pager.patched_column(name)

    # ------------------------------------------------------------- columns
    @property
    def kind(self) -> np.ndarray:
        """Node kind per row (``NK_*`` constants)."""
        return self._kind.view()

    @property
    def size(self) -> np.ndarray:
        """Subtree size per row (descendant count)."""
        return self._size.view()

    @property
    def level(self) -> np.ndarray:
        """Depth per row (fragment root = 0)."""
        return self._level.view()

    @property
    def frag(self) -> np.ndarray:
        """Fragment id per row."""
        return self._frag.view()

    @property
    def parent(self) -> np.ndarray:
        """Parent row id per row (``-1`` at fragment roots)."""
        return self._parent.view()

    @property
    def name(self) -> np.ndarray:
        """Tag/target name surrogate per row (``-1`` when nameless)."""
        return self._name.view()

    @property
    def value(self) -> np.ndarray:
        """Text value surrogate per row (``-1`` when valueless)."""
        return self._value.view()

    @property
    def attr_owner(self) -> np.ndarray:
        """Owner row id per attribute."""
        return self._attr_owner.view()

    @property
    def attr_name(self) -> np.ndarray:
        """Name surrogate per attribute."""
        return self._attr_name.view()

    @property
    def attr_value(self) -> np.ndarray:
        """Value surrogate per attribute."""
        return self._attr_value.view()

    @property
    def num_nodes(self) -> int:
        """Total node rows across every fragment."""
        return len(self._kind)

    @property
    def num_attrs(self) -> int:
        """Total attribute rows across every fragment."""
        return len(self._attr_owner)

    # ------------------------------------------------------------- building
    def begin_fragment(self) -> int:
        """Start a new fragment; returns its id.  The next appended node is
        the fragment root and must carry the total subtree ``size``.

        Callers appending a multi-row fragment must hold
        ``mutation_lock`` across the whole begin/append sequence so the
        fragment's rows stay contiguous (the composite constructors
        below do; :func:`~repro.encoding.shred.shred_text` runs under the
        Database's exclusive catalog lock).
        """
        with self.mutation_lock:
            self.frag_base.append(self.num_nodes)
            self._version += 1
            return len(self.frag_base) - 1

    def append_node(
        self, kind: int, size: int, level: int, parent: int, name: int, value: int
    ) -> int:
        """Append one node row (pre-order position), returning its row id."""
        with self.mutation_lock:
            self._kind.append(kind)
            self._size.append(size)
            self._level.append(level)
            self._frag.append(len(self.frag_base) - 1)
            self._parent.append(parent)
            self._name.append(name)
            self._value.append(value)
            self._version += 1
            return self.num_nodes - 1

    def append_nodes(
        self,
        kinds: Sequence[int],
        sizes: Sequence[int],
        levels: Sequence[int],
        parents: Sequence[int],
        names: Sequence[int],
        values: Sequence[int],
    ) -> int:
        """Bulk append; returns the row id of the first appended node."""
        with self.mutation_lock:
            base = self.num_nodes
            self._kind.extend(kinds)
            self._size.extend(sizes)
            self._level.extend(levels)
            self._frag.extend(
                np.full(len(kinds), len(self.frag_base) - 1, dtype=np.int64)
            )
            self._parent.extend(parents)
            self._name.extend(names)
            self._value.extend(values)
            self._version += 1
            return base

    def append_attr(self, owner: int, name: int, value: int) -> int:
        """Append one attribute, returning its attribute id."""
        with self.mutation_lock:
            self._attr_owner.append(owner)
            self._attr_name.append(name)
            self._attr_value.append(value)
            self._version += 1
            return self.num_attrs - 1

    def append_attrs(
        self,
        owners: Sequence[int],
        names: Sequence[int],
        values: Sequence[int],
    ) -> int:
        """Bulk append attributes; returns the first appended attribute id.

        The vectorised twin of :meth:`append_attr`, used when adopting a
        whole persisted fragment (:mod:`repro.encoding.store`) — one
        array extend instead of a Python loop per attribute.
        """
        with self.mutation_lock:
            base = self.num_attrs
            self._attr_owner.extend(owners)
            self._attr_name.extend(names)
            self._attr_value.extend(values)
            self._version += 1
            return base

    # -------------------------------------------------------------- indices
    def _refresh_indices(self) -> tuple:
        """Return the navigation-index snapshot for the current version.

        The snapshot tuple is built under ``mutation_lock`` and replaced
        atomically, so a reader always works with one consistent
        generation even while other threads construct nodes.
        """
        snap = self._indices
        if snap is not None and snap[0] == self._version:
            return snap
        with self.mutation_lock:
            snap = self._indices
            if snap is not None and snap[0] == self._version:
                return snap
            # logical columns: cold paged spans are patched in from
            # their mmap sources, so the indices are correct regardless
            # of residency — and fault-in/eviction never invalidate them
            # (they write/clear exactly the values patched here)
            parent = self.logical_column("parent")
            child_order = np.argsort(parent, kind="stable")
            child_parents = parent[child_order]
            owner = self.logical_column("attr_owner")
            attr_order = np.argsort(owner, kind="stable")
            attr_owners_sorted = owner[attr_order]
            text_rows = np.nonzero(self.logical_column("kind") == NK_TEXT)[0]
            snap = (
                self._version,
                child_order,
                child_parents,
                attr_order,
                attr_owners_sorted,
                text_rows,
            )
            self._indices = snap
            return snap

    def children_ranges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """For each node: the slice of the child index holding its children.

        Returns ``(order, lo, hi)`` — children of ``nodes[i]`` are
        ``order[lo[i]:hi[i]]``, already sorted in document order.
        """
        _, child_order, child_parents, _, _, _ = self._refresh_indices()
        lo = np.searchsorted(child_parents, nodes, side="left")
        hi = np.searchsorted(child_parents, nodes, side="right")
        return child_order, lo, hi

    def attr_ranges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`children_ranges` but over the attribute table."""
        _, _, _, attr_order, attr_owners_sorted, _ = self._refresh_indices()
        lo = np.searchsorted(attr_owners_sorted, nodes, side="left")
        hi = np.searchsorted(attr_owners_sorted, nodes, side="right")
        return attr_order, lo, hi

    def attrs_in_span(self, start: int, stop: int) -> tuple[np.ndarray, np.ndarray]:
        """All attributes owned by rows ``start .. stop-1``, batched.

        Returns ``(ids, counts)``: ``ids`` are attribute ids grouped by
        owner in ascending row order (within one owner, append == document
        order) and ``counts[i]`` is how many of them row ``start+i`` owns.
        Because pre-order subtrees are contiguous row ranges, this fetches
        the attributes of a whole subtree with two binary searches — the
        scan serializer's replacement for a per-node :meth:`attr_ranges`
        call.
        """
        _, _, _, attr_order, attr_owners_sorted, _ = self._refresh_indices()
        lo = int(np.searchsorted(attr_owners_sorted, start, side="left"))
        hi = int(np.searchsorted(attr_owners_sorted, stop, side="left"))
        ids = attr_order[lo:hi]
        counts = np.bincount(
            attr_owners_sorted[lo:hi] - start, minlength=stop - start
        )
        return ids, counts

    def text_rows(self) -> np.ndarray:
        """All text-node rows, ascending (== document order)."""
        return self._refresh_indices()[5]

    # ------------------------------------------------------------ structure
    def frag_end(self, rows: np.ndarray) -> np.ndarray:
        """Last row id (inclusive) of each row's fragment."""
        b = self.root_of(rows)
        return b + self.size[b]

    def root_of(self, rows: np.ndarray) -> np.ndarray:
        """Fragment root (document node for loaded documents).

        Found by binary search on the fragment bases rather than via the
        ``frag`` column, so it works for rows of cold paged fragments
        too (their ``frag`` entries are unwritten until fault-in).
        """
        bases = self._frag_bases()
        return bases[np.searchsorted(bases, rows, side="right") - 1]

    # --------------------------------------------------------- string value
    def string_value_id(self, node: int) -> int:
        """Pool surrogate of the node's string-value (cached per node)."""
        cached = self._strvalue_cache.get(node)
        if cached is not None:
            return cached
        self.ensure_rows((node,))
        kind = int(self.kind[node])
        if kind in (NK_TEXT, NK_COMMENT, NK_PI):
            sid = int(self.value[node])
        else:
            texts = self.text_rows()
            lo = np.searchsorted(texts, node + 1)
            hi = np.searchsorted(texts, node + int(self.size[node]), side="right")
            rows = texts[lo:hi]
            if len(rows) == 1:
                sid = int(self.value[rows[0]])
            elif len(rows) == 0:
                sid = self.pool.intern("")
            else:
                sid = self.pool.intern(
                    "".join(self.pool.value(int(v)) for v in self.value[rows])
                )
        self._strvalue_cache[node] = sid
        return sid

    def string_value_ids(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`string_value_id` over a batch of node rows."""
        out = np.empty(len(nodes), dtype=np.int64)
        sv = self.string_value_id
        for i, n in enumerate(nodes):
            out[i] = sv(int(n))
        return out

    # --------------------------------------------------------- construction
    def new_text_node(self, value_id: int) -> int:
        """Construct a parentless text node (``text { ... }``)."""
        with self.mutation_lock:
            self.begin_fragment()
            return self.append_node(NK_TEXT, 0, 0, -1, -1, value_id)

    def new_attribute(self, name_id: int, value_id: int) -> int:
        """Construct a parentless attribute (computed attribute constructor).

        The owner is ``-1`` until an element constructor copies it.
        """
        return self.append_attr(-1, name_id, value_id)

    def new_element(
        self,
        name_id: int,
        attrs: Sequence[tuple[int, int]],
        content: Sequence[tuple[str, int]],
    ) -> int:
        """Construct a new element tree (``element {..} {..}`` / direct).

        ``content`` entries are ``('copy', node_row)`` — a deep copy of an
        existing subtree (XQuery constructor copy semantics), ``('text',
        value_id)`` — a new text child, or ``('attr', attr_id)`` — an
        attribute to copy onto the new element.  Returns the new root row.
        """
        copy_rows = [payload for tag, payload in content if tag == "copy"]
        if copy_rows:
            self.ensure_rows(copy_rows)
        attr_ids = [payload for tag, payload in content if tag == "attr"]
        if attr_ids:
            self.ensure_attrs(attr_ids)
        with self.mutation_lock:
            self.begin_fragment()
            total = 1
            for tag, payload in content:
                if tag == "copy":
                    total += int(self.size[payload]) + 1
                elif tag == "text":
                    total += 1
            root = self.append_node(NK_ELEM, total - 1, 0, -1, name_id, -1)
            for name, value in attrs:
                self.append_attr(root, name, value)
            for tag, payload in content:
                if tag == "attr":
                    self.append_attr(
                        root,
                        int(self.attr_name[payload]),
                        int(self.attr_value[payload]),
                    )
                elif tag == "text":
                    self.append_node(NK_TEXT, 0, 1, root, -1, payload)
                elif tag == "copy":
                    self._copy_subtree(payload, root)
                else:  # pragma: no cover - compiler always passes valid tags
                    raise DynamicError(f"bad constructor content tag {tag!r}")
            return root

    def new_document_fragment(self) -> int:
        """Reserved for document-node constructors (not in the dialect)."""
        raise DynamicError("document {} constructors are not supported")

    def _copy_subtree(self, src: int, new_parent: int) -> int:
        """Deep-copy rows ``src..src+size`` under ``new_parent`` (caller
        holds ``mutation_lock`` for the whole enclosing fragment)."""
        count = int(self.size[src]) + 1
        dest = self.num_nodes
        rows = slice(src, src + count)
        kinds = self.kind[rows].copy()
        sizes = self.size[rows].copy()
        levels = self.level[rows] - int(self.level[src]) + int(self.level[new_parent]) + 1
        parents = self.parent[rows] - src + dest
        parents = np.asarray(parents, dtype=np.int64).copy()
        parents[0] = new_parent
        names = self.name[rows].copy()
        values = self.value[rows].copy()
        # attribute copies: owners in [src, src+count) — use the index
        order, lo, hi = self.attr_ranges(np.arange(src, src + count, dtype=np.int64))
        self.append_nodes(kinds, sizes, levels, parents, names, values)
        for i in range(count):
            for j in order[lo[i] : hi[i]]:
                self.append_attr(
                    dest + i, int(self.attr_name[j]), int(self.attr_value[j])
                )
        return dest

    # ------------------------------------------------------------ updates
    def _child_rows_of(self, row: int) -> list[int]:
        """Child rows of ``row`` in document order (helper for rebuilds)."""
        order, lo, hi = self.children_ranges(np.asarray([row], dtype=np.int64))
        return sorted(int(r) for r in order[int(lo[0]) : int(hi[0])])

    def _attr_ids_of(self, row: int) -> list[int]:
        """Attribute ids owned by ``row`` (helper for rebuilds)."""
        order, lo, hi = self.attr_ranges(np.asarray([row], dtype=np.int64))
        return [int(j) for j in order[int(lo[0]) : int(hi[0])]]

    def rebuild_with_delta(self, root: int, delta: TreeDelta) -> int:
        """Re-emit the fragment rooted at ``root`` with ``delta`` applied.

        This is the structural-update primitive behind the XQuery Update
        Facility: the encoding is append-only, so instead of shifting
        ``pre`` ranks in place the whole affected document is rebuilt as
        a **new fragment** (one pre-order pass over the old rows, exactly
        like shredding) and the caller swaps the catalog entry to the
        returned root — an epoch bump, not a re-shred of XML text.  Old
        rows stay valid for readers that started before the swap.
        """
        # the whole old document is read during the re-emit; fault it in
        # up front (updates materialise their targets by design — the
        # rebuilt fragment is dirty and unevictable until checkpointed)
        self.ensure_rows((root,))
        kinds: list[int] = []
        sizes: list[int] = []
        levels: list[int] = []
        parents: list[int] = []
        names: list[int] = []
        values: list[int] = []
        attrs: list[tuple[int, int, int]] = []  # (owner offset, name, value)

        # rows the delta touches, sorted: any subtree free of them (and
        # every copied source subtree) is emitted as one vectorised slice
        # instead of row by row — updates cost O(touched path + content),
        # not O(document), on the hot rebuild loop
        touched_set: set[int] = set(delta.delete)
        for table in (
            delta.insert_before,
            delta.insert_after,
            delta.insert_first,
            delta.insert_last,
            delta.insert_attrs,
            delta.replace,
            delta.replace_value,
            delta.replace_content,
            delta.rename,
        ):
            touched_set.update(table)
        for attr_table in (
            delta.delete_attrs,
            delta.replace_attr,
            delta.replace_attr_value,
            delta.rename_attr,
        ):
            touched_set.update(int(self.attr_owner[a]) for a in attr_table)
        touched = np.asarray(sorted(touched_set), dtype=np.int64)

        def append_row(kind, level, parent, name, value) -> int:
            offset = len(kinds)
            kinds.append(kind)
            sizes.append(0)
            levels.append(level)
            parents.append(parent)
            names.append(name)
            values.append(value)
            return offset

        def bulk_copy(row: int, level: int, parent: int) -> int:
            """Copy the whole subtree of ``row`` verbatim as array slices
            (region copy: the subtree is rows ``row .. row+size``)."""
            count = int(self.size[row]) + 1
            base_off = len(kinds)
            src = slice(row, row + count)
            kinds.extend(self.kind[src].tolist())
            sizes.extend(self.size[src].tolist())
            levels.extend((self.level[src] - int(self.level[row]) + level).tolist())
            parents.extend((self.parent[src] - row + base_off).tolist())
            parents[base_off] = parent
            names.extend(self.name[src].tolist())
            values.extend(self.value[src].tolist())
            _, _, _, attr_order, attr_owners_sorted, _ = self._refresh_indices()
            a_lo = np.searchsorted(attr_owners_sorted, row, side="left")
            a_hi = np.searchsorted(attr_owners_sorted, row + count, side="left")
            for j in attr_order[a_lo:a_hi]:
                j = int(j)
                attrs.append(
                    (
                        base_off + int(self.attr_owner[j]) - row,
                        int(self.attr_name[j]),
                        int(self.attr_value[j]),
                    )
                )
            return count

        def copy_fresh(row: int, level: int, parent: int) -> int:
            """Deep-copy ``row`` verbatim (inserted/replacement content is
            outside the delta's domain); returns rows appended."""
            if int(self.kind[row]) == NK_DOC:
                # a document-node source contributes its children
                return sum(
                    bulk_copy(c, level, parent) for c in self._child_rows_of(row)
                )
            return bulk_copy(row, level, parent)

        def emit_entry(entry, level: int, parent: int) -> int:
            tag, payload = entry
            if tag == "text":
                append_row(NK_TEXT, level, parent, -1, payload)
                return 1
            return copy_fresh(payload, level, parent)

        def emit_inserts(table: dict, row: int, level: int, parent: int) -> int:
            return sum(emit_entry(e, level, parent) for e in table.get(row, ()))

        def emit(row: int, level: int, parent: int) -> int:
            """Emit ``row`` with the delta applied; returns rows appended."""
            if row in delta.delete:
                return 0
            if row in delta.replace:
                return sum(
                    emit_entry(e, level, parent) for e in delta.replace[row]
                )
            # untouched subtree: one region copy instead of a row walk
            nxt = int(np.searchsorted(touched, row))
            if nxt == len(touched) or int(touched[nxt]) > row + int(self.size[row]):
                return bulk_copy(row, level, parent)
            kind = int(self.kind[row])
            name = delta.rename.get(row, int(self.name[row]))
            value = delta.replace_value.get(row, int(self.value[row]))
            offset = append_row(kind, level, parent, name, value)
            if kind == NK_ELEM:
                for aid in self._attr_ids_of(row):
                    if aid in delta.delete_attrs:
                        continue
                    if aid in delta.replace_attr:
                        for aname, avalue in delta.replace_attr[aid]:
                            attrs.append((offset, aname, avalue))
                        continue
                    aname = delta.rename_attr.get(aid, int(self.attr_name[aid]))
                    avalue = delta.replace_attr_value.get(
                        aid, int(self.attr_value[aid])
                    )
                    attrs.append((offset, aname, avalue))
                for aname, avalue in delta.insert_attrs.get(row, ()):
                    attrs.append((offset, aname, avalue))
            total = 1
            if kind in (NK_ELEM, NK_DOC):
                if row in delta.replace_content:
                    sid = delta.replace_content[row]
                    if self.pool.value(sid) != "":
                        total += emit_entry(("text", sid), level + 1, offset)
                else:
                    total += emit_inserts(delta.insert_first, row, level + 1, offset)
                    for child in self._child_rows_of(row):
                        total += emit_inserts(
                            delta.insert_before, child, level + 1, offset
                        )
                        total += emit(child, level + 1, offset)
                        total += emit_inserts(
                            delta.insert_after, child, level + 1, offset
                        )
                    total += emit_inserts(delta.insert_last, row, level + 1, offset)
            sizes[offset] = total - 1
            return total

        with self.mutation_lock:
            if emit(root, 0, -1) == 0:  # pragma: no cover - guarded upstream
                raise DynamicError("an update may not delete the document root")
            self.begin_fragment()
            first_row = self.num_nodes
            rebased = [p + first_row if p >= 0 else -1 for p in parents]
            base = self.append_nodes(kinds, sizes, levels, rebased, names, values)
            for owner_offset, name_id, value_id in attrs:
                self.append_attr(base + owner_offset, name_id, value_id)
            return base

    # ------------------------------------------------------------ node info
    def name_of(self, node: int) -> str:
        """Tag name of an element / PI target."""
        nid = int(self.name[node])
        return self.pool.value(nid) if nid >= 0 else ""
