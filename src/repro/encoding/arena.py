"""The node arena: every document and constructed fragment, one encoding.

The arena is the heart of the tree encoding.  It keeps the XPath
Accelerator tables for *all* trees the engine knows about — loaded
documents as well as fragments constructed at query runtime — as one set
of parallel, growing arrays:

``kind | size | level | frag | parent | name | value``

Rows are appended in pre-order per fragment and fragments are contiguous,
so the **global row id doubles as the pre rank**: ``pre(v) = v -
frag_base(frag(v))`` and, more importantly, integer order on row ids *is*
document order (fragments ordered by creation, as XQuery allows).  The
paper's region predicates then become plain integer range conditions on
row ids, e.g. descendants of ``v`` are exactly rows ``v+1 .. v+size(v)``.

Attributes live in a parallel ``owner | name | value`` table with their own
id space (attribute items carry ``K_ATTR`` kind).  Names and textual values
are surrogates into a shared :class:`~repro.relational.items.StringPool` —
the paper's unique-value property BATs ("surrogate sharing ... avoids
expensive string comparisons and reduces space consumption").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import DynamicError
from repro.relational.items import StringPool

NK_DOC = 0
NK_ELEM = 1
NK_TEXT = 2
NK_COMMENT = 3
NK_PI = 4

NODE_KIND_NAMES = {
    NK_DOC: "document",
    NK_ELEM: "element",
    NK_TEXT: "text",
    NK_COMMENT: "comment",
    NK_PI: "processing-instruction",
}


class _Buf:
    """A growable int64 array with amortised O(1) appends."""

    __slots__ = ("_data", "_len")

    def __init__(self, capacity: int = 1024):
        self._data = np.zeros(capacity, dtype=np.int64)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def view(self) -> np.ndarray:
        return self._data[: self._len]

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        if need > len(self._data):
            cap = max(need, 2 * len(self._data))
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._len] = self._data[: self._len]
            self._data = grown

    def append(self, value: int) -> int:
        self._reserve(1)
        self._data[self._len] = value
        self._len += 1
        return self._len - 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._reserve(len(values))
        self._data[self._len : self._len + len(values)] = values
        self._len += len(values)

    def __getitem__(self, idx):
        return self.view()[idx]

    def __setitem__(self, idx, value):
        self.view()[idx] = value


class NodeArena:
    """Container for every tree the engine knows (documents + fragments)."""

    def __init__(self, pool: StringPool | None = None):
        self.pool = pool if pool is not None else StringPool()
        self._kind = _Buf()
        self._size = _Buf()
        self._level = _Buf()
        self._frag = _Buf()
        self._parent = _Buf()
        self._name = _Buf()
        self._value = _Buf()
        self._attr_owner = _Buf(256)
        self._attr_name = _Buf(256)
        self._attr_value = _Buf(256)
        self.frag_base: list[int] = []
        self._version = 0
        self._cache_version = -1
        self._child_order: np.ndarray | None = None
        self._child_parents: np.ndarray | None = None
        self._attr_order: np.ndarray | None = None
        self._attr_owners_sorted: np.ndarray | None = None
        self._text_rows: np.ndarray | None = None
        self._strvalue_cache: dict[int, int] = {}

    # ------------------------------------------------------------- columns
    @property
    def kind(self) -> np.ndarray:
        return self._kind.view()

    @property
    def size(self) -> np.ndarray:
        return self._size.view()

    @property
    def level(self) -> np.ndarray:
        return self._level.view()

    @property
    def frag(self) -> np.ndarray:
        return self._frag.view()

    @property
    def parent(self) -> np.ndarray:
        return self._parent.view()

    @property
    def name(self) -> np.ndarray:
        return self._name.view()

    @property
    def value(self) -> np.ndarray:
        return self._value.view()

    @property
    def attr_owner(self) -> np.ndarray:
        return self._attr_owner.view()

    @property
    def attr_name(self) -> np.ndarray:
        return self._attr_name.view()

    @property
    def attr_value(self) -> np.ndarray:
        return self._attr_value.view()

    @property
    def num_nodes(self) -> int:
        return len(self._kind)

    @property
    def num_attrs(self) -> int:
        return len(self._attr_owner)

    # ------------------------------------------------------------- building
    def begin_fragment(self) -> int:
        """Start a new fragment; returns its id.  The next appended node is
        the fragment root and must carry the total subtree ``size``."""
        self.frag_base.append(self.num_nodes)
        self._version += 1
        return len(self.frag_base) - 1

    def append_node(
        self, kind: int, size: int, level: int, parent: int, name: int, value: int
    ) -> int:
        """Append one node row (pre-order position), returning its row id."""
        self._kind.append(kind)
        self._size.append(size)
        self._level.append(level)
        self._frag.append(len(self.frag_base) - 1)
        self._parent.append(parent)
        self._name.append(name)
        self._value.append(value)
        self._version += 1
        return self.num_nodes - 1

    def append_nodes(
        self,
        kinds: Sequence[int],
        sizes: Sequence[int],
        levels: Sequence[int],
        parents: Sequence[int],
        names: Sequence[int],
        values: Sequence[int],
    ) -> int:
        """Bulk append; returns the row id of the first appended node."""
        base = self.num_nodes
        self._kind.extend(kinds)
        self._size.extend(sizes)
        self._level.extend(levels)
        self._frag.extend(np.full(len(kinds), len(self.frag_base) - 1, dtype=np.int64))
        self._parent.extend(parents)
        self._name.extend(names)
        self._value.extend(values)
        self._version += 1
        return base

    def append_attr(self, owner: int, name: int, value: int) -> int:
        """Append one attribute, returning its attribute id."""
        self._attr_owner.append(owner)
        self._attr_name.append(name)
        self._attr_value.append(value)
        self._version += 1
        return self.num_attrs - 1

    # -------------------------------------------------------------- indices
    def _refresh_indices(self) -> None:
        if self._cache_version == self._version:
            return
        parent = self.parent
        self._child_order = np.argsort(parent, kind="stable")
        self._child_parents = parent[self._child_order]
        owner = self.attr_owner
        self._attr_order = np.argsort(owner, kind="stable")
        self._attr_owners_sorted = owner[self._attr_order]
        self._text_rows = np.nonzero(self.kind == NK_TEXT)[0]
        self._cache_version = self._version

    def children_ranges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """For each node: the slice of the child index holding its children.

        Returns ``(order, lo, hi)`` — children of ``nodes[i]`` are
        ``order[lo[i]:hi[i]]``, already sorted in document order.
        """
        self._refresh_indices()
        lo = np.searchsorted(self._child_parents, nodes, side="left")
        hi = np.searchsorted(self._child_parents, nodes, side="right")
        return self._child_order, lo, hi

    def attr_ranges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`children_ranges` but over the attribute table."""
        self._refresh_indices()
        lo = np.searchsorted(self._attr_owners_sorted, nodes, side="left")
        hi = np.searchsorted(self._attr_owners_sorted, nodes, side="right")
        return self._attr_order, lo, hi

    def text_rows(self) -> np.ndarray:
        """All text-node rows, ascending (== document order)."""
        self._refresh_indices()
        return self._text_rows

    # ------------------------------------------------------------ structure
    def frag_end(self, rows: np.ndarray) -> np.ndarray:
        """Last row id (inclusive) of each row's fragment."""
        bases = np.asarray(self.frag_base, dtype=np.int64)
        b = bases[self.frag[rows]]
        return b + self.size[b]

    def root_of(self, rows: np.ndarray) -> np.ndarray:
        """Fragment root (document node for loaded documents)."""
        bases = np.asarray(self.frag_base, dtype=np.int64)
        return bases[self.frag[rows]]

    # --------------------------------------------------------- string value
    def string_value_id(self, node: int) -> int:
        """Pool surrogate of the node's string-value (cached per node)."""
        cached = self._strvalue_cache.get(node)
        if cached is not None:
            return cached
        kind = int(self.kind[node])
        if kind in (NK_TEXT, NK_COMMENT, NK_PI):
            sid = int(self.value[node])
        else:
            texts = self.text_rows()
            lo = np.searchsorted(texts, node + 1)
            hi = np.searchsorted(texts, node + int(self.size[node]), side="right")
            rows = texts[lo:hi]
            if len(rows) == 1:
                sid = int(self.value[rows[0]])
            elif len(rows) == 0:
                sid = self.pool.intern("")
            else:
                sid = self.pool.intern(
                    "".join(self.pool.value(int(v)) for v in self.value[rows])
                )
        self._strvalue_cache[node] = sid
        return sid

    def string_value_ids(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`string_value_id` over a batch of node rows."""
        out = np.empty(len(nodes), dtype=np.int64)
        sv = self.string_value_id
        for i, n in enumerate(nodes):
            out[i] = sv(int(n))
        return out

    # --------------------------------------------------------- construction
    def new_text_node(self, value_id: int) -> int:
        """Construct a parentless text node (``text { ... }``)."""
        self.begin_fragment()
        return self.append_node(NK_TEXT, 0, 0, -1, -1, value_id)

    def new_attribute(self, name_id: int, value_id: int) -> int:
        """Construct a parentless attribute (computed attribute constructor).

        The owner is ``-1`` until an element constructor copies it.
        """
        return self.append_attr(-1, name_id, value_id)

    def new_element(
        self,
        name_id: int,
        attrs: Sequence[tuple[int, int]],
        content: Sequence[tuple[str, int]],
    ) -> int:
        """Construct a new element tree (``element {..} {..}`` / direct).

        ``content`` entries are ``('copy', node_row)`` — a deep copy of an
        existing subtree (XQuery constructor copy semantics), ``('text',
        value_id)`` — a new text child, or ``('attr', attr_id)`` — an
        attribute to copy onto the new element.  Returns the new root row.
        """
        self.begin_fragment()
        total = 1
        for tag, payload in content:
            if tag == "copy":
                total += int(self.size[payload]) + 1
            elif tag == "text":
                total += 1
        root = self.append_node(NK_ELEM, total - 1, 0, -1, name_id, -1)
        for name, value in attrs:
            self.append_attr(root, name, value)
        for tag, payload in content:
            if tag == "attr":
                self.append_attr(
                    root, int(self.attr_name[payload]), int(self.attr_value[payload])
                )
            elif tag == "text":
                self.append_node(NK_TEXT, 0, 1, root, -1, payload)
            elif tag == "copy":
                self._copy_subtree(payload, root)
            else:  # pragma: no cover - compiler always passes valid tags
                raise DynamicError(f"bad constructor content tag {tag!r}")
        return root

    def new_document_fragment(self) -> int:
        """Reserved for document-node constructors (not in the dialect)."""
        raise DynamicError("document {} constructors are not supported")

    def _copy_subtree(self, src: int, new_parent: int) -> int:
        """Deep-copy rows ``src..src+size`` under ``new_parent``."""
        count = int(self.size[src]) + 1
        dest = self.num_nodes
        rows = slice(src, src + count)
        kinds = self.kind[rows].copy()
        sizes = self.size[rows].copy()
        levels = self.level[rows] - int(self.level[src]) + int(self.level[new_parent]) + 1
        parents = self.parent[rows] - src + dest
        parents = np.asarray(parents, dtype=np.int64).copy()
        parents[0] = new_parent
        names = self.name[rows].copy()
        values = self.value[rows].copy()
        # attribute copies: owners in [src, src+count) — use the index
        order, lo, hi = self.attr_ranges(np.arange(src, src + count, dtype=np.int64))
        self.append_nodes(kinds, sizes, levels, parents, names, values)
        for i in range(count):
            for j in order[lo[i] : hi[i]]:
                self.append_attr(
                    dest + i, int(self.attr_name[j]), int(self.attr_value[j])
                )
        return dest

    # ------------------------------------------------------------ node info
    def name_of(self, node: int) -> str:
        """Tag name of an element / PI target."""
        nid = int(self.name[node])
        return self.pool.value(nid) if nid >= 0 else ""
