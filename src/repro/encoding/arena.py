"""The node arena: every document and constructed fragment, one encoding.

The arena is the heart of the tree encoding.  It keeps the XPath
Accelerator tables for *all* trees the engine knows about — loaded
documents as well as fragments constructed at query runtime — as one set
of parallel, growing arrays:

``kind | size | level | frag | parent | name | value``

Rows are appended in pre-order per fragment and fragments are contiguous,
so the **global row id doubles as the pre rank**: ``pre(v) = v -
frag_base(frag(v))`` and, more importantly, integer order on row ids *is*
document order (fragments ordered by creation, as XQuery allows).  The
paper's region predicates then become plain integer range conditions on
row ids, e.g. descendants of ``v`` are exactly rows ``v+1 .. v+size(v)``.

Attributes live in a parallel ``owner | name | value`` table with their own
id space (attribute items carry ``K_ATTR`` kind).  Names and textual values
are surrogates into a shared :class:`~repro.relational.items.StringPool` —
the paper's unique-value property BATs ("surrogate sharing ... avoids
expensive string comparisons and reduces space consumption").
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

from repro.errors import DynamicError
from repro.relational.items import StringPool

NK_DOC = 0
NK_ELEM = 1
NK_TEXT = 2
NK_COMMENT = 3
NK_PI = 4

NODE_KIND_NAMES = {
    NK_DOC: "document",
    NK_ELEM: "element",
    NK_TEXT: "text",
    NK_COMMENT: "comment",
    NK_PI: "processing-instruction",
}


class _Buf:
    """A growable int64 array with amortised O(1) appends."""

    __slots__ = ("_data", "_len")

    def __init__(self, capacity: int = 1024):
        self._data = np.zeros(capacity, dtype=np.int64)
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def view(self) -> np.ndarray:
        return self._data[: self._len]

    def _reserve(self, extra: int) -> None:
        need = self._len + extra
        if need > len(self._data):
            cap = max(need, 2 * len(self._data))
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._len] = self._data[: self._len]
            self._data = grown

    def append(self, value: int) -> int:
        self._reserve(1)
        self._data[self._len] = value
        self._len += 1
        return self._len - 1

    def extend(self, values) -> None:
        values = np.asarray(values, dtype=np.int64)
        self._reserve(len(values))
        self._data[self._len : self._len + len(values)] = values
        self._len += len(values)

    def __getitem__(self, idx):
        return self.view()[idx]

    def __setitem__(self, idx, value):
        self.view()[idx] = value


class NodeArena:
    """Container for every tree the engine knows (documents + fragments).

    Concurrency contract: rows are append-only and never change once
    appended, so readers may scan without locking — a reader simply does
    not see fragments appended after it started.  All *mutation* goes
    through ``mutation_lock`` (a reentrant mutex): interleaved appends
    from two threads would violate the fragment-contiguity invariant the
    whole encoding rests on ("the global row id doubles as the pre
    rank"), so constructors hold the lock for their entire fragment.
    The lazy navigation indices are rebuilt under the same lock and
    handed to readers as an immutable snapshot.
    """

    def __init__(self, pool: StringPool | None = None):
        self.pool = pool if pool is not None else StringPool()
        self._kind = _Buf()
        self._size = _Buf()
        self._level = _Buf()
        self._frag = _Buf()
        self._parent = _Buf()
        self._name = _Buf()
        self._value = _Buf()
        self._attr_owner = _Buf(256)
        self._attr_name = _Buf(256)
        self._attr_value = _Buf(256)
        self.frag_base: list[int] = []
        #: serialises every arena mutation (see the class docstring);
        #: reentrant so composite constructors can call the low-level
        #: appenders they are built from
        self.mutation_lock = threading.RLock()
        self._version = 0
        #: (version, child_order, child_parents, attr_order,
        #: attr_owners_sorted, text_rows) — replaced atomically as a unit
        #: so concurrent readers never mix index generations
        self._indices: tuple | None = None
        self._strvalue_cache: dict[int, int] = {}

    # ------------------------------------------------------------- columns
    @property
    def kind(self) -> np.ndarray:
        """Node kind per row (``NK_*`` constants)."""
        return self._kind.view()

    @property
    def size(self) -> np.ndarray:
        """Subtree size per row (descendant count)."""
        return self._size.view()

    @property
    def level(self) -> np.ndarray:
        """Depth per row (fragment root = 0)."""
        return self._level.view()

    @property
    def frag(self) -> np.ndarray:
        """Fragment id per row."""
        return self._frag.view()

    @property
    def parent(self) -> np.ndarray:
        """Parent row id per row (``-1`` at fragment roots)."""
        return self._parent.view()

    @property
    def name(self) -> np.ndarray:
        """Tag/target name surrogate per row (``-1`` when nameless)."""
        return self._name.view()

    @property
    def value(self) -> np.ndarray:
        """Text value surrogate per row (``-1`` when valueless)."""
        return self._value.view()

    @property
    def attr_owner(self) -> np.ndarray:
        """Owner row id per attribute."""
        return self._attr_owner.view()

    @property
    def attr_name(self) -> np.ndarray:
        """Name surrogate per attribute."""
        return self._attr_name.view()

    @property
    def attr_value(self) -> np.ndarray:
        """Value surrogate per attribute."""
        return self._attr_value.view()

    @property
    def num_nodes(self) -> int:
        """Total node rows across every fragment."""
        return len(self._kind)

    @property
    def num_attrs(self) -> int:
        """Total attribute rows across every fragment."""
        return len(self._attr_owner)

    # ------------------------------------------------------------- building
    def begin_fragment(self) -> int:
        """Start a new fragment; returns its id.  The next appended node is
        the fragment root and must carry the total subtree ``size``.

        Callers appending a multi-row fragment must hold
        ``mutation_lock`` across the whole begin/append sequence so the
        fragment's rows stay contiguous (the composite constructors
        below do; :func:`~repro.encoding.shred.shred_text` runs under the
        Database's exclusive catalog lock).
        """
        with self.mutation_lock:
            self.frag_base.append(self.num_nodes)
            self._version += 1
            return len(self.frag_base) - 1

    def append_node(
        self, kind: int, size: int, level: int, parent: int, name: int, value: int
    ) -> int:
        """Append one node row (pre-order position), returning its row id."""
        with self.mutation_lock:
            self._kind.append(kind)
            self._size.append(size)
            self._level.append(level)
            self._frag.append(len(self.frag_base) - 1)
            self._parent.append(parent)
            self._name.append(name)
            self._value.append(value)
            self._version += 1
            return self.num_nodes - 1

    def append_nodes(
        self,
        kinds: Sequence[int],
        sizes: Sequence[int],
        levels: Sequence[int],
        parents: Sequence[int],
        names: Sequence[int],
        values: Sequence[int],
    ) -> int:
        """Bulk append; returns the row id of the first appended node."""
        with self.mutation_lock:
            base = self.num_nodes
            self._kind.extend(kinds)
            self._size.extend(sizes)
            self._level.extend(levels)
            self._frag.extend(
                np.full(len(kinds), len(self.frag_base) - 1, dtype=np.int64)
            )
            self._parent.extend(parents)
            self._name.extend(names)
            self._value.extend(values)
            self._version += 1
            return base

    def append_attr(self, owner: int, name: int, value: int) -> int:
        """Append one attribute, returning its attribute id."""
        with self.mutation_lock:
            self._attr_owner.append(owner)
            self._attr_name.append(name)
            self._attr_value.append(value)
            self._version += 1
            return self.num_attrs - 1

    # -------------------------------------------------------------- indices
    def _refresh_indices(self) -> tuple:
        """Return the navigation-index snapshot for the current version.

        The snapshot tuple is built under ``mutation_lock`` and replaced
        atomically, so a reader always works with one consistent
        generation even while other threads construct nodes.
        """
        snap = self._indices
        if snap is not None and snap[0] == self._version:
            return snap
        with self.mutation_lock:
            snap = self._indices
            if snap is not None and snap[0] == self._version:
                return snap
            parent = self.parent
            child_order = np.argsort(parent, kind="stable")
            child_parents = parent[child_order]
            owner = self.attr_owner
            attr_order = np.argsort(owner, kind="stable")
            attr_owners_sorted = owner[attr_order]
            text_rows = np.nonzero(self.kind == NK_TEXT)[0]
            snap = (
                self._version,
                child_order,
                child_parents,
                attr_order,
                attr_owners_sorted,
                text_rows,
            )
            self._indices = snap
            return snap

    def children_ranges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """For each node: the slice of the child index holding its children.

        Returns ``(order, lo, hi)`` — children of ``nodes[i]`` are
        ``order[lo[i]:hi[i]]``, already sorted in document order.
        """
        _, child_order, child_parents, _, _, _ = self._refresh_indices()
        lo = np.searchsorted(child_parents, nodes, side="left")
        hi = np.searchsorted(child_parents, nodes, side="right")
        return child_order, lo, hi

    def attr_ranges(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Like :meth:`children_ranges` but over the attribute table."""
        _, _, _, attr_order, attr_owners_sorted, _ = self._refresh_indices()
        lo = np.searchsorted(attr_owners_sorted, nodes, side="left")
        hi = np.searchsorted(attr_owners_sorted, nodes, side="right")
        return attr_order, lo, hi

    def text_rows(self) -> np.ndarray:
        """All text-node rows, ascending (== document order)."""
        return self._refresh_indices()[5]

    # ------------------------------------------------------------ structure
    def frag_end(self, rows: np.ndarray) -> np.ndarray:
        """Last row id (inclusive) of each row's fragment."""
        bases = np.asarray(self.frag_base, dtype=np.int64)
        b = bases[self.frag[rows]]
        return b + self.size[b]

    def root_of(self, rows: np.ndarray) -> np.ndarray:
        """Fragment root (document node for loaded documents)."""
        bases = np.asarray(self.frag_base, dtype=np.int64)
        return bases[self.frag[rows]]

    # --------------------------------------------------------- string value
    def string_value_id(self, node: int) -> int:
        """Pool surrogate of the node's string-value (cached per node)."""
        cached = self._strvalue_cache.get(node)
        if cached is not None:
            return cached
        kind = int(self.kind[node])
        if kind in (NK_TEXT, NK_COMMENT, NK_PI):
            sid = int(self.value[node])
        else:
            texts = self.text_rows()
            lo = np.searchsorted(texts, node + 1)
            hi = np.searchsorted(texts, node + int(self.size[node]), side="right")
            rows = texts[lo:hi]
            if len(rows) == 1:
                sid = int(self.value[rows[0]])
            elif len(rows) == 0:
                sid = self.pool.intern("")
            else:
                sid = self.pool.intern(
                    "".join(self.pool.value(int(v)) for v in self.value[rows])
                )
        self._strvalue_cache[node] = sid
        return sid

    def string_value_ids(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`string_value_id` over a batch of node rows."""
        out = np.empty(len(nodes), dtype=np.int64)
        sv = self.string_value_id
        for i, n in enumerate(nodes):
            out[i] = sv(int(n))
        return out

    # --------------------------------------------------------- construction
    def new_text_node(self, value_id: int) -> int:
        """Construct a parentless text node (``text { ... }``)."""
        with self.mutation_lock:
            self.begin_fragment()
            return self.append_node(NK_TEXT, 0, 0, -1, -1, value_id)

    def new_attribute(self, name_id: int, value_id: int) -> int:
        """Construct a parentless attribute (computed attribute constructor).

        The owner is ``-1`` until an element constructor copies it.
        """
        return self.append_attr(-1, name_id, value_id)

    def new_element(
        self,
        name_id: int,
        attrs: Sequence[tuple[int, int]],
        content: Sequence[tuple[str, int]],
    ) -> int:
        """Construct a new element tree (``element {..} {..}`` / direct).

        ``content`` entries are ``('copy', node_row)`` — a deep copy of an
        existing subtree (XQuery constructor copy semantics), ``('text',
        value_id)`` — a new text child, or ``('attr', attr_id)`` — an
        attribute to copy onto the new element.  Returns the new root row.
        """
        with self.mutation_lock:
            self.begin_fragment()
            total = 1
            for tag, payload in content:
                if tag == "copy":
                    total += int(self.size[payload]) + 1
                elif tag == "text":
                    total += 1
            root = self.append_node(NK_ELEM, total - 1, 0, -1, name_id, -1)
            for name, value in attrs:
                self.append_attr(root, name, value)
            for tag, payload in content:
                if tag == "attr":
                    self.append_attr(
                        root,
                        int(self.attr_name[payload]),
                        int(self.attr_value[payload]),
                    )
                elif tag == "text":
                    self.append_node(NK_TEXT, 0, 1, root, -1, payload)
                elif tag == "copy":
                    self._copy_subtree(payload, root)
                else:  # pragma: no cover - compiler always passes valid tags
                    raise DynamicError(f"bad constructor content tag {tag!r}")
            return root

    def new_document_fragment(self) -> int:
        """Reserved for document-node constructors (not in the dialect)."""
        raise DynamicError("document {} constructors are not supported")

    def _copy_subtree(self, src: int, new_parent: int) -> int:
        """Deep-copy rows ``src..src+size`` under ``new_parent`` (caller
        holds ``mutation_lock`` for the whole enclosing fragment)."""
        count = int(self.size[src]) + 1
        dest = self.num_nodes
        rows = slice(src, src + count)
        kinds = self.kind[rows].copy()
        sizes = self.size[rows].copy()
        levels = self.level[rows] - int(self.level[src]) + int(self.level[new_parent]) + 1
        parents = self.parent[rows] - src + dest
        parents = np.asarray(parents, dtype=np.int64).copy()
        parents[0] = new_parent
        names = self.name[rows].copy()
        values = self.value[rows].copy()
        # attribute copies: owners in [src, src+count) — use the index
        order, lo, hi = self.attr_ranges(np.arange(src, src + count, dtype=np.int64))
        self.append_nodes(kinds, sizes, levels, parents, names, values)
        for i in range(count):
            for j in order[lo[i] : hi[i]]:
                self.append_attr(
                    dest + i, int(self.attr_name[j]), int(self.attr_value[j])
                )
        return dest

    # ------------------------------------------------------------ node info
    def name_of(self, node: int) -> str:
        """Tag name of an element / PI target."""
        nid = int(self.name[node])
        return self.pool.value(nid) if nid >= 0 else ""
