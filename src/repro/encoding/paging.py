"""Lazy fragment paging: mmap-cold columns under an eviction budget.

The paper's core bet is that the pre/size encoding lives in flat columns
the OS can page (Section 3.1); this module makes the arena honour it for
catalogs larger than RAM.  A :class:`FragmentPager` tracks *paged*
fragments — document fragments adopted from a persistent store whose
column data still lives in the store's memory-mapped files
(:class:`~repro.encoding.store.PagedFragment`).  For each one the arena
has merely **reserved** its row/attribute span (zero pages, nothing
written); the pager materialises the span on first touch (a *fault*) and
releases it again (an *eviction*) when the resident bytes of all tracked
fragments exceed ``budget_bytes``:

* **fault-in** copies the memmapped columns into the reserved arena
  span exactly once: parents/owners rebased by the span base, local
  string surrogates translated through the fragment's ``gsids`` table.
  The translation is deterministic, so a re-fault after eviction writes
  byte-identical values — row and attribute ids stay stable for the
  fragment's whole life.
* **eviction** picks the least-recently-touched unpinned fragment and
  returns its span to the OS with ``madvise(MADV_DONTNEED)`` over the
  page-aligned interior of each column slice (best effort; on platforms
  without ``madvise`` the accounting still works, the RSS just does not
  shrink).  Only *clean* fragments are tracked: anything rebuilt by a
  :class:`~repro.encoding.arena.TreeDelta` is untracked (pinned in
  memory) until a checkpoint re-registers its freshly written backing.
* **pinning** protects readers from eviction: every touch inside a
  :meth:`scope` (one per executing query / streaming serialization,
  see ``Database.read_locked``) pins the fragment until the scope
  exits, so a result can stream long after the catalog lock dropped.
  While scopes are live the budget may transiently overshoot; the
  scope exit trims back down.

Locking: the pager deliberately shares the arena's ``mutation_lock``
(one reentrant lock) instead of introducing a second one — faults and
evictions write/release arena spans, index rebuilds read them, and a
single lock means there is no ordering to get wrong between them.
"""

from __future__ import annotations

import ctypes
import mmap as _mmap_mod
import sys
from contextlib import contextmanager

import numpy as np

#: resident arena bytes per node row (7 int64 columns in the flat bufs)
NODE_RESIDENT_BYTES = 7 * 8
#: resident arena bytes per attribute row (3 int64 columns)
ATTR_RESIDENT_BYTES = 3 * 8

_PAGE = _mmap_mod.PAGESIZE
_MADV_DONTNEED = 4
_libc = None
if sys.platform.startswith("linux"):  # pragma: no branch - CI is linux
    try:
        _libc = ctypes.CDLL(None, use_errno=True)
        _libc.madvise.argtypes = (
            ctypes.c_void_p,
            ctypes.c_size_t,
            ctypes.c_int,
        )
    except OSError:  # pragma: no cover - exotic libc
        _libc = None


def release_span(arr: np.ndarray, lo: int, hi: int) -> int:
    """``madvise(MADV_DONTNEED)`` the page-aligned interior of a slice.

    Returns the number of bytes advised (0 when the platform cannot, or
    the aligned interior is empty).  Partial edge pages are left alone —
    they may be shared with a neighbouring fragment's rows.
    """
    if _libc is None or hi <= lo:
        return 0
    item = arr.itemsize
    addr = arr.ctypes.data + lo * item
    end = arr.ctypes.data + hi * item
    start = -(-addr // _PAGE) * _PAGE
    stop = (end // _PAGE) * _PAGE
    if stop <= start:
        return 0
    if _libc.madvise(ctypes.c_void_p(start), ctypes.c_size_t(stop - start),
                     _MADV_DONTNEED) != 0:  # pragma: no cover - kernel refusal
        return 0
    return stop - start


def fill_adopted_span(arena, base: int, abase: int, source, fid: int) -> None:
    """Materialise ``source`` into the arena span reserved at ``base``.

    One pass per column, casting straight from the memmap into the flat
    buffers (no intermediate int64 copies): parents and attribute owners
    are rebased by ``base``, name/value surrogates translated through
    ``source.gsids``.  Deterministic — a re-fault after eviction writes
    the identical bytes.  Caller holds ``arena.mutation_lock``.
    """
    n, m = source.nodes, source.attrs
    cols = source.cols
    gsids = source.gsids
    arena._kind.view()[base : base + n] = cols["kind"]
    arena._size.view()[base : base + n] = cols["size"]
    arena._level.view()[base : base + n] = cols["level"]
    arena._frag.view()[base : base + n] = fid

    parent = cols["parent"].astype(np.int64)
    mask = parent >= 0
    parent[mask] += base
    parent[~mask] = -1
    arena._parent.view()[base : base + n] = parent

    for cname, buf in (("name", arena._name), ("value", arena._value)):
        local = cols[cname]
        out = buf.view()[base : base + n]
        out[:] = -1
        mask = local >= 0
        out[mask] = gsids[local[mask]]

    if m:
        acols = source.acols
        owner = arena._attr_owner.view()[abase : abase + m]
        owner[:] = acols["attr_owner"]
        owner += base
        for cname, buf in (
            ("attr_name", arena._attr_name),
            ("attr_value", arena._attr_value),
        ):
            local = acols[cname]
            out = buf.view()[abase : abase + m]
            out[:] = -1
            mask = local >= 0
            out[mask] = gsids[local[mask]]


class PageScope:
    """One reader's pin set: fragments touched while the scope is open
    stay resident until it closes (see ``PageScopeRegistry``)."""

    __slots__ = ("pinned",)

    def __init__(self):
        self.pinned: set[int] = set()


class _FragmentRecord:
    """Pager-side state of one tracked (paged) fragment."""

    __slots__ = (
        "fid", "base", "abase", "source", "bytes",
        "hot", "pins", "last_touch", "touches",
    )

    def __init__(self, fid: int, base: int, abase: int, source):
        self.fid = fid
        self.base = base
        self.abase = abase
        self.source = source
        self.bytes = (
            source.nodes * NODE_RESIDENT_BYTES
            + source.attrs * ATTR_RESIDENT_BYTES
        )
        self.hot = False
        self.pins = 0
        self.last_touch = 0
        self.touches = 0


class FragmentPager:
    """Demand paging + LRU eviction over an arena's tracked fragments.

    One per :class:`~repro.encoding.arena.NodeArena` (created by
    ``NodeArena.enable_paging``).  All state is guarded by the arena's
    ``mutation_lock`` (see the module docstring for why it is shared).
    """

    def __init__(self, arena, budget_bytes: int | None, scopes=None):
        from repro.api.concurrency import PageScopeRegistry

        self.arena = arena
        self.budget_bytes = budget_bytes
        self._lock = arena.mutation_lock
        self._records: dict[int, _FragmentRecord] = {}
        self._scopes = scopes if scopes is not None else PageScopeRegistry()
        self.resident_bytes = 0
        self.faults = 0
        self.evictions = 0
        self.touches = 0
        self._clock = 0
        #: set (lock-free) when a flat buffer reallocated: the copy made
        #: cold spans resident again, so they need re-releasing
        self._needs_release = False

    # ------------------------------------------------------------- tracking
    def register(
        self, fid: int, base: int, abase: int, source, hot: bool = False
    ) -> _FragmentRecord:
        """Track one paged fragment (``hot`` = its span is already
        materialised in the arena, e.g. a freshly persisted document)."""
        with self._lock:
            rec = _FragmentRecord(int(fid), int(base), int(abase), source)
            self._records[rec.fid] = rec
            if hot:
                rec.hot = True
                self.resident_bytes += rec.bytes
                self._touch_locked(rec)
                self._evict_locked(protect={rec.fid})
            return rec

    def record_for_base(self, base: int) -> _FragmentRecord | None:
        """The tracked record whose fragment starts at row ``base``."""
        with self._lock:
            fid = self._fid_of_row(int(base))
            rec = self._records.get(fid)
            return rec if rec is not None and rec.base == int(base) else None

    def retire_rows(self, row: int) -> None:
        """Stop tracking the fragment containing ``row``, materialising
        it first.

        Used when a fragment's backing files are about to be garbage
        collected (document replaced / unloaded / updated): the span
        must hold valid data forever after, since whole-arena scanners
        (``export_arena``, the navigation indices) still read it.
        """
        with self._lock:
            rec = self._records.get(self._fid_of_row(int(row)))
            if rec is None:
                return
            if not rec.hot:
                self._fault_locked(rec)
            self.resident_bytes -= rec.bytes
            del self._records[rec.fid]

    # -------------------------------------------------------------- ensure
    def ensure_rows(self, rows) -> None:
        """Fault in (and touch/pin) every tracked fragment owning a row
        in ``rows``; then trim back to budget."""
        if not self._records:
            return
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        with self._lock:
            bases = self.arena._frag_bases()
            fids = np.unique(np.searchsorted(bases, rows, side="right") - 1)
            self._ensure_fids_locked(fids)

    def ensure_attrs(self, attr_ids) -> None:
        """Like :meth:`ensure_rows` for attribute ids."""
        if not self._records:
            return
        attr_ids = np.asarray(attr_ids, dtype=np.int64)
        if attr_ids.size == 0:
            return
        with self._lock:
            fids = []
            for rec in self._records.values():
                if rec.source.attrs and np.any(
                    (attr_ids >= rec.abase)
                    & (attr_ids < rec.abase + rec.source.attrs)
                ):
                    fids.append(rec.fid)
            if fids:
                self._ensure_fids_locked(np.asarray(fids, dtype=np.int64))

    def ensure_all(self) -> None:
        """Fault in every tracked fragment (whole-arena scans)."""
        if not self._records:
            return
        with self._lock:
            self._ensure_fids_locked(
                np.asarray(list(self._records), dtype=np.int64)
            )

    def _ensure_fids_locked(self, fids: np.ndarray) -> None:
        touched: set[int] = set()
        for fid in fids.tolist():
            rec = self._records.get(int(fid))
            if rec is None:
                continue
            self._touch_locked(rec)
            touched.add(rec.fid)
            if not rec.hot:
                self._fault_locked(rec)
        if self._needs_release:
            self._rerelease_cold_locked()
        if touched:
            self._evict_locked(protect=touched)

    def _touch_locked(self, rec: _FragmentRecord) -> None:
        self._clock += 1
        rec.last_touch = self._clock
        rec.touches += 1
        self.touches += 1
        scope = self._scopes.current()
        if scope is not None and rec.fid not in scope.pinned:
            scope.pinned.add(rec.fid)
            rec.pins += 1

    # --------------------------------------------------------- fault/evict
    def _fault_locked(self, rec: _FragmentRecord) -> None:
        fill_adopted_span(self.arena, rec.base, rec.abase, rec.source, rec.fid)
        rec.hot = True
        self.resident_bytes += rec.bytes
        self.faults += 1

    def _release_locked(self, rec: _FragmentRecord) -> None:
        rec.hot = False
        self.resident_bytes -= rec.bytes
        self.evictions += 1
        self._advise_cold_locked(rec)

    def _advise_cold_locked(self, rec: _FragmentRecord) -> None:
        arena = self.arena
        n, m = rec.source.nodes, rec.source.attrs
        for buf in (arena._kind, arena._size, arena._level, arena._frag,
                    arena._parent, arena._name, arena._value):
            release_span(buf._data, rec.base, rec.base + n)
        if m:
            for buf in (arena._attr_owner, arena._attr_name,
                        arena._attr_value):
                release_span(buf._data, rec.abase, rec.abase + m)

    def _rerelease_cold_locked(self) -> None:
        """After a flat-buffer reallocation, re-advise every cold span
        (the growth copy made their garbage pages resident again)."""
        self._needs_release = False
        for rec in self._records.values():
            if not rec.hot:
                self._advise_cold_locked(rec)

    def _evict_locked(self, protect=frozenset()) -> None:
        budget = self.budget_bytes
        if budget is None:
            return
        while self.resident_bytes > budget:
            victim = None
            for rec in self._records.values():
                if rec.hot and rec.pins == 0 and rec.fid not in protect:
                    if victim is None or rec.last_touch < victim.last_touch:
                        victim = rec
            if victim is None:
                break
            self._release_locked(victim)

    def evict_to_budget(self) -> None:
        """Trim resident tracked fragments back under the budget."""
        with self._lock:
            self._evict_locked()

    def evict_all(self) -> int:
        """Evict every unpinned hot fragment (stress-test hook).

        Returns how many fragments were released.
        """
        with self._lock:
            victims = [
                r for r in self._records.values() if r.hot and r.pins == 0
            ]
            for rec in victims:
                self._release_locked(rec)
            return len(victims)

    # -------------------------------------------------------------- scopes
    @contextmanager
    def scope(self):
        """Pin-scope for one reader: fragments touched inside stay
        resident until exit, when pins drop and the budget is enforced."""
        scope = self._scopes.push()
        try:
            yield scope
        finally:
            self._scopes.pop(scope)
            with self._lock:
                for fid in scope.pinned:
                    rec = self._records.get(fid)
                    if rec is not None and rec.pins > 0:
                        rec.pins -= 1
                scope.pinned.clear()
                self._evict_locked()

    # ------------------------------------------------------------- columns
    def patched_column(self, name: str) -> np.ndarray:
        """A *logical* copy of one arena column: cold tracked spans are
        filled from their memmapped sources (rebased/translated exactly
        as a fault would), so navigation indices and statistics can be
        built without materialising anything."""
        with self._lock:
            arena = self.arena
            view = getattr(arena, name)
            cold = [r for r in self._records.values() if not r.hot]
            if not cold:
                return view
            out = view.copy()
            for rec in cold:
                src = rec.source
                n, base = src.nodes, rec.base
                if name in ("kind", "size", "level"):
                    out[base : base + n] = src.cols[name]
                elif name == "frag":
                    out[base : base + n] = rec.fid
                elif name == "parent":
                    seg = src.cols["parent"].astype(np.int64)
                    mask = seg >= 0
                    seg[mask] += base
                    seg[~mask] = -1
                    out[base : base + n] = seg
                elif name in ("name", "value"):
                    local = src.cols[name]
                    seg = np.full(n, -1, dtype=np.int64)
                    mask = local >= 0
                    seg[mask] = src.gsids[local[mask]]
                    out[base : base + n] = seg
                elif name == "attr_owner":
                    m = src.attrs
                    if m:
                        out[rec.abase : rec.abase + m] = (
                            src.acols["attr_owner"].astype(np.int64) + base
                        )
                else:  # pragma: no cover - callers pass known columns
                    raise KeyError(name)
            return out

    # --------------------------------------------------------------- misc
    def _fid_of_row(self, row: int) -> int:
        bases = self.arena._frag_bases()
        return int(np.searchsorted(bases, row, side="right") - 1)

    def note_buffer_growth(self) -> None:
        """Called (lock-free) when a flat buffer reallocates; cold spans
        are re-released on the next ensure/evict."""
        self._needs_release = True

    def status(self) -> dict:
        """Counters for the ``/stats`` ``"paging"`` section."""
        with self._lock:
            records = list(self._records.values())
            hot = sum(1 for r in records if r.hot)
            return {
                "budget_bytes": self.budget_bytes,
                "resident_bytes": self.resident_bytes,
                "mapped_bytes": sum(r.source.disk_bytes for r in records),
                "tracked_bytes": sum(r.bytes for r in records),
                "fragments": len(records),
                "hot_fragments": hot,
                "cold_fragments": len(records) - hot,
                "pinned_fragments": sum(1 for r in records if r.pins > 0),
                "faults": self.faults,
                "evictions": self.evictions,
                "touches": self.touches,
            }
