"""Storage accounting for the encoding (paper Section 3.1).

The paper reports disk space of the relational encoding relative to the
serialised XML document: 147 % at 11 MB falling to 125 % at 110 MB — and
below 100 % for large instances as duplicate text lets surrogate sharing
win.  We model the MonetDB/XQuery storage layout:

* node table: ``pre`` is a virtual oid (free), ``size`` 4 B, ``level`` 1 B,
  ``kind`` 1 B, ``prop`` surrogate 4 B per node;
* attribute table: ``owner`` 4 B, ``name`` 4 B, ``value`` 4 B per attribute;
* property pools: each distinct string stored once (UTF-8 bytes) plus an
  8 B dictionary entry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.encoding.arena import NodeArena

NODE_ROW_BYTES = 4 + 1 + 1 + 4  # size, level, kind, prop surrogate
ATTR_ROW_BYTES = 4 + 4 + 4
POOL_ENTRY_OVERHEAD = 8

# --- the persistent store's *actual* on-disk widths (encoding/store.py:
# one file per column; kind u1, level i4, every other column i8) ---
STORE_NODE_ROW_BYTES = 1 + 8 + 4 + 8 + 8 + 8  # kind,size,level,parent,name,value
STORE_ATTR_ROW_BYTES = 8 + 8 + 8  # owner, name, value
STORE_OFFSET_BYTES = 8  # one pool-offset entry


def persisted_fragment_bytes(
    nodes: int, attrs: int, strings: int, blob_bytes: int
) -> int:
    """Exact on-disk size of one fragment directory's column files.

    This is the real footprint of the mmap layout, as opposed to the
    *modelled* MonetDB widths above — the store is wider per row (i8
    columns for mmap alignment and a materialised ``parent``) but pays
    the string pool only for the fragment's distinct strings.
    """
    return (
        nodes * STORE_NODE_ROW_BYTES
        + attrs * STORE_ATTR_ROW_BYTES
        + blob_bytes
        + (strings + 1) * STORE_OFFSET_BYTES
    )


@dataclass(frozen=True)
class StorageReport:
    """Byte-level breakdown of one encoded document set."""

    xml_bytes: int
    node_rows: int
    attr_rows: int
    node_table_bytes: int
    attr_table_bytes: int
    pool_bytes: int
    pool_entries: int

    @property
    def encoded_bytes(self) -> int:
        """Total bytes of the encoding: node + attribute tables + pool."""
        return self.node_table_bytes + self.attr_table_bytes + self.pool_bytes

    @property
    def overhead_pct(self) -> float:
        """Encoded size as a percentage of the XML text size (paper metric)."""
        if self.xml_bytes == 0:
            return 0.0
        return 100.0 * self.encoded_bytes / self.xml_bytes


def measure_storage(arena: NodeArena, xml_bytes: int) -> StorageReport:
    """Measure the modelled storage footprint of everything in ``arena``
    against the size of the original XML text."""
    pool = arena.pool
    return StorageReport(
        xml_bytes=xml_bytes,
        node_rows=arena.num_nodes,
        attr_rows=arena.num_attrs,
        node_table_bytes=arena.num_nodes * NODE_ROW_BYTES,
        attr_table_bytes=arena.num_attrs * ATTR_ROW_BYTES,
        pool_bytes=pool.bytes_used() + POOL_ENTRY_OVERHEAD * len(pool),
        pool_entries=len(pool),
    )
