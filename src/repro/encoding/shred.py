"""Shredding: XML text (or parsed trees) → the XPath Accelerator encoding.

One pre-order pass assigns each node its ``(pre, size, level)`` triple —
``pre`` implicitly as the arena row id — interning every tag name,
attribute name and text value in the shared pool (so identical property
values share one surrogate, the paper's Section 3.1 storage optimisation).

The hot path is **streaming**: :func:`shred_text` consumes the parser's
start/text/end events (:func:`repro.xml.parser.parse_events`) and appends
column entries directly, so no :class:`~repro.xml.parser.XMLElement` tree
ever exists between the XML text and the arena — document load builds the
columns in the same single pass that parses the markup, roughly halving
peak ingest memory on the ``PUT /documents`` hot-replace path.
:func:`shred_tree` keeps the tree-walking entry point for already-parsed
trees (constructors, tests).
"""

from __future__ import annotations

from repro.encoding.arena import (
    NK_COMMENT,
    NK_DOC,
    NK_ELEM,
    NK_PI,
    NK_TEXT,
    NodeArena,
)
from repro.xml.parser import (
    XMLComment,
    XMLElement,
    XMLEventHandler,
    XMLPi,
    XMLText,
    parse_events,
)


class _ShredHandler(XMLEventHandler):
    """Parser events → pre-order column entries (fragment-relative).

    The document node sits at offset 0; ``_open`` tracks the offsets of
    the document and every open element, so ``parent`` is always
    ``_open[-1]`` and ``level`` is the stack depth.  ``size`` is patched
    when an element closes: by then exactly the rows of its subtree have
    been appended after it.
    """

    __slots__ = (
        "_intern", "kinds", "sizes", "levels", "parents", "names",
        "values", "attrs", "_open",
    )

    def __init__(self, pool):
        self._intern = pool.intern
        self.kinds: list[int] = [NK_DOC]
        self.sizes: list[int] = [0]
        self.levels: list[int] = [0]
        self.parents: list[int] = [-1]
        self.names: list[int] = [-1]
        self.values: list[int] = [-1]
        self.attrs: list[tuple[int, int, int]] = []  # (owner offset, name, value)
        self._open: list[int] = [0]  # document node at offset 0

    def start_element(self, name, attributes) -> None:
        offset = len(self.kinds)
        self.kinds.append(NK_ELEM)
        self.sizes.append(0)  # patched in end_element
        self.levels.append(len(self._open))
        self.parents.append(self._open[-1])
        self.names.append(self._intern(name))
        self.values.append(-1)
        for aname, avalue in attributes:
            self.attrs.append((offset, self._intern(aname), self._intern(avalue)))
        self._open.append(offset)

    def end_element(self, name) -> None:
        offset = self._open.pop()
        self.sizes[offset] = len(self.kinds) - offset - 1

    def text(self, data) -> None:
        self._leaf(NK_TEXT, -1, self._intern(data))

    def comment(self, data) -> None:
        self._leaf(NK_COMMENT, -1, self._intern(data))

    def pi(self, target, data) -> None:
        self._leaf(NK_PI, self._intern(target), self._intern(data))

    def _leaf(self, kind: int, name_id: int, value_id: int) -> None:
        self.kinds.append(kind)
        self.sizes.append(0)
        self.levels.append(len(self._open))
        self.parents.append(self._open[-1])
        self.names.append(name_id)
        self.values.append(value_id)


def shred_text(arena: NodeArena, xml_text: str) -> int:
    """Parse and shred an XML document in one streaming pass.

    Returns the document-node row (what ``fn:doc`` yields).  No
    intermediate tree is built: parser events append column entries
    directly, and the columns land in the arena with one
    :meth:`~repro.encoding.arena.NodeArena.append_nodes` call.  The
    arena is only touched (beyond string interning) after the parse
    succeeds, so malformed XML leaves no half-made fragment behind.
    """
    handler = _ShredHandler(arena.pool)
    parse_events(xml_text, handler)
    handler.sizes[0] = len(handler.kinds) - 1  # the document's subtree
    return _emit(arena, handler)


def shred_tree(arena: NodeArena, root: XMLElement) -> int:
    """Shred an already-parsed tree into a fresh fragment.

    Returns the document node's arena row.  Used for trees constructed
    in memory; XML text should go through :func:`shred_text`, which
    skips the tree entirely.
    """
    handler = _ShredHandler(arena.pool)
    _replay_tree(root, handler)
    handler.sizes[0] = len(handler.kinds) - 1
    return _emit(arena, handler)


def _replay_tree(root: XMLElement, handler: _ShredHandler) -> None:
    """Fire the event sequence an equivalent parse would have produced."""
    handler.start_element(root.name, root.attributes)
    for child in root.children:
        if isinstance(child, XMLText):
            handler.text(child.text)
        elif isinstance(child, XMLComment):
            handler.comment(child.text)
        elif isinstance(child, XMLPi):
            handler.pi(child.target, child.data)
        else:
            _replay_tree(child, handler)
    handler.end_element(root.name)


def _emit(arena: NodeArena, handler: _ShredHandler) -> int:
    """Bulk-append the collected columns as one fresh, contiguous
    fragment; returns the document row."""
    with arena.mutation_lock:
        arena.begin_fragment()
        # parents were fragment-relative offsets; rebase to global row ids
        first_row = arena.num_nodes
        rebased = [p + first_row if p >= 0 else -1 for p in handler.parents]
        base = arena.append_nodes(
            handler.kinds,
            handler.sizes,
            handler.levels,
            rebased,
            handler.names,
            handler.values,
        )
        for owner_offset, name_id, value_id in handler.attrs:
            arena.append_attr(base + owner_offset, name_id, value_id)
        return base
