"""Shredding: parsed XML trees → the XPath Accelerator encoding.

One pre-order pass assigns each node its ``(pre, size, level)`` triple —
``pre`` implicitly as the arena row id — interning every tag name,
attribute name and text value in the shared pool (so identical property
values share one surrogate, the paper's Section 3.1 storage optimisation).
"""

from __future__ import annotations

from repro.encoding.arena import (
    NK_COMMENT,
    NK_DOC,
    NK_ELEM,
    NK_PI,
    NK_TEXT,
    NodeArena,
)
from repro.xml.parser import XMLComment, XMLElement, XMLPi, XMLText, parse_document


def shred_text(arena: NodeArena, xml_text: str) -> int:
    """Parse and shred an XML document; returns the document-node row."""
    return shred_tree(arena, parse_document(xml_text))


def shred_tree(arena: NodeArena, root: XMLElement) -> int:
    """Shred a parsed tree into a fresh fragment with a document node.

    Returns the document node's arena row (what ``fn:doc`` yields).
    """
    arena.begin_fragment()
    intern = arena.pool.intern

    kinds: list[int] = []
    sizes: list[int] = []
    levels: list[int] = []
    parents: list[int] = []
    names: list[int] = []
    values: list[int] = []
    attrs: list[tuple[int, int, int]] = []  # (owner offset, name, value)

    def visit(node, level: int, parent_offset: int) -> int:
        """Append ``node``; returns its subtree size (descendant count)."""
        offset = len(kinds)
        if isinstance(node, XMLText):
            kinds.append(NK_TEXT)
            sizes.append(0)
            levels.append(level)
            parents.append(parent_offset)
            names.append(-1)
            values.append(intern(node.text))
            return 0
        if isinstance(node, XMLComment):
            kinds.append(NK_COMMENT)
            sizes.append(0)
            levels.append(level)
            parents.append(parent_offset)
            names.append(-1)
            values.append(intern(node.text))
            return 0
        if isinstance(node, XMLPi):
            kinds.append(NK_PI)
            sizes.append(0)
            levels.append(level)
            parents.append(parent_offset)
            names.append(intern(node.target))
            values.append(intern(node.data))
            return 0
        # element
        kinds.append(NK_ELEM)
        sizes.append(0)  # patched below
        levels.append(level)
        parents.append(parent_offset)
        names.append(intern(node.name))
        values.append(-1)
        for aname, avalue in node.attributes:
            attrs.append((offset, intern(aname), intern(avalue)))
        size = 0
        for child in node.children:
            size += 1 + visit(child, level + 1, offset)
        sizes[offset] = size
        return size

    # document node at offset 0
    kinds.append(NK_DOC)
    sizes.append(0)
    levels.append(0)
    parents.append(-1)
    names.append(-1)
    values.append(-1)
    sizes[0] = 1 + visit(root, 1, 0)

    # parents were fragment-relative offsets; rebase to global row ids
    first_row = arena.num_nodes
    rebased = [p + first_row if p >= 0 else -1 for p in parents]
    base = arena.append_nodes(kinds, sizes, levels, rebased, names, values)
    for owner_offset, name_id, value_id in attrs:
        arena.append_attr(base + owner_offset, name_id, value_id)
    return base
