"""XPath axes and node tests.

With the XPath Accelerator encoding, every axis is a *region* in
(pre, size, level) space (paper, Section 2: "XPath axes").  The region
predicates live here, in one place, and serve double duty: they are the
reference oracle that the staircase-join kernels are property-tested
against, and the implementation of the deliberately tree-unaware
``naive_step`` baseline used in the staircase ablation (E5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Axis(enum.Enum):
    """The XPath axes supported by Pathfinder (full axis feature)."""

    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    SELF = "self"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING = "following"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING = "preceding"
    PRECEDING_SIBLING = "preceding-sibling"
    ATTRIBUTE = "attribute"


#: axes whose result is naturally reverse document order (XQuery still
#: requires the delivered result in document order, which our kernels do).
REVERSE_AXES = frozenset(
    {Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF, Axis.PRECEDING,
     Axis.PRECEDING_SIBLING}
)


@dataclass(frozen=True)
class NodeTest:
    """A node test: kind test plus optional name restriction.

    ``kind`` is one of ``element``, ``attribute``, ``text``, ``comment``,
    ``processing-instruction``, ``document-node`` or ``node``; ``name`` is
    the required name or ``None`` for a wildcard.
    """

    kind: str = "node"
    name: str | None = None

    def __str__(self) -> str:
        if self.kind == "element":
            return self.name if self.name is not None else "*"
        if self.kind == "attribute":
            return "@" + (self.name if self.name is not None else "*")
        inner = self.name or ""
        return f"{self.kind}({inner})"


ANY_NODE = NodeTest("node")
ANY_ELEMENT = NodeTest("element")


def element(name: str | None = None) -> NodeTest:
    """Node test for elements, optionally name-restricted."""
    return NodeTest("element", name)


def attribute(name: str | None = None) -> NodeTest:
    """Node test for attributes, optionally name-restricted."""
    return NodeTest("attribute", name)


def text() -> NodeTest:
    """Node test for text nodes."""
    return NodeTest("text")


def axis_region_holds(arena, v: int, w: int, axis: Axis) -> bool:
    """Reference oracle: does node ``w`` lie on ``axis`` of context ``v``?

    Implemented directly from the region characterisation of the XPath
    Accelerator (e.g. *w is a descendant of v* ⇔ ``v < w ≤ v+size(v)``).
    Arena row ids are pre-order ranks rebased per fragment, so containment
    arithmetic on row ids is exactly the paper's pre/post plane test.
    Intentionally scalar and slow — used by tests and the naive baseline.
    """
    arena.ensure_rows((v, w))
    size = arena.size
    if axis is Axis.SELF:
        return w == v
    if axis is Axis.CHILD:
        return arena.parent[w] == v
    if axis is Axis.DESCENDANT:
        return v < w <= v + size[v]
    if axis is Axis.DESCENDANT_OR_SELF:
        return v <= w <= v + size[v]
    if axis is Axis.PARENT:
        return arena.parent[v] == w
    if axis is Axis.ANCESTOR:
        return w < v <= w + size[w]
    if axis is Axis.ANCESTOR_OR_SELF:
        return w <= v <= w + size[w]
    if axis is Axis.FOLLOWING:
        return arena.frag[w] == arena.frag[v] and w > v + size[v]
    if axis is Axis.PRECEDING:
        return arena.frag[w] == arena.frag[v] and w < v and w + size[w] < v
    if axis is Axis.FOLLOWING_SIBLING:
        return arena.parent[w] == arena.parent[v] >= 0 and w > v
    if axis is Axis.PRECEDING_SIBLING:
        return arena.parent[w] == arena.parent[v] >= 0 and w < v
    raise ValueError(f"axis {axis} has no node-region characterisation")
