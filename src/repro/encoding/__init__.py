"""XPath Accelerator document encoding (pre|size|level + property pools).

This subpackage turns parsed XML trees into the relational encoding of
Grust's XPath Accelerator as used by Pathfinder: a node table with
``pre | size | level | kind | parent | frag | name | value`` columns (the
paper's ``pre|size|level`` plus the ``prop`` surrogate columns), a parallel
attribute table, and shared string pools in which identical property
values share one surrogate.
"""

from repro.encoding.arena import NodeArena, NK_DOC, NK_ELEM, NK_TEXT, NK_COMMENT, NK_PI
from repro.encoding.axes import Axis, NodeTest

__all__ = [
    "NodeArena",
    "Axis",
    "NodeTest",
    "NK_DOC",
    "NK_ELEM",
    "NK_TEXT",
    "NK_COMMENT",
    "NK_PI",
]
