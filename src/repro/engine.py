"""The legacy monolithic engine API, now a thin shim.

.. deprecated::
    :class:`PathfinderEngine` is kept for backward compatibility.  New
    code should use the layered API instead::

        import repro

        session = repro.connect()                       # Database + Session
        session.database.load_document("doc.xml", xml)
        prepared = session.prepare(query)               # compile once
        result = prepared.execute({"x": 42})            # bind + run many times

    The shim delegates everything to a private
    :class:`~repro.api.database.Database` and one
    :class:`~repro.api.session.Session` over it, so ``execute()`` calls
    transparently benefit from the compile-once plan cache.

Usage (legacy)::

    from repro import PathfinderEngine

    engine = PathfinderEngine()
    engine.load_document("auction.xml", xml_text, default=True)
    result = engine.execute('for $p in /site/people/person return $p/name')
    print(result.serialize())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.database import Database
from repro.relational import algebra as alg
from repro.relational.dot import to_ascii, to_dot
from repro.relational.optimizer import OptimizerStats
from repro.relational.table import Table


@dataclass
class QueryResult:
    """The outcome of one query execution (legacy shape: eagerly carries
    the engine; see :class:`repro.api.prepared.QueryResult` for the lazy,
    iterable result the layered API returns)."""

    table: Table
    engine: "PathfinderEngine"
    plan: alg.Op
    compile_seconds: float
    execute_seconds: float
    trace: dict | None = None

    def serialize(self) -> str:
        """Result sequence as XML/text (the paper's post-processor)."""
        from repro.compiler.serialize import serialize_result

        return serialize_result(self.table, self.engine.arena)

    def values(self) -> list:
        """Result sequence as Python values (nodes become NodeHandles)."""
        from repro.compiler.serialize import result_values

        return result_values(self.table, self.engine.arena)


@dataclass
class ExplainReport:
    """Every stage of the compilation of one query."""

    query: str
    module: object
    core: object
    plan: alg.Op
    optimized: alg.Op
    stats: OptimizerStats
    #: planning strategy the optimized plan was compiled under
    optimizer_mode: str = "cost"

    @property
    def pass_table(self) -> str:
        """Per-pass optimizer statistics as an aligned text table."""
        return self.stats.pass_table()

    @property
    def plan_ascii(self) -> str:
        return to_ascii(self.optimized)

    @property
    def plan_dot(self) -> str:
        return to_dot(self.optimized, title="optimized plan")

    @property
    def unoptimized_ascii(self) -> str:
        return to_ascii(self.plan)

    @property
    def unoptimized_dot(self) -> str:
        return to_dot(self.plan, title="loop-lifted plan")

    @property
    def mil(self) -> str:
        """The optimized plan as a MIL program (the paper's demo artifact:
        'translated into ... a MIL program' shipped to MonetDB)."""
        from repro.compiler.milgen import to_mil

        return to_mil(self.optimized, self.query)


class PathfinderEngine:
    """Deprecation shim: one Database + one Session behind the old API."""

    def __init__(
        self,
        use_staircase: bool = True,
        use_optimizer: bool = True,
        use_join_recognition: bool = True,
        database: Database | None = None,
        disabled_passes: frozenset[str] | tuple = frozenset(),
        optimizer_mode: str = "cost",
    ):
        self._db = database if database is not None else Database()
        self._session = self._db.connect(
            use_staircase=use_staircase,
            use_optimizer=use_optimizer,
            use_join_recognition=use_join_recognition,
            disabled_passes=disabled_passes,
            optimizer_mode=optimizer_mode,
        )

    # ---------------------------------------------------------- delegation
    @property
    def database(self) -> Database:
        """The underlying Database (layered API escape hatch)."""
        return self._db

    @property
    def session(self):
        """The underlying Session (layered API escape hatch)."""
        return self._session

    @property
    def arena(self):
        return self._db.arena

    @property
    def documents(self) -> dict[str, int]:
        return self._db.documents

    @property
    def default_document(self) -> str | None:
        return self._db.default_document

    @property
    def use_staircase(self) -> bool:
        return self._session.use_staircase

    @use_staircase.setter
    def use_staircase(self, value: bool) -> None:
        self._session.use_staircase = value

    @property
    def use_optimizer(self) -> bool:
        return self._session.use_optimizer

    @use_optimizer.setter
    def use_optimizer(self, value: bool) -> None:
        self._session.use_optimizer = value

    # ------------------------------------------------------------ documents
    def load_document(self, uri: str, xml_text: str, default: bool = False) -> int:
        """Parse, shred and register a document; returns its node count."""
        return self._db.load_document(uri, xml_text, default=default)

    def storage_report(self):
        """Byte-level storage accounting (Section 3.1 experiment)."""
        return self._db.storage_report()

    # -------------------------------------------------------------- queries
    def compile(self, query: str) -> tuple[alg.Op, OptimizerStats]:
        """Compile (and optionally optimize) a query to an algebra plan.

        Always a fresh front-end run, never a cache lookup — the legacy
        semantics that compile-time benchmarks rely on.  ``execute()`` is
        the plan-cache-backed path.
        """
        entry = self._db.compile_query(
            query,
            self._session.use_optimizer,
            self._session.use_join_recognition,
            self._session.disabled_passes,
            self._session.optimizer_mode,
        )
        return entry.plan, entry.stats

    def execute(self, query: str, trace: bool = False) -> QueryResult:
        """Compile (plan-cache backed) and run a query.

        ``compile_seconds`` keeps its legacy per-call meaning — the time
        *this* call spent obtaining the plan, which is near zero on a
        plan-cache hit.
        """
        import time

        t0 = time.perf_counter()
        prepared = self._session.prepare(query)
        t1 = time.perf_counter()
        result = prepared.execute(trace=trace)
        return QueryResult(
            table=result.table,
            engine=self,
            plan=result.plan,
            compile_seconds=t1 - t0,
            execute_seconds=result.execute_seconds,
            trace=result.trace,
        )

    def execute_update(self, query: str) -> dict:
        """Apply an updating query (XQuery Update Facility subset); see
        :meth:`repro.api.session.Session.execute_update`."""
        return self._session.execute_update(query)

    def explain(self, query: str) -> ExplainReport:
        """Expose every compilation stage for a query (demo hooks)."""
        return self._session.explain(query)
