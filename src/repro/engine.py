"""The Pathfinder engine: the public, end-to-end API.

Usage::

    from repro import PathfinderEngine

    engine = PathfinderEngine()
    engine.load_document("auction.xml", xml_text, default=True)
    result = engine.execute('for $p in /site/people/person return $p/name')
    print(result.serialize())

The engine owns the node arena (all loaded documents plus any nodes the
queries construct), compiles queries through the loop-lifting compiler,
optionally optimizes the plan, evaluates it on the column-store evaluator
and serialises the result.  ``explain()`` exposes every compilation stage
(the demonstrator's "look under the hood" hooks, paper Section 4).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compiler.loop_lifting import Compiler
from repro.compiler.serialize import result_values, serialize_result
from repro.encoding.arena import NodeArena
from repro.encoding.shred import shred_text
from repro.encoding.storage import StorageReport, measure_storage
from repro.errors import PathfinderError
from repro.relational import algebra as alg
from repro.relational.dot import to_ascii, to_dot
from repro.relational.evaluate import EvalContext, evaluate
from repro.relational.optimizer import OptimizerStats, optimize
from repro.relational.table import Table
from repro.xquery.core import desugar_module
from repro.xquery.parser import parse_query


@dataclass
class QueryResult:
    """The outcome of one query execution."""

    table: Table
    engine: "PathfinderEngine"
    plan: alg.Op
    compile_seconds: float
    execute_seconds: float
    trace: dict | None = None

    def serialize(self) -> str:
        """Result sequence as XML/text (the paper's post-processor)."""
        return serialize_result(self.table, self.engine.arena)

    def values(self) -> list:
        """Result sequence as Python values (nodes become NodeHandles)."""
        return result_values(self.table, self.engine.arena)


@dataclass
class ExplainReport:
    """Every stage of the compilation of one query."""

    query: str
    module: object
    core: object
    plan: alg.Op
    optimized: alg.Op
    stats: OptimizerStats

    @property
    def plan_ascii(self) -> str:
        return to_ascii(self.optimized)

    @property
    def plan_dot(self) -> str:
        return to_dot(self.optimized, title="optimized plan")

    @property
    def unoptimized_ascii(self) -> str:
        return to_ascii(self.plan)

    @property
    def unoptimized_dot(self) -> str:
        return to_dot(self.plan, title="loop-lifted plan")

    @property
    def mil(self) -> str:
        """The optimized plan as a MIL program (the paper's demo artifact:
        'translated into ... a MIL program' shipped to MonetDB)."""
        from repro.compiler.milgen import to_mil

        return to_mil(self.optimized, self.query)


class PathfinderEngine:
    """A Pathfinder instance: documents + compiler + relational back-end."""

    def __init__(self, use_staircase: bool = True, use_optimizer: bool = True):
        self.arena = NodeArena()
        self.documents: dict[str, int] = {}
        self.default_document: str | None = None
        self.use_staircase = use_staircase
        self.use_optimizer = use_optimizer
        self._xml_bytes = 0

    # ------------------------------------------------------------ documents
    def load_document(self, uri: str, xml_text: str, default: bool = False) -> int:
        """Parse, shred and register a document; returns its node count."""
        if uri in self.documents:
            raise PathfinderError(f"document {uri!r} already loaded")
        before = self.arena.num_nodes
        root = shred_text(self.arena, xml_text)
        self.documents[uri] = root
        self._xml_bytes += len(xml_text.encode("utf-8"))
        if default or self.default_document is None:
            self.default_document = uri
        return self.arena.num_nodes - before

    def storage_report(self) -> StorageReport:
        """Byte-level storage accounting (Section 3.1 experiment)."""
        return measure_storage(self.arena, self._xml_bytes)

    # -------------------------------------------------------------- queries
    def compile(self, query: str) -> tuple[alg.Op, OptimizerStats]:
        """Compile (and optionally optimize) a query to an algebra plan."""
        module = desugar_module(parse_query(query))
        compiler = Compiler(self.documents, self.default_document)
        plan = compiler.compile_module(module)
        stats = OptimizerStats()
        if self.use_optimizer:
            plan = optimize(plan, stats)
        else:
            stats.ops_before = stats.ops_after = alg.op_count(plan)
        return plan, stats

    def execute(self, query: str, trace: bool = False) -> QueryResult:
        """Compile and run a query, returning a :class:`QueryResult`."""
        t0 = time.perf_counter()
        plan, _ = self.compile(query)
        t1 = time.perf_counter()
        trace_map: dict | None = {} if trace else None
        ctx = EvalContext(
            self.arena,
            documents=self.documents,
            trace=trace_map,
            use_staircase=self.use_staircase,
        )
        table = evaluate(plan, ctx)
        t2 = time.perf_counter()
        return QueryResult(
            table=table,
            engine=self,
            plan=plan,
            compile_seconds=t1 - t0,
            execute_seconds=t2 - t1,
            trace=trace_map,
        )

    def explain(self, query: str) -> ExplainReport:
        """Expose every compilation stage for a query (demo hooks)."""
        module = parse_query(query)
        core = desugar_module(module)
        compiler = Compiler(self.documents, self.default_document)
        plan = compiler.compile_module(core)
        stats = OptimizerStats()
        optimized = optimize(plan, stats) if self.use_optimizer else plan
        return ExplainReport(
            query=query,
            module=module,
            core=core,
            plan=plan,
            optimized=optimized,
            stats=stats,
        )
