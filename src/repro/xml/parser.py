"""A from-scratch, non-validating XML parser.

Produces a lightweight in-memory tree of :class:`XMLElement`,
:class:`XMLText`, :class:`XMLComment` and :class:`XMLPi` nodes.  Supports
everything XMark documents (and reasonable hand-written test documents)
contain: the XML declaration, elements with attributes, character data,
CDATA sections, comments, processing instructions, builtin entities and
numeric character references.  Not supported (raises): DTD internal
subsets beyond skipping the declaration, and general entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import XMLSyntaxError
from repro.xml.escape import resolve_entities


@dataclass
class XMLText:
    """A run of character data."""

    text: str


@dataclass
class XMLComment:
    """An XML comment (without the delimiters)."""

    text: str


@dataclass
class XMLPi:
    """A processing instruction: ``<?target data?>``."""

    target: str
    data: str


@dataclass
class XMLElement:
    """An element: name, attribute list (document order) and children."""

    name: str
    attributes: list[tuple[str, str]] = field(default_factory=list)
    children: list["XMLNode"] = field(default_factory=list)


XMLNode = Union[XMLElement, XMLText, XMLComment, XMLPi]

_NAME_START = set("_:") | set(chr(c) for c in range(ord("a"), ord("z") + 1)) | set(
    chr(c) for c in range(ord("A"), ord("Z") + 1)
)
_NAME_CHARS = _NAME_START | set("-.") | set("0123456789")


class _Cursor:
    """Input cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos", "_nl_scan")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self._nl_scan = 0

    def line_col(self) -> tuple[int, int]:
        upto = self.text[: self.pos]
        line = upto.count("\n") + 1
        col = self.pos - (upto.rfind("\n") + 1) + 1
        return line, col

    def error(self, message: str) -> XMLSyntaxError:
        line, col = self.line_col()
        return XMLSyntaxError(message, line, col)

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def startswith(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_ws(self) -> None:
        text, n = self.text, len(self.text)
        p = self.pos
        while p < n and text[p] in " \t\r\n":
            p += 1
        self.pos = p

    def read_until(self, delim: str, what: str) -> str:
        end = self.text.find(delim, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        out = self.text[self.pos : end]
        self.pos = end + len(delim)
        return out

    def read_name(self) -> str:
        text = self.text
        start = self.pos
        if start >= len(text) or text[start] not in _NAME_START:
            raise self.error("expected a name")
        p = start + 1
        n = len(text)
        while p < n and text[p] in _NAME_CHARS:
            p += 1
        self.pos = p
        return text[start:p]

    def expect(self, s: str) -> None:
        if not self.startswith(s):
            raise self.error(f"expected {s!r}")
        self.advance(len(s))


def parse_document(text: str) -> XMLElement:
    """Parse a complete XML document, returning the root element.

    Leading/trailing misc (XML declaration, comments, PIs, whitespace) is
    accepted and discarded; exactly one root element is required.
    """
    cur = _Cursor(text)
    _skip_prolog(cur)
    if cur.eof() or cur.peek() != "<":
        raise cur.error("expected the root element")
    root = _parse_element(cur)
    # trailing misc
    while not cur.eof():
        cur.skip_ws()
        if cur.eof():
            break
        if cur.startswith("<!--"):
            cur.advance(4)
            cur.read_until("-->", "comment")
        elif cur.startswith("<?"):
            cur.advance(2)
            cur.read_until("?>", "processing instruction")
        else:
            raise cur.error("content after the root element")
    return root


def _skip_prolog(cur: _Cursor) -> None:
    while True:
        cur.skip_ws()
        if cur.startswith("<?xml"):
            cur.advance(5)
            cur.read_until("?>", "XML declaration")
        elif cur.startswith("<!--"):
            cur.advance(4)
            cur.read_until("-->", "comment")
        elif cur.startswith("<!DOCTYPE"):
            cur.advance(9)
            depth = 1
            while depth and not cur.eof():
                ch = cur.peek()
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
                elif ch == "[":
                    cur.read_until("]", "DTD internal subset")
                    continue
                cur.advance()
            if depth:
                raise cur.error("unterminated DOCTYPE")
        elif cur.startswith("<?"):
            cur.advance(2)
            cur.read_until("?>", "processing instruction")
        else:
            return


def _parse_element(cur: _Cursor) -> XMLElement:
    cur.expect("<")
    name = cur.read_name()
    elem = XMLElement(name)
    # attributes
    while True:
        cur.skip_ws()
        if cur.startswith("/>"):
            cur.advance(2)
            return elem
        if cur.startswith(">"):
            cur.advance(1)
            break
        attr_name = cur.read_name()
        cur.skip_ws()
        cur.expect("=")
        cur.skip_ws()
        quote = cur.peek()
        if quote not in ("'", '"'):
            raise cur.error("attribute value must be quoted")
        cur.advance(1)
        line, col = cur.line_col()
        raw = cur.read_until(quote, "attribute value")
        elem.attributes.append((attr_name, resolve_entities(raw, line, col)))
    # content
    _parse_content(cur, elem)
    # end tag
    end_name = cur.read_name()
    if end_name != name:
        raise cur.error(f"mismatched end tag </{end_name}> for <{name}>")
    cur.skip_ws()
    cur.expect(">")
    return elem


def _parse_content(cur: _Cursor, elem: XMLElement) -> None:
    text_parts: list[str] = []

    def flush_text() -> None:
        if text_parts:
            merged = "".join(text_parts)
            text_parts.clear()
            if merged:
                elem.children.append(XMLText(merged))

    while True:
        if cur.eof():
            raise cur.error(f"unterminated element <{elem.name}>")
        ch = cur.peek()
        if ch == "<":
            if cur.startswith("</"):
                flush_text()
                cur.advance(2)
                return
            if cur.startswith("<!--"):
                flush_text()
                cur.advance(4)
                elem.children.append(XMLComment(cur.read_until("-->", "comment")))
            elif cur.startswith("<![CDATA["):
                cur.advance(9)
                text_parts.append(cur.read_until("]]>", "CDATA section"))
            elif cur.startswith("<?"):
                flush_text()
                cur.advance(2)
                body = cur.read_until("?>", "processing instruction")
                target, _, data = body.partition(" ")
                elem.children.append(XMLPi(target, data.strip()))
            else:
                flush_text()
                elem.children.append(_parse_element(cur))
        else:
            line, col = cur.line_col()
            end = cur.text.find("<", cur.pos)
            if end < 0:
                raise cur.error(f"unterminated element <{elem.name}>")
            raw = cur.text[cur.pos : end]
            cur.pos = end
            text_parts.append(resolve_entities(raw, line, col))
