"""A from-scratch, non-validating XML parser.

The parser core is **event-emitting**: :func:`parse_events` walks the
document once with an explicit element stack (no recursion, so document
depth is not bounded by Python's recursion limit) and fires
start/text/end/comment/pi callbacks on an :class:`XMLEventHandler`.  Two
consumers exist: :func:`parse_document` plugs in a tree builder and
returns the familiar :class:`XMLElement` tree, while the streaming
shredder (:mod:`repro.encoding.shred`) appends straight into the arena's
column buffers without ever materialising a DOM.

Supports everything XMark documents (and reasonable hand-written test
documents) contain: the XML declaration, elements with attributes,
character data, CDATA sections, comments, processing instructions,
builtin entities and numeric character references.  Not supported
(raises): DTD internal subsets beyond skipping the declaration, and
general entities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import XMLSyntaxError
from repro.xml.escape import resolve_entities


@dataclass
class XMLText:
    """A run of character data."""

    text: str


@dataclass
class XMLComment:
    """An XML comment (without the delimiters)."""

    text: str


@dataclass
class XMLPi:
    """A processing instruction: ``<?target data?>``."""

    target: str
    data: str


@dataclass
class XMLElement:
    """An element: name, attribute list (document order) and children."""

    name: str
    attributes: list[tuple[str, str]] = field(default_factory=list)
    children: list["XMLNode"] = field(default_factory=list)


XMLNode = Union[XMLElement, XMLText, XMLComment, XMLPi]

_NAME_START = set("_:") | set(chr(c) for c in range(ord("a"), ord("z") + 1)) | set(
    chr(c) for c in range(ord("A"), ord("Z") + 1)
)
_NAME_CHARS = _NAME_START | set("-.") | set("0123456789")


class _Cursor:
    """Input cursor with line/column tracking for error messages."""

    __slots__ = ("text", "pos", "_nl_scan")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self._nl_scan = 0

    def line_col(self) -> tuple[int, int]:
        return self.line_col_at(self.pos)

    def line_col_at(self, pos: int) -> tuple[int, int]:
        """Line/column of an arbitrary offset.

        O(offset) — error paths and references only; the parsing hot
        loop must not call this per token (character data and attribute
        values compute their position only when they contain a ``&``).
        """
        upto = self.text[:pos]
        line = upto.count("\n") + 1
        col = pos - (upto.rfind("\n") + 1) + 1
        return line, col

    def error(self, message: str) -> XMLSyntaxError:
        line, col = self.line_col()
        return XMLSyntaxError(message, line, col)

    def eof(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, n: int = 1) -> str:
        return self.text[self.pos : self.pos + n]

    def startswith(self, s: str) -> bool:
        return self.text.startswith(s, self.pos)

    def advance(self, n: int = 1) -> None:
        self.pos += n

    def skip_ws(self) -> None:
        text, n = self.text, len(self.text)
        p = self.pos
        while p < n and text[p] in " \t\r\n":
            p += 1
        self.pos = p

    def read_until(self, delim: str, what: str) -> str:
        end = self.text.find(delim, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        out = self.text[self.pos : end]
        self.pos = end + len(delim)
        return out

    def read_name(self) -> str:
        text = self.text
        start = self.pos
        if start >= len(text) or text[start] not in _NAME_START:
            raise self.error("expected a name")
        p = start + 1
        n = len(text)
        while p < n and text[p] in _NAME_CHARS:
            p += 1
        self.pos = p
        return text[start:p]

    def expect(self, s: str) -> None:
        if not self.startswith(s):
            raise self.error(f"expected {s!r}")
        self.advance(len(s))


class XMLEventHandler:
    """Callback interface for :func:`parse_events` (all no-ops here).

    Subclass and override what you need; adjacent character data and
    CDATA runs are merged into one :meth:`text` call, and empty merged
    runs are suppressed — exactly the coalescing the tree parser applies
    to :class:`XMLText` children.
    """

    def start_element(self, name: str, attributes: list[tuple[str, str]]) -> None:
        """An element's start tag (attributes in document order)."""

    def end_element(self, name: str) -> None:
        """An element's end tag (fires immediately for ``<e/>``)."""

    def text(self, data: str) -> None:
        """One merged run of character data (entities resolved)."""

    def comment(self, data: str) -> None:
        """A comment (without the delimiters)."""

    def pi(self, target: str, data: str) -> None:
        """A processing instruction."""


def parse_events(text: str, handler: XMLEventHandler) -> None:
    """Parse a complete XML document, firing events on ``handler``.

    This is the streaming entry point of the XML layer: one pass, an
    explicit element stack, and no tree allocation.  Leading/trailing
    misc (XML declaration, comments, PIs, whitespace) is accepted and
    discarded; exactly one root element is required.
    """
    cur = _Cursor(text)
    _skip_prolog(cur)
    if cur.eof() or cur.peek() != "<":
        raise cur.error("expected the root element")
    _parse_element_events(cur, handler)
    # trailing misc
    while not cur.eof():
        cur.skip_ws()
        if cur.eof():
            break
        if cur.startswith("<!--"):
            cur.advance(4)
            cur.read_until("-->", "comment")
        elif cur.startswith("<?"):
            cur.advance(2)
            cur.read_until("?>", "processing instruction")
        else:
            raise cur.error("content after the root element")


def parse_document(text: str) -> XMLElement:
    """Parse a complete XML document, returning the root element.

    A thin consumer of :func:`parse_events` that assembles the
    :class:`XMLElement` tree (the shredder's streaming path skips this
    entirely and shreds from the events).
    """
    builder = _TreeBuilder()
    parse_events(text, builder)
    return builder.root


class _TreeBuilder(XMLEventHandler):
    """Event handler that assembles the XMLElement tree."""

    __slots__ = ("root", "_stack")

    def __init__(self):
        self.root: XMLElement | None = None
        self._stack: list[XMLElement] = []

    def start_element(self, name: str, attributes: list[tuple[str, str]]) -> None:
        elem = XMLElement(name, attributes)
        if self._stack:
            self._stack[-1].children.append(elem)
        else:
            self.root = elem
        self._stack.append(elem)

    def end_element(self, name: str) -> None:
        self._stack.pop()

    def text(self, data: str) -> None:
        self._stack[-1].children.append(XMLText(data))

    def comment(self, data: str) -> None:
        self._stack[-1].children.append(XMLComment(data))

    def pi(self, target: str, data: str) -> None:
        self._stack[-1].children.append(XMLPi(target, data))


def _skip_prolog(cur: _Cursor) -> None:
    while True:
        cur.skip_ws()
        if cur.startswith("<?xml"):
            cur.advance(5)
            cur.read_until("?>", "XML declaration")
        elif cur.startswith("<!--"):
            cur.advance(4)
            cur.read_until("-->", "comment")
        elif cur.startswith("<!DOCTYPE"):
            cur.advance(9)
            depth = 1
            while depth and not cur.eof():
                ch = cur.peek()
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
                elif ch == "[":
                    cur.read_until("]", "DTD internal subset")
                    continue
                cur.advance()
            if depth:
                raise cur.error("unterminated DOCTYPE")
        elif cur.startswith("<?"):
            cur.advance(2)
            cur.read_until("?>", "processing instruction")
        else:
            return


def _parse_start_tag(
    cur: _Cursor, handler: XMLEventHandler
) -> tuple[str, bool]:
    """One start tag; returns ``(name, self_closing)`` after firing
    ``start_element`` (and ``end_element`` for ``<e/>``)."""
    cur.expect("<")
    name = cur.read_name()
    attributes: list[tuple[str, str]] = []
    while True:
        cur.skip_ws()
        if cur.startswith("/>"):
            cur.advance(2)
            handler.start_element(name, attributes)
            handler.end_element(name)
            return name, True
        if cur.startswith(">"):
            cur.advance(1)
            handler.start_element(name, attributes)
            return name, False
        attr_name = cur.read_name()
        cur.skip_ws()
        cur.expect("=")
        cur.skip_ws()
        quote = cur.peek()
        if quote not in ("'", '"'):
            raise cur.error("attribute value must be quoted")
        cur.advance(1)
        start = cur.pos
        raw = cur.read_until(quote, "attribute value")
        if "&" in raw:
            raw = resolve_entities(raw, *cur.line_col_at(start))
        attributes.append((attr_name, raw))


def _parse_element_events(cur: _Cursor, handler: XMLEventHandler) -> None:
    """The element grammar as one loop over an explicit open-tag stack."""
    stack: list[str] = []
    text_parts: list[str] = []

    def flush_text() -> None:
        if text_parts:
            merged = "".join(text_parts)
            text_parts.clear()
            if merged:
                handler.text(merged)

    while True:
        # cursor is at the '<' of an element start tag
        name, self_closing = _parse_start_tag(cur, handler)
        if not self_closing:
            stack.append(name)
        if not stack:  # a self-closing root: the document is done
            return
        # content of stack[-1], up to the next child start tag or the
        # close of every open element
        while True:
            if cur.eof():
                raise cur.error(f"unterminated element <{stack[-1]}>")
            if cur.peek() == "<":
                if cur.startswith("</"):
                    flush_text()
                    cur.advance(2)
                    end_name = cur.read_name()
                    open_name = stack.pop()
                    if end_name != open_name:
                        raise cur.error(
                            f"mismatched end tag </{end_name}> for <{open_name}>"
                        )
                    cur.skip_ws()
                    cur.expect(">")
                    handler.end_element(end_name)
                    if not stack:
                        return
                elif cur.startswith("<!--"):
                    flush_text()
                    cur.advance(4)
                    handler.comment(cur.read_until("-->", "comment"))
                elif cur.startswith("<![CDATA["):
                    cur.advance(9)
                    text_parts.append(cur.read_until("]]>", "CDATA section"))
                elif cur.startswith("<?"):
                    flush_text()
                    cur.advance(2)
                    body = cur.read_until("?>", "processing instruction")
                    target, _, data = body.partition(" ")
                    handler.pi(target, data.strip())
                else:
                    flush_text()
                    break  # a child element: parse its start tag
            else:
                start = cur.pos
                end = cur.text.find("<", start)
                if end < 0:
                    raise cur.error(f"unterminated element <{stack[-1]}>")
                raw = cur.text[start:end]
                cur.pos = end
                if "&" in raw:
                    raw = resolve_entities(raw, *cur.line_col_at(start))
                text_parts.append(raw)
