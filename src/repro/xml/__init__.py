"""A small, self-contained XML layer: parser, escaping and serializer.

Pathfinder only needs well-formed document parsing (elements, attributes,
character data, CDATA, comments, processing instructions, the five builtin
entities and numeric character references) — no DTDs, no namespaces-aware
processing.  The parser has two consumers: :func:`parse_document` builds a
lightweight tree, while :func:`parse_events` streams start/text/end
callbacks so the shredder (:mod:`repro.encoding.shred`) can fill the
relational encoding without materialising a DOM.  The serializer runs the
other direction as a vectorised scan over the pre/size/level tables.
"""

from repro.xml.parser import (
    XMLComment,
    XMLElement,
    XMLEventHandler,
    XMLPi,
    XMLText,
    parse_document,
    parse_events,
)
from repro.xml.serializer import (
    scan_parts,
    serialize_node,
    serialize_node_recursive,
    serialize_tree,
)

__all__ = [
    "parse_document",
    "parse_events",
    "XMLEventHandler",
    "XMLElement",
    "XMLText",
    "XMLComment",
    "XMLPi",
    "scan_parts",
    "serialize_node",
    "serialize_node_recursive",
    "serialize_tree",
]
