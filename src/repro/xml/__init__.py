"""A small, self-contained XML layer: parser, escaping and serializer.

Pathfinder only needs well-formed document parsing (elements, attributes,
character data, CDATA, comments, processing instructions, the five builtin
entities and numeric character references) — no DTDs, no namespaces-aware
processing.  The parser produces a lightweight tree that the shredder
(:mod:`repro.encoding.shred`) turns into the relational encoding.
"""

from repro.xml.parser import parse_document, XMLElement, XMLText, XMLComment, XMLPi
from repro.xml.serializer import serialize_node, serialize_tree

__all__ = [
    "parse_document",
    "XMLElement",
    "XMLText",
    "XMLComment",
    "XMLPi",
    "serialize_node",
    "serialize_tree",
]
