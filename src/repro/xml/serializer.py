"""Serialization: arena nodes (or parsed trees) back to XML text.

This is the post-processor of the paper's Section 2 ("a simple
post-processor then serializes the relational result to form a response in
terms of the XQuery data model") — the node-to-markup half; the sequence
half lives in :mod:`repro.compiler.serialize`.
"""

from __future__ import annotations

from repro.encoding.arena import NK_COMMENT, NK_DOC, NK_PI, NK_TEXT, NodeArena
from repro.xml.escape import escape_attr, escape_text
from repro.xml.parser import XMLComment, XMLElement, XMLPi, XMLText


def serialize_node(arena: NodeArena, node: int) -> str:
    """Serialise the subtree rooted at arena row ``node`` to XML text."""
    out: list[str] = []
    _serialize_into(arena, node, out)
    return "".join(out)


def serialize_attribute(arena: NodeArena, attr_id: int) -> str:
    """Serialise a standalone attribute as ``name="value"``."""
    name = arena.pool.value(int(arena.attr_name[attr_id]))
    value = arena.pool.value(int(arena.attr_value[attr_id]))
    return f'{name}="{escape_attr(value)}"'


def _serialize_into(arena: NodeArena, node: int, out: list[str]) -> None:
    pool = arena.pool
    kind = int(arena.kind[node])
    if kind == NK_TEXT:
        out.append(escape_text(pool.value(int(arena.value[node]))))
        return
    if kind == NK_COMMENT:
        out.append(f"<!--{pool.value(int(arena.value[node]))}-->")
        return
    if kind == NK_PI:
        target = pool.value(int(arena.name[node]))
        data = pool.value(int(arena.value[node]))
        out.append(f"<?{target} {data}?>" if data else f"<?{target}?>")
        return
    if kind == NK_DOC:
        for child in _child_rows(arena, node):
            _serialize_into(arena, child, out)
        return
    # element
    name = pool.value(int(arena.name[node]))
    out.append(f"<{name}")
    order, lo, hi = arena.attr_ranges(_single(node))
    for j in order[int(lo[0]) : int(hi[0])]:
        aname = pool.value(int(arena.attr_name[j]))
        avalue = pool.value(int(arena.attr_value[j]))
        out.append(f' {aname}="{escape_attr(avalue)}"')
    children = _child_rows(arena, node)
    if not children:
        out.append("/>")
        return
    out.append(">")
    for child in children:
        _serialize_into(arena, child, out)
    out.append(f"</{name}>")


def _single(node: int):
    import numpy as np

    return np.asarray([node], dtype=np.int64)


def _child_rows(arena: NodeArena, node: int) -> list[int]:
    order, lo, hi = arena.children_ranges(_single(node))
    rows = sorted(int(r) for r in order[int(lo[0]) : int(hi[0])])
    return rows


def serialize_tree(node) -> str:
    """Serialise a parsed (:mod:`repro.xml.parser`) tree back to XML text."""
    out: list[str] = []
    _serialize_parsed(node, out)
    return "".join(out)


def _serialize_parsed(node, out: list[str]) -> None:
    if isinstance(node, XMLText):
        out.append(escape_text(node.text))
    elif isinstance(node, XMLComment):
        out.append(f"<!--{node.text}-->")
    elif isinstance(node, XMLPi):
        out.append(f"<?{node.target} {node.data}?>" if node.data else f"<?{node.target}?>")
    elif isinstance(node, XMLElement):
        out.append(f"<{node.name}")
        for name, value in node.attributes:
            out.append(f' {name}="{escape_attr(value)}"')
        if not node.children:
            out.append("/>")
            return
        out.append(">")
        for child in node.children:
            _serialize_parsed(child, out)
        out.append(f"</{node.name}>")
