"""Serialization: arena nodes (or parsed trees) back to XML text.

This is the post-processor of the paper's Section 2 ("a simple
post-processor then serializes the relational result to form a response in
terms of the XQuery data model") — the node-to-markup half; the sequence
half lives in :mod:`repro.compiler.serialize`.

The arena serializer is a **scan**, not a tree walk: the pre/size
property says the subtree of row ``p`` is exactly rows ``p .. p+size[p]``,
so it slices ``kind/level/name/value`` over that range once, batch-decodes
every pool surrogate the slice needs, fetches all attributes with one
:meth:`~repro.encoding.arena.NodeArena.attrs_in_span` call, and emits
markup in row order — open tags as rows arrive, close tags when the scan
passes a subtree's end row (``p + size[p]``, the region encoding of the
level-delta).  No recursion, no per-node ``children_ranges`` calls.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.arena import NK_COMMENT, NK_DOC, NK_ELEM, NK_PI, NK_TEXT, NodeArena
from repro.xml.escape import escape_attr, escape_text
from repro.xml.parser import XMLComment, XMLElement, XMLPi, XMLText


def serialize_node(arena: NodeArena, node: int) -> str:
    """Serialise the subtree rooted at arena row ``node`` to XML text."""
    return "".join(scan_parts(arena, node))


def serialize_attribute(arena: NodeArena, attr_id: int) -> str:
    """Serialise a standalone attribute as ``name="value"``."""
    arena.ensure_attrs((attr_id,))
    name = arena.pool.value(int(arena.attr_name[attr_id]))
    value = arena.pool.value(int(arena.attr_value[attr_id]))
    return f'{name}="{escape_attr(value)}"'


def scan_parts(arena: NodeArena, node: int) -> list[str]:
    """The markup of row ``node``'s subtree as a list of string parts.

    This is the vectorised core behind :func:`serialize_node` and the
    chunked result streaming in :mod:`repro.compiler.serialize`: callers
    either join the parts into one string or flush them downstream in
    bounded chunks without ever assembling the full text.
    """
    start = int(node)
    arena.ensure_rows((start,))
    stop = start + int(arena.size[start]) + 1
    kinds = arena.kind[start:stop].tolist()
    sizes = arena.size[start:stop].tolist()
    pool = arena.pool
    # one batched decode for every surrogate the slice can reference;
    # nameless/valueless rows carry -1, clipped to 0 and never read
    decode = pool.values
    if len(pool):
        names = decode(np.maximum(arena.name[start:stop], 0).tolist())
        values = decode(np.maximum(arena.value[start:stop], 0).tolist())
    else:  # an arena with no interned strings holds no named/valued rows
        names = values = [""] * (stop - start)
    # all attributes of the whole slice in two binary searches, rendered
    # to ready-to-concatenate ` name="value"` parts in one pass
    attr_ids, attr_counts_arr = arena.attrs_in_span(start, stop)
    attr_counts = attr_counts_arr.tolist()
    attr_strs = [
        f' {n}="{escape_attr(v)}"'
        for n, v in zip(
            decode(arena.attr_name[attr_ids].tolist()),
            decode(arena.attr_value[attr_ids].tolist()),
        )
    ]

    out: list[str] = []
    append = out.append
    # stack of (end offset, close tag): popped when the scan passes the
    # subtree's last row — the pre/size form of closing on level deltas
    open_tags: list[tuple[int, str]] = []
    ap = 0  # cursor into the flattened attribute arrays
    for i, kind in enumerate(kinds):
        while open_tags and open_tags[-1][0] <= i:
            append(open_tags.pop()[1])
        if kind == NK_ELEM:
            name = names[i]
            count = attr_counts[i]
            if count:
                attrs = "".join(attr_strs[ap : ap + count])
                ap += count
            else:
                attrs = ""
            size = sizes[i]
            if size == 0:
                append(f"<{name}{attrs}/>")
            else:
                append(f"<{name}{attrs}>")
                open_tags.append((i + size + 1, f"</{name}>"))
        elif kind == NK_TEXT:
            append(escape_text(values[i]))
        elif kind == NK_COMMENT:
            append(f"<!--{values[i]}-->")
        elif kind == NK_PI:
            data = values[i]
            append(f"<?{names[i]} {data}?>" if data else f"<?{names[i]}?>")
        # NK_DOC contributes no markup of its own
    while open_tags:
        append(open_tags.pop()[1])
    return out


# ---------------------------------------------------------------------------
# the pre-scan recursive serializer, kept as the differential-test oracle
# ---------------------------------------------------------------------------
def serialize_node_recursive(arena: NodeArena, node: int) -> str:
    """Serialise row ``node``'s subtree by recursive tree walk.

    The original node-at-a-time post-processor (one ``children_ranges`` /
    ``attr_ranges`` call per node).  Kept as the oracle the scan
    serializer is differentially tested against — and as the baseline
    ``benchmarks/bench_serialize.py`` measures the speedup over.
    """
    out: list[str] = []
    _serialize_into(arena, node, out)
    return "".join(out)


def _serialize_into(arena: NodeArena, node: int, out: list[str]) -> None:
    pool = arena.pool
    arena.ensure_rows((node,))
    kind = int(arena.kind[node])
    if kind == NK_TEXT:
        out.append(escape_text(pool.value(int(arena.value[node]))))
        return
    if kind == NK_COMMENT:
        out.append(f"<!--{pool.value(int(arena.value[node]))}-->")
        return
    if kind == NK_PI:
        target = pool.value(int(arena.name[node]))
        data = pool.value(int(arena.value[node]))
        out.append(f"<?{target} {data}?>" if data else f"<?{target}?>")
        return
    if kind == NK_DOC:
        for child in _child_rows(arena, node):
            _serialize_into(arena, child, out)
        return
    # element
    name = pool.value(int(arena.name[node]))
    out.append(f"<{name}")
    order, lo, hi = arena.attr_ranges(_single(node))
    for j in order[int(lo[0]) : int(hi[0])]:
        aname = pool.value(int(arena.attr_name[j]))
        avalue = pool.value(int(arena.attr_value[j]))
        out.append(f' {aname}="{escape_attr(avalue)}"')
    children = _child_rows(arena, node)
    if not children:
        out.append("/>")
        return
    out.append(">")
    for child in children:
        _serialize_into(arena, child, out)
    out.append(f"</{name}>")


def _single(node: int) -> np.ndarray:
    return np.asarray([node], dtype=np.int64)


def _child_rows(arena: NodeArena, node: int) -> list[int]:
    order, lo, hi = arena.children_ranges(_single(node))
    rows = sorted(int(r) for r in order[int(lo[0]) : int(hi[0])])
    return rows


def serialize_tree(node) -> str:
    """Serialise a parsed (:mod:`repro.xml.parser`) tree back to XML text."""
    out: list[str] = []
    _serialize_parsed(node, out)
    return "".join(out)


def _serialize_parsed(node, out: list[str]) -> None:
    if isinstance(node, XMLText):
        out.append(escape_text(node.text))
    elif isinstance(node, XMLComment):
        out.append(f"<!--{node.text}-->")
    elif isinstance(node, XMLPi):
        out.append(f"<?{node.target} {node.data}?>" if node.data else f"<?{node.target}?>")
    elif isinstance(node, XMLElement):
        out.append(f"<{node.name}")
        for name, value in node.attributes:
            out.append(f' {name}="{escape_attr(value)}"')
        if not node.children:
            out.append("/>")
            return
        out.append(">")
        for child in node.children:
            _serialize_parsed(child, out)
        out.append(f"</{node.name}>")
