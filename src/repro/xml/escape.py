"""Character escaping and entity resolution for the XML layer."""

from __future__ import annotations

from repro.errors import XMLSyntaxError

_BUILTIN_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


def _is_xml_char(cp: int) -> bool:
    """The XML 1.0 ``Char`` production: surrogates, most control
    characters and out-of-range codepoints are not storable characters
    even via character references."""
    return (
        cp in (0x9, 0xA, 0xD)
        or 0x20 <= cp <= 0xD7FF
        or 0xE000 <= cp <= 0xFFFD
        or 0x10000 <= cp <= 0x10FFFF
    )


def _position(raw: str, offset: int, line: int, column: int) -> tuple[int, int]:
    """The line/column of ``raw[offset]`` given the position of ``raw[0]``
    — so a reference error points at the reference, not at the start of
    the character-data run it sits in."""
    newlines = raw.count("\n", 0, offset)
    if newlines:
        return line + newlines, offset - raw.rfind("\n", 0, offset)
    return line, column + offset


def _resolve_charref(name: str, line: int, column: int) -> str:
    """Decode ``name`` (``#...`` / ``#x...``) to its character, raising
    :class:`XMLSyntaxError` — never a bare ``ValueError`` — on malformed
    digits or codepoints outside the XML ``Char`` production (e.g.
    ``&#xD800;``, a surrogate, or ``&#x110000;``, past Unicode)."""
    digits = name[2:] if name[1:2] in ("x", "X") else name[1:]
    base = 16 if name[1:2] in ("x", "X") else 10
    try:
        cp = int(digits, base)
    except ValueError:
        raise XMLSyntaxError(
            f"malformed character reference &{name};", line, column
        ) from None
    if not _is_xml_char(cp):
        raise XMLSyntaxError(
            f"character reference &{name}; is not a valid XML character",
            line,
            column,
        )
    return chr(cp)


def resolve_entities(raw: str, line: int = 0, column: int = 0) -> str:
    """Replace entity and character references in character data."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise XMLSyntaxError(
                "unterminated entity reference", *_position(raw, i, line, column)
            )
        name = raw[i + 1 : end]
        if name.startswith("#"):
            out.append(_resolve_charref(name, *_position(raw, i, line, column)))
        elif name in _BUILTIN_ENTITIES:
            out.append(_BUILTIN_ENTITIES[name])
        else:
            raise XMLSyntaxError(
                f"unknown entity &{name};", *_position(raw, i, line, column)
            )
        i = end + 1
    return "".join(out)


#: serialization escape tables for ``str.translate`` — one pass over the
#: string instead of three chained ``.replace()`` copies
_TEXT_ESCAPES = str.maketrans({"&": "&amp;", "<": "&lt;", ">": "&gt;"})
_ATTR_ESCAPES = str.maketrans({"&": "&amp;", "<": "&lt;", '"': "&quot;"})


def escape_text(text: str) -> str:
    """Escape character data for serialization.

    These run once per text node on the serialization hot loop, so the
    overwhelmingly common no-markup case returns the input unchanged
    (three C-level scans, no allocation) and only strings that contain a
    special character pay for the ``translate``.
    """
    if "&" in text or "<" in text or ">" in text:
        return text.translate(_TEXT_ESCAPES)
    return text


def escape_attr(text: str) -> str:
    """Escape an attribute value for serialization (double-quoted)."""
    if "&" in text or "<" in text or '"' in text:
        return text.translate(_ATTR_ESCAPES)
    return text
