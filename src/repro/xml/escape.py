"""Character escaping and entity resolution for the XML layer."""

from __future__ import annotations

from repro.errors import XMLSyntaxError

_BUILTIN_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


def resolve_entities(raw: str, line: int = 0, column: int = 0) -> str:
    """Replace entity and character references in character data."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise XMLSyntaxError("unterminated entity reference", line, column)
        name = raw[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            out.append(chr(int(name[2:], 16)))
        elif name.startswith("#"):
            out.append(chr(int(name[1:])))
        elif name in _BUILTIN_ENTITIES:
            out.append(_BUILTIN_ENTITIES[name])
        else:
            raise XMLSyntaxError(f"unknown entity &{name};", line, column)
        i = end + 1
    return "".join(out)


def escape_text(text: str) -> str:
    """Escape character data for serialization."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attr(text: str) -> str:
    """Escape an attribute value for serialization (double-quoted)."""
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
    )
