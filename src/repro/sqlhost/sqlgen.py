"""Algebra-to-SQL translation: one CTE per operator.

Every algebra operator becomes a common table expression; DAG-shared
subplans share one CTE (the SQL engine's CTE materialisation plays the
role of the numpy evaluator's memoisation).  Polymorphic item columns
travel as four physical columns::

    <c>_k  INTEGER   -- item kind (repro.relational.items constants)
    <c>_i  INTEGER   -- payload for int/bool/node/attribute items
    <c>_d  REAL      -- payload for doubles (NULL encodes NaN)
    <c>_s  TEXT      -- payload for strings/untypedAtomic

with unused slots NULL, so null-safe (`IS`) equality over the quadruple is
item equality.  Row numbering is ``ROW_NUMBER() OVER`` (the SQL:1999
rendering of MonetDB's ``mark``), ranges are recursive CTEs, and axis
steps are the region self-joins of the XPath Accelerator — deliberately
*without* staircase pruning, because that is exactly what a stock SQL
host cannot do (paper Section 2).
"""

from __future__ import annotations

from repro.errors import NotSupportedError
from repro.encoding.arena import NK_COMMENT, NK_DOC, NK_ELEM, NK_PI, NK_TEXT
from repro.encoding.axes import Axis
from repro.relational import algebra as alg
from repro.relational.items import (
    K_ATTR,
    K_BOOL,
    K_DBL,
    K_DEC,
    K_INT,
    K_NODE,
    K_QNAME,
    K_STR,
    K_UNTYPED,
)
from repro.relational.items import XSDecimal
from repro.relational.optimizer import _item_cols_of, schema_of

_NUMERICISH = f"({K_INT}, {K_DBL}, {K_DEC}, {K_BOOL})"
_POOLEDISH = f"({K_STR}, {K_UNTYPED})"
#: fn:distinct-values equality classes (mirrors the numpy atom_cls kernel)
_DV_NUMERIC_SQL = f"({K_INT}, {K_DBL}, {K_DEC})"
_DV_STRING_SQL = f"({K_STR}, {K_UNTYPED}, {K_QNAME})"
#: exact numerics (division by zero is err:FOAR0001, not INF)
_EXACT_SQL = f"({K_INT}, {K_DEC})"
#: string kinds in aggregates (fn:min/max string semantics, FORG0006)
_AGG_STRING_SQL = f"({K_STR}, {K_QNAME})"

#: sentinel item kinds the backend decoder turns into dynamic errors —
#: SQL cannot raise, so type violations travel as impossible kind codes
ERR_KIND_FORG0006 = -1
ERR_KIND_FOAR0001 = -2

_KIND_TEST_SQL = {
    "element": NK_ELEM,
    "text": NK_TEXT,
    "comment": NK_COMMENT,
    "processing-instruction": NK_PI,
    "document-node": NK_DOC,
}


def q(name: str) -> str:
    """Quote an identifier (fresh names contain '%')."""
    return '"' + name.replace('"', '""') + '"'


def _lit_sql(value) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


class ItemRef:
    """SQL expressions for one item column of one table alias."""

    def __init__(self, alias: str, col: str):
        p = f"{alias}." if alias else ""
        self.k = f"{p}{q(col + '_k')}"
        self.i = f"{p}{q(col + '_i')}"
        self.d = f"{p}{q(col + '_d')}"
        self.s = f"{p}{q(col + '_s')}"

    def quad(self) -> tuple[str, str, str, str]:
        """The four physical expressions as one (k, i, d, s) tuple."""
        return (self.k, self.i, self.d, self.s)


class ConstItem:
    """A literal item as SQL expressions."""

    def __init__(self, value):
        if isinstance(value, bool):
            self.k, self.i, self.d, self.s = str(K_BOOL), str(int(value)), "NULL", "NULL"
        elif isinstance(value, int):
            self.k, self.i, self.d, self.s = str(K_INT), str(value), "NULL", "NULL"
        elif isinstance(value, XSDecimal):
            self.k, self.i, self.d, self.s = str(K_DEC), "NULL", repr(float(value)), "NULL"
        elif isinstance(value, float):
            if value != value:  # NaN travels as NULL
                d = "NULL"
            elif value == float("inf"):
                d = "9e999"
            elif value == float("-inf"):
                d = "-9e999"
            else:
                d = repr(value)
            self.k, self.i, self.d, self.s = str(K_DBL), "NULL", d, "NULL"
        elif isinstance(value, str):
            self.k, self.i, self.d, self.s = str(K_STR), "NULL", "NULL", _lit_sql(value)
        else:
            raise NotSupportedError(f"cannot embed {type(value).__name__} in SQL")

    def quad(self):
        """The four physical expressions as one (k, i, d, s) tuple."""
        return (self.k, self.i, self.d, self.s)


def dbl(x) -> str:
    """The item cast to REAL (NULL = NaN)."""
    return (
        f"(CASE WHEN {x.k} IN ({K_INT}, {K_BOOL}) THEN CAST({x.i} AS REAL) "
        f"WHEN {x.k} IN ({K_DBL}, {K_DEC}) THEN {x.d} "
        f"WHEN {x.k} IN {_POOLEDISH} THEN xq_double({x.s}) "
        f"ELSE NULL END)"
    )


def txt(x) -> str:
    """The item's lexical form as TEXT."""
    return (
        f"(CASE WHEN {x.k} IN {_POOLEDISH} THEN {x.s} "
        f"WHEN {x.k} = {K_INT} THEN CAST({x.i} AS TEXT) "
        f"WHEN {x.k} = {K_BOOL} THEN (CASE WHEN {x.i} = 1 THEN 'true' ELSE 'false' END) "
        f"WHEN {x.k} IN ({K_DBL}, {K_DEC}) THEN xq_fmt_double({x.d}) "
        f"ELSE NULL END)"
    )


_SQL_CMP = {"eq": "=", "ne": "<>", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}


def compare(op: str, a, b) -> str:
    """General-comparison semantics as a SQL boolean expression."""
    sql_op = _SQL_CMP[op]
    numeric = f"({a.k} IN {_NUMERICISH} OR {b.k} IN {_NUMERICISH})"
    return (
        f"COALESCE(CASE WHEN {numeric} THEN {dbl(a)} {sql_op} {dbl(b)} "
        f"ELSE {txt(a)} {sql_op} {txt(b)} END, 0)"
    )


def ebv(x) -> str:
    """SQL for the effective boolean value of one item quad."""
    return (
        f"(CASE WHEN {x.k} IN ({K_NODE}, {K_ATTR}) THEN 1 "
        f"WHEN {x.k} IN ({K_DBL}, {K_DEC}) THEN COALESCE({x.d} <> 0.0, 0) "
        f"WHEN {x.k} IN ({K_INT}, {K_BOOL}) THEN {x.i} <> 0 "
        f"ELSE LENGTH(COALESCE({x.s}, '')) > 0 END)"
    )


def _bool_quad(expr: str):
    class _Q:
        k, i, d, s = str(K_BOOL), f"({expr})", "NULL", "NULL"

        def quad(self):
            return (self.k, self.i, self.d, self.s)

    return _Q()


def _int_quad(expr: str):
    class _Q:
        k, i, d, s = str(K_INT), f"({expr})", "NULL", "NULL"

        def quad(self):
            return (self.k, self.i, self.d, self.s)

    return _Q()


def _str_quad(expr: str):
    class _Q:
        k, i, d, s = str(K_STR), "NULL", "NULL", f"({expr})"

        def quad(self):
            return (self.k, self.i, self.d, self.s)

    return _Q()


def order_exprs(x, descending: bool) -> list[str]:
    """ORDER BY keys for an item column (class, numeric, text)."""
    cls = (
        f"(CASE WHEN {x.k} IN {_NUMERICISH} THEN 1 "
        f"WHEN {x.k} IN {_POOLEDISH} THEN 2 ELSE 3 END)"
    )
    num = f"(CASE WHEN {x.k} IN ({K_NODE}, {K_ATTR}) THEN CAST({x.i} AS REAL) ELSE COALESCE({dbl(x)}, -9e999) END)"
    suffix = " DESC" if descending else ""
    return [cls + suffix, num + suffix, txt(x) + suffix]


class SQLGenerator:
    """Translates one algebra plan into a single WITH-query."""

    def __init__(self, documents: dict[str, int]):
        self.documents = documents
        self.ctes: list[tuple[str, str]] = []
        self.names: dict[int, str] = {}
        self.schema_memo: dict = {}
        self.items_memo: dict = {}

    # ------------------------------------------------------------- helpers
    def schema(self, op: alg.Op) -> tuple[str, ...]:
        """Logical column names of an op's output (memoised)."""
        return schema_of(op, self.schema_memo)

    def item_cols(self, op: alg.Op) -> frozenset:
        """The subset of an op's columns that are polymorphic items."""
        return _item_cols_of(op, self.items_memo)

    def phys_cols(self, op: alg.Op) -> list[str]:
        """Physical SQL column names of an op's output."""
        out = []
        items = self.item_cols(op)
        for c in self.schema(op):
            if c in items:
                out += [f"{c}_k", f"{c}_i", f"{c}_d", f"{c}_s"]
            else:
                out.append(c)
        return out

    def select_all(self, op: alg.Op, alias: str) -> str:
        """A SELECT list forwarding every physical column of ``op``."""
        return ", ".join(f"{alias}.{q(c)} AS {q(c)}" for c in self.phys_cols(op))

    def _emit(self, node: alg.Op, body: str) -> str:
        name = f"t{len(self.ctes)}"
        self.ctes.append((name, body))
        self.names[id(node)] = name
        return name

    def _operand(self, node_child: alg.Op, operand, alias: str):
        tag, v = operand
        if tag == "const":
            if isinstance(v, int) and not isinstance(v, bool):
                return ("num", str(v))
            return ("item", ConstItem(v))
        if v in self.item_cols(node_child):
            return ("item", ItemRef(alias, v))
        return ("num", f"{alias}.{q(v)}")

    def _cmp_sql(self, op, lhs, rhs) -> str:
        lt, lv = lhs
        rt, rv = rhs
        if lt == "num" and rt == "num":
            return f"({lv} {_SQL_CMP[op]} {rv})"
        a = lv if lt == "item" else _int_quad(lv)
        b = rv if rt == "item" else _int_quad(rv)
        return compare(op, a, b)

    # ---------------------------------------------------------------- main
    def generate(self, plan: alg.Op) -> str:
        """Translate a whole plan DAG into one WITH-chained SQL query."""
        for node in alg.walk(plan):
            if id(node) in self.names:
                continue
            handler = getattr(self, "_g_" + type(node).__name__, None)
            if handler is None:
                raise NotSupportedError(
                    f"the SQL host cannot evaluate {type(node).__name__} "
                    "(node construction happens outside SQL)"
                )
            handler(node)
        final = self.names[id(plan)]
        with_clause = ",\n".join(f"{name} AS (\n{body}\n)" for name, body in self.ctes)
        cols = ", ".join(q(c) for c in self.phys_cols(plan))
        return f"WITH RECURSIVE\n{with_clause}\nSELECT {cols} FROM {final}"

    # ------------------------------------------------------------ operators
    def _g_Lit(self, node: alg.Lit):
        items = node.item_cols
        col_exprs = []
        if not node.rows:
            for c in node.schema:
                if c in items:
                    col_exprs += [
                        f"0 AS {q(c + '_k')}", f"0 AS {q(c + '_i')}",
                        f"NULL AS {q(c + '_d')}", f"NULL AS {q(c + '_s')}",
                    ]
                else:
                    col_exprs.append(f"0 AS {q(c)}")
            self._emit(node, f"SELECT {', '.join(col_exprs)} WHERE 0")
            return
        selects = []
        for row in node.rows:
            parts = []
            for c, v in zip(node.schema, row):
                if c in items:
                    quad = ConstItem(v).quad()
                    parts += [
                        f"{quad[0]} AS {q(c + '_k')}", f"{quad[1]} AS {q(c + '_i')}",
                        f"{quad[2]} AS {q(c + '_d')}", f"{quad[3]} AS {q(c + '_s')}",
                    ]
                else:
                    parts.append(f"{int(v)} AS {q(c)}")
            selects.append("SELECT " + ", ".join(parts))
        self._emit(node, "\nUNION ALL\n".join(selects))

    def _g_Project(self, node: alg.Project):
        child = self.names[id(node.child)]
        items = self.item_cols(node.child)
        parts = []
        for new, old in node.cols:
            if old in items:
                for suffix in ("_k", "_i", "_d", "_s"):
                    parts.append(f"c.{q(old + suffix)} AS {q(new + suffix)}")
            else:
                parts.append(f"c.{q(old)} AS {q(new)}")
        self._emit(node, f"SELECT {', '.join(parts)} FROM {child} c")

    def _g_Select(self, node: alg.Select):
        child = self.names[id(node.child)]
        lhs = self._operand(node.child, node.lhs, "c")
        rhs = self._operand(node.child, node.rhs, "c")
        pred = self._cmp_sql(node.op, lhs, rhs)
        self._emit(
            node,
            f"SELECT {self.select_all(node.child, 'c')} FROM {child} c WHERE {pred}",
        )

    def _g_Union(self, node: alg.Union):
        cols = self.phys_cols(node)
        selects = []
        for child in node.inputs:
            name = self.names[id(child)]
            selects.append(
                "SELECT " + ", ".join(f"c.{q(c)} AS {q(c)}" for c in cols)
                + f" FROM {name} c"
            )
        self._emit(node, "\nUNION ALL\n".join(selects))

    def _key_eq(self, left_op, right_op, keys, la="l", ra="r") -> str:
        litems = self.item_cols(left_op)
        ritems = self.item_cols(right_op)
        conds = []
        for lk, rk in keys:
            if lk in litems and rk in ritems:
                l, r = ItemRef(la, lk), ItemRef(ra, rk)
                norm_l = f"(CASE WHEN {l.k} = {K_UNTYPED} THEN {K_STR} ELSE {l.k} END)"
                norm_r = f"(CASE WHEN {r.k} = {K_UNTYPED} THEN {K_STR} ELSE {r.k} END)"
                conds.append(f"{norm_l} = {norm_r}")
                conds.append(f"{l.i} IS {r.i}")
                conds.append(f"{l.d} IS {r.d}")
                conds.append(f"{l.s} IS {r.s}")
            elif lk not in litems and rk not in ritems:
                conds.append(f"{la}.{q(lk)} = {ra}.{q(rk)}")
            else:
                raise NotSupportedError("join key item-ness mismatch")
        return " AND ".join(conds)

    def _g_Join(self, node: alg.Join):
        l, r = self.names[id(node.left)], self.names[id(node.right)]
        cond = self._key_eq(node.left, node.right, node.keys)
        self._emit(
            node,
            f"SELECT {self.select_all(node.left, 'l')}, "
            f"{self.select_all(node.right, 'r')} "
            f"FROM {l} l JOIN {r} r ON {cond}",
        )

    def _g_SemiJoin(self, node: alg.SemiJoin):
        l, r = self.names[id(node.left)], self.names[id(node.right)]
        cond = self._key_eq(node.left, node.right, node.keys)
        self._emit(
            node,
            f"SELECT {self.select_all(node.left, 'l')} FROM {l} l "
            f"WHERE EXISTS (SELECT 1 FROM {r} r WHERE {cond})",
        )

    def _g_Difference(self, node: alg.Difference):
        l, r = self.names[id(node.left)], self.names[id(node.right)]
        keys = tuple((k, k) for k in node.keys)
        cond = self._key_eq(node.left, node.right, keys)
        self._emit(
            node,
            f"SELECT {self.select_all(node.left, 'l')} FROM {l} l "
            f"WHERE NOT EXISTS (SELECT 1 FROM {r} r WHERE {cond})",
        )

    def _g_Distinct(self, node: alg.Distinct):
        child = self.names[id(node.child)]
        items = self.item_cols(node.child)
        partition = []
        for k in node.keys:
            if k in items:
                ref = ItemRef("", k)
                partition += [
                    f"(CASE WHEN {ref.k} = {K_UNTYPED} THEN {K_STR} ELSE {ref.k} END)",
                    ref.i, ref.d, ref.s,
                ]
            else:
                partition.append(q(k))
        order = q(node.order_col) if node.order_col else "1"
        cols = ", ".join(q(c) for c in self.phys_cols(node.child))
        self._emit(
            node,
            f"SELECT {cols} FROM (SELECT {cols}, ROW_NUMBER() OVER "
            f"(PARTITION BY {', '.join(partition)} ORDER BY {order}) AS rn__ "
            f"FROM {child}) WHERE rn__ = 1",
        )

    def _g_Cross(self, node: alg.Cross):
        l, r = self.names[id(node.left)], self.names[id(node.right)]
        self._emit(
            node,
            f"SELECT {self.select_all(node.left, 'l')}, "
            f"{self.select_all(node.right, 'r')} FROM {l} l CROSS JOIN {r} r",
        )

    def _g_RowNum(self, node: alg.RowNum):
        child = self.names[id(node.child)]
        items = self.item_cols(node.child)
        order_keys = []
        for colname, descending in node.order:
            if colname in items:
                order_keys += order_exprs(ItemRef("c", colname), descending)
            else:
                order_keys.append(f"c.{q(colname)}" + (" DESC" if descending else ""))
        over = f"ORDER BY {', '.join(order_keys) or '1'}"
        if node.group:
            over = f"PARTITION BY c.{q(node.group)} " + over
        self._emit(
            node,
            f"SELECT {self.select_all(node.child, 'c')}, "
            f"ROW_NUMBER() OVER ({over}) AS {q(node.target)} FROM {child} c",
        )

    def _g_Map(self, node: alg.Map):
        child = self.names[id(node.child)]
        args = [self._operand(node.child, a, "c") for a in node.args]
        quad = _map_fn_sql(node.fn, args)
        t = node.target
        if t in self.item_cols(node):
            target_sql = (
                f"{quad.k} AS {q(t + '_k')}, {quad.i} AS {q(t + '_i')}, "
                f"{quad.d} AS {q(t + '_d')}, {quad.s} AS {q(t + '_s')}"
            )
        else:
            # numeric-output map functions (kind_code, node_kind)
            target_sql = f"{quad.i} AS {q(t)}"
        self._emit(
            node,
            f"SELECT {self.select_all(node.child, 'c')}, {target_sql} "
            f"FROM {child} c",
        )

    def _g_Aggr(self, node: alg.Aggr):
        child = self.names[id(node.child)]
        items = self.item_cols(node.child)
        group_sel = f"c.{q(node.group)} AS {q(node.group)}, " if node.group else ""
        group_by = f" GROUP BY c.{q(node.group)}" if node.group else ""
        t = node.target
        if node.kind == "count":
            self._emit(
                node,
                f"SELECT {group_sel}COUNT(*) AS {q(t)} FROM {child} c{group_by}",
            )
            return
        if node.kind == "str_join":
            ref = ItemRef("o", node.arg) if node.arg in items else None
            val = txt(ref) if ref else f"CAST(o.{q(node.arg)} AS TEXT)"
            order = f"o.{q(node.order_col)}" if node.order_col else "1"
            inner_cols = ", ".join(f"o.{q(c)} AS {q(c)}" for c in self.phys_cols(node.child))
            body = (
                f"SELECT {group_sel.replace('c.', 'c.')}"
                f"{K_STR} AS {q(t + '_k')}, NULL AS {q(t + '_i')}, "
                f"NULL AS {q(t + '_d')}, "
                f"COALESCE(GROUP_CONCAT(c.v__, {_lit_sql(node.sep)}), '') AS {q(t + '_s')} "
                f"FROM (SELECT {inner_cols}, {val} AS v__ FROM {child} o ORDER BY {order}) c"
                f"{group_by}"
            )
            self._emit(node, body)
            return
        # sum / min / max / avg
        ref = ItemRef("c", node.arg) if node.arg in items else None
        val = dbl(ref) if ref else f"CAST(c.{q(node.arg)} AS REAL)"
        agg = {"sum": "SUM", "min": "MIN", "max": "MAX", "avg": "AVG"}[node.kind]
        all_int = (
            f"(MIN({ref.k}) = {K_INT} AND MAX({ref.k}) = {K_INT})"
            if ref
            else "1"
        )
        numeric_kind = (
            f"(CASE WHEN {all_int} THEN {K_INT} ELSE {K_DBL} END)"
            if node.kind in ("sum", "min", "max")
            else str(K_DBL)
        )
        i_expr = (
            f"(CASE WHEN {all_int} THEN CAST({agg}({val}) AS INTEGER) ELSE NULL END)"
            if node.kind in ("sum", "min", "max")
            else "NULL"
        )
        d_expr = (
            f"(CASE WHEN {all_int} THEN NULL ELSE {agg}({val}) END)"
            if node.kind in ("sum", "min", "max")
            else f"{agg}({val})"
        )
        s_expr = "NULL"
        if ref is not None:
            # per-group string handling, mirroring the numpy evaluator:
            # all-string min/max groups compare by codepoint order
            # (BINARY collation == codepoint order in UTF-8); any other
            # string mix is err:FORG0006 via the sentinel kind
            strish = (
                f"SUM(CASE WHEN {ref.k} IN {_AGG_STRING_SQL} THEN 1 ELSE 0 END)"
            )
            if node.kind in ("min", "max"):
                kind_expr = (
                    f"(CASE WHEN {strish} = 0 THEN {numeric_kind} "
                    f"WHEN {strish} = COUNT(*) THEN {K_STR} "
                    f"ELSE {ERR_KIND_FORG0006} END)"
                )
                s_expr = (
                    f"(CASE WHEN {strish} = COUNT(*) AND {strish} > 0 "
                    f"THEN {agg}({txt(ref)}) ELSE NULL END)"
                )
            else:
                kind_expr = (
                    f"(CASE WHEN {strish} = 0 THEN {numeric_kind} "
                    f"ELSE {ERR_KIND_FORG0006} END)"
                )
        else:
            kind_expr = numeric_kind
        # ungrouped SQL aggregates return one NULL row over empty input;
        # the algebra semantics (and numpy evaluator) return no row
        having = "" if node.group else " HAVING COUNT(*) > 0"
        self._emit(
            node,
            f"SELECT {group_sel}{kind_expr} AS {q(t + '_k')}, {i_expr} AS {q(t + '_i')}, "
            f"{d_expr} AS {q(t + '_d')}, {s_expr} AS {q(t + '_s')} "
            f"FROM {child} c{group_by}{having}",
        )

    def _g_StepJoin(self, node: alg.StepJoin):
        child = self.names[id(node.child)]
        ic, tc = node.iter_col, node.item_col
        ctx_id = f"c.{q(tc + '_i')}"
        axis = node.axis
        test = node.test
        if axis is Axis.ATTRIBUTE:
            cond = f"a.owner = {ctx_id}"
            if test.kind == "attribute" and test.name is not None:
                cond += f" AND a.name = {_lit_sql(test.name)}"
            elif test.kind not in ("attribute", "node"):
                cond += " AND 0"
            self._emit(
                node,
                f"SELECT DISTINCT c.{q(ic)} AS {q(ic)}, {K_ATTR} AS {q(tc + '_k')}, "
                f"a.id AS {q(tc + '_i')}, NULL AS {q(tc + '_d')}, NULL AS {q(tc + '_s')} "
                f"FROM {child} c JOIN attrs a ON {cond} "
                f"ORDER BY c.{q(ic)}, a.id",
            )
            return
        region = {
            Axis.SELF: f"n.id = {ctx_id}",
            Axis.CHILD: f"n.parent = {ctx_id}",
            Axis.DESCENDANT: f"n.id > {ctx_id} AND n.id <= {ctx_id} + ctx.size",
            Axis.DESCENDANT_OR_SELF: f"n.id >= {ctx_id} AND n.id <= {ctx_id} + ctx.size",
            Axis.PARENT: "n.id = ctx.parent",
            Axis.ANCESTOR: f"n.id < {ctx_id} AND n.id + n.size >= {ctx_id}",
            Axis.ANCESTOR_OR_SELF: f"n.id <= {ctx_id} AND n.id + n.size >= {ctx_id}",
            Axis.FOLLOWING: f"n.id > {ctx_id} + ctx.size AND n.frag = ctx.frag",
            Axis.PRECEDING: f"n.id + n.size < {ctx_id} AND n.frag = ctx.frag",
            Axis.FOLLOWING_SIBLING: f"n.parent = ctx.parent AND ctx.parent >= 0 AND n.id > {ctx_id}",
            Axis.PRECEDING_SIBLING: f"n.parent = ctx.parent AND ctx.parent >= 0 AND n.id < {ctx_id}",
        }[axis]
        conds = [region]
        if test.kind != "node":
            if test.kind == "attribute":
                conds.append("0")
            else:
                conds.append(f"n.kind = {_KIND_TEST_SQL[test.kind]}")
                if test.name is not None:
                    conds.append(f"n.name = {_lit_sql(test.name)}")
        self._emit(
            node,
            f"SELECT DISTINCT c.{q(ic)} AS {q(ic)}, {K_NODE} AS {q(tc + '_k')}, "
            f"n.id AS {q(tc + '_i')}, NULL AS {q(tc + '_d')}, NULL AS {q(tc + '_s')} "
            f"FROM {child} c "
            f"JOIN nodes ctx ON ctx.id = {ctx_id} "
            f"JOIN nodes n ON {' AND '.join(conds)}",
        )

    def _g_Atomize(self, node: alg.Atomize):
        child = self.names[id(node.child)]
        ref = ItemRef("c", node.arg)
        t = node.target
        k = (
            f"(CASE WHEN {ref.k} IN ({K_NODE}, {K_ATTR}) THEN {K_UNTYPED} "
            f"ELSE {ref.k} END)"
        )
        i = f"(CASE WHEN {ref.k} IN ({K_NODE}, {K_ATTR}) THEN NULL ELSE {ref.i} END)"
        s = (
            f"(CASE WHEN {ref.k} = {K_NODE} THEN "
            f"(SELECT strval FROM nodes WHERE id = {ref.i}) "
            f"WHEN {ref.k} = {K_ATTR} THEN (SELECT value FROM attrs WHERE id = {ref.i}) "
            f"ELSE {ref.s} END)"
        )
        self._emit(
            node,
            f"SELECT {self.select_all(node.child, 'c')}, "
            f"{k} AS {q(t + '_k')}, {i} AS {q(t + '_i')}, "
            f"{ref.d} AS {q(t + '_d')}, {s} AS {q(t + '_s')} FROM {child} c",
        )

    def _g_GenRange(self, node: alg.GenRange):
        child = self.names[id(node.child)]
        items = self.item_cols(node.child)
        lo = f"{q(node.lo_col + '_i')}" if node.lo_col in items else q(node.lo_col)
        hi = f"{q(node.hi_col + '_i')}" if node.hi_col in items else q(node.hi_col)
        seq = f"t{len(self.ctes)}_seq"
        self.ctes.append(
            (
                seq,
                f"SELECT iter, {lo} AS v, {hi} AS hi FROM {child} WHERE {lo} <= {hi}\n"
                f"UNION ALL SELECT iter, v + 1, hi FROM {seq} WHERE v < hi",
            )
        )
        self._emit(
            node,
            f"SELECT iter, ROW_NUMBER() OVER (PARTITION BY iter ORDER BY v) AS pos, "
            f"{K_INT} AS item_k, v AS item_i, NULL AS item_d, NULL AS item_s "
            f"FROM {seq}",
        )

    def _g_DocRoot(self, node: alg.DocRoot):
        row = self.documents.get(node.uri)
        if row is None:
            raise NotSupportedError(f"document {node.uri!r} is not loaded")
        self._emit(
            node,
            f"SELECT 1 AS iter, 1 AS pos, {K_NODE} AS item_k, {row} AS item_i, "
            f"NULL AS item_d, NULL AS item_s",
        )


# --------------------------------------------------------------------------
# map function translations
# --------------------------------------------------------------------------
def _as_item_arg(arg):
    tag, v = arg
    return _int_quad(v) if tag == "num" else v


def _map_fn_sql(fn: str, args):
    a = _as_item_arg(args[0]) if args else None
    b = _as_item_arg(args[1]) if len(args) > 1 else None
    c = _as_item_arg(args[2]) if len(args) > 2 else None

    if fn in ("add", "sub", "mul", "div", "idiv", "mod"):
        x, y = dbl(a), dbl(b)
        sql = {"add": f"{x} + {y}", "sub": f"{x} - {y}", "mul": f"{x} * {y}",
               "div": f"{x} / {y}", "idiv": f"CAST({x} / {y} AS INTEGER)",
               "mod": f"xq_mod({x}, {y})"}[fn]
        exact = f"({a.k} IN {_EXACT_SQL} AND {b.k} IN {_EXACT_SQL})"
        if fn == "idiv":

            class _IDiv:
                # integer division by zero is err:FOAR0001 (the decoder
                # raises on the sentinel kind)
                k = (
                    f"(CASE WHEN {y} = 0.0 THEN {ERR_KIND_FOAR0001} "
                    f"ELSE {K_INT} END)"
                )
                i = f"(CASE WHEN {y} = 0.0 THEN 0 ELSE {sql} END)"
                d = "NULL"
                s = "NULL"

            return _IDiv()
        both_int = f"({a.k} = {K_INT} AND {b.k} = {K_INT})"
        if fn == "div":

            class _Div:
                # exact-numeric (integer/decimal) division by zero is
                # err:FOAR0001; exact operands keep xs:decimal typing
                k = (
                    f"(CASE WHEN {exact} AND {y} = 0.0 THEN {ERR_KIND_FOAR0001} "
                    f"WHEN {exact} THEN {K_DEC} ELSE {K_DBL} END)"
                )
                i = "NULL"
                d = f"({sql})"
                s = "NULL"

            return _Div()

        zero_guard = (
            f"{exact} AND {y} = 0.0 THEN {ERR_KIND_FOAR0001}"
            if fn == "mod"
            else f"0 THEN {ERR_KIND_FOAR0001}"  # never taken for + - *
        )

        class _Arith:
            k = (
                f"(CASE WHEN {zero_guard} "
                f"WHEN {both_int} THEN {K_INT} "
                f"WHEN {exact} THEN {K_DEC} ELSE {K_DBL} END)"
            )
            i = f"(CASE WHEN {both_int} THEN CAST({sql} AS INTEGER) ELSE NULL END)"
            d = f"(CASE WHEN {both_int} THEN NULL ELSE {sql} END)"
            s = "NULL"

        return _Arith()
    if fn == "neg":
        x = dbl(a)

        class _Neg:
            k = (
                f"(CASE WHEN {a.k} = {K_INT} THEN {K_INT} "
                f"WHEN {a.k} = {K_DEC} THEN {K_DEC} ELSE {K_DBL} END)"
            )
            i = f"(CASE WHEN {a.k} = {K_INT} THEN -{a.i} ELSE NULL END)"
            d = f"(CASE WHEN {a.k} = {K_INT} THEN NULL ELSE -{x} END)"
            s = "NULL"

        return _Neg()
    if fn in _SQL_CMP:
        return _bool_quad(compare(fn, a, b))
    if fn == "and":
        return _bool_quad(f"{a.i} <> 0 AND {b.i} <> 0")
    if fn == "or":
        return _bool_quad(f"{a.i} <> 0 OR {b.i} <> 0")
    if fn == "not":
        return _bool_quad(f"{a.i} = 0")
    if fn == "ebv":
        return _bool_quad(ebv(a))
    if fn == "is_node":
        return _bool_quad(f"{a.k} IN ({K_NODE}, {K_ATTR})")
    if fn == "is_numeric":
        return _bool_quad(f"{a.k} IN ({K_INT}, {K_DBL}, {K_DEC})")
    if fn == "kind_code":
        # numeric output column expected; delivered as int item payload
        return _int_quad(a.k)
    if fn == "atom_cls":
        return _int_quad(
            f"CASE WHEN {a.k} IN {_DV_NUMERIC_SQL} THEN 0 "
            f"WHEN {a.k} IN {_DV_STRING_SQL} THEN 1 "
            f"WHEN {a.k} = {K_BOOL} THEN 2 ELSE 3 END"
        )
    if fn == "atom_key":
        # within-class canonical key; SQLite's dynamic typing lets one
        # column hold REAL (numerics; NULL = NaN, and NULLs group
        # together) or TEXT (strings) per row
        return _int_quad(
            f"CASE WHEN {a.k} IN {_DV_NUMERIC_SQL} THEN {dbl(a)} "
            f"WHEN {a.k} IN {_DV_STRING_SQL} THEN {a.s} ELSE {a.i} END"
        )
    if fn == "cast_dbl":

        class _CastD:
            k = str(K_DBL)
            i = "NULL"
            d = dbl(a)
            s = "NULL"

        return _CastD()
    if fn == "cast_dec":

        class _CastDec:
            k = str(K_DEC)
            i = "NULL"
            d = dbl(a)
            s = "NULL"

        return _CastDec()
    if fn == "cast_int":
        return _int_quad(f"CAST({dbl(a)} AS INTEGER)")
    if fn == "cast_str":
        return _str_quad(txt(a))
    if fn == "node_eq":
        return _bool_quad(f"{a.k} = {b.k} AND {a.i} = {b.i}")
    if fn == "node_before":
        return _bool_quad(f"{a.i} < {b.i}")
    if fn == "node_after":
        return _bool_quad(f"{a.i} > {b.i}")
    if fn == "contains":
        return _bool_quad(f"INSTR({txt(a)}, {txt(b)}) > 0 OR {txt(b)} = ''")
    if fn == "starts_with":
        return _bool_quad(f"SUBSTR({txt(a)}, 1, LENGTH({txt(b)})) = {txt(b)}")
    if fn == "ends_with":
        return _bool_quad(
            f"LENGTH({txt(b)}) = 0 OR SUBSTR({txt(a)}, -LENGTH({txt(b)})) = {txt(b)}"
        )
    if fn == "string_length":
        return _int_quad(f"LENGTH({txt(a)})")
    if fn == "concat":
        return _str_quad(f"{txt(a)} || {txt(b)}")
    if fn == "upper_case":
        return _str_quad(f"UPPER({txt(a)})")
    if fn == "lower_case":
        return _str_quad(f"LOWER({txt(a)})")
    if fn == "normalize_space":
        return _str_quad(f"xq_normalize_space({txt(a)})")
    if fn in ("substring2", "substring3"):
        if c is not None:
            return _str_quad(f"xq_substring3({txt(a)}, {dbl(b)}, {dbl(c)})")
        return _str_quad(f"xq_substring2({txt(a)}, {dbl(b)})")
    if fn == "substring_before":
        return _str_quad(f"xq_substring_before({txt(a)}, {txt(b)})")
    if fn == "substring_after":
        return _str_quad(f"xq_substring_after({txt(a)}, {txt(b)})")
    if fn in ("floor", "ceiling", "round", "abs"):

        class _Round:
            k = f"(CASE WHEN {a.k} = {K_INT} THEN {K_INT} ELSE {K_DBL} END)"
            i = (
                f"(CASE WHEN {a.k} = {K_INT} THEN "
                + (f"ABS({a.i})" if fn == "abs" else a.i)
                + " ELSE NULL END)"
            )
            d = f"(CASE WHEN {a.k} = {K_INT} THEN NULL ELSE xq_{fn}({dbl(a)}) END)"
            s = "NULL"

        return _Round()
    if fn == "node_kind":
        return _int_quad(
            f"(CASE WHEN {a.k} = {K_ATTR} THEN -2 WHEN {a.k} = {K_NODE} THEN "
            f"(SELECT kind FROM nodes WHERE id = {a.i}) ELSE -1 END)"
        )
    if fn == "elem_name_is":
        return _bool_quad(
            f"{a.k} = {K_NODE} AND (SELECT kind FROM nodes WHERE id = {a.i}) = {NK_ELEM} "
            f"AND (SELECT name FROM nodes WHERE id = {a.i}) = {txt(b)}"
        )
    if fn == "node_name":
        return _str_quad(
            f"COALESCE(CASE WHEN {a.k} = {K_NODE} THEN "
            f"(SELECT name FROM nodes WHERE id = {a.i}) "
            f"WHEN {a.k} = {K_ATTR} THEN (SELECT name FROM attrs WHERE id = {a.i}) "
            f"ELSE NULL END, '')"
        )
    if fn == "root_of":
        return _node_root_quad(a)
    raise NotSupportedError(f"the SQL host has no translation for map fn {fn!r}")


def _node_root_quad(a):
    class _Root:
        k = str(K_NODE)
        i = (
            f"(SELECT n2.id FROM nodes n2 WHERE n2.frag = "
            f"(SELECT frag FROM nodes WHERE id = {a.i}) AND n2.parent = -1)"
        )
        d = "NULL"
        s = "NULL"

    return _Root()
