"""The SQL host back-end: execute algebra plans on SQLite.

Export the arena once, translate each plan to one SQL query
(:mod:`repro.sqlhost.sqlgen`), run it, and decode the fetched rows back
into a column-store :class:`~repro.relational.table.Table` so results are
interchangeable with the numpy evaluator's.
"""

from __future__ import annotations

import math
import sqlite3

import numpy as np

from repro.encoding.arena import NodeArena
from repro.errors import DynamicError, NotSupportedError
from repro.relational import algebra as alg
from repro.relational.items import (
    ItemColumn,
    K_ATTR,
    K_BOOL,
    K_DBL,
    K_DEC,
    K_INT,
    K_NODE,
    K_STR,
    K_UNTYPED,
)
from repro.relational.optimizer import _item_cols_of, schema_of
from repro.relational.table import Column, Table
from repro.sqlhost.schema import export_arena
from repro.sqlhost.sqlgen import SQLGenerator

_POOLED = (K_STR, K_UNTYPED)


class SQLHostBackend:
    """Run (non-constructing) algebra plans on a SQLite database."""

    def __init__(self, arena: NodeArena, documents: dict[str, int]):
        self.arena = arena
        self.documents = dict(documents)
        # export only the live document subtrees: superseded versions in
        # the append-only arena never participate in SQL evaluation
        self.connection: sqlite3.Connection = export_arena(
            arena, roots=self.documents.values()
        )

    def close(self) -> None:
        """Close the SQLite connection holding the exported arena."""
        self.connection.close()

    # ------------------------------------------------------------------ API
    def sql_for(self, plan: alg.Op) -> str:
        """The SQL text a plan translates to (for inspection/tests)."""
        return SQLGenerator(self.documents).generate(plan)

    def execute(self, plan: alg.Op) -> Table:
        """Translate, run and decode one plan."""
        for op in alg.walk(plan):
            if isinstance(op, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
                raise NotSupportedError(
                    "the SQL host cannot evaluate node constructors"
                )
        sql = self.sql_for(plan)
        rows = self.connection.execute(sql).fetchall()
        return self._decode(plan, rows)

    def execute_query(self, query: str, default_document: str | None = None) -> Table:
        """Compile an XQuery string and run it on the SQL host."""
        from repro.compiler.loop_lifting import Compiler
        from repro.relational.optimizer import optimize
        from repro.xquery.core import desugar_module
        from repro.xquery.parser import parse_query

        module = desugar_module(parse_query(query))
        compiler = Compiler(self.documents, default_document)
        plan = optimize(compiler.compile_module(module))
        return self.execute(plan)

    # -------------------------------------------------------------- decode
    def _decode(self, plan: alg.Op, rows: list[tuple]) -> Table:
        schema = schema_of(plan, {})
        item_cols = _item_cols_of(plan, {})
        pool = self.arena.pool
        columns: dict[str, Column] = {}
        idx = 0
        n = len(rows)
        for name in schema:
            if name in item_cols:
                kinds = np.empty(n, dtype=np.uint8)
                data = np.empty(n, dtype=np.int64)
                for r, row in enumerate(rows):
                    k = int(row[idx])
                    if k < 0:
                        # sentinel kinds: SQL cannot raise, so dynamic
                        # errors travel as impossible kind codes
                        from repro.sqlhost.sqlgen import ERR_KIND_FOAR0001

                        if k == ERR_KIND_FOAR0001:
                            raise DynamicError(
                                "integer/decimal division by zero",
                                code="err:FOAR0001",
                            )
                        raise DynamicError(
                            "aggregate over non-numeric items",
                            code="err:FORG0006",
                        )
                    kinds[r] = k
                    if k in (K_INT, K_BOOL, K_NODE, K_ATTR):
                        data[r] = int(row[idx + 1])
                    elif k in (K_DBL, K_DEC):
                        v = row[idx + 2]
                        value = math.nan if v is None else float(v)
                        data[r] = np.float64(value).view(np.int64)
                    else:  # pooled kinds: re-intern the travelled text
                        data[r] = pool.intern(row[idx + 3] or "")
                columns[name] = ItemColumn(kinds, data)
                idx += 4
            else:
                columns[name] = np.asarray(
                    [int(row[idx]) for row in rows], dtype=np.int64
                )
                idx += 1
        return Table(columns)
