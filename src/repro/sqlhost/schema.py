"""Relational schema export: the node arena as SQL tables.

The encoding mirrors the arena (``pre|size|level`` plus properties), with
two SQL-host-specific choices:

* property surrogates are decoded to TEXT on export — a SQL query cannot
  intern new strings into the Python pool, so strings travel as values;
* each node row carries its precomputed ``strval`` (the node's XPath
  string-value), which makes atomization a plain column reference —
  playing the role of an RDBMS materialised index.
"""

from __future__ import annotations

import math
import sqlite3

import numpy as np

from repro.encoding.arena import NodeArena
from repro.relational.items import xpath_substring

DDL = """
CREATE TABLE nodes (
    id      INTEGER PRIMARY KEY,
    kind    INTEGER NOT NULL,
    size    INTEGER NOT NULL,
    level   INTEGER NOT NULL,
    frag    INTEGER NOT NULL,
    parent  INTEGER NOT NULL,
    name    TEXT,
    value   TEXT,
    strval  TEXT,
    fragend INTEGER NOT NULL
);
CREATE TABLE attrs (
    id     INTEGER PRIMARY KEY,
    owner  INTEGER NOT NULL,
    name   TEXT NOT NULL,
    value  TEXT NOT NULL
);
CREATE INDEX idx_nodes_parent ON nodes(parent);
CREATE INDEX idx_nodes_name   ON nodes(name);
CREATE INDEX idx_attrs_owner  ON attrs(owner);
"""


def _register_functions(con: sqlite3.Connection) -> None:
    """XQuery cast semantics as SQL scalar functions."""

    def xq_double(text):
        if text is None:
            return None
        try:
            t = str(text).strip()
            if not t:
                return None
            if t == "INF":
                return math.inf
            if t == "-INF":
                return -math.inf
            return float(t)
        except (ValueError, TypeError):
            return None  # NaN is represented as NULL inside the SQL host

    def xq_fmt_double(value):
        if value is None:
            return "NaN"
        from repro.relational.items import format_double

        return format_double(float(value))

    def xq_mod(x, y):
        if x is None or y is None or y == 0:
            return None
        return float(np.fmod(x, y))

    def xq_substring2(s, start):
        if s is None or start is None:
            return ""
        return xpath_substring(s, float(start))

    def xq_substring3(s, start, length):
        if s is None or start is None or length is None:
            return ""
        return xpath_substring(s, float(start), float(length))

    def xq_substring_before(s, sub):
        if not sub or sub not in (s or ""):
            return ""
        return s.partition(sub)[0]

    def xq_substring_after(s, sub):
        if not sub or sub not in (s or ""):
            return ""
        return s.partition(sub)[2]

    def xq_normalize_space(s):
        return " ".join((s or "").split())

    con.create_function("xq_double", 1, xq_double, deterministic=True)
    con.create_function("xq_fmt_double", 1, xq_fmt_double, deterministic=True)
    con.create_function("xq_mod", 2, xq_mod, deterministic=True)
    con.create_function("xq_substring2", 2, xq_substring2, deterministic=True)
    con.create_function("xq_substring3", 3, xq_substring3, deterministic=True)
    con.create_function(
        "xq_substring_before", 2, xq_substring_before, deterministic=True
    )
    con.create_function(
        "xq_substring_after", 2, xq_substring_after, deterministic=True
    )
    con.create_function(
        "xq_normalize_space", 1, xq_normalize_space, deterministic=True
    )
    def _finite(fn):
        """floor/ceil/round are identities on non-finite doubles (and NaN
        travels as NULL, already handled by the None check)."""

        def wrapped(v):
            if v is None:
                return None
            v = float(v)
            if math.isinf(v):
                return v
            return float(fn(v))

        return wrapped

    con.create_function(
        "xq_floor", 1, _finite(math.floor), deterministic=True
    )
    con.create_function(
        "xq_ceiling", 1, _finite(math.ceil), deterministic=True
    )
    con.create_function(
        "xq_round", 1, _finite(lambda v: math.floor(v + 0.5)),
        deterministic=True,
    )
    con.create_function(
        "xq_abs", 1, lambda v: None if v is None else abs(float(v)),
        deterministic=True,
    )


def export_arena(arena: NodeArena, roots=None) -> sqlite3.Connection:
    """Create an in-memory SQLite database holding the arena.

    ``roots`` (an iterable of fragment-root row ids, e.g. the document
    catalog's values) restricts the export to those subtrees.  Row ids
    are stored explicitly, so region predicates over the exported subset
    behave exactly as over a full export — but superseded document
    versions, which the append-only arena never reclaims, stop being
    copied into every new SQL host.  ``roots=None`` exports everything.
    """
    con = sqlite3.connect(":memory:")
    con.executescript(DDL)
    _register_functions(con)
    # the export scans whole columns (attribute owners in particular are
    # read unrestricted): fault every paged fragment in first
    arena.ensure_all()
    pool = arena.pool
    if roots is None:
        node_ids = np.arange(arena.num_nodes, dtype=np.int64)
    else:
        spans = [
            np.arange(root, root + int(arena.size[root]) + 1, dtype=np.int64)
            for root in sorted(roots)
        ]
        node_ids = (
            np.concatenate(spans) if spans else np.empty(0, dtype=np.int64)
        )
    if len(node_ids):
        strvals = arena.string_value_ids(node_ids)
        fragends = arena.frag_end(node_ids)
        rows = []
        for pos, i in enumerate(node_ids):
            i = int(i)
            name_id = int(arena.name[i])
            value_id = int(arena.value[i])
            rows.append(
                (
                    i,
                    int(arena.kind[i]),
                    int(arena.size[i]),
                    int(arena.level[i]),
                    int(arena.frag[i]),
                    int(arena.parent[i]),
                    pool.value(name_id) if name_id >= 0 else None,
                    pool.value(value_id) if value_id >= 0 else None,
                    pool.value(int(strvals[pos])),
                    int(fragends[pos]),
                )
            )
        con.executemany("INSERT INTO nodes VALUES (?,?,?,?,?,?,?,?,?,?)", rows)
    if arena.num_attrs:
        if roots is None:
            attr_ids = range(arena.num_attrs)
        else:
            live = set(node_ids.tolist())
            attr_ids = [
                j
                for j in range(arena.num_attrs)
                if int(arena.attr_owner[j]) in live
            ]
        arows = [
            (
                j,
                int(arena.attr_owner[j]),
                pool.value(int(arena.attr_name[j])),
                pool.value(int(arena.attr_value[j])),
            )
            for j in attr_ids
        ]
        con.executemany("INSERT INTO attrs VALUES (?,?,?,?)", arows)
    con.commit()
    return con
