"""An alternative relational back-end: XQuery on a SQL host.

The paper closes its engine overview with "the use of alternative
back-ends (e.g., SQL) is current work in progress", pointing at the
lineage paper [6], *XQuery on SQL Hosts* (VLDB 2004).  This subpackage
realises that: the same loop-lifted algebra plans are translated into a
single SQL query — one common table expression per operator, MonetDB's
``mark`` rendered as ``ROW_NUMBER() OVER``, the staircase join rendered
as the plain region self-joins an off-the-shelf RDBMS would run — and
executed on SQLite.

Restrictions: node *construction* has no SQL equivalent (it mutates the
arena), so plans containing constructor operators are rejected; queries
that only select, join, aggregate and atomize run entirely inside SQL.
"""

from repro.sqlhost.backend import SQLHostBackend

__all__ = ["SQLHostBackend"]
