"""Abstract syntax for the supported XQuery dialect.

Every node is a plain dataclass.  The parser produces this AST; the
desugarer (:mod:`repro.xquery.core`) rewrites the convenience forms
(direct constructors, abbreviated steps, quantifiers, ``//``) into a small
core that both back-ends — the loop-lifting compiler and the nested-loop
baseline interpreter — consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.encoding.axes import Axis, NodeTest


class Expr:
    """Base class of all expression nodes."""

    __slots__ = ()


@dataclass
class Literal(Expr):
    """An integer, decimal/double or string literal."""

    value: Union[int, float, str]


@dataclass
class EmptySeq(Expr):
    """The empty sequence ``()``."""


@dataclass
class Sequence(Expr):
    """Comma sequence ``(e1, e2, ...)`` (already flattened)."""

    items: list[Expr]


@dataclass
class RangeExpr(Expr):
    """``e1 to e2`` — integer range sequence."""

    lo: Expr
    hi: Expr


@dataclass
class VarRef(Expr):
    """``$name``."""

    name: str


@dataclass
class ContextItem(Expr):
    """``.`` — the context item (inside predicates / steps)."""


@dataclass
class ForClause:
    """``for $var [at $pos] in expr`` (one binding)."""

    var: str
    expr: Expr
    pos_var: Optional[str] = None


@dataclass
class LetClause:
    """``let $var := expr``."""

    var: str
    expr: Expr


@dataclass
class OrderSpec:
    """One ``order by`` key."""

    expr: Expr
    descending: bool = False
    empty_greatest: bool = False


@dataclass
class FLWOR(Expr):
    """A full FLWOR: clauses, optional where, order specs, return."""

    clauses: list[Union[ForClause, LetClause]]
    where: Optional[Expr]
    order: list[OrderSpec]
    ret: Expr
    stable: bool = False


@dataclass
class Quantified(Expr):
    """``some/every $v in e (, ...) satisfies cond``."""

    kind: str  # "some" | "every"
    bindings: list[tuple[str, Expr]]
    satisfies: Expr


@dataclass
class IfExpr(Expr):
    """``if (cond) then e1 else e2``."""

    cond: Expr
    then: Expr
    els: Expr


@dataclass
class SeqTypeTest:
    """A (simplified) sequence type for typeswitch cases.

    ``kind``: ``element``/``attribute``/``text``/``node``/``item``/
    ``empty-sequence`` or an atomic type name like ``xs:integer``;
    ``name``: element/attribute name restriction; ``occurrence`` one of
    ``""``, ``"?"``, ``"*"``, ``"+"``.
    """

    kind: str
    name: Optional[str] = None
    occurrence: str = ""


@dataclass
class TypeswitchCase:
    """``case [$var as] type return expr``."""

    test: SeqTypeTest
    var: Optional[str]
    expr: Expr


@dataclass
class Typeswitch(Expr):
    """``typeswitch (e) case ... default [$var] return e``."""

    operand: Expr
    cases: list[TypeswitchCase]
    default_var: Optional[str]
    default: Expr


@dataclass
class NodeUnion(Expr):
    """``e1 | e2`` — node-sequence union (duplicate-free, document order)."""

    lhs: Expr
    rhs: Expr


@dataclass
class NodeSetOp(Expr):
    """``e1 except e2`` / ``e1 intersect e2`` — node-identity set ops."""

    kind: str  # "except" | "intersect"
    lhs: Expr
    rhs: Expr


@dataclass
class Arith(Expr):
    """Arithmetic: ``+ - * div idiv mod``."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Neg(Expr):
    """Unary minus."""

    operand: Expr


@dataclass
class ValueComp(Expr):
    """Value comparison: ``eq ne lt le gt ge`` (singleton semantics)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class GeneralComp(Expr):
    """General comparison: ``= != < <= > >=`` (existential semantics)."""

    op: str  # normalised to eq/ne/lt/le/gt/ge
    lhs: Expr
    rhs: Expr


@dataclass
class NodeComp(Expr):
    """Node comparison: ``is`` (identity), ``<<``/``>>`` (document order)."""

    op: str  # "is" | "before" | "after"
    lhs: Expr
    rhs: Expr


@dataclass
class BoolOp(Expr):
    """``and`` / ``or`` (EBV of both operands)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Step:
    """One axis step with predicates."""

    axis: Axis
    test: NodeTest
    predicates: list[Expr] = field(default_factory=list)


@dataclass
class PathExpr(Expr):
    """``start/step/step...``; ``start`` is None for a leading ``/``
    (resolved against the default document)."""

    start: Optional[Expr]
    steps: list[Union[Step, "FilterStep"]]
    absolute: bool = False


@dataclass
class FilterStep:
    """A non-axis step: primary expression with predicates (e.g. a nested
    path continued from a function call) appearing inside a path."""

    expr: Expr
    predicates: list[Expr] = field(default_factory=list)


@dataclass
class Filter(Expr):
    """Predicated primary expression outside a path: ``$x[...]``."""

    base: Expr
    predicates: list[Expr]


@dataclass
class FunctionCall(Expr):
    """``name(args...)`` — built-in or user-defined."""

    name: str
    args: list[Expr]


@dataclass
class DirectElement(Expr):
    """Direct element constructor ``<a b="x{e}">content</a>``.

    ``attributes`` values are lists of string/Expr parts (attribute value
    templates); ``content`` items are strings (character data) or Exprs
    (enclosed ``{...}`` or nested constructors).
    """

    name: str
    attributes: list[tuple[str, list[Union[str, Expr]]]]
    content: list[Union[str, Expr]]


@dataclass
class CompElement(Expr):
    """Computed element constructor ``element {name} {content}``."""

    name: Expr
    content: Expr


@dataclass
class CompAttribute(Expr):
    """Computed attribute constructor ``attribute {name} {value}``."""

    name: Expr
    value: Expr


@dataclass
class CompText(Expr):
    """Computed text constructor ``text {expr}``."""

    content: Expr


@dataclass
class CastExpr(Expr):
    """``e cast as xs:type`` (the few atomic types we know)."""

    operand: Expr
    type_name: str


@dataclass
class InstanceOf(Expr):
    """``e instance of SeqType`` (simplified)."""

    operand: Expr
    test: SeqTypeTest


# --------------------------------------------------------------------------
# XQuery Update Facility (the supported subset)
# --------------------------------------------------------------------------
@dataclass
class InsertExpr(Expr):
    """``insert node(s) Source (as first into | as last into | into |
    before | after) Target``.

    ``position`` is one of ``into``/``first``/``last``/``before``/
    ``after`` (``into`` is the unordered form; this implementation
    appends, like ``as last``).
    """

    source: Expr
    position: str
    target: Expr


@dataclass
class DeleteExpr(Expr):
    """``delete node(s) Target`` — every target node is removed."""

    target: Expr


@dataclass
class ReplaceExpr(Expr):
    """``replace node Target with Source`` (the target node and its
    subtree are replaced by a copy of the source sequence)."""

    target: Expr
    source: Expr


@dataclass
class ReplaceValueExpr(Expr):
    """``replace value of node Target with Source`` — the target keeps
    its identity/name but its string value becomes the source's."""

    target: Expr
    value: Expr


@dataclass
class RenameExpr(Expr):
    """``rename node Target as NameExpr`` (elements, attributes, PIs)."""

    target: Expr
    name: Expr


#: the updating expression node types (XQUF "updating expression" test)
UPDATE_NODES = (InsertExpr, DeleteExpr, ReplaceExpr, ReplaceValueExpr, RenameExpr)


@dataclass
class FunctionDecl:
    """``declare function name($p [as type], ...) [as type] { body }``."""

    name: str
    params: list[str]
    body: Expr


@dataclass
class ExternalVar:
    """``declare variable $name [as type] external;`` — a query parameter
    whose value is supplied at execution time (prepared-query binding).

    ``type_name`` is the declared atomic type (``xs:integer``, ...) or
    None when the declaration is untyped.
    """

    name: str
    type_name: Optional[str] = None


@dataclass
class Module:
    """A query module: function declarations, external variable
    declarations (query parameters) and the main expression."""

    functions: list[FunctionDecl]
    body: Expr
    external_vars: list[ExternalVar] = field(default_factory=list)
