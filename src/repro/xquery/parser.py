"""Recursive-descent parser for the supported XQuery dialect.

Builds the AST of :mod:`repro.xquery.ast` from query text.  The grammar is
the XQuery 1.0 expression grammar restricted to the paper's Table 2 plus
the constructs XMark needs: the full FLWOR (multiple for/let clauses,
``at`` positional variables, ``where``, ``order by``), quantified
expressions, typeswitch, direct and computed constructors (with attribute
value templates), path expressions with all axes, predicates, arithmetic,
all three comparison families, user-defined functions and a prolog with
``declare function`` / ``declare variable`` / ``declare namespace``.
"""

from __future__ import annotations

from repro.encoding.axes import Axis, NodeTest
from repro.errors import XQuerySyntaxError
from repro.xml.escape import resolve_entities
from repro.xquery import ast
from repro.xquery.lexer import Lexer, Token

_AXES = {axis.value: axis for axis in Axis}

_KIND_TESTS = {
    "text",
    "node",
    "comment",
    "processing-instruction",
    "element",
    "attribute",
    "document-node",
}

#: names that cannot be function names in a call position
_RESERVED_FN = _KIND_TESTS | {"if", "typeswitch", "item", "empty-sequence"}

_GENERAL_COMP = {"=": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge"}
_VALUE_COMP = {"eq", "ne", "lt", "le", "gt", "ge"}


def parse_query(text: str) -> ast.Module:
    """Parse a complete query (prolog + body) into a :class:`ast.Module`."""
    return _Parser(text).parse_module()


class _Parser:
    def __init__(self, text: str):
        self.lexer = Lexer(text)

    # ------------------------------------------------------------ utilities
    def peek(self, k: int = 0) -> Token:
        return self.lexer.peek(k)

    def next(self) -> Token:
        return self.lexer.next()

    def error(self, message: str, token: Token | None = None) -> XQuerySyntaxError:
        token = token or self.peek()
        line, col = self.lexer.line_col(token.pos)
        return XQuerySyntaxError(message, line, col)

    def expect_symbol(self, sym: str) -> Token:
        token = self.next()
        if not token.is_symbol(sym):
            raise self.error(f"expected {sym!r}, found {token.value!r}", token)
        return token

    def expect_name(self, *names: str) -> Token:
        token = self.next()
        if token.type != "name" or (names and token.value not in names):
            raise self.error(f"expected {' or '.join(names)}", token)
        return token

    def accept_symbol(self, sym: str) -> bool:
        if self.peek().is_symbol(sym):
            self.next()
            return True
        return False

    def accept_name(self, *names: str) -> bool:
        if self.peek().is_name(*names):
            self.next()
            return True
        return False

    def var_name(self) -> str:
        self.expect_symbol("$")
        return self.expect_name().value

    # -------------------------------------------------------------- module
    def parse_module(self) -> ast.Module:
        functions: list[ast.FunctionDecl] = []
        global_lets: list[ast.LetClause] = []
        external_vars: list[ast.ExternalVar] = []
        while self.peek().is_name("declare"):
            kind = self.peek(1)
            if kind.is_name("function"):
                functions.append(self._parse_function_decl())
            elif kind.is_name("variable"):
                self.next(), self.next()
                name = self.var_name()
                declared = {v.name for v in external_vars} | {
                    c.var for c in global_lets
                }
                if name in declared:
                    raise self.error(
                        f"duplicate global variable declaration ${name}"
                    )
                type_name = None
                if self.accept_name("as"):
                    seq_type = self._parse_seq_type()
                    type_name = seq_type.kind
                if self.accept_name("external"):
                    external_vars.append(ast.ExternalVar(name, type_name))
                    self.expect_symbol(";")
                    continue
                self.expect_symbol(":=")
                global_lets.append(ast.LetClause(name, self.parse_expr_single()))
                self.expect_symbol(";")
            elif kind.is_name("namespace"):
                self.next(), self.next()
                self.expect_name()
                self.expect_symbol("=")
                tok = self.next()
                if tok.type != "string":
                    raise self.error("expected a namespace URI string", tok)
                self.expect_symbol(";")
            else:
                raise self.error("unsupported declaration", kind)
        body = self.parse_expr()
        tok = self.peek()
        if tok.type != "eof":
            raise self.error(f"unexpected trailing input {tok.value!r}", tok)
        if global_lets:
            body = ast.FLWOR(list(global_lets), None, [], body)
        return ast.Module(functions, body, external_vars)

    def _parse_function_decl(self) -> ast.FunctionDecl:
        self.expect_name("declare")
        self.expect_name("function")
        name = self.expect_name().value
        self.expect_symbol("(")
        params: list[str] = []
        if not self.peek().is_symbol(")"):
            while True:
                params.append(self.var_name())
                if self.accept_name("as"):
                    self._parse_seq_type()
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        if self.accept_name("as"):
            self._parse_seq_type()
        self.expect_symbol("{")
        body = self.parse_expr()
        self.expect_symbol("}")
        self.expect_symbol(";")
        return ast.FunctionDecl(name, params, body)

    # --------------------------------------------------------- expressions
    def parse_expr(self) -> ast.Expr:
        first = self.parse_expr_single()
        if not self.peek().is_symbol(","):
            return first
        items = [first]
        while self.accept_symbol(","):
            items.append(self.parse_expr_single())
        flat: list[ast.Expr] = []
        for item in items:
            if isinstance(item, ast.Sequence):
                flat.extend(item.items)
            elif not isinstance(item, ast.EmptySeq):
                flat.append(item)
        if not flat:
            return ast.EmptySeq()
        if len(flat) == 1:
            return flat[0]
        return ast.Sequence(flat)

    def parse_expr_single(self) -> ast.Expr:
        tok = self.peek()
        if tok.type == "name":
            nxt = self.peek(1)
            if tok.value in ("for", "let") and nxt.is_symbol("$"):
                return self._parse_flwor()
            if tok.value in ("some", "every") and nxt.is_symbol("$"):
                return self._parse_quantified()
            if tok.value == "if" and nxt.is_symbol("("):
                return self._parse_if()
            if tok.value == "typeswitch" and nxt.is_symbol("("):
                return self._parse_typeswitch()
            # XQuery Update Facility expressions; the two-name lookahead
            # keeps plain paths over elements named insert/delete/... valid
            if tok.value == "insert" and nxt.is_name("node", "nodes"):
                return self._parse_insert()
            if tok.value == "delete" and nxt.is_name("node", "nodes"):
                return self._parse_delete()
            if tok.value == "replace" and (
                nxt.is_name("node")
                or (nxt.is_name("value") and self.peek(2).is_name("of"))
            ):
                return self._parse_replace()
            if tok.value == "rename" and nxt.is_name("node"):
                return self._parse_rename()
        return self.parse_or()

    # ------------------------------------------------- update expressions
    def _parse_insert(self) -> ast.InsertExpr:
        self.next(), self.next()  # insert node|nodes
        source = self.parse_expr_single()
        if self.accept_name("as"):
            position = self.expect_name("first", "last").value
            self.expect_name("into")
        elif self.accept_name("into"):
            position = "into"
        elif self.accept_name("before"):
            position = "before"
        elif self.accept_name("after"):
            position = "after"
        else:
            raise self.error(
                "expected 'into', 'as first into', 'as last into', "
                "'before' or 'after' in insert expression"
            )
        return ast.InsertExpr(source, position, self.parse_expr_single())

    def _parse_delete(self) -> ast.DeleteExpr:
        self.next(), self.next()  # delete node|nodes
        return ast.DeleteExpr(self.parse_expr_single())

    def _parse_replace(self) -> ast.Expr:
        self.next()  # replace
        value_of = self.accept_name("value")
        if value_of:
            self.expect_name("of")
        self.expect_name("node")
        target = self.parse_expr_single()
        self.expect_name("with")
        source = self.parse_expr_single()
        if value_of:
            return ast.ReplaceValueExpr(target, source)
        return ast.ReplaceExpr(target, source)

    def _parse_rename(self) -> ast.RenameExpr:
        self.next(), self.next()  # rename node
        target = self.parse_expr_single()
        self.expect_name("as")
        return ast.RenameExpr(target, self.parse_expr_single())

    def _parse_flwor(self) -> ast.FLWOR:
        clauses: list[object] = []
        while True:
            tok = self.peek()
            if tok.is_name("for") and self.peek(1).is_symbol("$"):
                self.next()
                while True:
                    var = self.var_name()
                    if self.accept_name("as"):
                        self._parse_seq_type()
                    pos_var = None
                    if self.accept_name("at"):
                        pos_var = self.var_name()
                    self.expect_name("in")
                    clauses.append(
                        ast.ForClause(var, self.parse_expr_single(), pos_var)
                    )
                    if not self.accept_symbol(","):
                        break
            elif tok.is_name("let") and self.peek(1).is_symbol("$"):
                self.next()
                while True:
                    var = self.var_name()
                    if self.accept_name("as"):
                        self._parse_seq_type()
                    self.expect_symbol(":=")
                    clauses.append(ast.LetClause(var, self.parse_expr_single()))
                    if not self.accept_symbol(","):
                        break
            else:
                break
        where = None
        if self.accept_name("where"):
            where = self.parse_expr_single()
        order: list[ast.OrderSpec] = []
        stable = False
        if self.peek().is_name("stable") and self.peek(1).is_name("order"):
            self.next()
            stable = True
        if self.peek().is_name("order") and self.peek(1).is_name("by"):
            self.next(), self.next()
            while True:
                expr = self.parse_expr_single()
                descending = False
                if self.accept_name("descending"):
                    descending = True
                else:
                    self.accept_name("ascending")
                empty_greatest = False
                if self.accept_name("empty"):
                    tok = self.expect_name("greatest", "least")
                    empty_greatest = tok.value == "greatest"
                order.append(ast.OrderSpec(expr, descending, empty_greatest))
                if not self.accept_symbol(","):
                    break
        self.expect_name("return")
        ret = self.parse_expr_single()
        return ast.FLWOR(clauses, where, order, ret, stable)

    def _parse_quantified(self) -> ast.Quantified:
        kind = self.next().value
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            var = self.var_name()
            if self.accept_name("as"):
                self._parse_seq_type()
            self.expect_name("in")
            bindings.append((var, self.parse_expr_single()))
            if not self.accept_symbol(","):
                break
        self.expect_name("satisfies")
        return ast.Quantified(kind, bindings, self.parse_expr_single())

    def _parse_if(self) -> ast.IfExpr:
        self.expect_name("if")
        self.expect_symbol("(")
        cond = self.parse_expr()
        self.expect_symbol(")")
        self.expect_name("then")
        then = self.parse_expr_single()
        self.expect_name("else")
        els = self.parse_expr_single()
        return ast.IfExpr(cond, then, els)

    def _parse_typeswitch(self) -> ast.Typeswitch:
        self.expect_name("typeswitch")
        self.expect_symbol("(")
        operand = self.parse_expr()
        self.expect_symbol(")")
        cases: list[ast.TypeswitchCase] = []
        while self.peek().is_name("case"):
            self.next()
            var = None
            if self.peek().is_symbol("$"):
                var = self.var_name()
                self.expect_name("as")
            test = self._parse_seq_type()
            self.expect_name("return")
            cases.append(ast.TypeswitchCase(test, var, self.parse_expr_single()))
        if not cases:
            raise self.error("typeswitch needs at least one case")
        self.expect_name("default")
        default_var = None
        if self.peek().is_symbol("$"):
            default_var = self.var_name()
        self.expect_name("return")
        default = self.parse_expr_single()
        return ast.Typeswitch(operand, cases, default_var, default)

    def _parse_seq_type(self) -> ast.SeqTypeTest:
        tok = self.next()
        if tok.type != "name":
            raise self.error("expected a sequence type", tok)
        kind = tok.value
        name = None
        if kind in _KIND_TESTS or kind in ("item", "empty-sequence"):
            self.expect_symbol("(")
            if not self.peek().is_symbol(")"):
                inner = self.next()
                if inner.type == "name":
                    name = inner.value
                elif inner.is_symbol("*"):
                    name = None
                else:
                    raise self.error("bad kind test argument", inner)
            self.expect_symbol(")")
        occurrence = ""
        if self.peek().is_symbol("?", "*", "+"):
            occurrence = self.next().value
        return ast.SeqTypeTest(kind, name, occurrence)

    # ----------------------------------------------------------- operators
    def parse_or(self) -> ast.Expr:
        expr = self.parse_and()
        while self.peek().is_name("or"):
            self.next()
            expr = ast.BoolOp("or", expr, self.parse_and())
        return expr

    def parse_and(self) -> ast.Expr:
        expr = self.parse_comparison()
        while self.peek().is_name("and"):
            self.next()
            expr = ast.BoolOp("and", expr, self.parse_comparison())
        return expr

    def parse_comparison(self) -> ast.Expr:
        expr = self.parse_range()
        tok = self.peek()
        if tok.type == "symbol" and tok.value in _GENERAL_COMP:
            op = _GENERAL_COMP[self.next().value]
            return ast.GeneralComp(op, expr, self.parse_range())
        if tok.is_symbol("<<"):
            self.next()
            return ast.NodeComp("before", expr, self.parse_range())
        if tok.is_symbol(">>"):
            self.next()
            return ast.NodeComp("after", expr, self.parse_range())
        if tok.type == "name" and tok.value in _VALUE_COMP and self._operator_follows():
            op = self.next().value
            return ast.ValueComp(op, expr, self.parse_range())
        if tok.is_name("is") and self._operator_follows():
            self.next()
            return ast.NodeComp("is", expr, self.parse_range())
        if tok.is_name("instance") and self.peek(1).is_name("of"):
            self.next(), self.next()
            return ast.InstanceOf(expr, self._parse_seq_type())
        return expr

    def _operator_follows(self) -> bool:
        """Disambiguate a name used as a binary operator from a step name:
        an operator must be followed by something that starts an operand."""
        nxt = self.peek(1)
        if nxt.type in ("integer", "decimal", "double", "string", "name"):
            return True
        return nxt.is_symbol("$", "(", "-", "+", "/", "//", ".", "@", "<")

    def parse_range(self) -> ast.Expr:
        expr = self.parse_additive()
        if self.peek().is_name("to") and self._operator_follows():
            self.next()
            return ast.RangeExpr(expr, self.parse_additive())
        return expr

    def parse_additive(self) -> ast.Expr:
        expr = self.parse_multiplicative()
        while self.peek().is_symbol("+", "-"):
            op = "add" if self.next().value == "+" else "sub"
            expr = ast.Arith(op, expr, self.parse_multiplicative())
        return expr

    def parse_multiplicative(self) -> ast.Expr:
        expr = self.parse_union()
        while True:
            tok = self.peek()
            if tok.is_symbol("*"):
                self.next()
                expr = ast.Arith("mul", expr, self.parse_union())
            elif tok.type == "name" and tok.value in ("div", "idiv", "mod") and self._operator_follows():
                op = self.next().value
                expr = ast.Arith(op, expr, self.parse_union())
            else:
                return expr

    def parse_union(self) -> ast.Expr:
        expr = self.parse_intersect_except()
        while True:
            tok = self.peek()
            if tok.is_symbol("|") or (tok.is_name("union") and self._operator_follows()):
                self.next()
                expr = ast.NodeUnion(expr, self.parse_intersect_except())
            else:
                return expr

    def parse_intersect_except(self) -> ast.Expr:
        expr = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.type == "name" and tok.value in ("intersect", "except") and self._operator_follows():
                kind = self.next().value
                expr = ast.NodeSetOp(kind, expr, self.parse_unary())
            else:
                return expr

    def parse_unary(self) -> ast.Expr:
        negate = False
        while self.peek().is_symbol("-", "+"):
            if self.next().value == "-":
                negate = not negate
        expr = self.parse_cast()
        return ast.Neg(expr) if negate else expr

    def parse_cast(self) -> ast.Expr:
        expr = self.parse_path()
        if self.peek().is_name("cast") and self.peek(1).is_name("as"):
            self.next(), self.next()
            type_name = self.expect_name().value
            self.accept_symbol("?")
            return ast.CastExpr(expr, type_name)
        return expr

    # ---------------------------------------------------------------- paths
    def parse_path(self) -> ast.Expr:
        tok = self.peek()
        if tok.is_symbol("/"):
            self.next()
            if self._starts_step():
                steps = self._parse_relative_steps()
                return ast.PathExpr(None, steps, absolute=True)
            return ast.PathExpr(None, [], absolute=True)
        if tok.is_symbol("//"):
            self.next()
            steps = [ast.Step(Axis.DESCENDANT_OR_SELF, NodeTest("node"))]
            steps.extend(self._parse_relative_steps())
            return ast.PathExpr(None, steps, absolute=True)
        if not self._starts_step():
            raise self.error(f"unexpected token {tok.value!r}", tok)
        steps = self._parse_relative_steps()
        if len(steps) == 1 and isinstance(steps[0], ast.FilterStep):
            fs = steps[0]
            if not fs.predicates:
                return fs.expr
            return ast.Filter(fs.expr, fs.predicates)
        return ast.PathExpr(None, steps, absolute=False)

    def _parse_relative_steps(self) -> list:
        steps = [self._parse_step()]
        while True:
            if self.accept_symbol("/"):
                steps.append(self._parse_step())
            elif self.accept_symbol("//"):
                steps.append(ast.Step(Axis.DESCENDANT_OR_SELF, NodeTest("node")))
                steps.append(self._parse_step())
            else:
                return steps

    def _starts_step(self) -> bool:
        tok = self.peek()
        if tok.type in ("integer", "decimal", "double", "string"):
            return True
        if tok.type == "name":
            return True
        return tok.is_symbol("$", "(", ".", "..", "@", "*", "<")

    def _looks_like_axis_step(self) -> bool:
        tok = self.peek()
        if tok.is_symbol("@", "..", "*"):
            return True
        if tok.type != "name":
            return False
        nxt = self.peek(1)
        if nxt.is_symbol("::"):
            return True
        if nxt.is_symbol("("):
            return tok.value in _KIND_TESTS  # text(), node(), element(x)...
        if tok.value in ("element", "attribute", "text") and (
            nxt.is_symbol("{")
            or (nxt.type == "name" and self.peek(2).is_symbol("{"))
        ):
            return False  # computed constructor, not a name test
        return True  # bare name: child::name element test

    def _parse_step(self):
        if self._looks_like_axis_step():
            step = self._parse_axis_step()
        else:
            step = ast.FilterStep(self._parse_primary(), [])
        step.predicates.extend(self._parse_predicates())
        return step

    def _parse_predicates(self) -> list[ast.Expr]:
        predicates: list[ast.Expr] = []
        while self.accept_symbol("["):
            predicates.append(self.parse_expr())
            self.expect_symbol("]")
        return predicates

    def _parse_axis_step(self) -> ast.Step:
        tok = self.peek()
        if tok.is_symbol(".."):
            self.next()
            return ast.Step(Axis.PARENT, NodeTest("node"))
        if tok.is_symbol("@"):
            self.next()
            return ast.Step(Axis.ATTRIBUTE, self._parse_node_test(Axis.ATTRIBUTE))
        if tok.type == "name" and self.peek(1).is_symbol("::"):
            axis_name = self.next().value
            self.next()
            axis = _AXES.get(axis_name)
            if axis is None:
                raise self.error(f"unknown axis {axis_name!r}", tok)
            return ast.Step(axis, self._parse_node_test(axis))
        return ast.Step(Axis.CHILD, self._parse_node_test(Axis.CHILD))

    def _parse_node_test(self, axis: Axis) -> NodeTest:
        principal = "attribute" if axis is Axis.ATTRIBUTE else "element"
        tok = self.next()
        if tok.is_symbol("*"):
            return NodeTest(principal, None)
        if tok.type != "name":
            raise self.error("expected a node test", tok)
        name = tok.value
        if name in _KIND_TESTS and self.peek().is_symbol("("):
            self.next()
            inner = None
            if not self.peek().is_symbol(")"):
                arg = self.next()
                if arg.type == "name":
                    inner = arg.value
                elif arg.type == "string":
                    inner = arg.value
                elif arg.is_symbol("*"):
                    inner = None
                else:
                    raise self.error("bad kind test argument", arg)
            self.expect_symbol(")")
            if name == "processing-instruction":
                return NodeTest("processing-instruction", inner)
            if name in ("element", "attribute") and inner is not None:
                return NodeTest(name, inner)
            return NodeTest(name)
        return NodeTest(principal, name)

    # -------------------------------------------------------------- primary
    def _parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.type in ("integer", "decimal", "double", "string"):
            self.next()
            return ast.Literal(tok.value)
        if tok.is_symbol("$"):
            return ast.VarRef(self.var_name())
        if tok.is_symbol("("):
            self.next()
            if self.accept_symbol(")"):
                return ast.EmptySeq()
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if tok.is_symbol("."):
            self.next()
            return ast.ContextItem()
        if tok.is_symbol("<"):
            return self._parse_direct_constructor()
        if tok.type == "name":
            nxt = self.peek(1)
            if tok.value in ("element", "attribute", "text") and (
                nxt.is_symbol("{") or (nxt.type == "name" and self.peek(2).is_symbol("{"))
            ):
                return self._parse_computed_constructor()
            if nxt.is_symbol("(") and tok.value not in _RESERVED_FN:
                return self._parse_function_call()
        raise self.error(f"unexpected token {tok.value!r}", tok)

    def _parse_function_call(self) -> ast.FunctionCall:
        name = self.next().value
        self.expect_symbol("(")
        args: list[ast.Expr] = []
        if not self.peek().is_symbol(")"):
            while True:
                args.append(self.parse_expr_single())
                if not self.accept_symbol(","):
                    break
        self.expect_symbol(")")
        return ast.FunctionCall(name, args)

    def _parse_computed_constructor(self) -> ast.Expr:
        kind = self.next().value
        name_expr: ast.Expr | None = None
        if self.peek().type == "name":
            name_expr = ast.Literal(self.next().value)
        else:
            self.expect_symbol("{")
            name_expr = self.parse_expr()
            self.expect_symbol("}")
        if kind == "text":
            # 'text { expr }' — the name slot *was* the content for text
            return ast.CompText(name_expr)
        self.expect_symbol("{")
        content: ast.Expr = ast.EmptySeq()
        if not self.peek().is_symbol("}"):
            content = self.parse_expr()
        self.expect_symbol("}")
        if kind == "element":
            return ast.CompElement(name_expr, content)
        return ast.CompAttribute(name_expr, content)

    # ------------------------------------------------- direct constructors
    def _parse_direct_constructor(self) -> ast.DirectElement:
        lt = self.expect_symbol("<")
        text = self.lexer.raw()
        pos = lt.pos + 1
        elem, pos = self._parse_direct_element(text, pos)
        self.lexer.set_pos(pos)
        return elem

    def _dc_error(self, message: str, pos: int) -> XQuerySyntaxError:
        line, col = self.lexer.line_col(pos)
        return XQuerySyntaxError(message, line, col)

    def _read_xml_name(self, text: str, pos: int) -> tuple[str, int]:
        start = pos
        n = len(text)
        if pos >= n or not (text[pos].isalpha() or text[pos] in "_"):
            raise self._dc_error("expected an XML name", pos)
        while pos < n and (text[pos].isalnum() or text[pos] in "-._:"):
            pos += 1
        return text[start:pos], pos

    def _skip_xml_ws(self, text: str, pos: int) -> int:
        n = len(text)
        while pos < n and text[pos] in " \t\r\n":
            pos += 1
        return pos

    def _parse_direct_element(self, text: str, pos: int) -> tuple[ast.DirectElement, int]:
        name, pos = self._read_xml_name(text, pos)
        attributes: list[tuple[str, list]] = []
        n = len(text)
        while True:
            pos = self._skip_xml_ws(text, pos)
            if pos >= n:
                raise self._dc_error("unterminated start tag", pos)
            if text.startswith("/>", pos):
                return ast.DirectElement(name, attributes, []), pos + 2
            if text[pos] == ">":
                pos += 1
                break
            aname, pos = self._read_xml_name(text, pos)
            pos = self._skip_xml_ws(text, pos)
            if pos >= n or text[pos] != "=":
                raise self._dc_error("expected '=' in attribute", pos)
            pos = self._skip_xml_ws(text, pos + 1)
            parts, pos = self._parse_avt(text, pos)
            attributes.append((aname, parts))
        content, pos = self._parse_direct_content(text, pos, name)
        return ast.DirectElement(name, attributes, content), pos

    def _parse_avt(self, text: str, pos: int) -> tuple[list, int]:
        """Attribute value template: string with embedded ``{expr}``."""
        n = len(text)
        if pos >= n or text[pos] not in "'\"":
            raise self._dc_error("attribute value must be quoted", pos)
        quote = text[pos]
        pos += 1
        parts: list = []
        buf: list[str] = []
        while True:
            if pos >= n:
                raise self._dc_error("unterminated attribute value", pos)
            ch = text[pos]
            if ch == quote:
                if text.startswith(quote * 2, pos):
                    buf.append(quote)
                    pos += 2
                    continue
                break
            if ch == "{":
                if text.startswith("{{", pos):
                    buf.append("{")
                    pos += 2
                    continue
                if buf:
                    parts.append(resolve_entities("".join(buf)))
                    buf = []
                expr, pos = self._parse_enclosed(pos)
                parts.append(expr)
                continue
            if ch == "}":
                if text.startswith("}}", pos):
                    buf.append("}")
                    pos += 2
                    continue
                raise self._dc_error("unescaped '}' in attribute value", pos)
            buf.append(ch)
            pos += 1
        if buf:
            parts.append(resolve_entities("".join(buf)))
        return parts, pos + 1

    def _parse_enclosed(self, brace_pos: int) -> tuple[ast.Expr, int]:
        """Parse ``{ Expr }`` in token mode starting at the ``{``."""
        self.lexer.set_pos(brace_pos)
        self.expect_symbol("{")
        if self.peek().is_symbol("}"):
            close = self.next()
            return ast.EmptySeq(), close.pos + 1
        expr = self.parse_expr()
        close = self.expect_symbol("}")
        return expr, close.pos + 1

    def _parse_direct_content(
        self, text: str, pos: int, name: str
    ) -> tuple[list, int]:
        n = len(text)
        content: list = []
        buf: list[str] = []

        def flush(boundary: bool) -> None:
            if not buf:
                return
            raw = "".join(buf)
            buf.clear()
            # boundary whitespace (whitespace-only char data) is discarded
            if raw.strip() == "":
                return
            content.append(resolve_entities(raw))

        while True:
            if pos >= n:
                raise self._dc_error(f"unterminated element <{name}>", pos)
            ch = text[pos]
            if ch == "<":
                if text.startswith("</", pos):
                    flush(True)
                    pos += 2
                    end_name, pos = self._read_xml_name(text, pos)
                    if end_name != name:
                        raise self._dc_error(
                            f"mismatched end tag </{end_name}> for <{name}>", pos
                        )
                    pos = self._skip_xml_ws(text, pos)
                    if pos >= n or text[pos] != ">":
                        raise self._dc_error("expected '>'", pos)
                    return content, pos + 1
                if text.startswith("<!--", pos):
                    flush(True)
                    end = text.find("-->", pos + 4)
                    if end < 0:
                        raise self._dc_error("unterminated comment", pos)
                    pos = end + 3
                    continue
                if text.startswith("<![CDATA[", pos):
                    end = text.find("]]>", pos + 9)
                    if end < 0:
                        raise self._dc_error("unterminated CDATA", pos)
                    buf.append(text[pos + 9 : end])
                    pos = end + 3
                    continue
                flush(True)
                child, pos = self._parse_direct_element(text, pos + 1)
                content.append(child)
                continue
            if ch == "{":
                if text.startswith("{{", pos):
                    buf.append("{")
                    pos += 2
                    continue
                flush(True)
                expr, pos = self._parse_enclosed(pos)
                content.append(expr)
                continue
            if ch == "}":
                if text.startswith("}}", pos):
                    buf.append("}")
                    pos += 2
                    continue
                raise self._dc_error("unescaped '}' in element content", pos)
            buf.append(ch)
            pos += 1
