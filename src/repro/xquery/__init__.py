"""The XQuery front-end: lexer, parser, AST and Core desugaring.

Covers the dialect of the paper's Table 2 plus what the XMark benchmark
queries require (quantifiers, computed/direct constructors with attribute
value templates, positional predicates, user-defined functions, order by).
"""

from repro.xquery.parser import parse_query
from repro.xquery import ast

__all__ = ["parse_query", "ast"]
