"""A streaming lexer for XQuery.

The lexer hands out tokens on demand with arbitrary lookahead, but also
exposes character-level access to the underlying source: the parser drops
to character mode inside direct XML constructors (whose lexical rules are
XML's, not XQuery's) and re-enters token mode for enclosed ``{...}``
expressions — the classic hand-written-XQuery-parser arrangement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XQuerySyntaxError
from repro.relational.items import XSDecimal
from repro.xml.escape import resolve_entities

#: multi-character symbols, longest first (order matters)
_SYMBOLS = [
    ":=", "<<", ">>", "<=", ">=", "!=", "//", "..", "::",
    "(", ")", "[", "]", "{", "}", ",", ";", "$", "@", "/", ".",
    "*", "+", "-", "=", "<", ">", "|", "?",
]

_NAME_START = set("_") | set(chr(c) for c in range(ord("a"), ord("z") + 1)) | set(
    chr(c) for c in range(ord("A"), ord("Z") + 1)
)
_NAME_CHARS = _NAME_START | set("-.") | set("0123456789")


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``type`` is one of ``integer``, ``decimal``, ``double``, ``string``,
    ``name`` (QName), ``symbol`` or ``eof``; ``value`` the decoded value.
    """

    type: str
    value: object
    pos: int
    line: int
    col: int

    def is_name(self, *names: str) -> bool:
        """True when the token is a name, optionally one of ``names``."""
        return self.type == "name" and self.value in names

    def is_symbol(self, *symbols: str) -> bool:
        """True when the token is a symbol, optionally one of ``symbols``."""
        return self.type == "symbol" and self.value in symbols


class Lexer:
    """Tokeniser with lookahead over ``text`` starting at position 0."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self._buffer: list[Token] = []

    # ------------------------------------------------------------- errors
    def line_col(self, pos: int) -> tuple[int, int]:
        """1-based (line, column) of a source position."""
        upto = self.text[:pos]
        return upto.count("\n") + 1, pos - (upto.rfind("\n") + 1) + 1

    def error(self, message: str, pos: int | None = None) -> XQuerySyntaxError:
        """Build a positioned syntax error (the caller raises it)."""
        line, col = self.line_col(self.pos if pos is None else pos)
        return XQuerySyntaxError(message, line, col)

    # ------------------------------------------------------- token access
    def peek(self, k: int = 0) -> Token:
        """The k-th upcoming token without consuming anything."""
        while len(self._buffer) <= k:
            self._buffer.append(self._scan())
        return self._buffer[k]

    def next(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        self._buffer.pop(0)
        return token

    # ------------------------------------------------- char-level control
    def char_pos(self) -> int:
        """Source position where the next token would start (used when the
        parser switches to character mode); clears pending lookahead."""
        if self._buffer:
            pos = self._buffer[0].pos
            self._buffer.clear()
            self.pos = pos
            return pos
        self._skip_ignorable()
        return self.pos

    def set_pos(self, pos: int) -> None:
        """Resume token scanning from an explicit source position."""
        self._buffer.clear()
        self.pos = pos

    def raw(self) -> str:
        """The full source text (for character-mode parsing)."""
        return self.text

    # ------------------------------------------------------------ scanning
    def _skip_ignorable(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n:
            ch = text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif text.startswith("(:", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self.pos
        depth = 0
        text, n = self.text, len(self.text)
        while self.pos < n:
            if text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment", start)

    def _scan(self) -> Token:
        self._skip_ignorable()
        text, n = self.text, len(self.text)
        start = self.pos
        line, col = self.line_col(start)
        if start >= n:
            return Token("eof", None, start, line, col)
        ch = text[start]
        if ch.isdigit():
            return self._scan_number(start, line, col)
        if ch in ("'", '"'):
            return self._scan_string(start, line, col)
        if ch in _NAME_START:
            return self._scan_name(start, line, col)
        # '.' followed by a digit is a decimal literal
        if ch == "." and start + 1 < n and text[start + 1].isdigit():
            return self._scan_number(start, line, col)
        for sym in _SYMBOLS:
            if text.startswith(sym, start):
                self.pos = start + len(sym)
                return Token("symbol", sym, start, line, col)
        raise self.error(f"unexpected character {ch!r}", start)

    def _scan_number(self, start: int, line: int, col: int) -> Token:
        text, n = self.text, len(self.text)
        p = start
        while p < n and text[p].isdigit():
            p += 1
        is_decimal = False
        if p < n and text[p] == "." and (p + 1 < n and text[p + 1].isdigit() or p > start):
            is_decimal = True
            p += 1
            while p < n and text[p].isdigit():
                p += 1
        is_double = False
        if p < n and text[p] in "eE":
            q = p + 1
            if q < n and text[q] in "+-":
                q += 1
            if q < n and text[q].isdigit():
                is_double = True
                p = q
                while p < n and text[p].isdigit():
                    p += 1
        self.pos = p
        raw = text[start:p]
        if is_double:
            return Token("double", float(raw), start, line, col)
        if is_decimal:
            # decimal literals keep their static type: exact numerics
            # divide by zero with err:FOAR0001, doubles yield INF/NaN
            return Token("decimal", XSDecimal(raw), start, line, col)
        return Token("integer", int(raw), start, line, col)

    def _scan_string(self, start: int, line: int, col: int) -> Token:
        text, n = self.text, len(self.text)
        quote = text[start]
        p = start + 1
        parts: list[str] = []
        while True:
            end = text.find(quote, p)
            if end < 0:
                raise self.error("unterminated string literal", start)
            parts.append(text[p:end])
            if end + 1 < n and text[end + 1] == quote:  # doubled quote escape
                parts.append(quote)
                p = end + 2
            else:
                self.pos = end + 1
                break
        value = resolve_entities("".join(parts), line, col)
        return Token("string", value, start, line, col)

    def _scan_name(self, start: int, line: int, col: int) -> Token:
        text, n = self.text, len(self.text)
        p = start
        while p < n and text[p] in _NAME_CHARS:
            p += 1
        name = text[start:p]
        # QName: prefix ':' local — but not '::' (axis separator)
        if p < n and text[p] == ":" and p + 1 < n and text[p + 1] in _NAME_START:
            q = p + 1
            while q < n and text[q] in _NAME_CHARS:
                q += 1
            name = text[start:q]
            p = q
        self.pos = p
        return Token("name", name, start, line, col)
