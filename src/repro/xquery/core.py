"""Desugaring to a small core dialect (the XQuery-Core step of Fig. 1).

The parser accepts convenient surface syntax; both back-ends (loop-lifting
compiler and nested-loop baseline) consume the reduced form produced here:

* direct element constructors become computed constructors — character
  data becomes ``text {...}`` children, attribute value templates become
  computed attributes with explicit string concatenation;
* quantifiers become ``fn:exists``/``fn:not`` over FLWORs (their classic
  Core expansion);
* ``fn:`` prefixes are stripped from built-in calls;
* the paper's ``fs:distinct-doc-order`` shows up as an explicit call when
  the user writes it; path steps imply it internally.

Everything else (paths, predicates, FLWOR, comparisons) stays structural —
the interesting work happens in the compiler.
"""

from __future__ import annotations

from repro.errors import StaticError
from repro.xquery import ast

#: surface name → canonical builtin name
_BUILTIN_ALIASES = {
    "fn:doc": "doc",
    "fn:root": "root",
    "fn:data": "data",
    "fn:string": "string",
    "fn:count": "count",
    "fn:sum": "sum",
    "fn:avg": "avg",
    "fn:max": "max",
    "fn:min": "min",
    "fn:empty": "empty",
    "fn:exists": "exists",
    "fn:not": "not",
    "fn:boolean": "boolean",
    "fn:true": "true",
    "fn:false": "false",
    "fn:position": "position",
    "fn:last": "last",
    "fn:contains": "contains",
    "fn:starts-with": "starts-with",
    "fn:ends-with": "ends-with",
    "fn:substring": "substring",
    "fn:substring-before": "substring-before",
    "fn:substring-after": "substring-after",
    "fn:upper-case": "upper-case",
    "fn:lower-case": "lower-case",
    "fn:normalize-space": "normalize-space",
    "fn:floor": "floor",
    "fn:ceiling": "ceiling",
    "fn:round": "round",
    "fn:abs": "abs",
    "fn:string-length": "string-length",
    "fn:concat": "concat",
    "fn:string-join": "string-join",
    "fn:number": "number",
    "fn:distinct-values": "distinct-values",
    "fn:reverse": "reverse",
    "fn:subsequence": "subsequence",
    "fn:index-of": "index-of",
    "fn:insert-before": "insert-before",
    "fn:remove": "remove",
    "fn:deep-equal": "deep-equal",
    "fn:zero-or-one": "zero-or-one",
    "fn:exactly-one": "exactly-one",
    "fn:one-or-more": "one-or-more",
    "fn:name": "name",
    "fn:local-name": "name",
    "fs:distinct-doc-order": "fs:ddo",
    "fn:distinct-doc-order": "fs:ddo",
}


def free_vars(expr: ast.Expr) -> set[str]:
    """The free variables of an expression (used by join recognition to
    detect loop-invariant for-clause bindings)."""
    out: set[str] = set()
    _free_vars(expr, set(), out)
    return out


def _free_vars(e, bound: set[str], out: set[str]) -> None:
    if e is None or isinstance(e, (ast.Literal, ast.EmptySeq, ast.ContextItem)):
        return
    if isinstance(e, ast.VarRef):
        if e.name not in bound:
            out.add(e.name)
        return
    if isinstance(e, ast.FLWOR):
        inner = set(bound)
        for c in e.clauses:
            if isinstance(c, ast.ForClause):
                _free_vars(c.expr, inner, out)
                inner.add(c.var)
                if c.pos_var:
                    inner.add(c.pos_var)
            else:
                _free_vars(c.expr, inner, out)
                inner.add(c.var)
        if e.where is not None:
            _free_vars(e.where, inner, out)
        for spec in e.order:
            _free_vars(spec.expr, inner, out)
        _free_vars(e.ret, inner, out)
        return
    if isinstance(e, ast.Quantified):
        inner = set(bound)
        for var, b in e.bindings:
            _free_vars(b, inner, out)
            inner.add(var)
        _free_vars(e.satisfies, inner, out)
        return
    if isinstance(e, ast.Typeswitch):
        _free_vars(e.operand, bound, out)
        for case in e.cases:
            inner = set(bound)
            if case.var:
                inner.add(case.var)
            _free_vars(case.expr, inner, out)
        inner = set(bound)
        if e.default_var:
            inner.add(e.default_var)
        _free_vars(e.default, inner, out)
        return
    if isinstance(e, ast.PathExpr):
        _free_vars(e.start, bound, out)
        for s in e.steps:
            if isinstance(s, ast.FilterStep):
                _free_vars(s.expr, bound, out)
            for p in s.predicates:
                _free_vars(p, bound, out)
        return
    if isinstance(e, ast.Filter):
        _free_vars(e.base, bound, out)
        for p in e.predicates:
            _free_vars(p, bound, out)
        return
    if isinstance(e, ast.Sequence):
        for item in e.items:
            _free_vars(item, bound, out)
        return
    if isinstance(e, ast.FunctionCall):
        for a in e.args:
            _free_vars(a, bound, out)
        return
    if isinstance(e, ast.DirectElement):
        for _, parts in e.attributes:
            for part in parts:
                if not isinstance(part, str):
                    _free_vars(part, bound, out)
        for part in e.content:
            if not isinstance(part, str):
                _free_vars(part, bound, out)
        return
    # generic fallback: walk the known child attributes
    for attr in ("lo", "hi", "cond", "then", "els", "lhs", "rhs", "operand",
                 "name", "content", "value", "ret", "expr", "base",
                 "source", "target"):
        child = getattr(e, attr, None)
        if isinstance(child, ast.Expr):
            _free_vars(child, bound, out)


def is_updating(expr: ast.Expr) -> bool:
    """True when the expression is an *updating expression* (XQUF 2.2):
    an update primitive, or a FLWOR / conditional / sequence / typeswitch
    whose return branches are updating."""
    if isinstance(expr, ast.UPDATE_NODES):
        return True
    if isinstance(expr, ast.Sequence):
        return any(is_updating(i) for i in expr.items)
    if isinstance(expr, ast.FLWOR):
        return is_updating(expr.ret)
    if isinstance(expr, ast.IfExpr):
        return is_updating(expr.then) or is_updating(expr.els)
    if isinstance(expr, ast.Typeswitch):
        return any(is_updating(c.expr) for c in expr.cases) or is_updating(
            expr.default
        )
    return False


def desugar_module(module: ast.Module) -> ast.Module:
    """Desugar a parsed module (function bodies and main expression)."""
    functions = [
        ast.FunctionDecl(f.name, list(f.params), desugar(f.body))
        for f in module.functions
    ]
    return ast.Module(
        functions, desugar(module.body), list(module.external_vars)
    )


def desugar(expr: ast.Expr) -> ast.Expr:
    """Recursively desugar one expression."""
    t = type(expr)
    handler = _HANDLERS.get(t)
    if handler is None:
        raise StaticError(f"desugar: unhandled AST node {t.__name__}")
    return handler(expr)


def _d_literal(e: ast.Literal):
    return e


def _d_empty(e: ast.EmptySeq):
    return e


def _d_sequence(e: ast.Sequence):
    return ast.Sequence([desugar(i) for i in e.items])


def _d_range(e: ast.RangeExpr):
    return ast.RangeExpr(desugar(e.lo), desugar(e.hi))


def _d_var(e: ast.VarRef):
    return e


def _d_ctx(e: ast.ContextItem):
    return e


def _d_flwor(e: ast.FLWOR):
    clauses = []
    for c in e.clauses:
        if isinstance(c, ast.ForClause):
            clauses.append(ast.ForClause(c.var, desugar(c.expr), c.pos_var))
        else:
            clauses.append(ast.LetClause(c.var, desugar(c.expr)))
    where = desugar(e.where) if e.where is not None else None
    order = [
        ast.OrderSpec(desugar(o.expr), o.descending, o.empty_greatest)
        for o in e.order
    ]
    return ast.FLWOR(clauses, where, order, desugar(e.ret), e.stable)


def _d_quantified(e: ast.Quantified):
    """``some ... satisfies c`` → ``exists(for ... where c return 1)``;
    ``every ... satisfies c`` → ``not(exists(for ... where not(c) ...))``."""
    satisfies = desugar(e.satisfies)
    clauses = [ast.ForClause(v, desugar(b), None) for v, b in e.bindings]
    if e.kind == "some":
        flwor = ast.FLWOR(clauses, satisfies, [], ast.Literal(1))
        return ast.FunctionCall("exists", [flwor])
    negated = ast.FunctionCall("not", [satisfies])
    flwor = ast.FLWOR(clauses, negated, [], ast.Literal(1))
    return ast.FunctionCall("not", [ast.FunctionCall("exists", [flwor])])


def _d_if(e: ast.IfExpr):
    return ast.IfExpr(desugar(e.cond), desugar(e.then), desugar(e.els))


def _d_typeswitch(e: ast.Typeswitch):
    cases = [
        ast.TypeswitchCase(c.test, c.var, desugar(c.expr)) for c in e.cases
    ]
    return ast.Typeswitch(desugar(e.operand), cases, e.default_var, desugar(e.default))


def _d_union(e: ast.NodeUnion):
    """``e1 | e2`` → ``fs:ddo((e1, e2))`` — union is distinct-doc-order
    over the concatenation."""
    return ast.FunctionCall(
        "fs:ddo", [ast.Sequence([desugar(e.lhs), desugar(e.rhs)])]
    )


def _d_nodesetop(e: ast.NodeSetOp):
    return ast.NodeSetOp(e.kind, desugar(e.lhs), desugar(e.rhs))


def _d_arith(e: ast.Arith):
    return ast.Arith(e.op, desugar(e.lhs), desugar(e.rhs))


def _d_neg(e: ast.Neg):
    return ast.Neg(desugar(e.operand))


def _d_valuecomp(e: ast.ValueComp):
    return ast.ValueComp(e.op, desugar(e.lhs), desugar(e.rhs))


def _d_generalcomp(e: ast.GeneralComp):
    return ast.GeneralComp(e.op, desugar(e.lhs), desugar(e.rhs))


def _d_nodecomp(e: ast.NodeComp):
    return ast.NodeComp(e.op, desugar(e.lhs), desugar(e.rhs))


def _d_boolop(e: ast.BoolOp):
    return ast.BoolOp(e.op, desugar(e.lhs), desugar(e.rhs))


def _d_path(e: ast.PathExpr):
    start = desugar(e.start) if e.start is not None else None
    raw_steps = list(e.steps)
    # a relative path beginning with a primary expression ($x/a, doc(..)/a)
    # hoists that primary into the path start
    if start is None and not e.absolute and raw_steps and isinstance(
        raw_steps[0], ast.FilterStep
    ):
        first = raw_steps.pop(0)
        start = desugar(first.expr)
        if first.predicates:
            start = ast.Filter(start, [desugar(p) for p in first.predicates])
    steps = []
    for s in raw_steps:
        if isinstance(s, ast.Step):
            steps.append(ast.Step(s.axis, s.test, [desugar(p) for p in s.predicates]))
        else:
            steps.append(
                ast.FilterStep(desugar(s.expr), [desugar(p) for p in s.predicates])
            )
    return ast.PathExpr(start, steps, e.absolute)


def _d_filter(e: ast.Filter):
    return ast.Filter(desugar(e.base), [desugar(p) for p in e.predicates])


def _d_call(e: ast.FunctionCall):
    name = _BUILTIN_ALIASES.get(e.name, e.name)
    return ast.FunctionCall(name, [desugar(a) for a in e.args])


def _avt_value(parts: list) -> ast.Expr:
    """An attribute value template → one string-valued expression."""
    exprs: list[ast.Expr] = []
    for part in parts:
        if isinstance(part, str):
            exprs.append(ast.Literal(part))
        else:
            exprs.append(ast.FunctionCall("fs:item-join", [desugar(part)]))
    if not exprs:
        return ast.Literal("")
    out = exprs[0]
    if isinstance(out, ast.Literal) and not isinstance(out.value, str):
        out = ast.FunctionCall("string", [out])
    for nxt in exprs[1:]:
        out = ast.FunctionCall("concat", [out, nxt])
    return out


def _d_direct(e: ast.DirectElement):
    """Direct constructor → computed element with explicit children."""
    content: list[ast.Expr] = []
    for attr_name, parts in e.attributes:
        content.append(
            ast.CompAttribute(ast.Literal(attr_name), _avt_value(parts))
        )
    for part in e.content:
        if isinstance(part, str):
            content.append(ast.CompText(ast.Literal(part)))
        else:
            content.append(desugar(part))
    body: ast.Expr
    if not content:
        body = ast.EmptySeq()
    elif len(content) == 1:
        body = content[0]
    else:
        body = ast.Sequence(content)
    return ast.CompElement(ast.Literal(e.name), body)


def _d_comp_elem(e: ast.CompElement):
    return ast.CompElement(desugar(e.name), desugar(e.content))


def _d_comp_attr(e: ast.CompAttribute):
    return ast.CompAttribute(desugar(e.name), desugar(e.value))


def _d_comp_text(e: ast.CompText):
    return ast.CompText(desugar(e.content))


def _d_insert(e: ast.InsertExpr):
    return ast.InsertExpr(desugar(e.source), e.position, desugar(e.target))


def _d_delete(e: ast.DeleteExpr):
    return ast.DeleteExpr(desugar(e.target))


def _d_replace(e: ast.ReplaceExpr):
    return ast.ReplaceExpr(desugar(e.target), desugar(e.source))


def _d_replace_value(e: ast.ReplaceValueExpr):
    return ast.ReplaceValueExpr(desugar(e.target), desugar(e.value))


def _d_rename(e: ast.RenameExpr):
    return ast.RenameExpr(desugar(e.target), desugar(e.name))


def _d_cast(e: ast.CastExpr):
    return ast.CastExpr(desugar(e.operand), e.type_name)


def _d_instance(e: ast.InstanceOf):
    return ast.InstanceOf(desugar(e.operand), e.test)


_HANDLERS = {
    ast.Literal: _d_literal,
    ast.EmptySeq: _d_empty,
    ast.Sequence: _d_sequence,
    ast.RangeExpr: _d_range,
    ast.VarRef: _d_var,
    ast.ContextItem: _d_ctx,
    ast.FLWOR: _d_flwor,
    ast.Quantified: _d_quantified,
    ast.IfExpr: _d_if,
    ast.Typeswitch: _d_typeswitch,
    ast.NodeUnion: _d_union,
    ast.NodeSetOp: _d_nodesetop,
    ast.Arith: _d_arith,
    ast.Neg: _d_neg,
    ast.ValueComp: _d_valuecomp,
    ast.GeneralComp: _d_generalcomp,
    ast.NodeComp: _d_nodecomp,
    ast.BoolOp: _d_boolop,
    ast.PathExpr: _d_path,
    ast.Filter: _d_filter,
    ast.FunctionCall: _d_call,
    ast.DirectElement: _d_direct,
    ast.CompElement: _d_comp_elem,
    ast.CompAttribute: _d_comp_attr,
    ast.CompText: _d_comp_text,
    ast.CastExpr: _d_cast,
    ast.InstanceOf: _d_instance,
    ast.InsertExpr: _d_insert,
    ast.DeleteExpr: _d_delete,
    ast.ReplaceExpr: _d_replace,
    ast.ReplaceValueExpr: _d_replace_value,
    ast.RenameExpr: _d_rename,
}
