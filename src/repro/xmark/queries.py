"""The 20 XMark benchmark queries (Q1–Q20).

The texts follow the published benchmark, adapted in two small ways: the
probe constants reference entities that exist at every scale factor
(``person0``/``person1``/``person2`` instead of the original's
scale-specific ids), and Q10 constructs a trimmed-but-join-identical
record (the original copies ~10 fields; the join/grouping structure —
what the benchmark measures — is unchanged).
"""

from __future__ import annotations

XMARK_QUERIES: dict[str, str] = {
    # Q1: exact-match attribute lookup
    "Q1": """
        for $b in /site/people/person[@id = "person0"]
        return $b/name/text()
    """,
    # Q2: order-based access (first bidder of every open auction)
    "Q2": """
        for $b in /site/open_auctions/open_auction
        return <increase>{ $b/bidder[1]/increase/text() }</increase>
    """,
    # Q3: order-based access with comparison of first and last bid
    "Q3": """
        for $b in /site/open_auctions/open_auction
        where zero-or-one($b/bidder[1]/increase/text()) * 2
              <= $b/bidder[last()]/increase/text()
        return <increase first="{$b/bidder[1]/increase/text()}"
                         last="{$b/bidder[last()]/increase/text()}"/>
    """,
    # Q4: document-order comparison inside a quantifier
    "Q4": """
        for $b in /site/open_auctions/open_auction
        where some $pr1 in $b/bidder/personref[@person = "person1"],
                   $pr2 in $b/bidder/personref[@person = "person2"]
              satisfies $pr1 << $pr2
        return <history>{ $b/reserve/text() }</history>
    """,
    # Q5: value-based selection with aggregation
    "Q5": """
        count(for $i in /site/closed_auctions/closed_auction
              where $i/price/text() >= 40
              return $i/price)
    """,
    # Q6: recursive axis (//) under each region
    "Q6": """
        for $b in /site/regions return count($b//item)
    """,
    # Q7: recursive axes over the whole document
    "Q7": """
        for $p in /site
        return count($p//description) + count($p//annotation) + count($p//emailaddress)
    """,
    # Q8: equi-join people ⋈ closed auctions (buyer)
    "Q8": """
        for $p in /site/people/person
        let $a := for $t in /site/closed_auctions/closed_auction
                  where $t/buyer/@person = $p/@id
                  return $t
        return <item person="{$p/name/text()}">{ count($a) }</item>
    """,
    # Q9: three-way join people ⋈ closed auctions ⋈ european items
    "Q9": """
        for $p in /site/people/person
        let $a := for $t in /site/closed_auctions/closed_auction
                  let $n := for $t2 in /site/regions/europe/item
                            where $t/itemref/@item = $t2/@id
                            return $t2
                  where $p/@id = $t/buyer/@person
                  return <item>{ $n/name/text() }</item>
        return <person name="{$p/name/text()}">{ $a }</person>
    """,
    # Q10: grouping by interest category (construction heavy)
    "Q10": """
        for $i in distinct-values(/site/people/person/profile/interest/@category)
        let $p := for $t in /site/people/person
                  where $t/profile/interest/@category = $i
                  return <personne>
                           <statistiques>
                             <sexe>{ $t/profile/gender/text() }</sexe>
                             <age>{ $t/profile/age/text() }</age>
                             <education>{ $t/profile/education/text() }</education>
                             <revenu>{ $t/profile/@income }</revenu>
                           </statistiques>
                           <coordonnees>
                             <nom>{ $t/name/text() }</nom>
                             <courrier>{ $t/emailaddress/text() }</courrier>
                           </coordonnees>
                         </personne>
        return <categorie>{ <id>{ $i }</id>, $p }</categorie>
    """,
    # Q11: value-based theta-join (quadratic output — the Figure 4 outlier)
    "Q11": """
        for $p in /site/people/person
        let $l := for $i in /site/open_auctions/open_auction/initial
                  where $p/profile/@income > 5000 * $i/text()
                  return $i
        return <items name="{$p/name/text()}">{ count($l) }</items>
    """,
    # Q12: Q11 restricted to wealthy people
    "Q12": """
        for $p in /site/people/person
        let $l := for $i in /site/open_auctions/open_auction/initial
                  where $p/profile/@income > 5000 * $i/text()
                  return $i
        where $p/profile/@income > 50000
        return <items person="{$p/name/text()}">{ count($l) }</items>
    """,
    # Q13: reconstruction of a region's items
    "Q13": """
        for $i in /site/regions/australia/item
        return <item name="{$i/name/text()}">{ $i/description }</item>
    """,
    # Q14: full-text-ish selection (substring search)
    "Q14": """
        for $i in /site//item
        where contains(string(exactly-one($i/description)), "gold")
        return $i/name/text()
    """,
    # Q15: a very long, selective path
    "Q15": """
        for $a in /site/closed_auctions/closed_auction/annotation/description/
                  parlist/listitem/parlist/listitem/text/emph/keyword/text()
        return <text>{ $a }</text>
    """,
    # Q16: Q15's path as an existence test
    "Q16": """
        for $a in /site/closed_auctions/closed_auction
        where not(empty($a/annotation/description/parlist/listitem/parlist/
                  listitem/text/emph/keyword/text()))
        return <person id="{$a/seller/@person}"/>
    """,
    # Q17: missing elements (people without a homepage)
    "Q17": """
        for $p in /site/people/person
        where empty($p/homepage/text())
        return <check name="{$p/name/text()}"/>
    """,
    # Q18: user-defined function application
    "Q18": """
        declare function local:convert($v) { 2.20371 * $v };
        for $i in /site/open_auctions/open_auction
        return local:convert(zero-or-one($i/reserve/text()))
    """,
    # Q19: full sort via order by
    "Q19": """
        for $b in /site/regions//item
        let $k := $b/name/text()
        order by zero-or-one($b/location/text()) ascending
        return <item name="{$k}">{ $b/location/text() }</item>
    """,
    # Q20: aggregation with partitioning predicates
    "Q20": """
        <result>
          <preferred>{ count(/site/people/person/profile[@income >= 100000]) }</preferred>
          <standard>{ count(/site/people/person/profile[@income < 100000 and @income >= 30000]) }</standard>
          <challenge>{ count(/site/people/person/profile[@income < 30000]) }</challenge>
          <na>{ count(for $p in /site/people/person
                      where empty($p/profile/@income)
                      return $p) }</na>
        </result>
    """,
}


def xmark_query(number: int) -> str:
    """The text of XMark query ``number`` (1–20)."""
    return XMARK_QUERIES[f"Q{number}"]
