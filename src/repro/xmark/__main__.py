"""Generate an XMark document from the shell.

Usage::

    python -m repro.xmark 0.01 > auction.xml
    python -m repro.xmark 0.01 --seed 7 --stats
"""

from __future__ import annotations

import argparse
import sys

from repro.xmark import document_stats, generate_document


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.xmark",
        description="XMark auction-document generator (xmlgen stand-in)",
    )
    parser.add_argument("scale", type=float, help="scale factor (1.0 ≈ 110 MB)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--stats", action="store_true", help="print entity counts to stderr"
    )
    args = parser.parse_args(argv)
    if args.stats:
        counts = document_stats(args.scale)
        print(
            f"items={counts.items} people={counts.people} "
            f"open_auctions={counts.open_auctions} "
            f"closed_auctions={counts.closed_auctions} "
            f"categories={counts.categories}",
            file=sys.stderr,
        )
    sys.stdout.write(generate_document(args.scale, seed=args.seed))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
