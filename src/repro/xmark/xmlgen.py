"""A scaled XMark document generator (the ``xmlgen`` stand-in).

Generates the auction-site documents of Schmidt et al.'s XMark benchmark:
six world regions with items, categories and a category graph, people
with optional profiles (incomes, interests), open auctions with bidder
histories and closed auctions with prices.  All structural features the
20 benchmark queries rely on are present, including the recursive
``description/parlist/listitem`` nesting that Q15/Q16 navigate and the
``gold``-bearing text Q14 greps.

Counts follow the original generator's proportions: at scale factor 1.0,
21750 items, 25500 people, 12000 open and 9750 closed auctions.  The
output is deterministic for a given (scale, seed) pair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmark.words import WORDS

_REGIONS = (
    ("africa", 0.025),
    ("asia", 0.075),
    ("australia", 0.10),
    ("europe", 0.30),
    ("namerica", 0.45),
    ("samerica", 0.05),
)

_COUNTRIES = (
    "United States", "Germany", "France", "Japan", "Australia",
    "Netherlands", "Brazil", "Kenya", "China", "Spain",
)


@dataclass(frozen=True)
class XMarkCounts:
    """How many of each entity a document contains."""

    items: int
    people: int
    open_auctions: int
    closed_auctions: int
    categories: int


def scaled_counts(scale: float) -> XMarkCounts:
    """Entity counts for a scale factor (same proportions as xmlgen)."""
    return XMarkCounts(
        items=max(12, int(21750 * scale)),
        people=max(15, int(25500 * scale)),
        open_auctions=max(8, int(12000 * scale)),
        closed_auctions=max(6, int(9750 * scale)),
        categories=max(3, int(1000 * scale)),
    )


class _Gen:
    def __init__(self, scale: float, seed: int):
        self.rng = random.Random(seed)
        self.counts = scaled_counts(scale)
        self.out: list[str] = []

    # ------------------------------------------------------------- text
    def words(self, n: int) -> str:
        rng = self.rng
        return " ".join(rng.choice(WORDS) for _ in range(n))

    def text_elem(self, rich: bool = True) -> str:
        """A ``<text>`` block with occasional keyword/bold/emph markup."""
        rng = self.rng
        parts = [self.words(rng.randint(3, 10))]
        if rich and rng.random() < 0.6:
            tag = rng.choice(("keyword", "bold", "emph"))
            parts.append(f" <{tag}>{self.words(rng.randint(1, 3))}</{tag}> ")
            parts.append(self.words(rng.randint(2, 6)))
        return f"<text>{''.join(parts)}</text>"

    def parlist(self, depth: int, force_deep: bool = False) -> str:
        """A ``<parlist>`` of listitems; recursive with bounded depth."""
        rng = self.rng
        items = []
        n = rng.randint(1, 3)
        for i in range(n):
            nest = depth > 0 and (force_deep and i == 0 or rng.random() < 0.35)
            if nest:
                inner = self.parlist(depth - 1, force_deep=force_deep)
                items.append(f"<listitem>{inner}</listitem>")
            else:
                if force_deep and depth == 0 and i == 0:
                    body = (
                        f"<text>{self.words(2)} <emph><keyword>"
                        f"{self.words(1)}</keyword></emph> {self.words(2)}</text>"
                    )
                else:
                    body = self.text_elem()
                items.append(f"<listitem>{body}</listitem>")
        return f"<parlist>{''.join(items)}</parlist>"

    def description(self, force_deep: bool = False) -> str:
        if force_deep or self.rng.random() < 0.45:
            return f"<description>{self.parlist(1, force_deep)}</description>"
        return f"<description>{self.text_elem()}</description>"

    # ------------------------------------------------------------ pieces
    def item(self, item_id: int, region: str) -> str:
        rng = self.rng
        location = (
            "Australia" if region == "australia" else rng.choice(_COUNTRIES)
        )
        incats = "".join(
            f'<incategory category="category{rng.randrange(self.counts.categories)}"/>'
            for _ in range(rng.randint(1, 3))
        )
        mailbox = ""
        if rng.random() < 0.35:
            mails = "".join(
                f"<mail><from>{self.words(2)}</from><to>{self.words(2)}</to>"
                f"<date>{self.date()}</date>{self.text_elem()}</mail>"
                for _ in range(rng.randint(1, 2))
            )
            mailbox = f"<mailbox>{mails}</mailbox>"
        return (
            f'<item id="item{item_id}">'
            f"<location>{location}</location>"
            f"<quantity>{rng.randint(1, 5)}</quantity>"
            f"<name>{self.words(2)}</name>"
            f"<payment>Creditcard</payment>"
            f"{self.description()}"
            f"<shipping>Will ship internationally</shipping>"
            f"{incats}{mailbox}"
            f"</item>"
        )

    def date(self) -> str:
        rng = self.rng
        return f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/{rng.randint(1998, 2001)}"

    def person(self, pid: int) -> str:
        rng = self.rng
        name = f"{self.words(1).capitalize()} {self.words(1).capitalize()}"
        email = f"mailto:person{pid}@example.com"
        parts = [
            f'<person id="person{pid}">',
            f"<name>{name}</name>",
            f"<emailaddress>{email}</emailaddress>",
        ]
        if rng.random() < 0.4:
            parts.append(f"<phone>+1 ({rng.randint(100,999)}) {rng.randint(1000000,9999999)}</phone>")
        if rng.random() < 0.5:
            parts.append(
                f"<address><street>{rng.randint(1,99)} {self.words(1).capitalize()} St</street>"
                f"<city>{self.words(1).capitalize()}</city>"
                f"<country>{rng.choice(_COUNTRIES)}</country>"
                f"<zipcode>{rng.randint(10000,99999)}</zipcode></address>"
            )
        if rng.random() < 0.5:
            parts.append(f"<homepage>http://example.com/~person{pid}</homepage>")
        if rng.random() < 0.6:
            parts.append(f"<creditcard>{rng.randint(1000,9999)} {rng.randint(1000,9999)} {rng.randint(1000,9999)} {rng.randint(1000,9999)}</creditcard>")
        if rng.random() < 0.75:
            interests = "".join(
                f'<interest category="category{rng.randrange(self.counts.categories)}"/>'
                for _ in range(rng.randint(0, 4))
            )
            income = ""
            if rng.random() < 0.7:
                income = f' income="{rng.randint(9500, 250000)}.{rng.randint(0,99):02d}"'
            education = (
                f"<education>{rng.choice(('High School', 'College', 'Graduate School', 'Other'))}</education>"
                if rng.random() < 0.5
                else ""
            )
            gender = (
                f"<gender>{rng.choice(('male', 'female'))}</gender>"
                if rng.random() < 0.5
                else ""
            )
            parts.append(
                f"<profile{income}>{interests}{education}{gender}"
                f"<business>{rng.choice(('Yes', 'No'))}</business>"
                f"<age>{rng.randint(18, 80)}</age></profile>"
            )
        if rng.random() < 0.3:
            watches = "".join(
                f'<watch open_auction="open_auction{rng.randrange(self.counts.open_auctions)}"/>'
                for _ in range(rng.randint(1, 3))
            )
            parts.append(f"<watches>{watches}</watches>")
        parts.append("</person>")
        return "".join(parts)

    def annotation(self, force_deep: bool = False) -> str:
        rng = self.rng
        return (
            f'<annotation><author person="person{rng.randrange(self.counts.people)}"/>'
            f"{self.description(force_deep)}"
            f"<happiness>{rng.randint(1, 10)}</happiness></annotation>"
        )

    def open_auction(self, aid: int) -> str:
        rng = self.rng
        initial = rng.randint(5, 300) + rng.random()
        bidders = []
        current = initial
        for _ in range(rng.randint(1, 6)):
            increase = round(rng.choice((1.5, 3.0, 4.5, 6.0, 7.5, 9.0, 12.0, 15.0)) * rng.randint(1, 3), 2)
            current += increase
            bidders.append(
                f"<bidder><date>{self.date()}</date>"
                f'<personref person="person{rng.randrange(self.counts.people)}"/>'
                f"<increase>{increase:.2f}</increase></bidder>"
            )
        reserve = (
            f"<reserve>{initial * rng.uniform(1.1, 2.5):.2f}</reserve>"
            if rng.random() < 0.45
            else ""
        )
        return (
            f'<open_auction id="open_auction{aid}">'
            f"<initial>{initial:.2f}</initial>{reserve}"
            f"{''.join(bidders)}"
            f"<current>{current:.2f}</current>"
            f'<itemref item="item{rng.randrange(self.counts.items)}"/>'
            f'<seller person="person{rng.randrange(self.counts.people)}"/>'
            f"{self.annotation()}"
            f"<quantity>{rng.randint(1, 5)}</quantity>"
            f"<type>{rng.choice(('Regular', 'Featured'))}</type>"
            f"<interval><start>{self.date()}</start><end>{self.date()}</end></interval>"
            f"</open_auction>"
        )

    def closed_auction(self, aid: int) -> str:
        rng = self.rng
        # every fourth closed auction carries the full deep annotation
        # chain Q15/Q16 navigate
        force_deep = aid % 4 == 0
        return (
            "<closed_auction>"
            f'<seller person="person{rng.randrange(self.counts.people)}"/>'
            f'<buyer person="person{rng.randrange(self.counts.people)}"/>'
            f'<itemref item="item{rng.randrange(self.counts.items)}"/>'
            f"<price>{rng.randint(5, 400)}.{rng.randint(0,99):02d}</price>"
            f"<date>{self.date()}</date>"
            f"<quantity>{rng.randint(1, 5)}</quantity>"
            f"<type>{rng.choice(('Regular', 'Featured'))}</type>"
            f"{self.annotation(force_deep)}"
            "</closed_auction>"
        )

    def category(self, cid: int) -> str:
        return (
            f'<category id="category{cid}">'
            f"<name>{self.words(2)}</name>{self.description()}</category>"
        )

    # -------------------------------------------------------------- whole
    def generate(self) -> str:
        rng = self.rng
        counts = self.counts
        out = self.out
        out.append("<site>")
        # regions with items distributed by the xmlgen proportions
        out.append("<regions>")
        assigned = 0
        for idx, (region, share) in enumerate(_REGIONS):
            if idx == len(_REGIONS) - 1:
                n = counts.items - assigned
            else:
                n = max(1, int(counts.items * share))
            out.append(f"<{region}>")
            for i in range(assigned, assigned + n):
                out.append(self.item(i, region))
            out.append(f"</{region}>")
            assigned += n
        out.append("</regions>")
        out.append("<categories>")
        for cid in range(counts.categories):
            out.append(self.category(cid))
        out.append("</categories>")
        out.append("<catgraph>")
        for _ in range(counts.categories):
            out.append(
                f'<edge from="category{rng.randrange(counts.categories)}" '
                f'to="category{rng.randrange(counts.categories)}"/>'
            )
        out.append("</catgraph>")
        out.append("<people>")
        for pid in range(counts.people):
            out.append(self.person(pid))
        out.append("</people>")
        out.append("<open_auctions>")
        for aid in range(counts.open_auctions):
            out.append(self.open_auction(aid))
        out.append("</open_auctions>")
        out.append("<closed_auctions>")
        for aid in range(counts.closed_auctions):
            out.append(self.closed_auction(aid))
        out.append("</closed_auctions>")
        out.append("</site>")
        return "".join(out)


def generate_document(scale: float, seed: int = 42) -> str:
    """Generate one XMark document at the given scale factor."""
    return _Gen(scale, seed).generate()


def document_stats(scale: float) -> XMarkCounts:
    """Entity counts that :func:`generate_document` will produce."""
    return scaled_counts(scale)
