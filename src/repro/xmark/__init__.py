"""The XMark benchmark workload [Schmidt et al., VLDB 2002].

``xmlgen``-style scaled auction-site document generation plus the 20
benchmark queries, expressed in the supported dialect.  Scale factor 1.0
corresponds to the paper's ~110 MB instance; the Python reproduction runs
at factors around 0.0005–0.02.
"""

from repro.xmark.xmlgen import generate_document, document_stats
from repro.xmark.queries import XMARK_QUERIES, xmark_query

__all__ = [
    "generate_document",
    "document_stats",
    "XMARK_QUERIES",
    "xmark_query",
]
