"""Word material for the XMark text generator.

The original ``xmlgen`` drew its prose from Shakespeare; a compact word
list preserves what matters for the benchmark: a realistic mix of short
words, enough distinct values for selective string predicates, and the
word ``gold`` that query Q14 greps for.
"""

WORDS = (
    "the quick brown fox jumps over lazy dog summer winter river mountain "
    "trade market auction price value silver gold copper iron stone glass "
    "paper letter ancient modern quiet loud bright dark little great first "
    "last early late north south east west harbor vessel journey road "
    "bridge tower castle garden forest meadow stream valley shadow light "
    "morning evening night day season harvest grain fruit flower branch "
    "root leaf crown sword shield banner county kingdom empire village "
    "city street corner window door chamber hall court judge merchant "
    "sailor soldier farmer weaver baker smith miller hunter keeper warden "
    "youth elder child mother father brother sister friend stranger guest "
    "honest clever brave gentle proud humble weary eager swift slow strong "
    "weak rich poor noble common rare plain fine coarse smooth rough deep "
    "shallow high low near far wide narrow long short"
).split()

#: words usable as sentence openers for mild variety
OPENERS = ("a", "the", "some", "every", "no", "this", "that")
