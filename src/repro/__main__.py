"""Command-line front end: compile and run XQuery from the shell.

The original Pathfinder shipped as a command-line compiler.  Usage::

    python -m repro -q 'count(//item)' --doc auction.xml=path/to.xml
    python -m repro -f query.xq --doc data.xml=input.xml --explain
    echo '1+1' | python -m repro

Prepared-query mode: queries may declare external variables and bind
them from the command line, and ``--repeat`` re-executes the compiled
plan to show the compile-once amortization::

    python -m repro -q 'declare variable $n as xs:integer external;
                        (1 to $n)' --bind n=5 --repeat 3

Options mirror the demo's "under the hood" hooks: ``--explain`` prints
the plan stages, ``--mil`` the generated MIL program, ``--baseline``
cross-checks against the nested-loop interpreter, ``--xmark SCALE``
loads a generated XMark instance instead of files.

Serving mode (``python -m repro serve --xmark 0.002 --port 8080``)
starts the HTTP query service instead of running one query; its options
live in :mod:`repro.server.cli` and its operations guide in
``docs/serving.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro import connect
from repro.errors import PathfinderError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Pathfinder: XQuery - The Relational Way (reproduction)",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("-q", "--query", help="query text")
    source.add_argument("-f", "--file", help="read the query from a file")
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="URI=PATH",
        help="load an XML document (repeatable; first one is the default)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="load a generated XMark instance as 'auction.xml'",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="persistent document store directory (created if missing; "
        "previously persisted documents are recovered, updates are "
        "durable — see docs/storage.md)",
    )
    parser.add_argument(
        "--bind",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="bind an external variable (repeatable; VALUE parses as "
        "int, then float, else string)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="execute the prepared query N times (plan compiled once)",
    )
    parser.add_argument("--explain", action="store_true", help="print plan stages")
    parser.add_argument("--mil", action="store_true", help="print the MIL program")
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="also run the nested-loop baseline and compare",
    )
    parser.add_argument(
        "--no-optimizer", action="store_true", help="skip plan optimization"
    )
    parser.add_argument(
        "--optimizer-mode",
        choices=("cost", "greedy", "wcoj"),
        default="cost",
        help="planning strategy: cost (estimator-driven join ordering), "
        "greedy (statistics-free syntax-ranked ordering), wcoj "
        "(cost + multi-way twig join collapse)",
    )
    parser.add_argument(
        "--disable-pass",
        action="append",
        default=[],
        metavar="NAME",
        help="disable one optimizer rewrite pass (repeatable; see "
        "--explain for the pass list)",
    )
    parser.add_argument(
        "--time", action="store_true", help="print compile/execute timings"
    )
    return parser


def parse_binding(spec: str) -> tuple[str, str]:
    """``name=value`` → (name, raw value); typing happens against the
    query's declared parameter types in :func:`coerce_binding`."""
    name, sep, raw = spec.partition("=")
    if not sep or not name:
        raise PathfinderError(f"bad --bind {spec!r}, expected NAME=VALUE")
    return name.lstrip("$"), raw


def coerce_binding(raw: str, type_name: str | None) -> object:
    """Convert a command-line value to the declared parameter type.

    A declared ``xs:string`` keeps the raw text (so ``--bind zip=02134``
    stays a string); numeric/boolean declarations convert strictly; an
    untyped declaration falls back to int, then float, else string.  The
    declared-type table is ``PARAM_TYPE_KINDS`` — the same one the
    compiler and the bind-time checker use.
    """
    from repro.relational.items import (
        K_BOOL,
        K_DBL,
        K_INT,
        PARAM_TYPE_KINDS,
    )

    kinds = PARAM_TYPE_KINDS.get(type_name) if type_name else None
    if kinds is not None:
        primary = kinds[0]
        try:
            if primary == K_INT:
                return int(raw)
            if primary == K_DBL:
                return float(raw)
        except ValueError:
            raise PathfinderError(
                f"cannot convert {raw!r} to declared type {type_name}"
            ) from None
        if primary == K_BOOL:
            if raw in ("true", "1"):
                return True
            if raw in ("false", "0"):
                return False
            raise PathfinderError(f"cannot convert {raw!r} to xs:boolean")
        return raw  # string-kinded declarations keep the raw text
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point: one-shot query mode, or the ``serve`` subcommand."""
    out = out or sys.stdout
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "serve":
        from repro.server.cli import serve_main

        return serve_main(argv[1:], out=out)
    args = build_parser().parse_args(argv)

    if args.query:
        query = args.query
    elif args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            query = handle.read()
    else:
        query = sys.stdin.read()
    if not query.strip():
        print("no query given", file=sys.stderr)
        return 2
    if args.repeat < 1:
        print("--repeat must be >= 1", file=sys.stderr)
        return 2

    from repro.relational.optimizer import pass_names_for_mode

    pass_names = pass_names_for_mode(args.optimizer_mode)
    disabled = frozenset(args.disable_pass)
    unknown = disabled - set(pass_names)
    if unknown:
        print(
            f"unknown optimizer pass(es): {', '.join(sorted(unknown))} "
            f"(available: {', '.join(pass_names)})",
            file=sys.stderr,
        )
        return 2

    try:
        session = connect(
            use_optimizer=not args.no_optimizer,
            disabled_passes=disabled,
            store=args.store,
            optimizer_mode=args.optimizer_mode,
        )
        database = session.database
        raw_bindings = dict(parse_binding(spec) for spec in args.bind)
        # with a store, URIs may already exist from recovery — replace
        replace = args.store is not None
        if args.xmark is not None:
            from repro.xmark import generate_document

            database.load_document(
                "auction.xml", generate_document(args.xmark), replace=replace
            )
        for spec in args.doc:
            uri, _, path = spec.partition("=")
            if not path:
                print(f"bad --doc {spec!r}, expected URI=PATH", file=sys.stderr)
                return 2
            with open(path, "r", encoding="utf-8") as handle:
                database.load_document(uri, handle.read(), replace=replace)

        from repro.xquery.core import is_updating
        from repro.xquery.parser import parse_query

        module = parse_query(query)
        if is_updating(module.body):
            if args.explain or args.mil or args.baseline:
                print(
                    "--explain/--mil/--baseline do not apply to updating "
                    "queries",
                    file=sys.stderr,
                )
                return 2
            declared_types = {v.name: v.type_name for v in module.external_vars}
            bindings = {
                name: coerce_binding(raw, declared_types.get(name))
                for name, raw in raw_bindings.items()
            }
            summary = session.execute_update(query, bindings)
            applied = ", ".join(
                f"{kind}={n}" for kind, n in summary["applied"].items()
            )
            docs = ", ".join(
                f"{uri} (epoch {info['epoch']}, {info['nodes']} nodes)"
                for uri, info in summary["documents"].items()
            )
            print(f"applied: {applied or 'nothing'}", file=out)
            print(f"updated: {docs or 'no documents'}", file=out)
            if args.time:
                print(f"# update {summary['seconds'] * 1000:.1f} ms", file=out)
            return 0

        if args.explain or args.mil:
            if args.bind or args.repeat > 1:
                print(
                    "warning: --bind/--repeat have no effect with "
                    "--explain/--mil (the query is not executed)",
                    file=sys.stderr,
                )
            report = session.explain(query)
            if args.explain:
                print(
                    f"# plan: {report.stats.ops_before} operators, "
                    f"{report.stats.ops_after} after optimization "
                    f"(mode: {report.optimizer_mode})",
                    file=out,
                )
                if report.stats.pass_stats:
                    print("# optimizer passes:", file=out)
                    for line in report.pass_table.splitlines():
                        print(f"#   {line}", file=out)
                print(report.plan_ascii, file=out)
            if args.mil:
                print(report.mil, file=out)
            return 0

        prepared = session.prepare(query)
        declared_types = {v.name: v.type_name for v in prepared.parameters}
        bindings = {
            name: coerce_binding(raw, declared_types.get(name))
            for name, raw in raw_bindings.items()
        }
        result = prepared.execute(bindings)
        for i in range(1, args.repeat):
            result = prepared.execute(bindings)
            if args.time:
                print(
                    f"# run {i + 1}: execute "
                    f"{result.execute_seconds * 1000:.1f} ms (plan cached)",
                    file=out,
                )
        print(result.serialize(), file=out)
        if args.time:
            print(
                f"# compile {prepared.compile_seconds * 1000:.1f} ms, "
                f"execute {result.execute_seconds * 1000:.1f} ms, "
                f"{args.repeat} run(s)",
                file=out,
            )
        if args.baseline:
            if prepared.parameters:
                print(
                    "# baseline skipped: the nested-loop interpreter does "
                    "not support external variables",
                    file=out,
                )
                return 0
            from repro.baseline.interpreter import Interpreter
            from repro.xquery.core import desugar_module
            from repro.xquery.parser import parse_query

            interp = Interpreter(
                database.arena, database.documents, database.default_document
            )
            module = desugar_module(parse_query(query))
            agree = interp.serialize(interp.execute(module)) == result.serialize()
            print(f"# baseline agrees: {agree}", file=out)
            if not agree:
                return 1
        return 0
    except PathfinderError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
