"""Command-line front end: compile and run XQuery from the shell.

The original Pathfinder shipped as a command-line compiler.  Usage::

    python -m repro -q 'count(//item)' --doc auction.xml=path/to.xml
    python -m repro -f query.xq --doc data.xml=input.xml --explain
    echo '1+1' | python -m repro

Options mirror the demo's "under the hood" hooks: ``--explain`` prints
the plan stages, ``--mil`` the generated MIL program, ``--baseline``
cross-checks against the nested-loop interpreter, ``--xmark SCALE``
loads a generated XMark instance instead of files.
"""

from __future__ import annotations

import argparse
import sys

from repro import PathfinderEngine
from repro.errors import PathfinderError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Pathfinder: XQuery - The Relational Way (reproduction)",
    )
    source = parser.add_mutually_exclusive_group()
    source.add_argument("-q", "--query", help="query text")
    source.add_argument("-f", "--file", help="read the query from a file")
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="URI=PATH",
        help="load an XML document (repeatable; first one is the default)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="load a generated XMark instance as 'auction.xml'",
    )
    parser.add_argument("--explain", action="store_true", help="print plan stages")
    parser.add_argument("--mil", action="store_true", help="print the MIL program")
    parser.add_argument(
        "--baseline",
        action="store_true",
        help="also run the nested-loop baseline and compare",
    )
    parser.add_argument(
        "--no-optimizer", action="store_true", help="skip peephole optimization"
    )
    parser.add_argument(
        "--time", action="store_true", help="print compile/execute timings"
    )
    return parser


def main(argv: list[str] | None = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)

    if args.query:
        query = args.query
    elif args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            query = handle.read()
    else:
        query = sys.stdin.read()
    if not query.strip():
        print("no query given", file=sys.stderr)
        return 2

    engine = PathfinderEngine(use_optimizer=not args.no_optimizer)
    try:
        if args.xmark is not None:
            from repro.xmark import generate_document

            engine.load_document("auction.xml", generate_document(args.xmark))
        for spec in args.doc:
            uri, _, path = spec.partition("=")
            if not path:
                print(f"bad --doc {spec!r}, expected URI=PATH", file=sys.stderr)
                return 2
            with open(path, "r", encoding="utf-8") as handle:
                engine.load_document(uri, handle.read())

        if args.explain or args.mil:
            report = engine.explain(query)
            if args.explain:
                print(
                    f"# plan: {report.stats.ops_before} operators, "
                    f"{report.stats.ops_after} after optimization",
                    file=out,
                )
                print(report.plan_ascii, file=out)
            if args.mil:
                print(report.mil, file=out)
            return 0

        result = engine.execute(query)
        print(result.serialize(), file=out)
        if args.time:
            print(
                f"# compile {result.compile_seconds * 1000:.1f} ms, "
                f"execute {result.execute_seconds * 1000:.1f} ms",
                file=out,
            )
        if args.baseline:
            from repro.baseline.interpreter import Interpreter
            from repro.xquery.core import desugar_module
            from repro.xquery.parser import parse_query

            interp = Interpreter(
                engine.arena, engine.documents, engine.default_document
            )
            module = desugar_module(parse_query(query))
            agree = interp.serialize(interp.execute(module)) == result.serialize()
            print(f"# baseline agrees: {agree}", file=out)
            if not agree:
                return 1
        return 0
    except PathfinderError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
