"""The router ↔ worker wire protocol: length-prefixed JSON frames.

Workers are separate processes connected to the router by a
:class:`multiprocessing.connection.Connection` pair (a socketpair under
the hood).  ``Connection.send_bytes`` already writes a length-prefixed
frame, so the protocol layer is just a JSON codec plus the error
vocabulary that carries the service's failure semantics — deadline
expiry, shedding, client errors — across the process hop with their
HTTP status intact.

Frame shapes (all JSON objects):

* request: ``{"id": n, "op": name, ...op args}``
* unary response: ``{"id": n, "result": payload}``
* query stream: ``{"id": n, "meta": {...}, "edges": {...}}`` then any
  number of ``{"id": n, "chunk": text}`` then ``{"id": n, "done": true}``
* error: ``{"id": n, "error": msg, "kind": cls, "status": http, "shed": bool}``
  — terminal for its request, including mid-stream (the router
  truncates the HTTP response exactly as the in-process path would).

Every frame carries the request id, so one reader thread per worker can
demultiplex interleaved streams of concurrent requests.
"""

from __future__ import annotations

import json

from repro.errors import PathfinderError
from repro.server.service import DeadlineExceeded


class WorkerUnavailable(PathfinderError):
    """The owning worker is dead (or restarting) — surfaced as HTTP 503."""


class RemoteError(PathfinderError):
    """A worker-side failure reconstructed on the router.

    Carries the original exception class name and the HTTP status the
    worker computed, so the router's error mapping is byte-identical to
    the single-process server's.
    """

    def __init__(self, message: str, kind: str, status: int):
        super().__init__(message)
        self.kind = kind
        self.status = status


def status_for(exc: BaseException) -> int:
    """The HTTP status an exception maps to (mirrors ``server.http``)."""
    if isinstance(exc, DeadlineExceeded):
        return 504
    if isinstance(exc, WorkerUnavailable):
        return 503
    if isinstance(exc, RemoteError):
        return exc.status
    if isinstance(exc, PathfinderError):
        return 404 if "is not loaded" in str(exc) else 400
    if isinstance(exc, (ValueError, json.JSONDecodeError)):
        return 400
    return 500


def send_frame(conn, frame: dict) -> None:
    """Serialize one frame onto a Connection (length-prefixed by mp)."""
    conn.send_bytes(json.dumps(frame, separators=(",", ":")).encode("utf-8"))


def recv_frame(conn) -> dict:
    """Read one frame; raises ``EOFError`` when the peer died."""
    return json.loads(conn.recv_bytes().decode("utf-8"))


def error_frame(request_id: int, exc: BaseException) -> dict:
    """Encode an exception as a terminal error frame for ``request_id``."""
    return {
        "id": request_id,
        "error": str(exc),
        "kind": type(exc).__name__,
        "status": status_for(exc),
        "shed": bool(getattr(exc, "queue_shed", False)),
    }


def raise_remote(frame: dict) -> None:
    """Re-raise a worker's error frame as the matching router exception.

    Deadline expiry becomes a real :class:`DeadlineExceeded` (the HTTP
    layer and the shedding counters key on the type); everything else
    becomes a :class:`RemoteError` carrying the worker's status code.
    """
    status = int(frame.get("status", 500))
    message = frame.get("error", "worker error")
    if status == 504:
        exc = DeadlineExceeded(message)
        exc.queue_shed = bool(frame.get("shed", False))
        raise exc
    raise RemoteError(message, frame.get("kind", "Exception"), status)
