"""The serving subsystem: an HTTP query service over the layered API.

MonetDB/XQuery is a *database system*, not a one-shot compiler — this
package is the reproduction's operational surface.  It stacks:

* :class:`~repro.server.service.QueryService` — a worker pool of
  per-thread :class:`~repro.api.Session` objects over one shared,
  thread-safe :class:`~repro.api.Database`, with wall-clock deadlines
  (the baseline interpreter's budget idea applied to serving) and
  operational counters;
* :mod:`repro.server.http` — a dependency-free ``http.server`` front
  end exposing ``POST /query``, ``GET /explain``, ``GET /stats`` and
  hot document management under ``/documents``, with graceful
  shutdown.

Start it from the shell (``python -m repro serve --xmark 0.002``) or in
process::

    from repro.server import QueryService, serve
    service = QueryService(database, workers=4)
    serve(service, port=8080)

The operations guide lives in ``docs/serving.md``.
"""

from repro.server.http import make_server, serve
from repro.server.service import DeadlineExceeded, QueryService

__all__ = ["QueryService", "DeadlineExceeded", "make_server", "serve"]
