"""The serving subsystem: an HTTP query service over the layered API.

MonetDB/XQuery is a *database system*, not a one-shot compiler — this
package is the reproduction's operational surface.  It stacks:

* :class:`~repro.server.service.QueryService` — a worker pool of
  per-thread :class:`~repro.api.Session` objects over one shared,
  thread-safe :class:`~repro.api.Database`, with wall-clock deadlines
  (the baseline interpreter's budget idea applied to serving) and
  operational counters;
* :mod:`repro.server.http` — a dependency-free ``http.server`` front
  end exposing ``POST /query``, ``GET /explain``, ``GET /stats`` and
  hot document management under ``/documents``, with graceful
  shutdown;
* :class:`~repro.server.cluster.ClusterService` — the same service
  surface scaled out: N worker processes, each a shard-scoped
  QueryService over its partition of the mmap store, scatter-gather
  query routing, and an asyncio keep-alive router front end
  (:mod:`repro.server.router`).

Start it from the shell (``python -m repro serve --xmark 0.002``, add
``--workers 4`` for the cluster) or in process::

    from repro.server import QueryService, serve
    service = QueryService(database, workers=4)
    serve(service, port=8080)

The operations guide lives in ``docs/serving.md``.
"""

from repro.server.cluster import ClusterService
from repro.server.http import make_server, serve
from repro.server.protocol import RemoteError, WorkerUnavailable
from repro.server.router import RouterServer
from repro.server.router import serve as serve_cluster
from repro.server.service import DeadlineExceeded, QueryService

__all__ = [
    "QueryService",
    "ClusterService",
    "DeadlineExceeded",
    "RemoteError",
    "WorkerUnavailable",
    "RouterServer",
    "make_server",
    "serve",
    "serve_cluster",
]
