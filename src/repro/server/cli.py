"""``python -m repro serve`` — the serving subcommand.

Loads documents (files and/or a generated XMark instance) into one
shared Database, builds a :class:`~repro.server.service.QueryService`
and blocks in :func:`repro.server.http.serve` until SIGINT/SIGTERM::

    python -m repro serve --xmark 0.002 --port 8080 --threads 4
    python -m repro serve --doc catalog.xml=path/to.xml --deadline 5
    python -m repro serve --store ./cat --workers 4   # sharded cluster

Tuning knobs (see docs/serving.md): ``--workers N`` (N > 0) serves the
catalog from N shard-scoped worker *processes* behind the asyncio
scatter-gather router (``--workers 0``, the default, keeps the
single-process thread-pool server), ``--threads`` bounds concurrent
query execution per process, ``--deadline`` is the default per-request
wall-clock budget, ``--plan-cache`` sizes the shared compile-once LRU,
and ``--backend sqlhost`` runs worker sessions on the SQLite host
(with automatic numpy fallback).

``--store DIR`` attaches a persistent document store (docs/storage.md):
documents already persisted under DIR are recovered (mmap + WAL replay)
before any ``--doc``/``--xmark`` load, updates are logged for crash
recovery, and a graceful shutdown checkpoints the log.  Adding
``--page-budget BYTES`` makes that recovery *lazy*: fragments stay
memory-mapped until queried and are evicted LRU past the budget, so the
served catalog may be much larger than RAM.
"""

from __future__ import annotations

import argparse
import sys

from repro.api.database import Database
from repro.api.session import BACKENDS
from repro.errors import PathfinderError
from repro.relational.optimizer import OPTIMIZER_MODES


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve XQuery over HTTP (see docs/serving.md)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8080, help="bind port")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard the catalog over N worker processes behind the "
        "scatter-gather router (0 = single-process server)",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="query threads per process"
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request wall-clock budget",
    )
    parser.add_argument(
        "--plan-cache",
        type=int,
        default=128,
        metavar="N",
        help="capacity of the shared compile-once plan cache",
    )
    parser.add_argument(
        "--doc",
        action="append",
        default=[],
        metavar="URI=PATH",
        help="load an XML document (repeatable; first one is the default)",
    )
    parser.add_argument(
        "--xmark",
        type=float,
        metavar="SCALE",
        help="load a generated XMark instance as 'auction.xml'",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        help="attach a persistent document store directory (created if "
        "missing; existing documents are recovered before --doc/--xmark)",
    )
    parser.add_argument(
        "--page-budget",
        type=int,
        metavar="BYTES",
        help="resident-column byte budget for lazy mmap paging (requires "
        "--store; fragments over budget are evicted LRU, see "
        "docs/storage.md)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="numpy",
        help="evaluator for worker sessions (sqlhost falls back to numpy)",
    )
    parser.add_argument(
        "--no-optimizer",
        action="store_true",
        help="serve unoptimized plans (debugging aid)",
    )
    parser.add_argument(
        "--optimizer-mode",
        choices=OPTIMIZER_MODES,
        default="cost",
        help="planning strategy for worker sessions (cost, greedy or wcoj)",
    )
    return parser


def _serve_cluster(args, out) -> int:
    """The ``--workers N`` path: ClusterService behind the asyncio router."""
    from repro.server.cluster import ClusterService
    from repro.server.router import serve as serve_cluster

    service = ClusterService(
        args.workers,
        store=args.store,
        threads=args.threads,
        deadline_seconds=args.deadline,
        plan_cache_size=args.plan_cache,
        page_budget_bytes=args.page_budget,
        session_options={
            "backend": args.backend,
            "use_optimizer": not args.no_optimizer,
            "optimizer_mode": args.optimizer_mode,
        },
    )
    try:
        recovered = [d["uri"] for d in service.list_documents()]
        if args.store is not None and recovered:
            print(f"recovered from {args.store}: {', '.join(recovered)}", file=out)
        if args.xmark is not None:
            from repro.xmark import generate_document

            service.put_document("auction.xml", generate_document(args.xmark))
            print(f"loaded auction.xml (XMark scale {args.xmark})", file=out)
        for spec in args.doc:
            uri, _, path = spec.partition("=")
            if not path:
                print(f"bad --doc {spec!r}, expected URI=PATH", file=sys.stderr)
                service.shutdown(wait=True)
                return 2
            with open(path, "r", encoding="utf-8") as handle:
                payload = service.put_document(uri, handle.read())
            print(
                f"loaded {uri} ({payload['nodes']} nodes, "
                f"shard {payload['shard']})",
                file=out,
            )
    except PathfinderError as exc:
        service.shutdown(wait=True)
        print(f"error: {exc}", file=sys.stderr)
        return 1
    serve_cluster(service, host=args.host, port=args.port, out=out)
    return 0


def serve_main(argv: list[str] | None = None, out=None) -> int:
    """Entry point for ``python -m repro serve``."""
    from repro.server.http import serve
    from repro.server.service import QueryService

    out = out or sys.stdout
    args = build_serve_parser().parse_args(argv)
    if args.workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return 2
    if args.workers > 0:
        try:
            return _serve_cluster(args, out)
        except PathfinderError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    try:
        database = Database(
            plan_cache_size=args.plan_cache,
            store=args.store,
            page_budget_bytes=args.page_budget,
        )
        if args.store is not None and database.documents:
            recovered = ", ".join(sorted(database.documents))
            print(f"recovered from {args.store}: {recovered}", file=out)
        if args.page_budget is not None:
            print(f"paging: budget {args.page_budget} bytes", file=out)
        # with a store attached a --doc/--xmark URI may already exist from
        # recovery; replace semantics make the restart idempotent
        replace = args.store is not None
        if args.xmark is not None:
            from repro.xmark import generate_document

            database.load_document(
                "auction.xml", generate_document(args.xmark), replace=replace
            )
            print(f"loaded auction.xml (XMark scale {args.xmark})", file=out)
        for spec in args.doc:
            uri, _, path = spec.partition("=")
            if not path:
                print(f"bad --doc {spec!r}, expected URI=PATH", file=sys.stderr)
                return 2
            with open(path, "r", encoding="utf-8") as handle:
                nodes = database.load_document(uri, handle.read(), replace=replace)
            print(f"loaded {uri} ({nodes} nodes)", file=out)
        service = QueryService(
            database,
            workers=args.threads,
            deadline_seconds=args.deadline,
            session_options={
                "backend": args.backend,
                "use_optimizer": not args.no_optimizer,
                "optimizer_mode": args.optimizer_mode,
            },
        )
    except PathfinderError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    serve(service, host=args.host, port=args.port, out=out)
    return 0
