"""The HTTP front end: stdlib ``ThreadingHTTPServer`` over a QueryService.

No third-party dependencies — connection handling is stdlib
``http.server`` (one thread per connection), while query execution is
bounded by the :class:`~repro.server.service.QueryService` worker pool,
so slow clients cost a cheap blocked connection thread, never a query
worker.

Endpoints (all JSON unless noted):

=======  =====================  ===========================================
method   path                   behaviour
=======  =====================  ===========================================
POST     ``/query``             ``{"query": ..., "bindings": {...},
                                "deadline": secs}`` → serialized result,
                                streamed as a chunked-transfer response
POST     ``/update``            same body shape, updating query →
                                applied-primitive counts + new epochs
POST     ``/checkpoint``        fold the store's WAL into fragment
                                files (400 when no store is attached)
GET      ``/explain``           ``?q=<query>`` → plan stages + pass stats
GET      ``/documents``         catalog listing (uri, nodes, epoch, default)
PUT      ``/documents/<uri>``   body = XML; load or hot-replace
DELETE   ``/documents/<uri>``   unload
GET      ``/stats``             operational counters (see QueryService)
GET      ``/healthz``           liveness probe (also plain ``/``)
=======  =====================  ===========================================

Errors map onto status codes: compile/static errors and malformed
requests are 400, unknown documents 404, deadline expiry 504 (with the
budget in the body), anything unexpected 500.  Every error body is
``{"error": message, "kind": exception class}``.

``serve()`` is the blocking entry point used by ``python -m repro
serve``; it installs SIGINT/SIGTERM handlers for a graceful shutdown —
stop accepting connections, drain the worker pool, then return.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from repro.errors import PathfinderError
from repro.server.service import DeadlineExceeded, QueryService

#: request bodies above this size are rejected (64 MiB — a scale-0.1
#: XMark document is ~11 MiB, so hot reloads fit with headroom)
MAX_BODY_BYTES = 64 * 1024 * 1024


class QueryServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the server's :class:`QueryService`."""

    protocol_version = "HTTP/1.1"
    #: socket timeout: an idle keep-alive connection is closed after this
    #: many seconds, which bounds how long graceful shutdown can block on
    #: connection threads
    timeout = 10
    #: set by :func:`make_server` on the handler subclass
    service: QueryService = None

    # ------------------------------------------------------------- plumbing
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr logging (the default is noisy)."""

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._response_started = True
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, exc: BaseException) -> None:
        self._send_json(
            status, {"error": str(exc), "kind": type(exc).__name__}
        )

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # the unread body would desync the keep-alive stream
            self.close_connection = True
            raise PathfinderError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        return self.rfile.read(length) if length else b""

    def _discard_body(self) -> None:
        """Drain an unused request body so the next request on this
        keep-alive connection starts at a request line, not body bytes."""
        length = int(self.headers.get("Content-Length") or 0)
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > MAX_BODY_BYTES:
            self.close_connection = True

    def _dispatch(self, fn) -> None:
        """Run one route handler, mapping exceptions to status codes.

        Once a response has started, a failure can only be a broken
        stream — the connection is closed rather than desynced by a
        second response written into the middle of the first.
        """
        self._response_started = False
        try:
            fn()
        except DeadlineExceeded as exc:
            self._fail(504, exc)
        except PathfinderError as exc:
            self._fail(404 if "is not loaded" in str(exc) else 400, exc)
        except (ValueError, json.JSONDecodeError) as exc:
            self._fail(400, exc)
        except OSError:  # pragma: no cover - client/socket went away
            self.close_connection = True
        except Exception as exc:  # pragma: no cover - defensive 500
            self._fail(500, exc)

    def _fail(self, status: int, exc: BaseException) -> None:
        if self._response_started:  # pragma: no cover - mid-write failure
            self.close_connection = True
            return
        self._send_error_json(status, exc)

    # --------------------------------------------------------------- routes
    def do_GET(self):  # noqa: D102 - routed below
        """Route GET requests (explain / documents / stats / healthz)."""
        self._discard_body()  # a GET body is never used; keep the stream sane
        url = urlparse(self.path)
        if url.path in ("/", "/healthz"):
            self._dispatch(lambda: self._send_json(200, {"ok": True}))
        elif url.path == "/stats":
            self._dispatch(
                lambda: self._send_json(200, self.service.stats())
            )
        elif url.path == "/documents":
            self._dispatch(
                lambda: self._send_json(
                    200, {"documents": self.service.list_documents()}
                )
            )
        elif url.path == "/explain":
            self._dispatch(lambda: self._explain(url))
        else:
            self._send_json(404, {"error": f"no route {url.path}"})

    def do_POST(self):
        """Route POST requests (``/query``, ``/update``, ``/checkpoint``)."""
        url = urlparse(self.path)
        if url.path == "/query":
            self._dispatch(self._query)
        elif url.path == "/update":
            self._dispatch(self._update)
        elif url.path == "/checkpoint":
            self._discard_body()  # the body is never used
            self._dispatch(
                lambda: self._send_json(200, self.service.checkpoint())
            )
        else:
            self._discard_body()
            self._send_json(404, {"error": f"no route {url.path}"})

    def do_PUT(self):
        """Route PUT requests (``/documents/<uri>``)."""
        uri = self._document_uri()
        if uri is None:
            return
        self._dispatch(lambda: self._put_document(uri))

    def do_DELETE(self):
        """Route DELETE requests (``/documents/<uri>``)."""
        self._discard_body()  # DELETE bodies are never used
        uri = self._document_uri()
        if uri is None:
            return
        self._dispatch(
            lambda: self._send_json(200, self.service.delete_document(uri))
        )

    # ------------------------------------------------------------- handlers
    def _document_uri(self) -> str | None:
        path = urlparse(self.path).path
        prefix = "/documents/"
        if not path.startswith(prefix) or len(path) == len(prefix):
            self._discard_body()
            self._send_json(
                404, {"error": "expected /documents/<name>"}
            )
            return None
        return unquote(path[len(prefix):])

    def _query_body(self) -> tuple[str, dict, object]:
        """Validate a ``/query``-shaped JSON body → (query, bindings,
        deadline); shared by the ``/query`` and ``/update`` routes."""
        body = json.loads(self._read_body() or b"{}")
        query = body.get("query") if isinstance(body, dict) else None
        if not isinstance(query, str) or not query.strip():
            raise PathfinderError(
                'the request body needs a non-empty "query" string field'
            )
        bindings = body.get("bindings") or {}
        if not isinstance(bindings, dict):
            raise PathfinderError('"bindings" must be a JSON object')
        return query, bindings, body.get("deadline")

    def _query(self) -> None:
        """``POST /query`` with a chunked-transfer response.

        The worker pool compiles and executes under the deadline
        discipline, then the serialized result streams straight from the
        arena scan onto the socket — the response body is built chunk by
        chunk, byte-identical to ``json.dumps`` of the buffered payload,
        but no in-flight request ever assembles a multi-MB result string.
        """
        query, bindings, deadline = self._query_body()
        meta, chunks = self.service.execute_stream(query, bindings, deadline=deadline)
        # pull the first chunk before committing to a 200: a budget spent
        # by the time serialization starts (or an immediate serialization
        # failure) still gets a proper 504/500 status line, so only a
        # genuinely mid-stream failure ever truncates a response
        chunks = iter(chunks)
        first = next(chunks, None)
        self._response_started = True
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        write = self.wfile.write

        def send_chunk(data: bytes) -> None:
            if data:  # a zero-length chunk would terminate the stream
                write(b"%X\r\n%s\r\n" % (len(data), data))

        # json.dumps escapes characterwise, so escaping each chunk
        # separately concatenates to exactly the buffered encoding
        send_chunk(b'{"result": "')
        if first is not None:
            send_chunk(json.dumps(first)[1:-1].encode("utf-8"))
        for chunk in chunks:
            send_chunk(json.dumps(chunk)[1:-1].encode("utf-8"))
        tail = '", ' + json.dumps(meta)[1:]
        send_chunk(tail.encode("utf-8"))
        write(b"0\r\n\r\n")

    def _update(self) -> None:
        query, bindings, deadline = self._query_body()
        payload = self.service.execute_update(query, bindings, deadline=deadline)
        self._send_json(200, payload)

    def _explain(self, url) -> None:
        params = parse_qs(url.query)
        query = (params.get("q") or params.get("query") or [""])[0]
        if not query:
            raise PathfinderError("pass the query as ?q=<xquery>")
        self._send_json(200, self.service.explain(query))

    def _put_document(self, uri: str) -> None:
        xml_text = self._read_body().decode("utf-8")
        if not xml_text.strip():
            raise PathfinderError("the request body must be the XML document")
        self._send_json(200, self.service.put_document(uri, xml_text))


def make_server(
    service: QueryService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Build (and bind, but not start) the HTTP server for a service.

    The handler class is subclassed per server so concurrent servers in
    one process (tests, benchmarks) never share a ``service``.
    """
    handler = type(
        "BoundQueryServiceHandler",
        (QueryServiceHandler,),
        # TCP_NODELAY: chunked responses end in small writes, and with
        # Nagle on, a reused keep-alive connection stalls ~40ms per
        # request (Nagle x delayed-ACK) — persistent connections would
        # bench *slower* than connect-per-request
        {"service": service, "disable_nagle_algorithm": True},
    )
    server = ThreadingHTTPServer((host, port), handler)
    # non-daemon connection threads: server_close() joins them, so a
    # graceful shutdown really does finish in-flight responses.  The
    # handler's socket timeout bounds the join — an idle keep-alive
    # connection closes within `QueryServiceHandler.timeout` seconds.
    server.daemon_threads = False
    return server


def serve(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 8080,
    install_signal_handlers: bool = True,
    ready: threading.Event | None = None,
    out=None,
) -> None:
    """Serve until SIGINT/SIGTERM, then shut down gracefully.

    Graceful means: the accept loop stops, connection threads finish
    their current responses, the worker pool drains, and only then does
    this function return.  ``ready`` (if given) is set once the socket
    is listening — tests and the benchmark use it to avoid races.
    """
    server = make_server(service, host, port)

    def request_shutdown(signum, frame):  # pragma: no cover - signal path
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signal_handlers:  # pragma: no cover - exercised via CLI
        signal.signal(signal.SIGINT, request_shutdown)
        signal.signal(signal.SIGTERM, request_shutdown)
    if out is not None:
        budget = service.database.page_budget_bytes
        paging = f", {budget}B page budget" if budget is not None else ""
        print(
            f"serving on http://{host}:{server.server_address[1]} "
            f"({service.workers} workers, "
            f"{service.deadline_seconds:g}s deadline{paging})",
            file=out,
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.shutdown(wait=True)
