"""The scatter-gather layer: N worker processes behind one service facade.

:class:`ClusterService` presents the same interface as
:class:`~repro.server.service.QueryService` — ``execute_stream``,
``execute_update``, document CRUD, ``stats``, ``health``, ``shutdown`` —
but executes on a fleet of worker *processes* (:mod:`repro.server.worker`),
each owning one shard of the document catalog.  The GIL stops being the
ceiling: every worker is a full interpreter with its own arena, plan
cache and thread pool, opened shard-scoped over the shared
:class:`~repro.encoding.store.DocumentStore` directory (or empty, for an
in-memory cluster fed over HTTP).

Routing: the shard map is :func:`~repro.encoding.store.shard_of` — pure
hashing, so router and workers agree without coordination.  A query's
document dependencies are read *statically* from its AST (``fn:doc``
requires a string literal in this engine, so the analysis is complete;
absolute paths depend on the cluster default document).  Single-shard
queries stream straight through.  A query spanning shards is scattered:
its top-level comma sequence is split textually (conservatively — see
``_split_toplevel``), the operands execute on their shards in parallel,
and the streams are concatenated in operand order with the XQuery
space-separator rule applied at the seams (adjacent *atomic* edge items
get one space; nodes get none), which keeps the merged bytes identical
to the single-process serializer.  A multi-shard query that cannot be
split raises :class:`RoutingError` (HTTP 400) — the documented routing
limitation.

Failure semantics: deadlines and shedding are enforced *inside* each
worker by its QueryService (the single source of truth for those
counters); the router only adds a grace timeout so a hung or dead worker
cannot strand a request.  A worker that dies is respawned (spawn
context — fork is unsafe with the router's threads), recovers its shard
from the store, and re-announces its catalog; requests that raced the
crash fail with :class:`~repro.server.protocol.WorkerUnavailable`
(HTTP 503).  Without a store, a respawned worker comes back empty.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache

from repro.encoding.store import MANIFEST_NAME, shard_of
from repro.errors import PathfinderError
from repro.server import protocol
from repro.server.protocol import WorkerUnavailable
from repro.server.service import DeadlineExceeded
from repro.server.worker import worker_main
from repro.xquery.parser import parse_query

#: extra wall-clock the router allows past a request's budget before
#: declaring the worker hung (the worker enforces the budget itself)
GRACE_SECONDS = 5.0
#: how long to wait for a (re)spawned worker's hello
READY_TIMEOUT = 60.0
#: ceiling for admin ops that carry no deadline (document PUT, stats...)
ADMIN_TIMEOUT = 120.0
#: give up respawning a shard after this many consecutive deaths
RESTART_LIMIT = 5


class RoutingError(PathfinderError):
    """The router cannot place a request on a single shard (HTTP 400)."""


# --------------------------------------------------------------------------
# static document-dependency analysis
# --------------------------------------------------------------------------
def _walk_deps(node, uris: set, flags: dict) -> None:
    """Collect ``doc("literal")`` URIs and absolute-path markers."""
    from dataclasses import fields, is_dataclass

    from repro.xquery import ast

    if isinstance(node, (list, tuple)):
        for item in node:
            _walk_deps(item, uris, flags)
        return
    if not is_dataclass(node):
        return
    if isinstance(node, ast.FunctionCall) and node.name in ("doc", "fn:doc"):
        args = node.args
        if len(args) == 1 and isinstance(args[0], ast.Literal) and isinstance(
            args[0].value, str
        ):
            uris.add(args[0].value)
        else:
            # non-literal doc() — the compiler rejects it anyway; route
            # anywhere and let the worker raise the same error
            flags["dynamic"] = True
    if isinstance(node, ast.PathExpr) and node.absolute:
        flags["default"] = True
    for field in fields(node):
        _walk_deps(getattr(node, field.name), uris, flags)


@lru_cache(maxsize=1024)
def _analyze(query: str) -> tuple[frozenset, bool, bool]:
    """``query`` → (doc URIs, depends-on-default, has-dynamic-doc)."""
    module = parse_query(query)
    uris: set = set()
    flags = {"default": False, "dynamic": False}
    _walk_deps(module, uris, flags)
    return frozenset(uris), flags["default"], flags["dynamic"]


def _split_toplevel(text: str) -> list[str] | None:
    """Split a query at its top-level commas, or None when unsafe.

    Tracks paren/bracket/brace depth, string literals (with XQuery's
    quote doubling) and nested ``(: :)`` comments.  Bails out on any
    ``<`` outside strings/comments: it could open a direct constructor,
    whose content makes tokenization context-dependent — the split must
    never be *wrong*, only unavailable.
    """
    pieces: list[str] = []
    start = 0
    depth = 0
    comment_depth = 0
    in_string: str | None = None
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if in_string is not None:
            if ch == in_string:
                if i + 1 < n and text[i + 1] == in_string:
                    i += 2  # doubled quote: an escaped quote character
                    continue
                in_string = None
            i += 1
            continue
        if comment_depth:
            if ch == "(" and i + 1 < n and text[i + 1] == ":":
                comment_depth += 1
                i += 2
                continue
            if ch == ":" and i + 1 < n and text[i + 1] == ")":
                comment_depth -= 1
                i += 2
                continue
            i += 1
            continue
        if ch == "(" and i + 1 < n and text[i + 1] == ":":
            comment_depth = 1
            i += 2
            continue
        if ch in "'\"":
            in_string = ch
        elif ch == "<":
            return None
        elif ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth < 0:
                return None
        elif ch == "," and depth == 0:
            pieces.append(text[start:i])
            start = i + 1
        i += 1
    if in_string is not None or comment_depth or depth != 0:
        return None
    pieces.append(text[start:])
    if len(pieces) < 2 or any(not p.strip() for p in pieces):
        return None
    return pieces


# --------------------------------------------------------------------------
# one worker process, as the router sees it
# --------------------------------------------------------------------------
class WorkerHandle:
    """Owns one worker process: connection, demux, respawn."""

    def __init__(self, index: int, count: int, config: dict, ctx, on_hello=None):
        self.index = index
        self.config = {**config, "index": index, "count": count}
        self._ctx = ctx
        self._on_hello = on_hello
        self.process = None
        self.conn = None
        self.ready = threading.Event()
        self.hello: dict | None = None
        self.restarts = 0
        self.dead = False
        self._closed = False
        self._pending: dict[int, queue.Queue] = {}
        self._pending_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._respawn_lock = threading.Lock()
        self._ids = itertools.count(1)

    # ----------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Spawn the worker process and its frame-reader thread."""
        parent, child = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child, self.config),
            daemon=True,
            name=f"repro-shard-{self.index}",
        )
        process.start()
        child.close()
        self.conn = parent
        self.process = process
        reader = threading.Thread(
            target=self._read_loop,
            args=(parent,),
            daemon=True,
            name=f"shard{self.index}-reader",
        )
        reader.start()

    def close(self, join_timeout: float = 10.0) -> None:
        """Stop the worker: best-effort shutdown op, then close + join."""
        self._closed = True
        try:
            self.call("shutdown", timeout=join_timeout)
        except Exception:
            pass
        try:
            if self.conn is not None:
                self.conn.close()
        except OSError:
            pass
        if self.process is not None:
            self.process.join(timeout=join_timeout)
            if self.process.is_alive():  # pragma: no cover - stuck worker
                self.process.terminate()
                self.process.join(timeout=join_timeout)

    def _read_loop(self, conn) -> None:
        """Demultiplex this connection's frames into per-request queues."""
        try:
            while True:
                frame = protocol.recv_frame(conn)
                if "hello" in frame:
                    self.hello = frame["hello"]
                    self.ready.set()
                    if self._on_hello is not None:
                        self._on_hello(self, frame["hello"])
                    continue
                rid = frame.get("id")
                with self._pending_lock:
                    q = self._pending.get(rid)
                    # terminal frames retire the pending slot here, so an
                    # abandoned caller cannot leak its queue forever
                    if q is not None and (
                        "error" in frame or "result" in frame or frame.get("done")
                    ):
                        self._pending.pop(rid, None)
                if q is not None:
                    q.put(frame)
        except (EOFError, OSError):
            pass
        finally:
            if conn is self.conn and not self._closed:
                self._connection_lost()

    def _connection_lost(self) -> None:
        """The worker died: fail pending requests, then respawn."""
        self.ready.clear()
        with self._pending_lock:
            pending = list(self._pending.values())
            self._pending.clear()
        down = {
            "error": f"shard {self.index} worker process died",
            "kind": "WorkerUnavailable",
            "status": 503,
        }
        for q in pending:
            q.put(down)
        with self._respawn_lock:
            if self._closed:
                return
            if self.restarts >= RESTART_LIMIT:
                self.dead = True
                return
            self.restarts += 1
            try:
                self.process.join(timeout=5.0)
            except Exception:  # pragma: no cover - already reaped
                pass
            self.start()

    # ------------------------------------------------------------ requests
    def _await_ready(self, timeout: float = READY_TIMEOUT) -> None:
        if self.dead:
            raise WorkerUnavailable(
                f"shard {self.index} is down (restart limit reached)"
            )
        if not self.ready.wait(timeout):
            raise WorkerUnavailable(f"shard {self.index} is not ready")

    def _register(self) -> tuple[int, queue.Queue]:
        rid = next(self._ids)
        q: queue.Queue = queue.Queue()
        with self._pending_lock:
            self._pending[rid] = q
        return rid, q

    def _unregister(self, rid: int) -> None:
        with self._pending_lock:
            self._pending.pop(rid, None)

    def _send(self, frame: dict) -> None:
        try:
            with self._send_lock:
                protocol.send_frame(self.conn, frame)
        except (OSError, ValueError) as exc:
            raise WorkerUnavailable(
                f"shard {self.index} connection is down: {exc}"
            ) from None

    def call(self, op: str, timeout: float = ADMIN_TIMEOUT, **fields):
        """One unary op; raises the reconstructed worker exception."""
        self._await_ready()
        rid, q = self._register()
        try:
            self._send({"id": rid, "op": op, **fields})
            try:
                frame = q.get(timeout=timeout)
            except queue.Empty:
                raise WorkerUnavailable(
                    f"shard {self.index} did not answer {op!r} within "
                    f"{timeout:.0f}s"
                ) from None
            if "error" in frame:
                protocol.raise_remote(frame)
            return frame.get("result")
        finally:
            self._unregister(rid)

    def query(self, query: str, bindings: dict, deadline, budget: float):
        """The streaming op — returns a :class:`_QueryStream`."""
        self._await_ready()
        rid, q = self._register()
        try:
            self._send(
                {
                    "id": rid,
                    "op": "query",
                    "query": query,
                    "bindings": bindings,
                    "deadline": deadline,
                }
            )
            try:
                head = q.get(timeout=budget + GRACE_SECONDS)
            except queue.Empty:
                raise DeadlineExceeded(
                    f"shard {self.index} produced no result within the "
                    f"{budget:.3f}s budget (+grace)"
                ) from None
            if "error" in head:
                protocol.raise_remote(head)
        except BaseException:
            self._unregister(rid)
            raise
        return _QueryStream(self, rid, q, head["meta"], head["edges"], budget)


class _QueryStream:
    """One in-flight scattered query leg: its meta, edges and chunks."""

    def __init__(self, handle, rid, frames, meta, edges, budget):
        self.handle = handle
        self.rid = rid
        self.frames = frames
        self.meta = meta
        self.edges = edges
        self.budget = budget

    def chunks(self):
        """Yield the leg's serialized text chunks; terminal on error."""
        try:
            while True:
                try:
                    frame = self.frames.get(timeout=self.budget + GRACE_SECONDS)
                except queue.Empty:
                    raise DeadlineExceeded(
                        f"shard {self.handle.index} stalled mid-stream past "
                        f"the {self.budget:.3f}s budget (+grace)"
                    ) from None
                if frame.get("done"):
                    return
                if "error" in frame:
                    protocol.raise_remote(frame)
                yield frame["chunk"]
        finally:
            self.discard()

    def discard(self) -> None:
        """Release the pending slot (idempotent; safe if never streamed)."""
        self.handle._unregister(self.rid)


# --------------------------------------------------------------------------
# the cluster facade
# --------------------------------------------------------------------------
class ClusterService:
    """QueryService-shaped facade over N shard worker processes."""

    def __init__(
        self,
        workers: int,
        store: str | None = None,
        threads: int = 4,
        deadline_seconds: float = 30.0,
        session_options: dict | None = None,
        plan_cache_size: int = 128,
        page_budget_bytes: int | None = None,
    ):
        if workers < 1:
            raise PathfinderError("a cluster needs at least 1 worker process")
        if deadline_seconds <= 0:
            raise PathfinderError("deadline_seconds must be positive")
        self.workers = workers
        self.threads = threads
        self.deadline_seconds = deadline_seconds
        self.store = store
        self._started = time.monotonic()
        self._closed = False
        self._routing: dict[str, dict] = {}
        self._routing_lock = threading.Lock()
        self._default: str | None = None
        self._rr = itertools.count()
        self._scatter_queries = 0
        self._routing_errors = 0
        # the scatter fan-out pool: legs of one query run concurrently
        self._scatter_pool = ThreadPoolExecutor(
            max_workers=max(8, workers * 2), thread_name_prefix="scatter"
        )
        per_worker_budget = (
            None if page_budget_bytes is None
            else max(1, page_budget_bytes // workers)
        )
        config = {
            "count": workers,
            "store": store,
            "threads": threads,
            "deadline_seconds": deadline_seconds,
            "session_options": dict(session_options or {}),
            "plan_cache_size": plan_cache_size,
            "page_budget_bytes": per_worker_budget,
        }
        # fork is unsafe here: the router is threaded by construction
        ctx = multiprocessing.get_context("spawn")
        self._handles = [
            WorkerHandle(i, workers, config, ctx, on_hello=self._hello)
            for i in range(workers)
        ]
        for handle in self._handles:
            handle.start()
        deadline = time.monotonic() + READY_TIMEOUT
        for handle in self._handles:
            remaining = max(0.1, deadline - time.monotonic())
            if not handle.ready.wait(remaining):
                self.shutdown(wait=False)
                raise PathfinderError(
                    f"shard {handle.index} failed to start within "
                    f"{READY_TIMEOUT:.0f}s"
                )
        if store is not None:
            self._adopt_manifest_default()

    # ------------------------------------------------------------- routing
    def _hello(self, handle: WorkerHandle, hello: dict) -> None:
        """(Re)build the shard's routing entries from its hello."""
        with self._routing_lock:
            for uri in [
                u for u, e in self._routing.items() if e["shard"] == handle.index
            ]:
                del self._routing[uri]
            for doc in hello.get("documents", ()):
                self._routing[doc["uri"]] = {
                    "shard": handle.index,
                    "epoch": doc["epoch"],
                    "nodes": doc["nodes"],
                }

    def _adopt_manifest_default(self) -> None:
        """Pick the cluster default from the store manifest at startup.

        Mirrors the single-process recovery rule — the manifest's
        explicit choice, else the first sorted document — and pins it on
        the owning worker so absolute paths resolve identically there.
        """
        manifest_path = os.path.join(self.store, MANIFEST_NAME)
        default = None
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                default = json.load(handle).get("default_document")
        except (OSError, ValueError):
            default = None
        with self._routing_lock:
            if default is None and self._routing:
                default = sorted(self._routing)[0]
            if default is not None and default not in self._routing:
                default = None
            self._default = default
        if default is not None:
            self._handles[shard_of(default, self.workers)].call(
                "set_default", uri=default, persist=False
            )

    def _shards_for(self, query: str) -> set[int]:
        """The set of shards a query's static dependencies live on."""
        uris, uses_default, dynamic = _analyze(query)
        targets = {shard_of(uri, self.workers) for uri in uris}
        if uses_default or dynamic:
            with self._routing_lock:
                default = self._default
            if default is not None:
                targets.add(shard_of(default, self.workers))
            # no default: any worker raises the same compile error
        return targets

    def _pick(self, targets: set[int]) -> WorkerHandle:
        if targets:
            return self._handles[min(targets)]
        # dependency-free query (e.g. pure arithmetic): spread the load
        return self._handles[next(self._rr) % self.workers]

    def _budget(self, deadline) -> float:
        if deadline is None:
            return self.deadline_seconds
        try:
            budget = float(deadline)
        except (TypeError, ValueError):
            raise PathfinderError(
                f"deadline must be a number of seconds, got {deadline!r}"
            ) from None
        if budget <= 0:
            raise PathfinderError("deadline must be positive")
        return budget

    # ------------------------------------------------------------- queries
    def execute(self, query, bindings=None, deadline=None) -> dict:
        """Buffered execute — ``execute_stream`` joined (tests, parity)."""
        meta, chunks = self.execute_stream(query, bindings, deadline=deadline)
        return {"result": "".join(chunks), **meta}

    def execute_stream(self, query, bindings=None, deadline=None):
        """Route one query; scatter across shards when it must.

        Same contract as :meth:`QueryService.execute_stream`: returns
        ``(meta, chunks)`` with the serialized text deferred to the
        iterator, and the merged bytes identical to the single-process
        serializer (the edge-atomics separator rule, see module docs).
        """
        budget = self._budget(deadline)
        bindings = bindings or {}
        targets = self._shards_for(query)
        if len(targets) <= 1:
            stream = self._pick(targets).query(query, bindings, deadline, budget)
            return stream.meta, stream.chunks()
        return self._scatter(query, bindings, deadline, budget, targets)

    def _scatter(self, query, bindings, deadline, budget, targets):
        """Split, dispatch in parallel, merge in operand order."""
        with self._routing_lock:
            self._scatter_queries += 1
        pieces = _split_toplevel(query)
        if pieces is None:
            self._routing_error(
                f"query depends on documents across {len(targets)} shards "
                "and is not a splittable top-level sequence"
            )
        legs = []
        for piece in pieces:
            try:
                piece_targets = self._shards_for(piece)
            except PathfinderError:
                self._routing_error(
                    "query spans multiple shards and a split operand does "
                    "not parse standalone"
                )
            if len(piece_targets) > 1:
                self._routing_error(
                    "a top-level operand itself depends on documents from "
                    "multiple shards"
                )
            legs.append((piece, self._pick(piece_targets)))
        futures = [
            self._scatter_pool.submit(
                handle.query, piece, bindings, deadline, budget
            )
            for piece, handle in legs
        ]
        streams: list[_QueryStream] = []
        try:
            for future in futures:
                streams.append(future.result(timeout=budget + GRACE_SECONDS))
        except BaseException:
            for future in futures:
                future.cancel()
            for stream in streams:
                stream.discard()
            raise
        meta = {
            "items": sum(s.meta["items"] for s in streams),
            "from_cache": all(s.meta["from_cache"] for s in streams),
            "compile_seconds": max(s.meta["compile_seconds"] for s in streams),
            "execute_seconds": max(s.meta["execute_seconds"] for s in streams),
            "parameters": list(
                dict.fromkeys(
                    p for s in streams for p in s.meta["parameters"]
                )
            ),
            "scattered": len(streams),
        }

        def merged():
            try:
                prev_last_atomic = False
                for stream in streams:
                    if stream.meta["items"]:
                        if prev_last_atomic and stream.edges.get("first_atomic"):
                            # the seam separator: XQuery serialization
                            # puts one space between adjacent atomics
                            yield " "
                        prev_last_atomic = bool(
                            stream.edges.get("last_atomic")
                        )
                    for chunk in stream.chunks():
                        yield chunk
            finally:
                for stream in streams:
                    stream.discard()

        return meta, merged()

    def _routing_error(self, message: str):
        with self._routing_lock:
            self._routing_errors += 1
        raise RoutingError(message)

    def execute_update(self, query, bindings=None, deadline=None) -> dict:
        """Route an updating query to the single shard it touches."""
        budget = self._budget(deadline)
        targets = self._shards_for(query)
        if len(targets) > 1:
            self._routing_error(
                "an updating query must target documents on one shard"
            )
        handle = self._pick(targets)
        result = handle.call(
            "update",
            timeout=budget + GRACE_SECONDS,
            query=query,
            bindings=bindings or {},
            deadline=deadline,
        )
        with self._routing_lock:
            for uri, info in result.get("documents", {}).items():
                entry = self._routing.get(uri)
                if entry is not None:
                    # the epoch bump propagates into the routing table
                    entry["epoch"] = info["epoch"]
                    entry["nodes"] = info["nodes"]
        return result

    def explain(self, query, deadline=None) -> dict:
        """Compile on the owning shard and return its plan stages."""
        budget = self._budget(deadline)
        targets = self._shards_for(query)
        if len(targets) > 1:
            self._routing_error(
                "explain needs the query's documents on one shard"
            )
        return self._pick(targets).call(
            "explain", timeout=budget + GRACE_SECONDS,
            query=query, deadline=deadline,
        )

    # ----------------------------------------------------------- documents
    def list_documents(self) -> list[dict]:
        """The merged catalog; the default flag is the *cluster* default."""
        docs: list[dict] = []
        with self._routing_lock:
            default = self._default
        for handle in self._handles:
            docs.extend(handle.call("list_documents"))
        for doc in docs:
            doc["default"] = doc["uri"] == default
        return sorted(docs, key=lambda d: d["uri"])

    def put_document(self, uri: str, xml_text: str) -> dict:
        """Load or hot-replace on the owning shard; update routing."""
        shard = shard_of(uri, self.workers)
        handle = self._handles[shard]
        result = handle.call("put_document", uri=uri, xml=xml_text)
        with self._routing_lock:
            self._routing[uri] = {
                "shard": shard,
                "epoch": result["epoch"],
                "nodes": result["nodes"],
            }
            became_default = False
            if self._default is None:
                # the implicit first-load rule, cluster-wide
                self._default = uri
                became_default = True
            default = self._default
        if shard_of(default, self.workers) == shard:
            # the put may have shifted this worker's *local* implicit
            # default; re-pin the cluster's choice (and persist it the
            # first time, so restarts agree)
            handle.call(
                "set_default",
                uri=default,
                persist=became_default and self.store is not None,
            )
        return {**result, "shard": shard}

    def delete_document(self, uri: str) -> dict:
        """Unload on the owning shard; drop routing and default."""
        handle = self._handles[shard_of(uri, self.workers)]
        result = handle.call("delete_document", uri=uri)
        with self._routing_lock:
            self._routing.pop(uri, None)
            if self._default == uri:
                self._default = None
        return result

    def checkpoint(self) -> dict:
        """Checkpoint every shard; aggregate the summaries."""
        results = [h.call("checkpoint") for h in self._handles]
        return {
            "documents_rewritten": sum(
                r["documents_rewritten"] for r in results
            ),
            "wal_bytes": sum(r["wal_bytes"] for r in results),
            "shards": len(results),
        }

    # --------------------------------------------------------------- stats
    def health(self) -> dict:
        """Router + per-worker liveness/readiness (``GET /healthz``)."""
        workers = []
        for handle in self._handles:
            alive = handle.process is not None and handle.process.is_alive()
            workers.append(
                {
                    "shard": handle.index,
                    "alive": alive,
                    "ready": handle.ready.is_set(),
                    "pid": None if handle.process is None else handle.process.pid,
                    "restarts": handle.restarts,
                }
            )
        return {
            "ok": not self._closed
            and all(w["alive"] and w["ready"] for w in workers),
            "role": "router",
            "workers": workers,
        }

    def stats(self) -> dict:
        """Aggregated operational counters plus per-shard sections."""
        shard_stats: list[dict | None] = []
        for handle in self._handles:
            try:
                shard_stats.append(handle.call("stats", timeout=30.0))
            except PathfinderError:
                shard_stats.append(None)
        live = [s for s in shard_stats if s is not None]

        def total(key):
            return sum(s.get(key, 0) for s in live)

        cache_hits = sum(s["plan_cache"]["hits"] for s in live)
        cache_misses = sum(s["plan_cache"]["misses"] for s in live)
        lookups = cache_hits + cache_misses
        pass_totals: dict[str, dict[str, int]] = {}
        for s in live:
            for name, slot in s.get("optimizer_pass_totals", {}).items():
                agg = pass_totals.setdefault(
                    name, {"runs": 0, "rewrites": 0, "compilations": 0}
                )
                for key in agg:
                    agg[key] += slot.get(key, 0)
        with self._routing_lock:
            router = {
                "scatter_queries": self._scatter_queries,
                "routing_errors": self._routing_errors,
                "worker_restarts": sum(h.restarts for h in self._handles),
                "routing_table_size": len(self._routing),
                "default_document": self._default,
            }
        payload = {
            "uptime_seconds": time.monotonic() - self._started,
            "workers": self.workers,
            "threads_per_worker": self.threads,
            "deadline_seconds": self.deadline_seconds,
            "requests_total": total("requests_total"),
            "in_flight": total("in_flight"),
            "timeouts": total("timeouts"),
            "shed": total("shed"),
            "errors": total("errors"),
            "queries_executed": total("queries_executed"),
            "updates_executed": total("updates_executed"),
            "sqlhost_fallbacks": total("sqlhost_fallbacks"),
            "documents": total("documents"),
            "optimizer_pass_totals": dict(sorted(pass_totals.items())),
            "plan_cache": {
                "size": sum(s["plan_cache"]["size"] for s in live),
                "capacity": sum(s["plan_cache"]["capacity"] for s in live),
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (cache_hits / lookups) if lookups else 0.0,
                "invalidations": sum(
                    s["plan_cache"]["invalidations"] for s in live
                ),
                "evictions": sum(s["plan_cache"]["evictions"] for s in live),
                "single_flight_waits": sum(
                    s["plan_cache"]["single_flight_waits"] for s in live
                ),
            },
            "router": router,
            "shards": [
                {"shard": i, **(s if s is not None else {"down": True})}
                for i, s in enumerate(shard_stats)
            ],
        }
        for section in ("store", "paging"):
            parts = [s[section] for s in live if s.get(section)]
            if parts:
                agg: dict = {}
                for part in parts:
                    for key, value in part.items():
                        if isinstance(value, (int, float)) and not isinstance(
                            value, bool
                        ):
                            agg[key] = agg.get(key, 0) + value
                payload[section] = agg
        return payload

    # ------------------------------------------------------------ shutdown
    def shutdown(self, wait: bool = True) -> None:
        """Drain and stop every worker, then the scatter pool.

        Each worker's own shutdown checkpoints its shard (best effort)
        when a store is attached — same contract as the single-process
        service.
        """
        self._closed = True
        for handle in self._handles:
            handle.close(join_timeout=15.0 if wait else 1.0)
        self._scatter_pool.shutdown(wait=wait)
