"""One cluster worker process: a shard-scoped QueryService behind a pipe.

:func:`worker_main` is the child-process entry point spawned by
:class:`~repro.server.cluster.ClusterService`.  It opens its shard of
the catalog — a shard-scoped :class:`~repro.api.database.Database` over
the shared store directory, or an empty in-memory catalog when the
cluster runs without ``--store`` — wraps it in a perfectly ordinary
:class:`~repro.server.service.QueryService`, and serves request frames
from the router until the connection closes or a ``shutdown`` op
arrives.

Concurrency inside the worker: the main thread reads frames and hands
each request to a small handler pool, so a slow query never blocks the
next frame; the *query* thread pool (and with it the deadline and
shedding discipline) is the QueryService's own, exactly as in the
single-process server.  All writes to the connection go through one
lock, so interleaved chunk streams of concurrent queries stay
frame-atomic.
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.api.database import Database
from repro.server import protocol
from repro.server.service import QueryService


def _build_service(config: dict) -> QueryService:
    """Open this worker's shard and wrap it in a QueryService."""
    index, count = config["index"], config["count"]
    if config.get("store"):
        database = Database(
            plan_cache_size=config.get("plan_cache_size", 128),
            store=config["store"],
            page_budget_bytes=config.get("page_budget_bytes"),
            shard=(index, count),
        )
    else:
        database = Database(plan_cache_size=config.get("plan_cache_size", 128))
    return QueryService(
        database,
        workers=config.get("threads", 4),
        deadline_seconds=config.get("deadline_seconds", 30.0),
        session_options=config.get("session_options"),
    )


class _Handler:
    """Dispatches decoded request frames onto the service."""

    def __init__(self, conn, service: QueryService, config: dict):
        self.conn = conn
        self.service = service
        self.config = config
        self._send_lock = threading.Lock()

    def send(self, frame: dict) -> None:
        """Write one frame (serialized against concurrent senders)."""
        with self._send_lock:
            protocol.send_frame(self.conn, frame)

    def hello(self) -> None:
        """Announce readiness: shard id, pid and the owned catalog."""
        import os

        self.send(
            {
                "hello": {
                    "index": self.config["index"],
                    "pid": os.getpid(),
                    "documents": self.service.list_documents(),
                }
            }
        )

    # ---------------------------------------------------------------- ops
    def handle(self, frame: dict) -> None:
        """Run one request frame; every outcome becomes a reply frame."""
        request_id = frame.get("id")
        op = frame.get("op")
        try:
            if op == "query":
                self._query(request_id, frame)
                return
            result = self._unary(op, frame)
        except Exception as exc:
            self.send(protocol.error_frame(request_id, exc))
            return
        self.send({"id": request_id, "result": result})

    def _query(self, request_id: int, frame: dict) -> None:
        """The streaming op: meta frame, chunk frames, done frame."""
        meta, chunks = self.service.execute_stream(
            frame.get("query", ""),
            frame.get("bindings") or {},
            deadline=frame.get("deadline"),
            edge_meta=True,
        )
        edges = meta.pop("_edges", {})
        self.send({"id": request_id, "meta": meta, "edges": edges})
        try:
            for chunk in chunks:
                self.send({"id": request_id, "chunk": chunk})
        except Exception as exc:
            # terminal mid-stream error; the router truncates exactly
            # as the in-process chunked response would
            self.send(protocol.error_frame(request_id, exc))
            return
        self.send({"id": request_id, "done": True})

    def _unary(self, op: str | None, frame: dict):
        service = self.service
        if op == "update":
            return service.execute_update(
                frame.get("query", ""),
                frame.get("bindings") or {},
                deadline=frame.get("deadline"),
            )
        if op == "explain":
            return service.explain(
                frame.get("query", ""), deadline=frame.get("deadline")
            )
        if op == "put_document":
            return service.put_document(frame["uri"], frame["xml"])
        if op == "delete_document":
            return service.delete_document(frame["uri"])
        if op == "set_default":
            service.database.set_default_document(
                frame["uri"], persist=frame.get("persist", False)
            )
            return {"uri": frame["uri"], "default": True}
        if op == "list_documents":
            return service.list_documents()
        if op == "stats":
            return service.stats()
        if op == "health":
            return service.health()
        if op == "checkpoint":
            return service.checkpoint()
        if op == "ping":
            return {"ok": True}
        raise protocol.RemoteError(f"unknown worker op {op!r}", "ValueError", 400)


def worker_main(conn, config: dict) -> None:
    """The child-process entry point: serve frames until EOF/shutdown.

    The worker's lifecycle is connection-driven — the router closing its
    end (crash included) drains and exits the worker — so terminal
    signals are ignored here and coordinated by the router instead.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    service = _build_service(config)
    handler = _Handler(conn, service, config)
    handler.hello()
    pool = ThreadPoolExecutor(
        max_workers=config.get("threads", 4) * 2 + 2,
        thread_name_prefix=f"shard{config['index']}-handler",
    )
    try:
        while True:
            try:
                frame = protocol.recv_frame(conn)
            except (EOFError, OSError):
                break
            if frame.get("op") == "shutdown":
                handler.send({"id": frame.get("id"), "result": {"ok": True}})
                break
            pool.submit(handler.handle, frame)
    finally:
        pool.shutdown(wait=True)
        service.shutdown(wait=True)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
