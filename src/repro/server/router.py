"""The cluster's HTTP front end: one asyncio router, keep-alive, fan-out.

The single-process server (:mod:`repro.server.http`) spends a thread per
connection; the router replaces that with one asyncio event loop that
owns every socket, so thousands of keep-alive connections cost file
descriptors, not threads.  Blocking service calls (query dispatch to the
worker processes, admin ops) hop onto a thread pool via
``run_in_executor`` — the event loop itself never blocks on a shard.

The HTTP surface is the same as the single-process server, same routes,
same JSON shapes, and ``POST /query`` responses are chunk-for-chunk the
same bytes (the ``{"result": "...", ...meta}`` chunked-transfer
framing), so clients cannot tell which serving tier answered — the
differential suite (``tests/test_cluster.py``) holds the two
byte-identical.  Two additions: ``GET /healthz`` returns the router +
per-worker liveness/readiness report (and 503 when a shard is down),
and worker-unavailable failures surface as HTTP 503.

Graceful shutdown (SIGINT/SIGTERM): stop accepting, let in-flight
responses finish (bounded by the idle timeout), then drain the cluster —
every worker finishes its queue, checkpoints its shard and exits —
before :func:`serve` returns.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from functools import partial
from urllib.parse import parse_qs, unquote, urlparse

from repro.errors import PathfinderError
from repro.server.http import MAX_BODY_BYTES
from repro.server.protocol import status_for

#: an idle keep-alive connection is closed after this many seconds
IDLE_TIMEOUT = 10.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_SENTINEL = object()


def _reason(status: int) -> str:
    return _REASONS.get(status, "Error")


class Router:
    """The asyncio protocol engine behind :class:`RouterServer`."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self.address: tuple | None = None
        self._tasks: set = set()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None

    # ------------------------------------------------------------ lifecycle
    async def run(self, ready: "threading.Event | None" = None) -> None:
        """Serve until :meth:`request_stop`; then drain connections."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._client_connected, self.host, self.port
        )
        self.address = server.sockets[0].getsockname()[:2]
        if ready is not None:
            ready.set()
        async with server:
            await self._stop.wait()
        # the accept loop is closed; give in-flight responses one idle
        # period to finish, then cancel stragglers (idle keep-alives)
        if self._tasks:
            await asyncio.wait(list(self._tasks), timeout=IDLE_TIMEOUT + 1.0)
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    def request_stop(self) -> None:
        """Thread-safe stop signal (the loop may live on another thread)."""
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)

    async def _call(self, fn, *args, **kwargs):
        """Run one blocking service call on the default executor."""
        return await asyncio.get_running_loop().run_in_executor(
            None, partial(fn, *args, **kwargs)
        )

    # ---------------------------------------------------------- connections
    def _client_connected(self, reader, writer) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _serve_connection(self, reader, writer) -> None:
        """One keep-alive connection: request loop until close/idle."""
        try:
            while True:
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"), timeout=IDLE_TIMEOUT
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    return
                keep_alive = await self._serve_request(head, reader, writer)
                if not keep_alive:
                    return
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, head: bytes, reader, writer) -> bool:
        """Parse + route one request; returns keep-alive?"""
        try:
            lines = head.decode("latin-1").split("\r\n")
            method, target, version = lines[0].split(" ", 2)
            headers = {}
            for line in lines[1:]:
                if ":" in line:
                    name, value = line.split(":", 1)
                    headers[name.strip().lower()] = value.strip()
        except ValueError:
            await self._json(writer, 400, {"error": "malformed request"})
            return False
        keep_alive = (
            version != "HTTP/1.0"
            and headers.get("connection", "").lower() != "close"
        )
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            await self._json(
                writer,
                400,
                {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{MAX_BODY_BYTES}-byte limit",
                    "kind": "PathfinderError",
                },
            )
            return False
        body = await reader.readexactly(length) if length else b""
        url = urlparse(target)
        try:
            return await self._route(
                method, url, body, writer, keep_alive
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # a RemoteError carries the worker-side class name, so the
            # error body matches the single-process server's exactly
            kind = getattr(exc, "kind", None) or type(exc).__name__
            await self._json(
                writer,
                status_for(exc),
                {"error": str(exc), "kind": kind},
                keep_alive=keep_alive,
            )
            return keep_alive

    # -------------------------------------------------------------- routing
    async def _route(self, method, url, body, writer, keep_alive) -> bool:
        service = self.service
        path = url.path
        if method == "GET":
            if path in ("/", "/healthz"):
                health = await self._call(service.health)
                status = 200 if health.get("ok") else 503
                await self._json(writer, status, health, keep_alive=keep_alive)
            elif path == "/stats":
                await self._json(
                    writer, 200, await self._call(service.stats),
                    keep_alive=keep_alive,
                )
            elif path == "/documents":
                docs = await self._call(service.list_documents)
                await self._json(
                    writer, 200, {"documents": docs}, keep_alive=keep_alive
                )
            elif path == "/explain":
                params = parse_qs(url.query)
                query = (params.get("q") or params.get("query") or [""])[0]
                if not query:
                    raise PathfinderError("pass the query as ?q=<xquery>")
                await self._json(
                    writer, 200, await self._call(service.explain, query),
                    keep_alive=keep_alive,
                )
            else:
                await self._json(
                    writer, 404, {"error": f"no route {path}"},
                    keep_alive=keep_alive,
                )
            return keep_alive
        if method == "POST":
            if path == "/query":
                return await self._query(body, writer, keep_alive)
            if path == "/update":
                query, bindings, deadline = _query_body(body)
                payload = await self._call(
                    service.execute_update, query, bindings, deadline=deadline
                )
                await self._json(writer, 200, payload, keep_alive=keep_alive)
            elif path == "/checkpoint":
                await self._json(
                    writer, 200, await self._call(service.checkpoint),
                    keep_alive=keep_alive,
                )
            else:
                await self._json(
                    writer, 404, {"error": f"no route {path}"},
                    keep_alive=keep_alive,
                )
            return keep_alive
        if method in ("PUT", "DELETE"):
            prefix = "/documents/"
            if not path.startswith(prefix) or len(path) == len(prefix):
                await self._json(
                    writer, 404, {"error": "expected /documents/<name>"},
                    keep_alive=keep_alive,
                )
                return keep_alive
            uri = unquote(path[len(prefix):])
            if method == "PUT":
                xml_text = body.decode("utf-8")
                if not xml_text.strip():
                    raise PathfinderError(
                        "the request body must be the XML document"
                    )
                payload = await self._call(service.put_document, uri, xml_text)
            else:
                payload = await self._call(service.delete_document, uri)
            await self._json(writer, 200, payload, keep_alive=keep_alive)
            return keep_alive
        await self._json(
            writer, 404, {"error": f"no route {method} {path}"},
            keep_alive=keep_alive,
        )
        return keep_alive

    async def _query(self, body, writer, keep_alive) -> bool:
        """``POST /query`` — chunked transfer, single-process framing."""
        query, bindings, deadline = _query_body(body)
        meta, chunks = await self._call(
            self.service.execute_stream, query, bindings, deadline=deadline
        )
        chunks = iter(chunks)
        # pull the first chunk before committing to a 200, so a budget
        # already spent (or an immediate failure) still gets its status
        first = await self._call(next, chunks, _SENTINEL)
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/json\r\n"
                "Transfer-Encoding: chunked\r\n"
                f"Connection: {connection}\r\n\r\n"
            ).encode("latin-1")
        )

        def send_chunk(data: bytes) -> None:
            if data:  # a zero-length chunk would terminate the stream
                writer.write(b"%X\r\n%s\r\n" % (len(data), data))

        try:
            # json.dumps escapes characterwise, so escaping each chunk
            # separately concatenates to exactly the buffered encoding
            send_chunk(b'{"result": "')
            if first is not _SENTINEL:
                send_chunk(json.dumps(first)[1:-1].encode("utf-8"))
            while True:
                chunk = await self._call(next, chunks, _SENTINEL)
                if chunk is _SENTINEL:
                    break
                send_chunk(json.dumps(chunk)[1:-1].encode("utf-8"))
                await writer.drain()
        except Exception:
            # mid-stream failure: the response can only be truncated —
            # close the connection rather than desync the stream
            return False
        tail = '", ' + json.dumps(meta)[1:]
        send_chunk(tail.encode("utf-8"))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return keep_alive

    async def _json(
        self, writer, status: int, payload: dict, keep_alive: bool = False
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        connection = "keep-alive" if keep_alive else "close"
        writer.write(
            (
                f"HTTP/1.1 {status} {_reason(status)}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: {connection}\r\n\r\n"
            ).encode("latin-1")
        )
        writer.write(body)
        await writer.drain()


def _query_body(body: bytes) -> tuple[str, dict, object]:
    """Validate a ``/query``-shaped JSON body (same rules as http.py)."""
    payload = json.loads(body or b"{}")
    query = payload.get("query") if isinstance(payload, dict) else None
    if not isinstance(query, str) or not query.strip():
        raise PathfinderError(
            'the request body needs a non-empty "query" string field'
        )
    bindings = payload.get("bindings") or {}
    if not isinstance(bindings, dict):
        raise PathfinderError('"bindings" must be a JSON object')
    return query, bindings, payload.get("deadline")


class RouterServer:
    """The router on a background thread — the test/CLI harness.

    ``start()`` spins up the event loop thread and blocks until the
    socket listens (returning the bound address, for ``port=0``);
    ``stop()`` runs the graceful sequence: stop accepting, drain
    connections, then (optionally) shut the service — for a cluster,
    that drains every worker process — before returning.
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.router = Router(service, host, port)
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple | None:
        """The bound ``(host, port)`` once :meth:`start` returned."""
        return self.router.address

    def start(self) -> tuple:
        """Start the loop thread; returns the bound address."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self.router.run(ready=self._ready)),
            daemon=True,
            name="repro-router",
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise PathfinderError("the router failed to start listening")
        return self.router.address

    def stop(self, shutdown_service: bool = True) -> None:
        """Graceful stop; drains the service's workers when asked."""
        self.router.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=IDLE_TIMEOUT + 15.0)
        if shutdown_service:
            self.service.shutdown(wait=True)


def serve(
    service,
    host: str = "127.0.0.1",
    port: int = 8080,
    install_signal_handlers: bool = True,
    ready: threading.Event | None = None,
    out=None,
) -> None:
    """Blocking entry point: serve until SIGINT/SIGTERM, then drain.

    The shutdown order is the graceful contract: close the listening
    socket, finish in-flight responses, then ``service.shutdown`` —
    which for a :class:`~repro.server.cluster.ClusterService` drains
    and checkpoints every worker process — before returning.
    """
    server = RouterServer(service, host, port)
    address = server.start()
    stop = threading.Event()

    def request_shutdown(signum, frame):  # pragma: no cover - signal path
        stop.set()

    if install_signal_handlers:  # pragma: no cover - exercised via CLI
        signal.signal(signal.SIGINT, request_shutdown)
        signal.signal(signal.SIGTERM, request_shutdown)
    if out is not None:
        workers = getattr(service, "workers", "?")
        threads = getattr(service, "threads", "?")
        print(
            f"cluster router on http://{address[0]}:{address[1]} "
            f"({workers} worker processes x {threads} threads, "
            f"{service.deadline_seconds:g}s deadline)",
            file=out,
            flush=True,
        )
    if ready is not None:
        ready.set()
    try:
        stop.wait()
    finally:
        server.stop(shutdown_service=True)
