"""The query service: worker pool, deadlines and operational counters.

:class:`QueryService` is the protocol-independent core of the serving
subsystem — the HTTP layer (:mod:`repro.server.http`) is a thin JSON
codec in front of it, and tests can drive it directly.

Execution model:

* a fixed pool of worker threads (``workers``) executes queries; each
  worker lazily opens **its own** :class:`~repro.api.Session` on the
  shared Database, so workers share the document catalog, arena and
  plan cache (behind the Database's locks) but no mutable session
  state — the isolation contract of the API layer.
* every request carries a wall-clock **deadline** (default
  ``deadline_seconds``, per-request override).  The deadline is the
  baseline interpreter's budget idea applied to serving: a request that
  has already overstayed its budget while queued is shed without
  executing, and a caller stops waiting once the budget is spent (the
  worker's result is discarded).  Expiry surfaces as
  :class:`DeadlineExceeded`.
* document load/replace/unload go straight to the Database's exclusive
  catalog lock and ride its epoch invalidation — a replace waits for
  in-flight queries, then atomically swaps the tree, drops exactly the
  cached plans that read it, and the next queries recompile (once,
  thanks to single-flight).
* :meth:`QueryService.stats` aggregates the operational surface:
  request/timeout/error counters, in-flight gauge, plan-cache hit
  rates, single-flight waits, and per-pass optimizer totals summed over
  every compilation the service performed.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError

from repro.api.database import Database
from repro.errors import DynamicError, PathfinderError


class DeadlineExceeded(DynamicError):
    """A request exceeded its wall-clock budget (queued or executing)."""


class QueryService:
    """Thread-pooled query execution over one shared Database."""

    def __init__(
        self,
        database: Database | None = None,
        workers: int = 4,
        deadline_seconds: float = 30.0,
        session_options: dict | None = None,
    ):
        if workers < 1:
            raise PathfinderError("the worker pool needs at least 1 worker")
        if deadline_seconds <= 0:
            raise PathfinderError("deadline_seconds must be positive")
        self.database = database if database is not None else Database()
        self.workers = workers
        self.deadline_seconds = deadline_seconds
        #: keyword arguments for every worker's ``Database.connect()``
        self.session_options = dict(session_options or {})
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._sessions = threading.local()
        self._all_sessions: list = []
        self._stats_lock = threading.Lock()
        self._started = time.monotonic()
        self._in_flight = 0
        self._requests = 0
        self._timeouts = 0
        self._shed = 0
        self._errors = 0
        # per-pass optimizer totals over every compile this service did
        self._pass_totals: dict[str, dict[str, int]] = {}
        self._closed = False

    # ------------------------------------------------------------- workers
    def _session(self):
        """This worker thread's private session (created on first use)."""
        session = getattr(self._sessions, "session", None)
        if session is None:
            session = self.database.connect(**self.session_options)
            self._sessions.session = session
            with self._stats_lock:
                self._all_sessions.append(session)
        return session

    def _submit(self, fn, deadline: float | None):
        """Run ``fn(session)`` on the pool under a wall-clock budget."""
        with self._stats_lock:
            self._requests += 1
        try:
            if self._closed:
                raise PathfinderError("the query service is shut down")
            if deadline is None:
                budget = self.deadline_seconds
            else:
                try:
                    budget = float(deadline)
                except (TypeError, ValueError):
                    raise PathfinderError(
                        f"deadline must be a number of seconds, got {deadline!r}"
                    ) from None
            if budget <= 0:
                raise PathfinderError("deadline must be positive")
        except Exception:
            # requests rejected at validation still show in /stats
            with self._stats_lock:
                self._errors += 1
            raise
        enqueued = time.monotonic()

        def task():
            # budget spent while queued (and the caller's cancel lost the
            # race): give up instead of burning a worker on an answer
            # nobody is waiting for
            if time.monotonic() - enqueued > budget:
                exc = DeadlineExceeded(
                    f"request shed after waiting {budget:.3f}s in the queue"
                )
                exc.queue_shed = True
                raise exc
            with self._stats_lock:
                self._in_flight += 1
            try:
                return fn(self._session())
            finally:
                with self._stats_lock:
                    self._in_flight -= 1

        future = self._pool.submit(task)
        try:
            return future.result(timeout=budget)
        except FutureTimeoutError:
            # shed and timed-out are mutually exclusive per request: a
            # successful cancel means no worker ever ran it (shed); an
            # unsuccessful one means it expired while executing (timeout)
            if future.cancel():
                with self._stats_lock:
                    self._shed += 1
                exc = DeadlineExceeded(
                    f"request shed after waiting {budget:.3f}s in the queue"
                )
                # mark it like the task-side shed, so callers (and the
                # cluster's wire protocol) see one shedding semantic
                exc.queue_shed = True
                raise exc from None
            with self._stats_lock:
                self._timeouts += 1
            raise DeadlineExceeded(
                f"query exceeded its {budget:.3f}s budget (DNF)"
            ) from None
        except CancelledError:  # pragma: no cover - shutdown race
            raise DeadlineExceeded("request cancelled at shutdown") from None
        except DeadlineExceeded as exc:
            # a queue-shed raised by the task itself (it beat the
            # caller's own timer to the expiry) still counts as shed
            if getattr(exc, "queue_shed", False):
                with self._stats_lock:
                    self._shed += 1
            raise
        except Exception:
            # client errors and unexpected failures alike: /stats must
            # report every request that did not produce a result
            with self._stats_lock:
                self._errors += 1
            raise

    def _record_pass_stats(self, optimizer_stats) -> None:
        """Fold one compilation's per-pass counters into the totals."""
        with self._stats_lock:
            for ps in optimizer_stats.pass_stats:
                slot = self._pass_totals.setdefault(
                    ps.name,
                    {"runs": 0, "rewrites": 0, "compilations": 0, "seconds": 0.0},
                )
                slot["runs"] += ps.runs
                slot["rewrites"] += ps.rewrites
                slot["compilations"] += 1
                slot["seconds"] += ps.seconds

    # ------------------------------------------------------------- queries
    def execute(
        self,
        query: str,
        bindings: dict | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Compile (cache-backed) and execute one query on the pool.

        Returns a JSON-ready payload with the serialized result and the
        execution metadata the ``/query`` endpoint exposes.  The HTTP
        layer prefers :meth:`execute_stream`, which defers serialization
        so the result text never exists as one string.
        """
        meta, chunks = self.execute_stream(query, bindings, deadline=deadline)
        return {"result": "".join(chunks), **meta}

    def execute_stream(
        self,
        query: str,
        bindings: dict | None = None,
        deadline: float | None = None,
        edge_meta: bool = False,
    ) -> tuple[dict, object]:
        """Execute one query, deferring serialization to the caller.

        Returns ``(meta, chunks)``: ``meta`` is the ``/query`` payload
        *without* its ``"result"`` field, ``chunks`` an iterator of
        serialized text pieces (:meth:`QueryResult.iter_serialized`).
        Compile + execute run on the worker pool under the usual
        deadline/shedding discipline; the chunk iteration happens on the
        caller's thread (for HTTP: the connection thread), which is safe
        without a lock — the result table is immutable and arena rows are
        append-only, so a concurrent hot replace cannot tear the scan.

        The request's wall-clock budget covers the stream too: when it
        expires between chunks the iterator raises
        :class:`DeadlineExceeded` (counted as a timeout in ``/stats``;
        an HTTP response already under way can then only be truncated),
        and any other mid-stream failure is counted as an error, so the
        '/stats reports every request that did not produce a result'
        contract survives the move off the worker pool.

        ``edge_meta=True`` adds a ``"_edges"`` field to ``meta`` saying
        whether the sequence's first/last items are atomic values — the
        cluster router needs this to decide whether a space separator
        belongs between two shards' streams when it concatenates a
        scattered sequence (XQuery serialization separates *adjacent
        atomics* with a space; nodes get no separator).
        """

        def run(session):
            prepared = session.prepare(query)
            if not prepared.from_cache:
                self._record_pass_stats(prepared.optimizer_stats)
            result = prepared.execute(bindings or {})
            meta = {
                "items": len(result),
                "from_cache": prepared.from_cache,
                "compile_seconds": result.compile_seconds,
                "execute_seconds": result.execute_seconds,
                "parameters": [v.name for v in prepared.parameters],
            }
            if edge_meta:
                from repro.compiler.serialize import ordered_items
                from repro.relational.items import K_ATTR, K_NODE

                kinds = ordered_items(result.table).kinds
                atomic = lambda k: int(k) not in (K_NODE, K_ATTR)  # noqa: E731
                meta["_edges"] = {
                    "first_atomic": len(kinds) > 0 and atomic(kinds[0]),
                    "last_atomic": len(kinds) > 0 and atomic(kinds[-1]),
                }
            return meta, result

        started = time.monotonic()
        meta, result = self._submit(run, deadline)
        budget = self.deadline_seconds if deadline is None else float(deadline)

        def stream():
            try:
                for chunk in result.iter_serialized():
                    if time.monotonic() - started > budget:
                        with self._stats_lock:
                            self._timeouts += 1
                        raise DeadlineExceeded(
                            f"serialization exceeded the {budget:.3f}s "
                            "budget (result truncated)"
                        )
                    yield chunk
            except DeadlineExceeded:
                raise
            except Exception:
                with self._stats_lock:
                    self._errors += 1
                raise

        return meta, stream()

    def execute_update(
        self,
        query: str,
        bindings: dict | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Apply an updating query on the pool (``POST /update``).

        Same deadline discipline as :meth:`execute` — overstayed queued
        requests are shed, and the wall-clock budget also bounds the
        update's target/source evaluation; the exclusive-lock application
        itself rides the Database's write path (identical to a hot
        document replace), so no pool worker can deadlock on it.
        """
        try:
            budget = self.deadline_seconds if deadline is None else float(deadline)
        except (TypeError, ValueError):
            budget = self.deadline_seconds  # _submit rejects the request

        def run(session):
            from repro.baseline.interpreter import QueryTimeout

            try:
                payload = session.execute_update(
                    query, bindings or {}, deadline=budget
                )
            except QueryTimeout as exc:
                raise DeadlineExceeded(str(exc)) from None
            with self._stats_lock:
                payload["updates_executed"] = sum(
                    s.stats.updates_executed for s in self._all_sessions
                )
            return payload

        return self._submit(run, deadline)

    def explain(self, query: str, deadline: float | None = None) -> dict:
        """Compile a query and return its plan stages (``/explain``)."""

        def run(session):
            report = session.explain(query)
            stats = report.stats
            return {
                "ops_before": stats.ops_before,
                "ops_after": stats.ops_after,
                "reduction_pct": stats.reduction_pct,
                "optimizer_mode": report.optimizer_mode,
                "passes": [
                    {
                        "name": ps.name,
                        "runs": ps.runs,
                        "rewrites": ps.rewrites,
                        "ops_before": ps.ops_before,
                        "ops_after": ps.ops_after,
                        "seconds": ps.seconds,
                    }
                    for ps in stats.pass_stats
                ],
                "plan": report.plan_ascii,
                "parameters": [v.name for v in report.core.external_vars],
            }

        return self._submit(run, deadline)

    # ----------------------------------------------------------- documents
    def list_documents(self) -> list[dict]:
        """The catalog as the ``/documents`` endpoint reports it."""
        return self.database.catalog_snapshot()

    def put_document(self, uri: str, xml_text: str) -> dict:
        """Load or hot-replace a document (``PUT /documents/<uri>``).

        Runs on the caller's thread, not the pool: it takes the
        exclusive catalog lock, so routing it through the worker pool
        would let queued queries and a replace deadlock the pool.
        """
        return self.database.replace_document(uri, xml_text)

    def delete_document(self, uri: str) -> dict:
        """Unload a document (``DELETE /documents/<uri>``)."""
        self.database.unload_document(uri)
        return {"uri": uri, "unloaded": True}

    def checkpoint(self) -> dict:
        """Fold the store's WAL into fragments (``POST /checkpoint``).

        Caller's thread, not the pool, for the same reason as
        :meth:`put_document`: it takes the exclusive catalog lock.
        Raises :class:`PathfinderError` when no store is attached.
        """
        return self.database.checkpoint()

    # --------------------------------------------------------------- stats
    def health(self) -> dict:
        """Liveness/readiness summary (the cluster's per-worker probe)."""
        with self._stats_lock:
            return {
                "ok": not self._closed,
                "in_flight": self._in_flight,
                "documents": len(self.database.documents),
                "uptime_seconds": time.monotonic() - self._started,
            }

    def stats(self) -> dict:
        """The operational counters behind ``GET /stats``."""
        cache = self.database.plan_cache
        with self._stats_lock:
            sessions = list(self._all_sessions)
            payload = {
                "uptime_seconds": time.monotonic() - self._started,
                "workers": self.workers,
                "deadline_seconds": self.deadline_seconds,
                "requests_total": self._requests,
                "in_flight": self._in_flight,
                "timeouts": self._timeouts,
                "shed": self._shed,
                "errors": self._errors,
                "optimizer_pass_totals": {
                    name: dict(slot)
                    for name, slot in sorted(self._pass_totals.items())
                },
            }
        executed = sum(s.stats.queries_executed for s in sessions)
        updates = sum(s.stats.updates_executed for s in sessions)
        fallbacks = sum(s.stats.sqlhost_fallbacks for s in sessions)
        by_mode: dict[str, int] = {}
        for s in sessions:
            by_mode[s.optimizer_mode] = (
                by_mode.get(s.optimizer_mode, 0) + s.stats.queries_executed
            )
        payload.update(
            {
                "queries_executed": executed,
                "queries_by_mode": dict(sorted(by_mode.items())),
                "updates_executed": updates,
                "sqlhost_fallbacks": fallbacks,
                "plan_cache": {
                    "size": len(cache),
                    "capacity": cache.capacity,
                    "hits": cache.stats.hits,
                    "misses": cache.stats.misses,
                    "hit_rate": cache.stats.hit_rate,
                    "invalidations": cache.stats.invalidations,
                    "evictions": cache.stats.evictions,
                    "single_flight_waits": self.database.single_flight_waits,
                },
                "documents": len(self.database.documents),
            }
        )
        store = self.database.store_status()
        if store is not None:
            payload["store"] = store
        paging = self.database.paging_status()
        if paging is not None:
            payload["paging"] = paging
        return payload

    # ------------------------------------------------------------ shutdown
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) drain in-flight queries.

        With a persistent store attached, a draining shutdown also
        checkpoints it (best effort): the WAL folds into the fragment
        files so the next ``--store`` start mmap-loads without replay.
        Recovery does not depend on this — a kill -9 merely replays.
        """
        self._closed = True
        self._pool.shutdown(wait=wait)
        if wait and self.database.store is not None:
            try:
                self.database.checkpoint()
            except Exception:  # pragma: no cover - disk full at shutdown
                pass
