"""Compilation rules for the built-in function library (Table 2).

Each rule takes the compiler, the call node, the loop relation and the
environment, and emits an (iter, pos, item) plan.  Aggregates group by
``iter`` and explicitly fill in the defaults the XQuery functions demand
for empty sequences (``count`` → 0, ``sum`` → 0, ``string`` → "").
"""

from __future__ import annotations

from repro.errors import NotSupportedError, StaticError
from repro.relational import algebra as alg
from repro.relational.algebra import col, const
from repro.xquery import ast
from repro.compiler.loop_lifting import CTX_LAST, CTX_POSITION


def compile_builtin(comp, e: ast.FunctionCall, loop, env) -> alg.Op:
    """Dispatch a built-in call; raises for unknown functions."""
    handler = _BUILTINS.get((e.name, len(e.args))) or _BUILTINS.get((e.name, -1))
    if handler is None:
        raise StaticError(
            f"unknown function {e.name}/{len(e.args)}", code="err:XPST0017"
        )
    return handler(comp, e.args, loop, env)


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------
def _fill_items(comp, present, q, loop, default_value):
    """(iter, item) plan → one row per loop iteration, filling absent
    iterations with a constant item."""
    missing = comp._missing(q, loop)
    lit = alg.Lit(("item",), ((default_value,),), frozenset({"item"}))
    filled = alg.Union(
        (
            present,
            alg.Project(
                alg.Cross(missing, lit), (("iter", "iter"), ("item", "item"))
            ),
        )
    )
    return comp._with_pos1(filled)


def _unary_string(comp, arg_plan, loop, fn):
    """First item → string cast → per-iter string with "" default."""
    f = comp._first(comp._atomize(arg_plan))
    m = alg.Map(f, fn, "s", (col("item"),))
    present = alg.Project(m, (("iter", "iter"), ("item", "s")))
    return _fill_items(comp, present, arg_plan, loop, "")


# --------------------------------------------------------------------------
# documents and nodes
# --------------------------------------------------------------------------
def _fn_doc(comp, args, loop, env):
    uri_expr = args[0]
    if not isinstance(uri_expr, ast.Literal) or not isinstance(uri_expr.value, str):
        raise NotSupportedError("fn:doc requires a string literal argument")
    return comp._doc_plan(uri_expr.value, loop)


def _fn_root(comp, args, loop, env):
    q = comp._first(comp.compile(args[0], loop, env))
    m = alg.Map(q, "root_of", "r", (col("item"),))
    return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "r"))))


def _fn_name(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    f = comp._first(q)
    m = alg.Map(f, "node_name", "s", (col("item"),))
    present = alg.Project(m, (("iter", "iter"), ("item", "s")))
    return _fill_items(comp, present, q, loop, "")


def _fn_ddo(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    d = alg.Distinct(
        alg.Project(q, (("iter", "iter"), ("item", "item"))), ("iter", "item")
    )
    return comp._q3(alg.RowNum(d, "pos", (("item", False),), "iter"))


# --------------------------------------------------------------------------
# atomization / strings
# --------------------------------------------------------------------------
def _fn_data(comp, args, loop, env):
    return comp._atomize(comp.compile(args[0], loop, env))


def _fn_string(comp, args, loop, env):
    arg = comp.compile(args[0], loop, env) if args else comp._c_ContextItem(None, loop, env)
    return _unary_string(comp, arg, loop, "cast_str")


def _fn_number(comp, args, loop, env):
    arg = comp.compile(args[0], loop, env) if args else comp._c_ContextItem(None, loop, env)
    f = comp._first(comp._atomize(arg))
    m = alg.Map(f, "cast_dbl", "d", (col("item"),))
    present = alg.Project(m, (("iter", "iter"), ("item", "d")))
    return _fill_items(comp, present, arg, loop, float("nan"))


def _fn_concat(comp, args, loop, env):
    if len(args) < 2:
        raise StaticError("fn:concat needs at least two arguments")
    out = _unary_string(comp, comp.compile(args[0], loop, env), loop, "cast_str")
    for a in args[1:]:
        nxt = _unary_string(comp, comp.compile(a, loop, env), loop, "cast_str")
        i2 = comp.fresh("i")
        l = alg.Project(out, (("iter", "iter"), ("v1", "item")))
        r = alg.Project(nxt, ((i2, "iter"), ("v2", "item")))
        j = alg.Join(l, r, (("iter", i2),))
        m = alg.Map(j, "concat", "s", (col("v1"), col("v2")))
        out = comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "s"))))
    return out


def _fn_contains(comp, args, loop, env):
    return _string_pair(comp, args, loop, env, "contains")


def _fn_starts_with(comp, args, loop, env):
    return _string_pair(comp, args, loop, env, "starts_with")


def _string_pair(comp, args, loop, env, fn):
    s1 = _unary_string(comp, comp.compile(args[0], loop, env), loop, "cast_str")
    s2 = _unary_string(comp, comp.compile(args[1], loop, env), loop, "cast_str")
    i2 = comp.fresh("i")
    l = alg.Project(s1, (("iter", "iter"), ("v1", "item")))
    r = alg.Project(s2, ((i2, "iter"), ("v2", "item")))
    j = alg.Join(l, r, (("iter", i2),))
    m = alg.Map(j, fn, "b", (col("v1"), col("v2")))
    return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "b"))))


def _unary_string_fn(fn):
    """string → string function of one argument (empty → "")."""

    def handler(comp, args, loop, env):
        s = _unary_string(comp, comp.compile(args[0], loop, env), loop, "cast_str")
        m = alg.Map(s, fn, "r", (col("item"),))
        return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "r"))))

    return handler


def _unary_numeric_fn(fn):
    """number → number function of one argument (empty → empty)."""

    def handler(comp, args, loop, env):
        q = comp._first(comp._atomize(comp.compile(args[0], loop, env)))
        m = alg.Map(q, fn, "r", (col("item"),))
        return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "r"))))

    return handler


def _fn_substring(comp, args, loop, env):
    s = _unary_string(comp, comp.compile(args[0], loop, env), loop, "cast_str")
    start = comp._first(comp._atomize(comp.compile(args[1], loop, env)))
    i2, i3 = comp.fresh("i"), comp.fresh("i")
    l = alg.Project(s, (("iter", "iter"), ("v1", "item")))
    r = alg.Project(start, ((i2, "iter"), ("v2", "item")))
    j = alg.Join(l, r, (("iter", i2),))
    if len(args) == 3:
        length = comp._first(comp._atomize(comp.compile(args[2], loop, env)))
        l3 = alg.Project(length, ((i3, "iter"), ("v3", "item")))
        j = alg.Join(j, l3, (("iter", i3),))
        m = alg.Map(j, "substring3", "r", (col("v1"), col("v2"), col("v3")))
    else:
        m = alg.Map(j, "substring2", "r", (col("v1"), col("v2")))
    return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "r"))))


def _fn_string_length(comp, args, loop, env):
    arg = comp.compile(args[0], loop, env) if args else comp._c_ContextItem(None, loop, env)
    s = _unary_string(comp, arg, loop, "cast_str")
    m = alg.Map(s, "string_length", "n", (col("item"),))
    return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "n"))))


def _fn_string_join(comp, args, loop, env):
    sep = " "
    if len(args) == 2:
        if not isinstance(args[1], ast.Literal) or not isinstance(args[1].value, str):
            raise NotSupportedError("fn:string-join needs a literal separator")
        sep = args[1].value
    q = comp._atomize(comp.compile(args[0], loop, env))
    return _joined(comp, q, loop, sep)


def _fn_item_join(comp, args, loop, env):
    """fs:item-join — constructor-content semantics: atomize everything,
    join the lexical forms with single spaces (used for AVTs)."""
    q = comp._atomize(comp.compile(args[0], loop, env))
    return _joined(comp, q, loop, " ")


def _joined(comp, q, loop, sep):
    strs = alg.Map(q, "cast_str", "s", (col("item"),))
    agg = alg.Aggr(
        alg.Project(strs, (("iter", "iter"), ("pos", "pos"), ("s", "s"))),
        "str_join", "item", "s", "iter", sep=sep, order_col="pos",
    )
    present = alg.Project(agg, (("iter", "iter"), ("item", "item")))
    return _fill_items(comp, present, q, loop, "")


# --------------------------------------------------------------------------
# aggregates / cardinality
# --------------------------------------------------------------------------
def _fn_count(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    agg = alg.Aggr(q, "count", "n", None, "iter")
    m = alg.Map(agg, "cast_int", "c", (col("n"),))
    present = alg.Project(m, (("iter", "iter"), ("item", "c")))
    return _fill_items(comp, present, q, loop, 0)


def _aggregate(comp, args, loop, env, kind, fill=None):
    q = comp._atomize(comp.compile(args[0], loop, env))
    agg = alg.Aggr(q, kind, "v", "item", "iter")
    present = alg.Project(agg, (("iter", "iter"), ("item", "v")))
    if fill is None:
        return comp._with_pos1(present)
    return _fill_items(comp, present, q, loop, fill)


def _fn_sum(comp, args, loop, env):
    return _aggregate(comp, args, loop, env, "sum", fill=0)


def _fn_avg(comp, args, loop, env):
    return _aggregate(comp, args, loop, env, "avg")


def _fn_min(comp, args, loop, env):
    return _aggregate(comp, args, loop, env, "min")


def _fn_max(comp, args, loop, env):
    return _aggregate(comp, args, loop, env, "max")


def _fn_empty(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    present = comp._iters_of(q)
    missing = alg.Difference(loop, present, ("iter",))
    return comp._bool_result(missing, loop)


def _fn_exists(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    return comp._bool_result(comp._iters_of(q), loop)


def _fn_not(comp, args, loop, env):
    eb = comp._ebv(comp.compile(args[0], loop, env), loop)
    m = alg.Map(eb, "not", "b", (col("item"),))
    return comp._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "b"))))


def _fn_boolean(comp, args, loop, env):
    eb = comp._ebv(comp.compile(args[0], loop, env), loop)
    return comp._with_pos1(alg.Project(eb, (("iter", "iter"), ("item", "item"))))


def _fn_true(comp, args, loop, env):
    return comp._const_seq(loop, (True,))


def _fn_false(comp, args, loop, env):
    return comp._const_seq(loop, (False,))


def _fn_distinct_values(comp, args, loop, env):
    """Distinct by *value* equality: ``1`` and ``1.0`` are one value, so
    the distinct keys are the (class, canonical key) columns computed by
    the ``atom_cls``/``atom_key`` kernels, not the raw item encoding."""
    q = comp._atomize(comp.compile(args[0], loop, env))
    cls = alg.Map(q, "atom_cls", "dv_cls", (col("item"),))
    key = alg.Map(cls, "atom_key", "dv_key", (col("item"),))
    d = alg.Distinct(
        alg.Project(
            key,
            (
                ("iter", "iter"),
                ("pos", "pos"),
                ("item", "item"),
                ("dv_cls", "dv_cls"),
                ("dv_key", "dv_key"),
            ),
        ),
        ("iter", "dv_cls", "dv_key"),
        order_col="pos",
    )
    renum = alg.RowNum(d, "pos1", (("pos", False),), "iter")
    return alg.Project(renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item")))


# --------------------------------------------------------------------------
# sequence functions
# --------------------------------------------------------------------------
def _fn_reverse(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    renum = alg.RowNum(q, "pos1", (("pos", True),), "iter")
    return alg.Project(renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item")))


def _positional_arg(comp, expr, loop, env, name):
    """A per-iteration rounded integer (for subsequence/remove positions)."""
    f = comp._first(comp._atomize(comp.compile(expr, loop, env)))
    rounded = alg.Map(f, "round", "r", (col("item"),))
    as_int = alg.Map(rounded, "cast_int", name, (col("r"),))
    i2 = comp.fresh("i")
    return alg.Project(as_int, ((i2, "iter"), (name, name))), i2


def _fn_subsequence(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    start, si = _positional_arg(comp, args[1], loop, env, "sq_start")
    j = alg.Join(q, start, (("iter", si),))
    ge = alg.Map(j, "ge", "keep1", (col("pos"), col("sq_start")))
    kept = alg.Select(ge, "eq", col("keep1"), const(True))
    if len(args) == 3:
        length, li = _positional_arg(comp, args[2], loop, env, "sq_len")
        j2 = alg.Join(kept, length, (("iter", li),))
        # pos < start + length
        limit = alg.Map(j2, "add", "sq_lim", (col("sq_start"), col("sq_len")))
        lt = alg.Map(limit, "lt", "keep2", (col("pos"), col("sq_lim")))
        kept = alg.Select(lt, "eq", col("keep2"), const(True))
    renum = alg.RowNum(kept, "pos1", (("pos", False),), "iter")
    return alg.Project(renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item")))


def _fn_index_of(comp, args, loop, env):
    q = comp._atomize(comp.compile(args[0], loop, env))
    needle = comp._first(comp._atomize(comp.compile(args[1], loop, env)))
    i2 = comp.fresh("i")
    n = alg.Project(needle, ((i2, "iter"), ("needle", "item")))
    j = alg.Join(q, n, (("iter", i2),))
    eq = alg.Map(j, "eq", "m", (col("item"), col("needle")))
    hits = alg.Select(eq, "eq", col("m"), const(True))
    as_item = alg.Map(hits, "cast_int", "item1", (col("pos"),))
    renum = alg.RowNum(as_item, "pos1", (("pos", False),), "iter")
    return alg.Project(
        renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item1"))
    )


def _fn_insert_before(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    pos_arg, pi = _positional_arg(comp, args[1], loop, env, "ins_at")
    ins = comp.compile(args[2], loop, env)
    j = alg.Join(q, pos_arg, (("iter", pi),))
    # original items sort before the insertion iff pos < max(ins_at, 1)
    before = alg.Map(j, "lt", "is_before", (col("pos"), col("ins_at")))
    orig_ord = alg.Map(
        before, "not", "after_flag", (col("is_before"),)
    )  # False(0) before, True(1) after — encode ord as 0 / 2
    with_ord = alg.Map(
        orig_ord, "add", "ord", (col("after_flag"), col("after_flag"))
    )
    orig = alg.Project(
        with_ord, (("iter", "iter"), ("ord", "ord"), ("pos", "pos"), ("item", "item"))
    )
    ins_tagged = alg.Cross(ins, alg.Lit(("ordn",), ((1,),)))
    ins_part = alg.Project(
        ins_tagged,
        (("iter", "iter"), ("ord", "ordn"), ("pos", "pos"), ("item", "item")),
    )
    u = alg.Union((orig, ins_part))
    renum = alg.RowNum(u, "pos1", (("ord", False), ("pos", False)), "iter")
    return alg.Project(renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item")))


def _fn_remove(comp, args, loop, env):
    q = comp.compile(args[0], loop, env)
    pos_arg, pi = _positional_arg(comp, args[1], loop, env, "rm_at")
    j = alg.Join(q, pos_arg, (("iter", pi),))
    ne = alg.Map(j, "ne", "keep", (col("pos"), col("rm_at")))
    kept = alg.Select(ne, "eq", col("keep"), const(True))
    renum = alg.RowNum(kept, "pos1", (("pos", False),), "iter")
    return alg.Project(renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item")))


def _fn_deep_equal(comp, args, loop, env):
    """Pairwise deep equality of two sequences per iteration."""
    q1 = comp.compile(args[0], loop, env)
    q2 = comp.compile(args[1], loop, env)
    c1 = alg.Aggr(q1, "count", "n1", None, "iter")
    c2 = alg.Aggr(q2, "count", "n2", None, "iter")
    i2, i3 = comp.fresh("i"), comp.fresh("i")
    # pair items positionally and test deep equality per pair
    a = alg.Project(q1, (("iter", "iter"), ("pos", "pos"), ("v1", "item")))
    b = alg.Project(q2, ((i2, "iter"), (i3, "pos"), ("v2", "item")))
    pairs = alg.Join(a, b, (("iter", i2), ("pos", i3)))
    de = alg.Map(pairs, "deep_equal", "m", (col("v1"), col("v2")))
    bad = alg.Distinct(
        alg.Project(
            alg.Select(de, "eq", col("m"), const(False)), (("iter", "iter"),)
        ),
        ("iter",),
    )
    # equal-length check
    cj = alg.Join(
        alg.Project(c1, (("iter", "iter"), ("n1", "n1"))),
        alg.Project(c2, ((i3 + "c", "iter"), ("n2", "n2"))),
        (("iter", i3 + "c"),),
    )
    same_len = alg.Project(
        alg.Select(cj, "eq", col("n1"), col("n2")), (("iter", "iter"),)
    )
    # empty-vs-empty iterations are equal: both sides absent
    both_absent = alg.Difference(
        comp._missing(q1, loop),
        alg.Project(q2, (("iter", "iter"),)),
        ("iter",),
    )
    trues = alg.Union(
        (alg.Difference(same_len, bad, ("iter",)), both_absent)
    )
    return comp._bool_result(alg.Distinct(trues, ("iter",)), loop)


# --------------------------------------------------------------------------
# cardinality assertions (pass-through in this dialect)
# --------------------------------------------------------------------------
def _fn_zero_or_one(comp, args, loop, env):
    return comp.compile(args[0], loop, env)


def _fn_exactly_one(comp, args, loop, env):
    return comp.compile(args[0], loop, env)


def _fn_one_or_more(comp, args, loop, env):
    return comp.compile(args[0], loop, env)


# --------------------------------------------------------------------------
# context functions
# --------------------------------------------------------------------------
def _fn_position(comp, args, loop, env):
    plan = env.get(CTX_POSITION)
    if plan is None:
        raise StaticError("fn:position() outside a predicate", code="err:XPDY0002")
    return plan


def _fn_last(comp, args, loop, env):
    plan = env.get(CTX_LAST)
    if plan is None:
        raise StaticError("fn:last() outside a predicate", code="err:XPDY0002")
    return plan


_BUILTINS = {
    ("doc", 1): _fn_doc,
    ("root", 1): _fn_root,
    ("name", 1): _fn_name,
    ("fs:ddo", 1): _fn_ddo,
    ("data", 1): _fn_data,
    ("string", 0): _fn_string,
    ("string", 1): _fn_string,
    ("number", 0): _fn_number,
    ("number", 1): _fn_number,
    ("concat", -1): _fn_concat,
    ("contains", 2): _fn_contains,
    ("starts-with", 2): _fn_starts_with,
    ("ends-with", 2): lambda c, a, l, e: _string_pair(c, a, l, e, "ends_with"),
    ("substring-before", 2): lambda c, a, l, e: _string_pair(c, a, l, e, "substring_before"),
    ("substring-after", 2): lambda c, a, l, e: _string_pair(c, a, l, e, "substring_after"),
    ("substring", 2): _fn_substring,
    ("substring", 3): _fn_substring,
    ("upper-case", 1): _unary_string_fn("upper_case"),
    ("lower-case", 1): _unary_string_fn("lower_case"),
    ("normalize-space", 1): _unary_string_fn("normalize_space"),
    ("floor", 1): _unary_numeric_fn("floor"),
    ("ceiling", 1): _unary_numeric_fn("ceiling"),
    ("round", 1): _unary_numeric_fn("round"),
    ("abs", 1): _unary_numeric_fn("abs"),
    ("string-length", 0): _fn_string_length,
    ("string-length", 1): _fn_string_length,
    ("string-join", 1): _fn_string_join,
    ("string-join", 2): _fn_string_join,
    ("fs:item-join", 1): _fn_item_join,
    ("count", 1): _fn_count,
    ("sum", 1): _fn_sum,
    ("avg", 1): _fn_avg,
    ("min", 1): _fn_min,
    ("max", 1): _fn_max,
    ("empty", 1): _fn_empty,
    ("exists", 1): _fn_exists,
    ("not", 1): _fn_not,
    ("boolean", 1): _fn_boolean,
    ("true", 0): _fn_true,
    ("false", 0): _fn_false,
    ("distinct-values", 1): _fn_distinct_values,
    ("reverse", 1): _fn_reverse,
    ("subsequence", 2): _fn_subsequence,
    ("subsequence", 3): _fn_subsequence,
    ("index-of", 2): _fn_index_of,
    ("insert-before", 3): _fn_insert_before,
    ("remove", 2): _fn_remove,
    ("deep-equal", 2): _fn_deep_equal,
    ("zero-or-one", 1): _fn_zero_or_one,
    ("exactly-one", 1): _fn_exactly_one,
    ("one-or-more", 1): _fn_one_or_more,
    ("position", 0): _fn_position,
    ("last", 0): _fn_last,
}
