"""Result serialization: the ``iter|pos|item`` table back to XDM / XML.

The paper's "simple post-processor": the top-level result table (scope
``s0``, so ``iter`` = 1 throughout) is ordered by ``pos``; node items are
serialised as markup, atomic items by their lexical form with
single-space separators between adjacent atomics (the W3C serialization
rule).
"""

from __future__ import annotations

import numpy as np

from repro.encoding.arena import NodeArena
from repro.relational import items as it
from repro.relational.items import ItemColumn, K_ATTR, K_NODE
from repro.relational.table import Table
from repro.xml.escape import escape_text
from repro.xml.serializer import serialize_attribute, serialize_node


class NodeHandle:
    """A reference to an arena node in a Python-facing result list."""

    __slots__ = ("arena", "node", "is_attribute")

    def __init__(self, arena: NodeArena, node: int, is_attribute: bool = False):
        self.arena = arena
        self.node = node
        self.is_attribute = is_attribute

    def serialize(self) -> str:
        """The node as XML markup (``name="value"`` for attributes)."""
        if self.is_attribute:
            return serialize_attribute(self.arena, self.node)
        return serialize_node(self.arena, self.node)

    def string_value(self) -> str:
        """The node's XPath string-value (concatenated text content)."""
        if self.is_attribute:
            return self.arena.pool.value(int(self.arena.attr_value[self.node]))
        return self.arena.pool.value(self.arena.string_value_id(self.node))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeHandle({self.serialize()!r})"


def ordered_items(table: Table) -> ItemColumn:
    """The result items in sequence order (by iter, then pos)."""
    iters = table.num("iter")
    pos = table.num("pos")
    order = np.lexsort((pos, iters))
    return table.item("item").take(order)


def iter_result_values(table: Table, arena: NodeArena):
    """Yield the result as Python values in sequence order (nodes become
    NodeHandles) — the streaming core behind ``result_values`` and the
    ``QueryResult`` iterator protocol."""
    items = ordered_items(table)
    for kind, payload in zip(items.kinds, items.data):
        kind, payload = int(kind), int(payload)
        if kind == K_NODE:
            yield NodeHandle(arena, payload)
        elif kind == K_ATTR:
            yield NodeHandle(arena, payload, is_attribute=True)
        else:
            yield it.decode_item(kind, payload, arena.pool)


def result_values(table: Table, arena: NodeArena) -> list:
    """Decode the result to Python values (nodes become NodeHandles)."""
    return list(iter_result_values(table, arena))


def serialize_result(table: Table, arena: NodeArena) -> str:
    """Serialise the result sequence to text (nodes as XML markup, atomics
    space-separated)."""
    items = ordered_items(table)
    pool = arena.pool
    parts: list[str] = []
    prev_atomic = False
    for kind, payload in zip(items.kinds, items.data):
        kind, payload = int(kind), int(payload)
        if kind == K_NODE:
            parts.append(serialize_node(arena, payload))
            prev_atomic = False
        elif kind == K_ATTR:
            parts.append(serialize_attribute(arena, payload))
            prev_atomic = False
        else:
            text = escape_text(it.lexical(kind, payload, pool))
            if prev_atomic:
                parts.append(" ")
            parts.append(text)
            prev_atomic = True
    return "".join(parts)
