"""Result serialization: the ``iter|pos|item`` table back to XDM / XML.

The paper's "simple post-processor": the top-level result table (scope
``s0``, so ``iter`` = 1 throughout) is ordered by ``pos``; node items are
serialised as markup, atomic items by their lexical form with
single-space separators between adjacent atomics (the W3C serialization
rule).

The text form is produced **streaming**: :func:`iter_serialized_chunks`
yields bounded-size chunks (node markup comes from the scan serializer's
part list, pooled atomics are batch-decoded with ``StringPool.values``),
so a multi-megabyte result never has to exist as one Python string —
:func:`serialize_result` is simply the join of the chunks, and the HTTP
layer forwards them as chunked transfer encoding.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.arena import NodeArena
from repro.relational import items as it
from repro.relational.items import ItemColumn, K_ATTR, K_NODE
from repro.relational.table import Table
from repro.xml.escape import escape_text
from repro.xml.serializer import scan_parts, serialize_attribute, serialize_node

#: target characters per chunk yielded by :func:`iter_serialized_chunks`
DEFAULT_CHUNK_CHARS = 64 * 1024


class NodeHandle:
    """A reference to an arena node in a Python-facing result list."""

    __slots__ = ("arena", "node", "is_attribute")

    def __init__(self, arena: NodeArena, node: int, is_attribute: bool = False):
        self.arena = arena
        self.node = node
        self.is_attribute = is_attribute

    def serialize(self) -> str:
        """The node as XML markup (``name="value"`` for attributes)."""
        if self.is_attribute:
            return serialize_attribute(self.arena, self.node)
        return serialize_node(self.arena, self.node)

    def string_value(self) -> str:
        """The node's XPath string-value (concatenated text content)."""
        if self.is_attribute:
            self.arena.ensure_attrs((self.node,))
            return self.arena.pool.value(int(self.arena.attr_value[self.node]))
        return self.arena.pool.value(self.arena.string_value_id(self.node))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeHandle({self.serialize()!r})"


def ordered_items(table: Table) -> ItemColumn:
    """The result items in sequence order (by iter, then pos)."""
    iters = table.num("iter")
    pos = table.num("pos")
    order = np.lexsort((pos, iters))
    return table.item("item").take(order)


#: items decoded per batch by :func:`iter_result_values` — large enough
#: to amortise the ``StringPool.values`` call, small enough that a
#: consumer stopping early never pays for the whole column
_VALUE_BLOCK = 1024


def iter_result_values(table: Table, arena: NodeArena):
    """Yield the result as Python values in sequence order (nodes become
    NodeHandles) — the streaming core behind ``result_values`` and the
    ``QueryResult`` iterator protocol.  Pooled strings are decoded with
    blockwise ``StringPool.values`` batches instead of per-item
    ``pool.value`` calls, so iteration stays lazy (a consumer that stops
    after a few items decodes at most one block)."""
    items = ordered_items(table)
    pool = arena.pool
    # a result consumed after the catalog lock dropped must stay readable:
    # the page scope pins every fragment touched until iteration finishes
    with arena.page_scope():
        for lo in range(0, len(items), _VALUE_BLOCK):
            kinds = items.kinds[lo : lo + _VALUE_BLOCK]
            data = items.data[lo : lo + _VALUE_BLOCK]
            pooled, strings = it.pooled_strings(kinds, data, pool)
            for kind, payload, is_pooled in zip(kinds.tolist(), data.tolist(), pooled):
                if kind == K_NODE:
                    yield NodeHandle(arena, payload)
                elif kind == K_ATTR:
                    yield NodeHandle(arena, payload, is_attribute=True)
                elif is_pooled:
                    yield next(strings)
                else:
                    yield it.decode_item(kind, payload, pool)


def result_values(table: Table, arena: NodeArena) -> list:
    """Decode the result to Python values (nodes become NodeHandles)."""
    return list(iter_result_values(table, arena))


def iter_serialized_chunks(
    table: Table, arena: NodeArena, chunk_chars: int = DEFAULT_CHUNK_CHARS
):
    """Yield the serialized result sequence in bounded-size chunks.

    Chunks are plain ``str`` pieces whose concatenation is exactly
    :func:`serialize_result`'s output; each is at least ``chunk_chars``
    characters except the last, so downstream writers (chunked HTTP)
    get usefully-sized writes without the full text ever being
    assembled.  Node items stream through the scan serializer's part
    list; pooled atomics are batch-decoded once.
    """
    items = ordered_items(table)
    pool = arena.pool
    pooled, strings = it.pooled_strings(items.kinds, items.data, pool)
    buf: list[str] = []
    buf_len = 0
    prev_atomic = False
    # chunked serialization outlives the catalog lock (chunked HTTP): pin
    # every fragment read until the stream is drained or abandoned
    with arena.page_scope():
        for kind, payload, is_pooled in zip(
            items.kinds.tolist(), items.data.tolist(), pooled
        ):
            if kind == K_NODE:
                parts = scan_parts(arena, payload)
                prev_atomic = False
            elif kind == K_ATTR:
                parts = [serialize_attribute(arena, payload)]
                prev_atomic = False
            else:
                text = next(strings) if is_pooled else it.lexical(kind, payload, pool)
                parts = [escape_text(text)]
                if prev_atomic:
                    parts.insert(0, " ")
                prev_atomic = True
            for part in parts:
                buf.append(part)
                buf_len += len(part)
                if buf_len >= chunk_chars:
                    yield "".join(buf)
                    buf.clear()
                    buf_len = 0
        if buf:
            yield "".join(buf)


def serialize_result(table: Table, arena: NodeArena) -> str:
    """Serialise the result sequence to text (nodes as XML markup, atomics
    space-separated) — the buffered form of the chunk stream."""
    return "".join(iter_serialized_chunks(table, arena))
