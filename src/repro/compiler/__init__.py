"""The loop-lifting XQuery-to-algebra compiler (the paper's core idea).

Every XQuery (sub)expression compiles to a relational plan producing an
``iter | pos | item`` table; FLWOR iteration is *loop-lifted*: a ``loop``
relation enumerates the live iterations of each scope, ``for`` introduces
new iterations with a row-numbering operator, ``map`` relations connect the
iterations of nested scopes, and results are back-mapped to the enclosing
scope (paper Section 2, Figure 3).
"""

from repro.compiler.loop_lifting import Compiler, CompiledQuery

__all__ = ["Compiler", "CompiledQuery"]
