"""The pending-update-list stage of the XQuery Update Facility.

Updating queries go through the same front end as reads (parse →
desugar), then take this separate back end instead of loop-lifting:

1. **Collect** — :class:`PendingUpdateCompiler` walks the updating
   expression, evaluating every embedded *non*-updating expression
   (targets, sources, FLWOR bindings, conditionals) with the nested-loop
   interpreter over the current arena, and emits a flat **pending update
   list** of primitives (XQUF 3.2).  Nothing is modified during
   collection, so a failed update leaves the database untouched.
2. **Check** — the merge rules of ``upd:mergeUpdates``: two renames, two
   ``replace node`` or two ``replace value of`` primitives on the same
   target are errors (``err:XUDY0015``/``0016``/``0017``).
3. **Apply** — primitives are grouped per target document into a
   :class:`~repro.encoding.arena.TreeDelta` and each affected document is
   rebuilt as a fresh arena fragment
   (:meth:`~repro.encoding.arena.NodeArena.rebuild_with_delta`).  The
   caller (``Database.apply_update``) swaps the catalog roots and bumps
   the document epochs under its exclusive lock, so concurrent readers
   see the old tree or the new one, never a torn state.

Update queries are expected to be small and rare relative to reads, so
the item-at-a-time interpreter is the honest evaluator here — the
column-store machinery stays dedicated to the read path, which is the
trade-off the paper's updatability argument (Section 5) makes as well.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field

from repro.baseline.interpreter import BAttr, BNode, Interpreter, _lexical
from repro.encoding.arena import (
    NK_COMMENT,
    NK_DOC,
    NK_ELEM,
    NK_PI,
    NK_TEXT,
    NodeArena,
    TreeDelta,
)
from repro.errors import DynamicError, StaticError
from repro.xquery import ast
from repro.xquery.core import is_updating

#: primitive kinds that target an attribute id instead of a node row
_ATTR_KINDS = frozenset(
    {"deleteAttr", "replaceAttr", "replaceAttrValue", "renameAttr"}
)


@dataclass(frozen=True)
class UpdatePrimitive:
    """One entry of the pending update list.

    ``kind`` names the primitive (``insertInto``, ``insertFirst``,
    ``insertLast``, ``insertBefore``, ``insertAfter``, ``insertAttrs``,
    ``delete``, ``deleteAttr``, ``replaceNode``, ``replaceAttr``,
    ``replaceValue``, ``replaceContent``, ``replaceAttrValue``,
    ``rename``, ``renameAttr``); ``target`` is an arena node row — or an
    attribute id for the ``*Attr*`` kinds; ``content`` holds constructor
    entries (``("copy", row)`` / ``("text", sid)``) or ``(name, value)``
    sid pairs for attribute payloads; ``value`` is the new value/name sid
    where one applies.
    """

    kind: str
    target: int
    content: tuple = ()
    value: int = -1


@dataclass
class UpdateOutcome:
    """What one applied update did: per-primitive counts, the new root of
    every rebuilt document, and how long collection+application took."""

    applied: dict = field(default_factory=dict)
    new_roots: dict = field(default_factory=dict)
    seconds: float = 0.0


class PendingUpdateCompiler:
    """Collects an updating module into a pending update list."""

    def __init__(
        self,
        arena: NodeArena,
        documents: dict[str, int],
        default_document: str | None,
        deadline: float | None = None,
    ):
        self.arena = arena
        self.interp = Interpreter(arena, documents, default_document)
        if deadline is not None:
            self.interp.set_deadline(deadline)

    # ------------------------------------------------------------- compile
    def compile_module(
        self, module: ast.Module, bindings: dict | None = None
    ) -> list[UpdatePrimitive]:
        """Walk the module body, returning its merged pending update list."""
        if not is_updating(module.body):
            raise StaticError(
                "not an updating expression (expected insert/delete/"
                "replace/rename node)",
                code="err:XUST0001",
            )
        self.interp._functions = {
            (f.name, len(f.params)): f for f in module.functions
        }
        env: dict[str, list] = {}
        for name, value in (bindings or {}).items():
            seq = list(value) if isinstance(value, (list, tuple)) else [value]
            env[name.lstrip("$")] = seq
        pul: list[UpdatePrimitive] = []
        self._collect(module.body, env, pul)
        _check_merge(pul)
        return pul

    # ------------------------------------------------------------- walking
    def _collect(self, e: ast.Expr, env: dict, out: list) -> None:
        if isinstance(e, ast.EmptySeq):
            return
        if isinstance(e, ast.Sequence):
            for item in e.items:
                self._collect(item, env, out)
            return
        if isinstance(e, ast.IfExpr):
            branch = e.then if self.interp._ebv(self.interp.eval(e.cond, env)) else e.els
            self._collect(branch, env, out)
            return
        if isinstance(e, ast.Typeswitch):
            operand = self.interp.eval(e.operand, env)
            for case in e.cases:
                if self.interp._matches_type(operand, case.test):
                    inner = dict(env)
                    if case.var is not None:
                        inner[case.var] = operand
                    self._collect(case.expr, inner, out)
                    return
            inner = dict(env)
            if e.default_var is not None:
                inner[e.default_var] = operand
            self._collect(e.default, inner, out)
            return
        if isinstance(e, ast.FLWOR):
            self._flwor(e, env, out)
            return
        if isinstance(e, ast.InsertExpr):
            self._insert(e, env, out)
            return
        if isinstance(e, ast.DeleteExpr):
            self._delete(e, env, out)
            return
        if isinstance(e, ast.ReplaceExpr):
            self._replace(e, env, out)
            return
        if isinstance(e, ast.ReplaceValueExpr):
            self._replace_value(e, env, out)
            return
        if isinstance(e, ast.RenameExpr):
            self._rename(e, env, out)
            return
        raise StaticError(
            f"{type(e).__name__} is not an updating expression here",
            code="err:XUST0001",
        )

    def _flwor(self, e: ast.FLWOR, env: dict, out: list) -> None:
        """Iterate a FLWOR whose return clause is updating.  The pending
        update list is unordered (XQUF 2.4), so ``order by`` is ignored."""

        def run(idx: int, cur_env: dict) -> None:
            if idx == len(e.clauses):
                if e.where is not None and not self.interp._ebv(
                    self.interp.eval(e.where, cur_env)
                ):
                    return
                self._collect(e.ret, cur_env, out)
                return
            clause = e.clauses[idx]
            if isinstance(clause, ast.LetClause):
                inner = dict(cur_env)
                inner[clause.var] = self.interp.eval(clause.expr, cur_env)
                run(idx + 1, inner)
                return
            seq = self.interp.eval(clause.expr, cur_env)
            for position, item in enumerate(seq, start=1):
                inner = dict(cur_env)
                inner[clause.var] = [item]
                if clause.pos_var is not None:
                    inner[clause.pos_var] = [position]
                run(idx + 1, inner)

        run(0, env)

    # ---------------------------------------------------------- primitives
    def _content(self, items: list) -> tuple[list, list]:
        """Source sequence → (constructor entries, attribute pairs).

        Mirrors element-constructor content semantics: adjacent atomics
        join with single spaces into one text node, nodes are deep-copy
        entries.  Attribute items must precede everything else
        (``err:XUTY0004``).
        """
        arena = self.arena
        spec: list = []
        attrs: list = []
        run: list[str] = []

        def flush() -> None:
            if run:
                spec.append(("text", arena.pool.intern(" ".join(run))))
                run.clear()

        for item in items:
            if isinstance(item, BAttr):
                if spec or run:
                    raise DynamicError(
                        "attribute nodes must come first in insert/replace "
                        "content",
                        code="err:XUTY0004",
                    )
                attrs.append(
                    (
                        int(arena.attr_name[item.aid]),
                        int(arena.attr_value[item.aid]),
                    )
                )
            elif isinstance(item, BNode):
                flush()
                spec.append(("copy", item.row))
            else:
                run.append(_lexical(item))
        flush()
        return spec, attrs

    def _single_node(self, e: ast.Expr, env: dict, what: str):
        seq = self.interp.eval(e, env)
        if len(seq) != 1:
            raise DynamicError(
                f"the {what} of an update must be exactly one node "
                f"(got {len(seq)} items)",
                code="err:XUDY0027" if not seq else "err:XUTY0008",
            )
        item = seq[0]
        if not isinstance(item, (BNode, BAttr)):
            raise DynamicError(
                f"the {what} of an update must be a node", code="err:XUTY0008"
            )
        return item

    def _insert(self, e: ast.InsertExpr, env: dict, out: list) -> None:
        spec, attrs = self._content(self.interp.eval(e.source, env))
        target = self._single_node(e.target, env, "insert target")
        arena = self.arena
        if isinstance(target, BAttr):
            raise DynamicError(
                "cannot insert into an attribute", code="err:XUTY0005"
            )
        row = target.row
        kind = int(arena.kind[row])
        if e.position in ("into", "first", "last"):
            if kind not in (NK_ELEM, NK_DOC):
                raise DynamicError(
                    "the target of 'insert into' must be an element or "
                    "document node",
                    code="err:XUTY0005",
                )
            if attrs:
                if kind != NK_ELEM:
                    raise DynamicError(
                        "attributes can only be inserted into elements",
                        code="err:XUTY0022",
                    )
                out.append(UpdatePrimitive("insertAttrs", row, tuple(attrs)))
            if spec:
                prim = {"into": "insertInto", "first": "insertFirst",
                        "last": "insertLast"}[e.position]
                out.append(UpdatePrimitive(prim, row, tuple(spec)))
            return
        # before / after
        if attrs:
            raise DynamicError(
                "attributes cannot be inserted before/after a node",
                code="err:XUTY0022",
            )
        parent = int(arena.parent[row])
        if parent < 0 or int(arena.kind[parent]) == NK_DOC:
            # siblings of the root element would multi-root the document
            raise DynamicError(
                "the target of 'insert before/after' must have an element "
                "parent",
                code="err:XUDY0029",
            )
        if spec:
            prim = "insertBefore" if e.position == "before" else "insertAfter"
            out.append(UpdatePrimitive(prim, row, tuple(spec)))

    def _delete(self, e: ast.DeleteExpr, env: dict, out: list) -> None:
        arena = self.arena
        for item in self.interp.eval(e.target, env):
            if isinstance(item, BAttr):
                out.append(UpdatePrimitive("deleteAttr", item.aid))
                continue
            if not isinstance(item, BNode):
                raise DynamicError(
                    "delete node requires node targets", code="err:XUTY0007"
                )
            row = item.row
            parent = int(arena.parent[row])
            if (
                int(arena.kind[row]) == NK_DOC
                or parent < 0
                or int(arena.kind[parent]) == NK_DOC
            ):
                # a loaded document must keep its root element
                raise DynamicError(
                    "cannot delete a document root", code="err:XUDY0020"
                )
            out.append(UpdatePrimitive("delete", row))

    def _replace(self, e: ast.ReplaceExpr, env: dict, out: list) -> None:
        target = self._single_node(e.target, env, "replace target")
        spec, attrs = self._content(self.interp.eval(e.source, env))
        arena = self.arena
        if isinstance(target, BAttr):
            if spec:
                raise DynamicError(
                    "an attribute can only be replaced by attributes",
                    code="err:XUTY0011",
                )
            out.append(
                UpdatePrimitive("replaceAttr", target.aid, tuple(attrs))
            )
            return
        row = target.row
        if int(arena.kind[row]) == NK_DOC or int(arena.parent[row]) < 0:
            raise DynamicError(
                "cannot replace a document root", code="err:XUDY0009"
            )
        if attrs:
            raise DynamicError(
                "a non-attribute node cannot be replaced by attributes",
                code="err:XUTY0010",
            )
        out.append(UpdatePrimitive("replaceNode", row, tuple(spec)))

    def _replace_value(
        self, e: ast.ReplaceValueExpr, env: dict, out: list
    ) -> None:
        target = self._single_node(e.target, env, "replace-value target")
        text = self.interp._joined_string(self.interp.eval(e.value, env))
        sid = self.arena.pool.intern(text)
        if isinstance(target, BAttr):
            out.append(UpdatePrimitive("replaceAttrValue", target.aid, value=sid))
            return
        row = target.row
        kind = int(self.arena.kind[row])
        if kind == NK_ELEM:
            out.append(UpdatePrimitive("replaceContent", row, value=sid))
        elif kind in (NK_TEXT, NK_COMMENT, NK_PI):
            out.append(UpdatePrimitive("replaceValue", row, value=sid))
        else:
            raise DynamicError(
                "replace value of node requires an element, attribute, "
                "text, comment or PI target",
                code="err:XUTY0008",
            )

    def _rename(self, e: ast.RenameExpr, env: dict, out: list) -> None:
        target = self._single_node(e.target, env, "rename target")
        atom = self.interp._first_atom(self.interp.eval(e.name, env))
        if atom is None:
            raise DynamicError(
                "rename requires a non-empty new name", code="err:XPTY0004"
            )
        name = _lexical(atom)
        sid = self.arena.pool.intern(name)
        if isinstance(target, BAttr):
            out.append(UpdatePrimitive("renameAttr", target.aid, value=sid))
            return
        row = target.row
        if int(self.arena.kind[row]) not in (NK_ELEM, NK_PI):
            raise DynamicError(
                "only elements, attributes and processing-instructions "
                "can be renamed",
                code="err:XUTY0012",
            )
        out.append(UpdatePrimitive("rename", row, value=sid))


# --------------------------------------------------------------------------
# merge checks + application
# --------------------------------------------------------------------------
def _check_merge(pul: list[UpdatePrimitive]) -> None:
    """``upd:mergeUpdates`` compatibility: at most one rename, one replace
    node and one replace value per target (XUDY0015/0016/0017)."""
    rules = (
        (("rename", "renameAttr"), "err:XUDY0015", "rename"),
        (("replaceNode", "replaceAttr"), "err:XUDY0016", "replace node"),
        (
            ("replaceValue", "replaceContent", "replaceAttrValue"),
            "err:XUDY0017",
            "replace value of node",
        ),
    )
    for kinds, code, label in rules:
        counts = Counter(
            (p.kind in _ATTR_KINDS, p.target) for p in pul if p.kind in kinds
        )
        for (_, target), n in counts.items():
            if n > 1:
                raise DynamicError(
                    f"two '{label}' primitives target the same node "
                    f"(row {target})",
                    code=code,
                )


_PRIMITIVE_LABELS = {
    "insertInto": "insert",
    "insertFirst": "insert",
    "insertLast": "insert",
    "insertBefore": "insert",
    "insertAfter": "insert",
    "insertAttrs": "insert",
    "delete": "delete",
    "deleteAttr": "delete",
    "replaceNode": "replace",
    "replaceAttr": "replace",
    "replaceValue": "replace_value",
    "replaceContent": "replace_value",
    "replaceAttrValue": "replace_value",
    "rename": "rename",
    "renameAttr": "rename",
}


def _delta_for(delta: TreeDelta, p: UpdatePrimitive) -> None:
    """Fold one primitive into the per-document delta."""
    if p.kind == "insertInto" or p.kind == "insertLast":
        delta.insert_last.setdefault(p.target, []).extend(p.content)
    elif p.kind == "insertFirst":
        delta.insert_first.setdefault(p.target, []).extend(p.content)
    elif p.kind == "insertBefore":
        delta.insert_before.setdefault(p.target, []).extend(p.content)
    elif p.kind == "insertAfter":
        delta.insert_after.setdefault(p.target, []).extend(p.content)
    elif p.kind == "insertAttrs":
        delta.insert_attrs.setdefault(p.target, []).extend(p.content)
    elif p.kind == "delete":
        delta.delete.add(p.target)
    elif p.kind == "deleteAttr":
        delta.delete_attrs.add(p.target)
    elif p.kind == "replaceNode":
        delta.replace[p.target] = list(p.content)
    elif p.kind == "replaceAttr":
        delta.replace_attr[p.target] = list(p.content)
    elif p.kind == "replaceValue":
        delta.replace_value[p.target] = p.value
    elif p.kind == "replaceContent":
        delta.replace_content[p.target] = p.value
    elif p.kind == "replaceAttrValue":
        delta.replace_attr_value[p.target] = p.value
    elif p.kind == "renameAttr":
        delta.rename_attr[p.target] = p.value
    else:  # rename
        delta.rename[p.target] = p.value


def collect_update_deltas(
    module: ast.Module,
    arena: NodeArena,
    documents: dict[str, int],
    default_document: str | None,
    bindings: dict | None = None,
    deadline: float | None = None,
) -> tuple[dict[str, TreeDelta], dict]:
    """Collect and check one updating module; do **not** apply it.

    Runs the pending-update-list pipeline up to (and including) the
    per-document :class:`~repro.encoding.arena.TreeDelta` grouping and
    returns ``(deltas, applied_counts)`` with the arena untouched.  The
    split exists for write-ahead logging: the Database serialises these
    deltas to the WAL (and fsyncs) *before* any arena mutation, then
    applies them with :meth:`~repro.encoding.arena.NodeArena.rebuild_with_delta`.
    """
    compiler = PendingUpdateCompiler(arena, documents, default_document, deadline)
    pul = compiler.compile_module(module, bindings)

    root_to_uri = {root: uri for uri, root in documents.items()}
    deltas: dict[str, TreeDelta] = {}
    applied: Counter = Counter()
    import numpy as np

    for p in pul:
        if p.kind in _ATTR_KINDS:
            owner = int(arena.attr_owner[p.target])
            if owner < 0:
                raise DynamicError(
                    "the target attribute is not attached to a document",
                    code="err:XUDY0014",
                )
            root = int(arena.root_of(np.asarray([owner], dtype=np.int64))[0])
        else:
            root = int(arena.root_of(np.asarray([p.target], dtype=np.int64))[0])
        uri = root_to_uri.get(root)
        if uri is None:
            raise DynamicError(
                "update targets must live in a loaded document "
                "(constructed fragments are transient)",
                code="err:XUDY0014",
            )
        _delta_for(deltas.setdefault(uri, TreeDelta()), p)
        applied[_PRIMITIVE_LABELS[p.kind]] += 1
    return deltas, dict(sorted(applied.items()))


def apply_update_module(
    module: ast.Module,
    arena: NodeArena,
    documents: dict[str, int],
    default_document: str | None,
    bindings: dict | None = None,
    deadline: float | None = None,
) -> UpdateOutcome:
    """Collect, check and apply one updating module.

    The caller must hold the catalog exclusively (the Database layer
    does): collection reads the current trees, application appends the
    rebuilt fragments, and the returned ``new_roots`` map tells the
    caller which catalog entries to swap.
    """
    t0 = time.perf_counter()
    deltas, applied = collect_update_deltas(
        module, arena, documents, default_document, bindings, deadline
    )
    new_roots = {
        uri: arena.rebuild_with_delta(documents[uri], delta)
        for uri, delta in deltas.items()
    }
    return UpdateOutcome(
        applied=applied,
        new_roots=new_roots,
        seconds=time.perf_counter() - t0,
    )
