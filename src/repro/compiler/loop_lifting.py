"""Loop-lifting compilation of XQuery Core to the relational algebra.

The compilation scheme follows Grust/Sakr/Teubner, "XQuery on SQL Hosts"
(VLDB 2004), which the paper recites in Section 2:

* every expression, compiled relative to an iteration scope, yields a plan
  for a table ``iter | pos | item`` (``pos`` dense 1..n per ``iter``);
* the scope itself is a ``loop`` relation — one column ``iter`` listing
  the live iterations;
* ``for $v in e1 return e2`` row-numbers the tuples of ``e1`` to mint the
  iterations of the inner scope, binds ``$v`` per new iteration, *lifts*
  every free variable through the ``map(outer, inner)`` relation, compiles
  ``e2`` in the inner scope and back-maps its result (paper Figure 3);
* conditionals split the loop relation; axis steps are staircase joins;
  aggregates group by ``iter``.

The invariant maintained throughout: every emitted plan has dense ``pos``
1..n per ``iter`` and contains only iterations of its scope's loop.
"""

from __future__ import annotations

import itertools

from repro.encoding.axes import Axis
from repro.errors import NotSupportedError, StaticError
from repro.relational import algebra as alg
from repro.relational.algebra import col, const
from repro.relational.items import (
    K_BOOL,
    K_DBL,
    K_DEC,
    K_INT,
    K_STR,
    K_UNTYPED,
    PARAM_TYPE_KINDS,
)
from repro.encoding.arena import NK_COMMENT, NK_DOC, NK_ELEM, NK_PI, NK_TEXT
from repro.xquery import ast

_MAX_INLINE_DEPTH = 32

#: context bindings that are not user variables
CTX_ITEM = "fs:ctx"
CTX_POSITION = "fs:position"
CTX_LAST = "fs:last"


class CompiledQuery:
    """A compiled query: the plan plus front-end artifacts for explain()."""

    def __init__(self, plan: alg.Op, module: ast.Module, core: ast.Module):
        self.plan = plan
        self.module = module
        self.core = core


class Compiler:
    """Compiles a desugared module against a set of loaded documents."""

    def __init__(
        self,
        documents: dict[str, int],
        default_document: str | None = None,
        use_join_recognition: bool = True,
    ):
        self.documents = documents
        self.default_document = default_document
        self.use_join_recognition = use_join_recognition
        self._fresh_counter = itertools.count()
        self._functions: dict[str, ast.FunctionDecl] = {}
        self._external_vars: tuple[ast.ExternalVar, ...] = ()
        self._inline_depth = 0
        # variables statically known to hold xs:untypedAtomic/xs:string
        # sequences (feeds the join-recognition soundness gate)
        self._untyped_vars: set[str] = set()

    # ----------------------------------------------------------------- API
    def compile_module(self, module: ast.Module) -> alg.Op:
        """Compile a desugared module body under the unit loop (iter = 1).

        External variable declarations (``declare variable $x external``)
        become :class:`~repro.relational.algebra.ParamTable` leaves bound
        in the top-level environment: the emitted plan contains no value
        for them, so one compiled plan serves every parameter binding.
        """
        self._functions = {}
        for f in module.functions:
            key = (f.name, len(f.params))
            if key in self._functions:
                raise StaticError(f"duplicate function {f.name}/{len(f.params)}")
            self._functions[key] = f
        loop = alg.Lit(("iter",), ((1,),))
        env: dict[str, alg.Op] = {}
        self._external_vars = tuple(module.external_vars)
        for var in module.external_vars:
            if var.type_name is not None and var.type_name not in PARAM_TYPE_KINDS:
                raise NotSupportedError(
                    f"external variable ${var.name}: type {var.type_name} is "
                    f"not bindable (supported: {', '.join(sorted(PARAM_TYPE_KINDS))})"
                )
            env[var.name] = self._param_seq(var, loop)
        return self.compile(module.body, loop, env)

    def _param_seq(self, var: ast.ExternalVar, loop: alg.Op) -> alg.Op:
        """An external variable's sequence plan in an arbitrary scope.

        ``ParamTable`` is a pure leaf, so the binding is loop-invariant by
        construction and can be replicated into any loop directly."""
        param = alg.ParamTable(var.name, var.type_name)
        return self._q3(alg.Cross(loop, param))

    # ------------------------------------------------------------- helpers
    def fresh(self, base: str) -> str:
        """A fresh column name (the '%' keeps it out of the query's)."""
        return f"{base}%{next(self._fresh_counter)}"

    def _q3(self, plan: alg.Op) -> alg.Op:
        """Normalise column order to (iter, pos, item)."""
        return alg.Project(plan, (("iter", "iter"), ("pos", "pos"), ("item", "item")))

    def _empty(self) -> alg.Op:
        return alg.Lit(("iter", "pos", "item"), (), frozenset({"item"}))

    def _const_seq(self, loop: alg.Op, values: tuple) -> alg.Op:
        """A constant sequence replicated into every iteration of ``loop``."""
        rows = tuple((i + 1, v) for i, v in enumerate(values))
        lit = alg.Lit(("pos", "item"), rows, frozenset({"item"}))
        return self._q3(alg.Cross(loop, lit))

    def _first(self, q: alg.Op) -> alg.Op:
        """Restrict a sequence plan to its first item per iteration."""
        return alg.Select(q, "eq", col("pos"), const(1))

    def _iters_of(self, q: alg.Op) -> alg.Op:
        """The distinct iterations present in a plan — column ``iter``."""
        return alg.Distinct(alg.Project(q, (("iter", "iter"),)), ("iter",))

    def _missing(self, q: alg.Op, loop: alg.Op) -> alg.Op:
        """Loop iterations with no row in ``q`` — column ``iter``."""
        return alg.Difference(loop, self._iters_of(q), ("iter",))

    def _atomize(self, q: alg.Op) -> alg.Op:
        a = alg.Atomize(q, "item@", "item")
        return alg.Project(a, (("iter", "iter"), ("pos", "pos"), ("item", "item@")))

    def _with_pos1(self, iter_item: alg.Op) -> alg.Op:
        """(iter, item) → (iter, pos=1, item)."""
        crossed = alg.Cross(iter_item, alg.Lit(("pos",), ((1,),)))
        return self._q3(crossed)

    def _bool_result(self, trues: alg.Op, loop: alg.Op) -> alg.Op:
        """Single-column ``iter`` plan of true iterations → boolean
        sequence plan over ``loop`` (false for the remaining iterations)."""
        falses = alg.Difference(loop, trues, ("iter",))
        t = alg.Cross(trues, alg.Lit(("pos", "item"), ((1, True),), frozenset({"item"})))
        f = alg.Cross(falses, alg.Lit(("pos", "item"), ((1, False),), frozenset({"item"})))
        return alg.Union((self._q3(t), self._q3(f)))

    def _lift(self, q: alg.Op, map_rel: alg.Op) -> alg.Op:
        """Lift a plan into an inner scope through ``map(outer, inner)``."""
        o = self.fresh("o")
        renamed = alg.Project(
            q, ((o, "iter"), ("pos", "pos"), ("item", "item"))
        )
        joined = alg.Join(renamed, map_rel, ((o, "outer"),))
        return alg.Project(
            joined, (("iter", "inner"), ("pos", "pos"), ("item", "item"))
        )

    def _lift_env(self, env: dict, map_rel: alg.Op) -> dict:
        return {name: self._lift(plan, map_rel) for name, plan in env.items()}

    def _restrict_env(self, env: dict, loop: alg.Op) -> dict:
        return {
            name: alg.SemiJoin(plan, loop, (("iter", "iter"),))
            for name, plan in env.items()
        }

    def _ebv(self, q: alg.Op, loop: alg.Op) -> alg.Op:
        """Effective boolean value per iteration → (iter, item) plan with
        exactly one boolean row per loop iteration."""
        f = self._first(q)
        b = alg.Map(f, "ebv", "b", (col("item"),))
        present = alg.Project(b, (("iter", "iter"), ("item", "b")))
        missing = self._missing(q, loop)
        f_lit = alg.Lit(("item",), ((False,),), frozenset({"item"}))
        return alg.Union((present, alg.Project(alg.Cross(missing, f_lit), (("iter", "iter"), ("item", "item")))))

    def _true_iters(self, cond: ast.Expr, loop: alg.Op, env: dict) -> alg.Op:
        """Iterations of ``loop`` where ``cond``'s EBV is true."""
        q = self.compile(cond, loop, env)
        eb = self._ebv(q, loop)
        sel = alg.Select(eb, "eq", col("item"), const(True))
        return alg.Project(sel, (("iter", "iter"),))

    # ------------------------------------------------------------ dispatch
    def compile(self, e: ast.Expr, loop: alg.Op, env: dict) -> alg.Op:
        """Compile expression ``e`` in scope ``loop`` with variable
        environment ``env``; returns an (iter, pos, item) plan."""
        if isinstance(e, ast.UPDATE_NODES):
            raise StaticError(
                "updating expressions cannot be compiled as queries — "
                "run them through Session.execute_update (or POST /update)",
                code="err:XUST0001",
            )
        method = getattr(self, "_c_" + type(e).__name__, None)
        if method is None:
            raise NotSupportedError(f"cannot compile {type(e).__name__}")
        return method(e, loop, env)

    # ------------------------------------------------------------ literals
    def _c_Literal(self, e: ast.Literal, loop, env):
        return self._const_seq(loop, (e.value,))

    def _c_EmptySeq(self, e, loop, env):
        return self._empty()

    def _c_Sequence(self, e: ast.Sequence, loop, env):
        parts = []
        for ordinal, item in enumerate(e.items):
            q = self.compile(item, loop, env)
            tagged = alg.Cross(q, alg.Lit(("ord",), ((ordinal,),)))
            parts.append(
                alg.Project(
                    tagged,
                    (("iter", "iter"), ("ord", "ord"), ("pos", "pos"), ("item", "item")),
                )
            )
        u = alg.Union(tuple(parts))
        renum = alg.RowNum(u, "pos1", (("ord", False), ("pos", False)), "iter")
        return alg.Project(
            renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item"))
        )

    def _c_RangeExpr(self, e: ast.RangeExpr, loop, env):
        lo = self._first(self._atomize(self.compile(e.lo, loop, env)))
        hi = self._first(self._atomize(self.compile(e.hi, loop, env)))
        i2 = self.fresh("i")
        lo_p = alg.Project(
            alg.Map(lo, "cast_int", "lo", (col("item"),)),
            (("iter", "iter"), ("lo", "lo")),
        )
        hi_p = alg.Project(
            alg.Map(hi, "cast_int", "hi", (col("item"),)),
            ((i2, "iter"), ("hi", "hi")),
        )
        j = alg.Join(lo_p, hi_p, (("iter", i2),))
        return alg.GenRange(j, "lo", "hi")

    def _c_VarRef(self, e: ast.VarRef, loop, env):
        plan = env.get(e.name)
        if plan is None:
            raise StaticError(f"undefined variable ${e.name}", code="err:XPST0008")
        return plan

    def _c_ContextItem(self, e, loop, env):
        plan = env.get(CTX_ITEM)
        if plan is None:
            raise StaticError("no context item in scope", code="err:XPDY0002")
        return plan

    # --------------------------------------------------------------- FLWOR
    def _c_FLWOR(self, e: ast.FLWOR, loop, env):
        # tuple-stream state: current loop, composed map (outer = FLWOR
        # entry iteration, inner = current tuple iteration), environment
        cur_loop = loop
        cur_map = alg.Project(loop, (("outer", "iter"), ("inner", "iter")))
        cur_env = dict(env)
        where = e.where
        for idx, clause in enumerate(e.clauses):
            self._track_untyped(clause)
            if isinstance(clause, ast.LetClause):
                cur_env[clause.var] = self.compile(clause.expr, cur_loop, cur_env)
                continue
            recognized = self._join_recognition(
                e, idx, clause, cur_loop, cur_map, cur_env
            )
            if recognized is not None:
                cur_loop, cur_map, cur_env = recognized
                where = None  # the where clause became the join predicate
                continue
            q1 = self.compile(clause.expr, cur_loop, cur_env)
            numbered = alg.RowNum(q1, "inner", (("iter", False), ("pos", False)), None)
            new_loop = alg.Project(numbered, (("iter", "inner"),))
            step_map = alg.Project(numbered, (("outer", "iter"), ("inner", "inner")))
            cur_env = self._lift_env(cur_env, step_map)
            var_plan = self._with_pos1(
                alg.Project(numbered, (("iter", "inner"), ("item", "item")))
            )
            cur_env[clause.var] = var_plan
            if clause.pos_var is not None:
                pos_item = alg.Map(numbered, "cast_int", "pitem", (col("pos"),))
                cur_env[clause.pos_var] = self._with_pos1(
                    alg.Project(pos_item, (("iter", "inner"), ("item", "pitem")))
                )
            # compose the scope map: outer ∘ step
            o2 = self.fresh("o")
            step_renamed = alg.Project(step_map, ((o2, "outer"), ("inner", "inner")))
            prev = alg.Project(cur_map, (("outer", "outer"), ("mid", "inner")))
            cur_map = alg.Project(
                alg.Join(step_renamed, prev, ((o2, "mid"),)),
                (("outer", "outer"), ("inner", "inner")),
            )
            cur_loop = new_loop
        if where is not None:
            keep = self._true_iters(where, cur_loop, cur_env)
            cur_loop = keep
            cur_env = self._restrict_env(cur_env, cur_loop)
            cur_map = alg.SemiJoin(cur_map, cur_loop, (("inner", "iter"),))
        # order-by keys: one atomic (or missing) per tuple iteration
        key_cols: list[tuple[str, bool]] = []
        key_plans: list[alg.Op] = []
        for spec in e.order:
            kq = self._first(self._atomize(self.compile(spec.expr, cur_loop, cur_env)))
            kname = self.fresh("k")
            present = alg.Project(kq, (("iter", "iter"), (kname, "item")))
            missing = self._missing(kq, cur_loop)
            sentinel = float("inf") if spec.empty_greatest else float("-inf")
            m_lit = alg.Lit((kname,), ((sentinel,),), frozenset({kname}))
            filled = alg.Union(
                (present, alg.Project(alg.Cross(missing, m_lit), (("iter", "iter"), (kname, kname))))
            )
            key_plans.append(filled)
            key_cols.append((kname, spec.descending))
        ret = self.compile(e.ret, cur_loop, cur_env)
        # back-map to the entry scope, ordering tuples by (keys, inner)
        inner_col = self.fresh("inner")
        renamed = alg.Project(
            ret, ((inner_col, "iter"), ("pos", "pos"), ("item", "item"))
        )
        joined = alg.Join(renamed, cur_map, ((inner_col, "inner"),))
        for kplan, (kname, _) in zip(key_plans, key_cols):
            ki = self.fresh("ki")
            kp = alg.Project(kplan, ((ki, "iter"), (kname, kname)))
            joined = alg.Join(joined, kp, ((inner_col, ki),))
        order = tuple(key_cols) + ((inner_col, False), ("pos", False))
        renum = alg.RowNum(joined, "pos1", order, "outer")
        return alg.Project(
            renum, (("iter", "outer"), ("pos", "pos1"), ("item", "item"))
        )

    # ------------------------------------------------ join recognition [3]
    def _join_recognition(self, e, idx, clause, cur_loop, cur_map, cur_env):
        """The paper's "join recognition logic in our compiler" [3].

        When the *last* for clause binds a loop-invariant sequence and the
        where clause is a string-typed equality between a path rooted at
        the new variable and an outer expression, the cross-product of
        iterations never needs to materialise: the binding is compiled
        once, both comparison sides are evaluated independently, and an
        **equi-join on the comparison value** builds the surviving tuple
        stream directly.  This is what turns XMark Q8/Q9 into join plans.

        Soundness gate: both sides must end in an attribute step or a
        ``text()`` step, so both atomize to ``xs:untypedAtomic`` and the
        general comparison is a string equality — exactly what the
        equi-join on pooled string surrogates computes.

        Returns ``(new_loop, new_map, new_env)`` or None if not applicable.
        """
        from repro.xquery.core import free_vars

        if not self.use_join_recognition:
            return None
        if clause.pos_var is not None:
            return None
        if idx != len(e.clauses) - 1 or e.where is None:
            return None
        cond = e.where
        if not isinstance(cond, ast.GeneralComp) or cond.op != "eq":
            return None
        if free_vars(clause.expr):
            return None  # binding depends on the loop: not invariant
        for f_side, g_side in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            if not _untyped_path_from(f_side, clause.var):
                continue
            if clause.var in free_vars(g_side):
                continue
            if not self._untyped_valued(g_side):
                continue
            return self._build_join(clause, f_side, g_side, cur_loop, cur_map, cur_env)
        return None

    def _track_untyped(self, clause) -> None:
        """Maintain the set of variables that are statically known to bind
        untypedAtomic/string sequences."""
        if self._statically_untyped(clause.expr):
            self._untyped_vars.add(clause.var)
        else:
            self._untyped_vars.discard(clause.var)
        if isinstance(clause, ast.ForClause) and clause.pos_var:
            self._untyped_vars.discard(clause.pos_var)

    def _statically_untyped(self, e: ast.Expr) -> bool:
        """Does ``e`` statically yield only untypedAtomic/string items?"""
        if isinstance(e, ast.Literal):
            return isinstance(e.value, str)
        if isinstance(e, ast.VarRef):
            return e.name in self._untyped_vars
        if isinstance(e, ast.PathExpr) and e.steps:
            last = e.steps[-1]
            return isinstance(last, ast.Step) and _last_step_untyped(last)
        if isinstance(e, ast.Sequence):
            return all(self._statically_untyped(i) for i in e.items)
        if isinstance(e, ast.FunctionCall) and e.name in (
            "distinct-values", "data", "fs:ddo", "zero-or-one", "exactly-one",
            "one-or-more",
        ):
            return self._statically_untyped(e.args[0])
        if isinstance(e, ast.FunctionCall) and e.name in (
            "string", "concat", "string-join", "fs:item-join", "substring",
            "upper-case", "lower-case", "normalize-space",
        ):
            return True
        return False

    def _untyped_valued(self, e: ast.Expr) -> bool:
        """Join-recognition gate for the outer comparison side: paths
        ending in @attr/text(), string expressions, or variables tracked
        as untyped."""
        if isinstance(e, ast.VarRef):
            return e.name in self._untyped_vars
        return _untyped_valued(e) or self._statically_untyped(e)

    def _build_join(self, clause, f_side, g_side, cur_loop, cur_map, cur_env):
        # 1. the invariant binding, compiled once in the unit loop
        unit = alg.Lit(("iter",), ((1,),))
        qB = self.compile(clause.expr, unit, {})
        bnum = alg.RowNum(qB, "bid", (("iter", False), ("pos", False)), None)
        b_table = alg.Project(bnum, (("bid", "bid"), ("bitem", "item")))
        # 2. the f values (path from the bound variable) per binding row
        loop_b = alg.Project(b_table, (("iter", "bid"),))
        env_b = {
            clause.var: self._with_pos1(
                alg.Project(b_table, (("iter", "bid"), ("item", "bitem")))
            )
        }
        qf = self._atomize(self.compile(f_side, loop_b, env_b))
        fv = alg.Map(qf, "cast_str", "fv", (col("item"),))
        f_vals = alg.Project(fv, (("fbid", "iter"), ("fv", "fv")))
        # 3. the g values per current-loop iteration
        qg = self._atomize(self.compile(g_side, cur_loop, cur_env))
        gv = alg.Map(qg, "cast_str", "gv", (col("item"),))
        g_vals = alg.Project(gv, (("giter", "iter"), ("gv", "gv")))
        # 4. the equi-join IS the where clause
        pairs = alg.Join(g_vals, f_vals, (("gv", "fv"),))
        pairs = alg.Distinct(
            alg.Project(pairs, (("giter", "giter"), ("fbid", "fbid"))),
            ("giter", "fbid"),
        )
        numbered = alg.RowNum(
            pairs, "inner", (("giter", False), ("fbid", False)), None
        )
        new_loop = alg.Project(numbered, (("iter", "inner"),))
        step_map = alg.Project(numbered, (("outer", "giter"), ("inner", "inner")))
        new_env = self._lift_env(cur_env, step_map)
        # bind the for variable: join the tuple stream back to the binding
        withb = alg.Join(
            alg.Project(numbered, (("inner", "inner"), ("fbid2", "fbid"))),
            b_table,
            (("fbid2", "bid"),),
        )
        new_env[clause.var] = self._with_pos1(
            alg.Project(withb, (("iter", "inner"), ("item", "bitem")))
        )
        # compose the scope map
        o2 = self.fresh("o")
        step_renamed = alg.Project(step_map, ((o2, "outer"), ("inner", "inner")))
        prev = alg.Project(cur_map, (("outer", "outer"), ("mid", "inner")))
        new_map = alg.Project(
            alg.Join(step_renamed, prev, ((o2, "mid"),)),
            (("outer", "outer"), ("inner", "inner")),
        )
        return new_loop, new_map, new_env

    # -------------------------------------------------------- conditionals
    def _c_IfExpr(self, e: ast.IfExpr, loop, env):
        trues = self._true_iters(e.cond, loop, env)
        falses = alg.Difference(loop, trues, ("iter",))
        q_then = self.compile(e.then, trues, self._restrict_env(env, trues))
        q_else = self.compile(e.els, falses, self._restrict_env(env, falses))
        return alg.Union((self._q3(q_then), self._q3(q_else)))

    def _c_Typeswitch(self, e: ast.Typeswitch, loop, env):
        operand = self.compile(e.operand, loop, env)
        remaining = loop
        branches: list[alg.Op] = []
        for case in e.cases:
            match = self._type_match_iters(operand, case.test, loop)
            case_loop = alg.SemiJoin(remaining, match, (("iter", "iter"),))
            remaining = alg.Difference(remaining, match, ("iter",))
            case_env = self._restrict_env(env, case_loop)
            if case.var is not None:
                case_env[case.var] = alg.SemiJoin(
                    operand, case_loop, (("iter", "iter"),)
                )
            branches.append(
                self._q3(self.compile(case.expr, case_loop, case_env))
            )
        default_env = self._restrict_env(env, remaining)
        if e.default_var is not None:
            default_env[e.default_var] = alg.SemiJoin(
                operand, remaining, (("iter", "iter"),)
            )
        branches.append(self._q3(self.compile(e.default, remaining, default_env)))
        return alg.Union(tuple(branches))

    def _type_match_iters(self, operand: alg.Op, test: ast.SeqTypeTest, loop) -> alg.Op:
        """Iterations whose operand value matches a sequence type (judged,
        as everywhere in this dialect, on emptiness and the first item)."""
        if test.kind == "empty-sequence":
            return self._missing(operand, loop)
        present = self._iters_of(operand)
        if test.kind == "item":
            return present
        f = self._first(operand)
        if test.kind in ("element", "text", "comment", "document-node",
                         "processing-instruction", "node", "attribute"):
            if test.kind == "element" and test.name is not None:
                m = alg.Map(f, "elem_name_is", "m", (col("item"), const(test.name)))
                sel = alg.Select(m, "eq", col("m"), const(True))
                return alg.Project(sel, (("iter", "iter"),))
            nk = alg.Map(f, "node_kind", "nk", (col("item"),))
            want = {
                "element": NK_ELEM,
                "text": NK_TEXT,
                "comment": NK_COMMENT,
                "processing-instruction": NK_PI,
                "document-node": NK_DOC,
                "attribute": -2,
            }.get(test.kind)
            if test.kind == "node":
                sel = alg.Select(nk, "ne", col("nk"), const(-1))
            else:
                sel = alg.Select(nk, "eq", col("nk"), const(int(want)))
            return alg.Project(sel, (("iter", "iter"),))
        kind_of_type = {
            "xs:integer": K_INT, "xs:int": K_INT, "xs:long": K_INT,
            "xs:double": K_DBL, "xs:decimal": K_DEC, "xs:float": K_DBL,
            "xs:string": K_STR, "xs:boolean": K_BOOL,
            "xs:untypedAtomic": K_UNTYPED, "xs:anyAtomicType": -3,
        }
        code = kind_of_type.get(test.kind)
        if code is None:
            raise NotSupportedError(f"unsupported sequence type {test.kind}")
        kc = alg.Map(f, "kind_code", "kc", (col("item"),))
        if code == -3:  # any atomic: not a node
            sel = alg.Select(
                alg.Map(f, "is_node", "n", (col("item"),)), "eq", col("n"), const(False)
            )
        else:
            sel = alg.Select(kc, "eq", col("kc"), const(code))
        return alg.Project(sel, (("iter", "iter"),))

    # ----------------------------------------------------------- operators
    def _binary_scalar(self, fn: str, e1, e2, loop, env, atomize=True):
        """First items of both operands joined on iter, one Map apply."""
        q1 = self.compile(e1, loop, env)
        q2 = self.compile(e2, loop, env)
        if atomize:
            q1, q2 = self._atomize(q1), self._atomize(q2)
        i2 = self.fresh("i")
        a = alg.Project(self._first(q1), (("iter", "iter"), ("v1", "item")))
        b = alg.Project(self._first(q2), ((i2, "iter"), ("v2", "item")))
        j = alg.Join(a, b, (("iter", i2),))
        m = alg.Map(j, fn, "res", (col("v1"), col("v2")))
        return self._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "res"))))

    def _c_Arith(self, e: ast.Arith, loop, env):
        return self._binary_scalar(e.op, e.lhs, e.rhs, loop, env)

    def _c_Neg(self, e: ast.Neg, loop, env):
        q = self._first(self._atomize(self.compile(e.operand, loop, env)))
        m = alg.Map(q, "neg", "res", (col("item"),))
        return self._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "res"))))

    def _c_ValueComp(self, e: ast.ValueComp, loop, env):
        return self._binary_scalar(e.op, e.lhs, e.rhs, loop, env)

    def _c_NodeComp(self, e: ast.NodeComp, loop, env):
        fn = {"is": "node_eq", "before": "node_before", "after": "node_after"}[e.op]
        return self._binary_scalar(fn, e.lhs, e.rhs, loop, env, atomize=False)

    def _c_GeneralComp(self, e: ast.GeneralComp, loop, env):
        """Existential comparison: per-iteration theta-join of both
        sequences.  (For ``>`` this is exactly the paper's Q11/Q12
        theta-join whose output is inherently quadratic.)"""
        q1 = self._atomize(self.compile(e.lhs, loop, env))
        q2 = self._atomize(self.compile(e.rhs, loop, env))
        i2 = self.fresh("i")
        a = alg.Project(q1, (("iter", "iter"), ("v1", "item")))
        b = alg.Project(q2, ((i2, "iter"), ("v2", "item")))
        j = alg.Join(a, b, (("iter", i2),))
        m = alg.Map(j, e.op, "cmp", (col("v1"), col("v2")))
        sel = alg.Select(m, "eq", col("cmp"), const(True))
        trues = alg.Distinct(alg.Project(sel, (("iter", "iter"),)), ("iter",))
        return self._bool_result(trues, loop)

    def _c_NodeSetOp(self, e: ast.NodeSetOp, loop, env):
        """``except``/``intersect``: node-identity set operations per
        iteration, delivered in document order (δ + the paper's \\ )."""
        a = self.compile(e.lhs, loop, env)
        b = self.compile(e.rhs, loop, env)
        a2 = alg.Project(a, (("iter", "iter"), ("item", "item")))
        b2 = alg.Project(b, (("iter", "iter"), ("item", "item")))
        if e.kind == "except":
            kept = alg.Difference(a2, b2, ("iter", "item"))
        else:
            kept = alg.SemiJoin(a2, b2, (("iter", "iter"), ("item", "item")))
        d = alg.Distinct(kept, ("iter", "item"))
        return self._q3(alg.RowNum(d, "pos", (("item", False),), "iter"))

    def _c_BoolOp(self, e: ast.BoolOp, loop, env):
        b1 = self._ebv(self.compile(e.lhs, loop, env), loop)
        b2 = self._ebv(self.compile(e.rhs, loop, env), loop)
        i2 = self.fresh("i")
        a = alg.Project(b1, (("iter", "iter"), ("v1", "item")))
        b = alg.Project(b2, ((i2, "iter"), ("v2", "item")))
        j = alg.Join(a, b, (("iter", i2),))
        m = alg.Map(j, e.op, "res", (col("v1"), col("v2")))
        return self._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "res"))))

    def _c_CastExpr(self, e: ast.CastExpr, loop, env):
        fn = _cast_fn(e.type_name)
        q = self._first(self._atomize(self.compile(e.operand, loop, env)))
        m = alg.Map(q, fn, "res", (col("item"),))
        return self._with_pos1(alg.Project(m, (("iter", "iter"), ("item", "res"))))

    def _c_InstanceOf(self, e: ast.InstanceOf, loop, env):
        operand = self.compile(e.operand, loop, env)
        match = self._type_match_iters(operand, e.test, loop)
        return self._bool_result(match, loop)

    # ---------------------------------------------------------------- paths
    def _doc_plan(self, uri: str, loop) -> alg.Op:
        if uri not in self.documents:
            raise StaticError(f"document {uri!r} is not loaded", code="err:FODC0002")
        root = alg.Project(alg.DocRoot(uri), (("pos", "pos"), ("item", "item")))
        return self._q3(alg.Cross(loop, root))

    def _c_PathExpr(self, e: ast.PathExpr, loop, env):
        if e.start is not None:
            q = self.compile(e.start, loop, env)
        elif e.absolute:
            if self.default_document is None:
                raise StaticError(
                    "query uses an absolute path but no default document is set"
                )
            q = self._doc_plan(self.default_document, loop)
        else:
            q = self._c_ContextItem(None, loop, env)
        for step in e.steps:
            if isinstance(step, ast.Step):
                q = self._compile_axis_step(q, step, loop, env)
            else:
                q = self._compile_filter_step(q, step, env)
        return q

    def _compile_filter_step(self, q, step: ast.FilterStep, env):
        """A non-axis step inside a path: evaluate the primary expression
        once per context item (with ``.``, position() and last() bound) and
        concatenate the results in context order."""
        ctxs = alg.Project(q, (("iter", "iter"), ("pos", "pos"), ("item", "item")))
        rn = alg.RowNum(ctxs, "citer", (("iter", False), ("pos", False)), None)
        rmap = alg.Project(rn, (("outer", "iter"), ("inner", "citer")))
        inner_loop = alg.Project(rn, (("iter", "citer"),))
        env2 = self._lift_env(env, rmap)
        env2[CTX_ITEM] = self._with_pos1(
            alg.Project(rn, (("iter", "citer"), ("item", "item")))
        )
        pos_item = alg.Map(rn, "cast_int", "pitem", (col("pos"),))
        env2[CTX_POSITION] = self._with_pos1(
            alg.Project(pos_item, (("iter", "citer"), ("item", "pitem")))
        )
        counts = alg.Aggr(ctxs, "count", "n", None, "iter")
        counts_item = alg.Map(counts, "cast_int", "citem", (col("n"),))
        last_per_outer = self._with_pos1(
            alg.Project(counts_item, (("iter", "iter"), ("item", "citem")))
        )
        env2[CTX_LAST] = self._lift(last_per_outer, rmap)
        r = self.compile(step.expr, inner_loop, env2)
        r = self._apply_predicates(r, step.predicates, env2)
        ci = self.fresh("ci")
        joined = alg.Join(
            alg.Project(r, ((ci, "iter"), ("pos", "pos"), ("item", "item"))),
            rmap,
            ((ci, "inner"),),
        )
        renum = alg.RowNum(joined, "pos1", ((ci, False), ("pos", False)), "outer")
        return alg.Project(
            renum, (("iter", "outer"), ("pos", "pos1"), ("item", "item"))
        )

    def _c_Filter(self, e: ast.Filter, loop, env):
        base = self.compile(e.base, loop, env)
        return self._apply_predicates(base, e.predicates, env)

    def _compile_axis_step(self, q, step: ast.Step, loop, env):
        ctxs = alg.Project(q, (("iter", "iter"), ("item", "item")))
        if not step.predicates:
            s = alg.StepJoin(ctxs, step.axis, step.test)
            renum = alg.RowNum(s, "pos", (("item", False),), "iter")
            return self._q3(renum)
        # context numbering: each context node becomes its own iteration
        cn = alg.RowNum(ctxs, "citer", (("iter", False), ("item", False)), None)
        cmap = alg.Project(cn, (("outer", "iter"), ("inner", "citer")))
        per_ctx = alg.Project(cn, (("iter", "citer"), ("item", "item")))
        s = alg.StepJoin(per_ctx, step.axis, step.test)
        cur = self._q3(alg.RowNum(s, "pos", (("item", False),), "iter"))
        env_in_ctx = self._lift_env(env, cmap)
        for pred in step.predicates:
            cur = self._one_predicate(cur, pred, env_in_ctx)
        # back-map kept nodes to the original iterations; ddo per iteration
        ci = self.fresh("ci")
        back = alg.Join(
            alg.Project(cur, ((ci, "iter"), ("item", "item"))),
            cmap,
            ((ci, "inner"),),
        )
        merged = alg.Distinct(
            alg.Project(back, (("iter", "outer"), ("item", "item"))),
            ("iter", "item"),
        )
        return self._q3(alg.RowNum(merged, "pos", (("item", False),), "iter"))

    def _apply_predicates(self, base, predicates, env):
        cur = base
        for pred in predicates:
            cur = self._one_predicate(cur, pred, env)
        return cur

    def _one_predicate(self, cur, pred: ast.Expr, env) -> alg.Op:
        """Filter a sequence plan by one predicate (positional or boolean),
        renumbering ``pos`` afterwards.

        Every row of ``cur`` becomes its own predicate iteration with the
        context item, fn:position() and fn:last() bound.
        """
        rn = alg.RowNum(cur, "riter", (("iter", False), ("pos", False)), None)
        rmap = alg.Project(rn, (("outer", "iter"), ("inner", "riter")))
        pred_loop = alg.Project(rn, (("iter", "riter"),))
        env_pred = self._lift_env(env, rmap)
        env_pred[CTX_ITEM] = self._with_pos1(
            alg.Project(rn, (("iter", "riter"), ("item", "item")))
        )
        pos_item = alg.Map(rn, "cast_int", "pitem", (col("pos"),))
        env_pred[CTX_POSITION] = self._with_pos1(
            alg.Project(pos_item, (("iter", "riter"), ("item", "pitem")))
        )
        counts = alg.Aggr(cur, "count", "n", None, "iter")
        counts_item = alg.Map(counts, "cast_int", "citem", (col("n"),))
        last_per_outer = self._with_pos1(
            alg.Project(counts_item, (("iter", "iter"), ("item", "citem")))
        )
        env_pred[CTX_LAST] = self._lift(last_per_outer, rmap)

        p = self.compile(pred, pred_loop, env_pred)
        pf = self._first(p)
        isnum = alg.Map(pf, "is_numeric", "isn", (col("item"),))
        num_rows = alg.Select(isnum, "eq", col("isn"), const(True))
        # numeric predicate: keep rows whose position equals the value
        ri = self.fresh("ri")
        num_vals = alg.Project(num_rows, ((ri, "iter"), ("pv", "item")))
        rpos = alg.Project(rn, (("riter", "riter"), ("cpos", "pos")))
        jn = alg.Join(num_vals, rpos, ((ri, "riter"),))
        eqm = alg.Map(jn, "eq", "m", (col("pv"), col("cpos")))
        kept_num = alg.Project(
            alg.Select(eqm, "eq", col("m"), const(True)), (("iter", ri),)
        )
        # boolean predicate: EBV true and not numeric-first
        eb = self._ebv(p, pred_loop)
        ebv_true = alg.Project(
            alg.Select(eb, "eq", col("item"), const(True)), (("iter", "iter"),)
        )
        numeric_iters = alg.Project(num_rows, (("iter", "iter"),))
        kept_bool = alg.Difference(ebv_true, numeric_iters, ("iter",))
        kept = alg.Union((kept_num, kept_bool))
        filtered = alg.SemiJoin(rn, kept, (("riter", "iter"),))
        renum = alg.RowNum(filtered, "pos1", (("pos", False),), "iter")
        return alg.Project(
            renum, (("iter", "iter"), ("pos", "pos1"), ("item", "item"))
        )

    # --------------------------------------------------------- constructors
    def _string_per_iter(self, e: ast.Expr, loop, env) -> alg.Op:
        """Compile ``e`` to exactly one string per loop iteration (the
        space-joined atomization — constructor content semantics)."""
        q = self._atomize(self.compile(e, loop, env))
        strs = alg.Map(q, "cast_str", "s", (col("item"),))
        joined = alg.Aggr(
            alg.Project(strs, (("iter", "iter"), ("pos", "pos"), ("s", "s"))),
            "str_join",
            "item",
            "s",
            "iter",
            sep=" ",
            order_col="pos",
        )
        present = alg.Project(joined, (("iter", "iter"), ("item", "item")))
        missing = self._missing(q, loop)
        empty_lit = alg.Lit(("item",), (("",),), frozenset({"item"}))
        filled = alg.Union(
            (present, alg.Project(alg.Cross(missing, empty_lit), (("iter", "iter"), ("item", "item"))))
        )
        return filled  # (iter, item)

    def _c_CompElement(self, e: ast.CompElement, loop, env):
        names = self._string_per_iter(e.name, loop, env)
        content = self._q3(self.compile(e.content, loop, env))
        constructed = alg.ElemConstr(names, content)
        return self._with_pos1(constructed)

    def _c_CompAttribute(self, e: ast.CompAttribute, loop, env):
        names = self._string_per_iter(e.name, loop, env)
        values = self._string_per_iter(e.value, loop, env)
        constructed = alg.AttrConstr(names, values)
        return self._with_pos1(constructed)

    def _c_CompText(self, e: ast.CompText, loop, env):
        content = self._string_per_iter(e.content, loop, env)
        constructed = alg.TextConstr(content)
        return self._with_pos1(constructed)

    # ------------------------------------------------------------ functions
    def _c_FunctionCall(self, e: ast.FunctionCall, loop, env):
        udf = self._functions.get((e.name, len(e.args)))
        if udf is not None:
            return self._inline_udf(udf, e.args, loop, env)
        from repro.compiler.builtins import compile_builtin

        return compile_builtin(self, e, loop, env)

    def _inline_udf(self, f: ast.FunctionDecl, args, loop, env):
        if self._inline_depth >= _MAX_INLINE_DEPTH:
            raise NotSupportedError(
                f"recursion in {f.name} exceeds the compiler's inline depth "
                f"({_MAX_INLINE_DEPTH}); use the baseline interpreter"
            )
        # global (external) variables are statically visible in function
        # bodies; being loop-invariant leaves they rebind in any scope.
        # Function parameters shadow globals of the same name.
        call_env = {
            var.name: self._param_seq(var, loop) for var in self._external_vars
        }
        call_env.update(
            (param, self.compile(arg, loop, env))
            for param, arg in zip(f.params, args)
        )
        self._inline_depth += 1
        try:
            return self.compile(f.body, loop, call_env)
        finally:
            self._inline_depth -= 1


def _untyped_path_from(e: ast.Expr, var: str) -> bool:
    """Is ``e`` a pure axis path rooted at ``$var`` ending in an attribute
    or text() step (guaranteeing xs:untypedAtomic atomization)?"""
    if not isinstance(e, ast.PathExpr) or e.absolute or not e.steps:
        return False
    if not isinstance(e.start, ast.VarRef) or e.start.name != var:
        return False
    if not all(isinstance(s, ast.Step) for s in e.steps):
        return False
    return _last_step_untyped(e.steps[-1])


def _untyped_valued(e: ast.Expr) -> bool:
    """Does ``e`` statically atomize to strings/untypedAtomic?  (Paths
    ending in @attr or text(), or string literals.)"""
    if isinstance(e, ast.Literal):
        return isinstance(e.value, str)
    if isinstance(e, ast.PathExpr) and e.steps:
        last = e.steps[-1]
        return isinstance(last, ast.Step) and _last_step_untyped(last)
    return False


def _last_step_untyped(step: ast.Step) -> bool:
    if step.predicates:
        return False
    return step.axis is Axis.ATTRIBUTE or step.test.kind == "text"


def _cast_fn(type_name: str) -> str:
    mapping = {
        "xs:double": "cast_dbl", "xs:decimal": "cast_dec", "xs:float": "cast_dbl",
        "xs:integer": "cast_int", "xs:int": "cast_int", "xs:long": "cast_int",
        "xs:string": "cast_str", "xs:untypedAtomic": "cast_str",
        "xs:boolean": "ebv",
    }
    fn = mapping.get(type_name)
    if fn is None:
        raise NotSupportedError(f"cast to {type_name} is not supported")
    return fn
