"""The X-Hive-shaped baseline: a conventional nested-loop XQuery engine.

The paper (Section 2) contrasts Pathfinder's bulk-oriented loop-lifting
with "other XQuery engines, which in a sense only do nested loop, i.e.,
recursive, processing".  This subpackage is exactly such an engine: a
recursive AST interpreter evaluating item-at-a-time over the same
documents and the same parsed queries, so the benchmarks compare
evaluation *strategies*, not front-ends.  An optional attribute-value hash
index stands in for the value indices the authors added to X-Hive.
"""

from repro.baseline.interpreter import Interpreter, BNode, BAttr

__all__ = ["Interpreter", "BNode", "BAttr"]
