"""A nested-loop, item-at-a-time XQuery interpreter (the X-Hive stand-in).

This engine evaluates the same desugared AST as the Pathfinder compiler,
over the same node arena — but the way conventional XQuery engines do:
FLWOR clauses iterate tuple-at-a-time in recursive Python loops, axis
steps traverse the tree per context node, general comparisons are nested
loops, joins are nested loops.  It exists to reproduce the paper's
Table 3/Figure 4 comparisons with a credible conventional competitor.

Two X-Hive-flavoured extras:

* ``deadline`` — a wall-clock budget; exceeding it raises
  :class:`QueryTimeout`, which the benchmark harness reports as *DNF*
  exactly like the paper does for X-Hive on Q9-Q12;
* optional attribute value indexes (``add_value_index``) mirroring the
  indices the authors created on ``buyer/@person``/``profile/@income``:
  equality ``where`` clauses of the form ``$v/…/@attr = <expr>`` directly
  after a ``for`` clause probe the index instead of scanning.
"""

from __future__ import annotations

import time

from repro.encoding.arena import (
    NK_COMMENT,
    NK_DOC,
    NK_ELEM,
    NK_PI,
    NK_TEXT,
    NodeArena,
)
from repro.encoding.axes import Axis
from repro.errors import DynamicError, NotSupportedError, StaticError
from repro.relational.items import (
    XSDecimal,
    format_double,
    xpath_round,
    xpath_substring,
)
from repro.xquery import ast

import numpy as np


class QueryTimeout(DynamicError):
    """Raised when evaluation exceeds the configured deadline (a DNF)."""


class UntypedAtomic(str):
    """An ``xs:untypedAtomic`` value (a str subclass used as a type tag).

    Atomized node content carries this class so the interpreter can match
    the numpy evaluator's typing: untyped values cast to double in
    aggregates and arithmetic, while genuine ``xs:string`` items compare
    (and aggregate) as strings.
    """

    __slots__ = ()


class BNode:
    """A node item: wraps an arena row."""

    __slots__ = ("row",)

    def __init__(self, row: int):
        self.row = row

    def __eq__(self, other):
        return isinstance(other, BNode) and other.row == self.row

    def __hash__(self):
        return hash(("n", self.row))

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"BNode({self.row})"


class BAttr:
    """An attribute item: wraps an attribute-arena id."""

    __slots__ = ("aid",)

    def __init__(self, aid: int):
        self.aid = aid

    def __eq__(self, other):
        return isinstance(other, BAttr) and other.aid == self.aid

    def __hash__(self):
        return hash(("a", self.aid))

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"BAttr({self.aid})"


_NUMERIC = (int, float)


class Interpreter:
    """Evaluate desugared XQuery modules item-at-a-time."""

    def __init__(
        self,
        arena: NodeArena,
        documents: dict[str, int],
        default_document: str | None = None,
        use_indexes: bool = False,
    ):
        self.arena = arena
        self.documents = documents
        self.default_document = default_document
        self.use_indexes = use_indexes
        self.deadline: float | None = None
        self._functions: dict[tuple[str, int], ast.FunctionDecl] = {}
        self._value_indexes: dict[str, dict[str, list[int]]] = {}
        self._ticks = 0

    # -------------------------------------------------------------- control
    def set_deadline(self, seconds: float | None) -> None:
        """Abort evaluation (QueryTimeout) after ``seconds`` of wall time."""
        self.deadline = None if seconds is None else time.perf_counter() + seconds

    def _tick(self) -> None:
        self._ticks += 1
        if self.deadline is not None and self._ticks % 256 == 0:
            if time.perf_counter() > self.deadline:
                raise QueryTimeout("query exceeded its time budget (DNF)")

    # ------------------------------------------------------------- indexes
    def add_value_index(self, attr_name: str) -> None:
        """Build a hash index attribute-value → owner element rows (the
        X-Hive tuning of Section 3.2)."""
        arena = self.arena
        pool = arena.pool
        name_id = pool.lookup(attr_name)
        index: dict[str, list[int]] = {}
        for aid in range(arena.num_attrs):
            if arena.attr_name[aid] == name_id:
                value = pool.value(int(arena.attr_value[aid]))
                index.setdefault(value, []).append(int(arena.attr_owner[aid]))
        self._value_indexes[attr_name] = index

    # ------------------------------------------------------------ execution
    def execute(self, module: ast.Module) -> list:
        """Evaluate a desugared module; returns the result item list."""
        self._functions = {
            (f.name, len(f.params)): f for f in module.functions
        }
        return self.eval(module.body, {})

    def serialize(self, seq: list) -> str:
        """Serialise a result sequence exactly like the Pathfinder engine."""
        from repro.xml.escape import escape_text
        from repro.xml.serializer import serialize_attribute, serialize_node

        parts: list[str] = []
        prev_atomic = False
        for item in seq:
            if isinstance(item, BNode):
                parts.append(serialize_node(self.arena, item.row))
                prev_atomic = False
            elif isinstance(item, BAttr):
                parts.append(serialize_attribute(self.arena, item.aid))
                prev_atomic = False
            else:
                if prev_atomic:
                    parts.append(" ")
                parts.append(escape_text(_lexical(item)))
                prev_atomic = True
        return "".join(parts)

    # ------------------------------------------------------------- dispatch
    def eval(self, e: ast.Expr, env: dict) -> list:
        self._tick()
        method = getattr(self, "_e_" + type(e).__name__, None)
        if method is None:
            raise NotSupportedError(f"interpreter: unhandled {type(e).__name__}")
        return method(e, env)

    # -------------------------------------------------------------- basics
    def _e_Literal(self, e: ast.Literal, env):
        return [e.value]

    def _e_EmptySeq(self, e, env):
        return []

    def _e_Sequence(self, e: ast.Sequence, env):
        out: list = []
        for item in e.items:
            out.extend(self.eval(item, env))
        return out

    def _e_RangeExpr(self, e: ast.RangeExpr, env):
        lo = self._single_number(e.lo, env)
        hi = self._single_number(e.hi, env)
        if lo is None or hi is None:
            return []
        return list(range(int(lo), int(hi) + 1))

    def _e_VarRef(self, e: ast.VarRef, env):
        try:
            return env[e.name]
        except KeyError:
            raise StaticError(f"undefined variable ${e.name}", code="err:XPST0008")

    def _e_ContextItem(self, e, env):
        try:
            return env["fs:ctx"]
        except KeyError:
            raise StaticError("no context item", code="err:XPDY0002")

    # --------------------------------------------------------------- FLWOR
    def _e_FLWOR(self, e: ast.FLWOR, env):
        out: list = []
        keyed: list[tuple[tuple, int, list]] = []
        counter = [0]

        def run_clauses(idx: int, cur_env: dict) -> None:
            self._tick()
            if idx == len(e.clauses):
                if e.where is not None and not self._ebv(self.eval(e.where, cur_env)):
                    return
                value = self.eval(e.ret, cur_env)
                if e.order:
                    key = tuple(
                        _order_key(self._first_atom(self.eval(spec.expr, cur_env)),
                                   spec.descending, spec.empty_greatest)
                        for spec in e.order
                    )
                    keyed.append((key, counter[0], value))
                    counter[0] += 1
                else:
                    out.extend(value)
                return
            clause = e.clauses[idx]
            if isinstance(clause, ast.LetClause):
                new_env = dict(cur_env)
                new_env[clause.var] = self.eval(clause.expr, cur_env)
                run_clauses(idx + 1, new_env)
                return
            binding = self._for_binding(e, idx, clause, cur_env)
            for position, item in binding:
                new_env = dict(cur_env)
                new_env[clause.var] = [item]
                if clause.pos_var is not None:
                    new_env[clause.pos_var] = [position]
                run_clauses(idx + 1, new_env)

        run_clauses(0, env)
        if e.order:
            keyed.sort(key=lambda kv: (kv[0], kv[1]))
            for _, _, value in keyed:
                out.extend(value)
        return out

    def _for_binding(self, flwor, idx, clause, cur_env):
        """The (position, item) stream of a for clause — optionally probed
        through a value index when the where clause is an equality on an
        indexed attribute path rooted at this clause's variable."""
        if self.use_indexes and idx == len(flwor.clauses) - 1 and flwor.where is not None:
            probe = self._index_probe(flwor.where, clause, cur_env)
            if probe is not None:
                return probe
        seq = self.eval(clause.expr, cur_env)
        return list(enumerate(seq, start=1))

    def _index_probe(self, where, clause, cur_env):
        """Recognise ``where $v/c1/…/@a = <outer expr>`` and answer it from
        the value index: candidate ``$v`` items are computed by walking up
        from the indexed attribute owners."""
        cond = where
        if not isinstance(cond, ast.GeneralComp) or cond.op != "eq":
            return None
        for lhs, rhs in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            spec = self._indexed_path_spec(lhs, clause.var)
            if spec is None:
                continue
            attr_name, depth = spec
            index = self._value_indexes.get(attr_name)
            if index is None:
                continue
            try:
                outer_vals = [
                    _string_of_atom(v) for v in self._atomize_seq(self.eval(rhs, cur_env))
                ]
            except StaticError:
                return None
            binding = self.eval(clause.expr, cur_env)
            rows = {item.row: pos for pos, item in enumerate(binding, start=1)
                    if isinstance(item, BNode)}
            hits: dict[int, int] = {}
            parent = self.arena.parent
            for value in outer_vals:
                for owner in index.get(value, ()):
                    node = owner
                    for _ in range(depth):
                        node = int(parent[node])
                        if node < 0:
                            break
                    if node in rows:
                        hits[node] = rows[node]
            ordered = sorted(hits.items(), key=lambda kv: kv[1])
            return [(pos, BNode(row)) for row, pos in ordered]
        return None

    def _indexed_path_spec(self, e, var):
        """``$var/s1/…/@a`` → (attr name, number of element steps), if it
        has that exact shape."""
        if not isinstance(e, ast.PathExpr) or e.absolute or not e.steps:
            return None
        if not isinstance(e.start, ast.VarRef) or e.start.name != var:
            return None
        *front, last = e.steps
        if not isinstance(last, ast.Step) or last.axis is not Axis.ATTRIBUTE:
            return None
        if last.test.name is None or last.predicates:
            return None
        depth = 0
        for s in front:
            if not isinstance(s, ast.Step) or s.axis is not Axis.CHILD or s.predicates:
                return None
            depth += 1
        return last.test.name, depth

    # -------------------------------------------------------- conditionals
    def _e_IfExpr(self, e: ast.IfExpr, env):
        if self._ebv(self.eval(e.cond, env)):
            return self.eval(e.then, env)
        return self.eval(e.els, env)

    def _e_Typeswitch(self, e: ast.Typeswitch, env):
        operand = self.eval(e.operand, env)
        for case in e.cases:
            if self._matches_type(operand, case.test):
                new_env = dict(env)
                if case.var is not None:
                    new_env[case.var] = operand
                return self.eval(case.expr, new_env)
        new_env = dict(env)
        if e.default_var is not None:
            new_env[e.default_var] = operand
        return self.eval(e.default, new_env)

    def _matches_type(self, seq: list, test: ast.SeqTypeTest) -> bool:
        if test.kind == "empty-sequence":
            return not seq
        if not seq:
            return False
        if test.kind == "item":
            return True
        first = seq[0]
        arena = self.arena
        if test.kind == "node":
            return isinstance(first, (BNode, BAttr))
        if test.kind == "attribute":
            return isinstance(first, BAttr)
        if test.kind in ("element", "text", "comment", "document-node",
                         "processing-instruction"):
            if not isinstance(first, BNode):
                return False
            want = {"element": NK_ELEM, "text": NK_TEXT, "comment": NK_COMMENT,
                    "document-node": NK_DOC, "processing-instruction": NK_PI}[test.kind]
            if arena.kind[first.row] != want:
                return False
            if test.kind == "element" and test.name is not None:
                return arena.name[first.row] == arena.pool.lookup(test.name)
            return True
        if test.kind == "xs:decimal":
            return isinstance(first, XSDecimal)
        if test.kind in ("xs:double", "xs:float"):
            return isinstance(first, float) and not isinstance(first, XSDecimal)
        atomic = {
            "xs:integer": int, "xs:int": int, "xs:long": int,
            "xs:string": str, "xs:boolean": bool,
        }.get(test.kind)
        if atomic is None:
            raise NotSupportedError(f"unsupported sequence type {test.kind}")
        if atomic is int and isinstance(first, bool):
            return False
        if atomic is bool:
            return isinstance(first, bool)
        return isinstance(first, atomic)

    # ----------------------------------------------------------- operators
    def _first_atom(self, seq: list):
        atoms = self._atomize_seq(seq)
        return atoms[0] if atoms else None

    def _single_number(self, e: ast.Expr, env):
        v = self._first_atom(self.eval(e, env))
        return None if v is None else _to_number(v)

    def _e_Arith(self, e: ast.Arith, env):
        a = self._first_atom(self.eval(e.lhs, env))
        b = self._first_atom(self.eval(e.rhs, env))
        if a is None or b is None:
            return []
        x, y = _to_number(a), _to_number(b)
        both_int = isinstance(a, int) and isinstance(b, int) and not (
            isinstance(a, bool) or isinstance(b, bool)
        )
        exact = _is_exact(a) and _is_exact(b)
        op = e.op
        if op == "add":
            r = x + y
        elif op == "sub":
            r = x - y
        elif op == "mul":
            r = x * y
        elif op == "div":
            if y == 0:
                if exact:
                    raise DynamicError(
                        "integer/decimal division by zero", code="err:FOAR0001"
                    )
                return [float("nan") if x == 0 else float("inf") if x > 0 else float("-inf")]
            return [XSDecimal(x / y) if exact else float(x / y)]
        elif op == "idiv":
            if y == 0:
                raise DynamicError("integer division by zero", code="err:FOAR0001")
            return [int(x / y)]
        elif op == "mod":
            if y == 0:
                if exact:
                    raise DynamicError(
                        "integer/decimal division by zero", code="err:FOAR0001"
                    )
                return [float("nan")]
            r = float(np.fmod(x, y))
        else:  # pragma: no cover
            raise NotSupportedError(f"arith op {op}")
        if both_int and op in ("add", "sub", "mul", "mod"):
            return [int(r)]
        # exact-numeric closure (integer div integer is xs:decimal), so a
        # nested division by zero is still err:FOAR0001 — same as the
        # numpy kernels
        return [XSDecimal(r) if exact else float(r)]

    def _e_Neg(self, e: ast.Neg, env):
        a = self._first_atom(self.eval(e.operand, env))
        if a is None:
            return []
        v = _to_number(a)
        if isinstance(a, int) and not isinstance(a, bool):
            return [-int(v)]
        if isinstance(a, XSDecimal):
            return [XSDecimal(-float(v))]
        return [-float(v)]

    def _e_ValueComp(self, e: ast.ValueComp, env):
        a = self._first_atom(self.eval(e.lhs, env))
        b = self._first_atom(self.eval(e.rhs, env))
        if a is None or b is None:
            return []
        return [_compare(e.op, a, b)]

    def _e_GeneralComp(self, e: ast.GeneralComp, env):
        left = self._atomize_seq(self.eval(e.lhs, env))
        right = self._atomize_seq(self.eval(e.rhs, env))
        for x in left:  # the nested-loop theta join of conventional engines
            self._tick()
            for y in right:
                if _compare(e.op, x, y):
                    return [True]
        return [False]

    def _e_NodeComp(self, e: ast.NodeComp, env):
        a = self.eval(e.lhs, env)
        b = self.eval(e.rhs, env)
        if not a or not b:
            return []
        x, y = a[0], b[0]
        kx = _node_order_key(x)
        ky = _node_order_key(y)
        if e.op == "is":
            return [x == y]
        if e.op == "before":
            return [kx < ky]
        return [kx > ky]

    def _e_NodeSetOp(self, e, env):
        left = self.eval(e.lhs, env)
        right = set(self.eval(e.rhs, env))
        if e.kind == "except":
            kept = [n for n in left if n not in right]
        else:
            kept = [n for n in left if n in right]
        seen = set()
        out = []
        for n in kept:
            if n not in seen:
                seen.add(n)
                out.append(n)
        return sorted(out, key=_node_order_key)

    def _e_BoolOp(self, e: ast.BoolOp, env):
        a = self._ebv(self.eval(e.lhs, env))
        b = self._ebv(self.eval(e.rhs, env))
        return [a and b if e.op == "and" else a or b]

    def _e_CastExpr(self, e: ast.CastExpr, env):
        a = self._first_atom(self.eval(e.operand, env))
        if a is None:
            return []
        t = e.type_name
        if t == "xs:decimal":
            return [XSDecimal(_to_number(a))]
        if t in ("xs:double", "xs:float"):
            return [float(_to_number(a))]
        if t in ("xs:integer", "xs:int", "xs:long"):
            return [int(_to_number(a))]
        if t in ("xs:string", "xs:untypedAtomic"):
            return [_string_of_atom(a)]
        if t == "xs:boolean":
            return [self._ebv([a])]
        raise NotSupportedError(f"cast to {t}")

    def _e_InstanceOf(self, e: ast.InstanceOf, env):
        return [self._matches_type(self.eval(e.operand, env), e.test)]

    # ---------------------------------------------------------------- paths
    def _e_PathExpr(self, e: ast.PathExpr, env):
        if e.start is not None:
            ctx = self.eval(e.start, env)
        elif e.absolute:
            if self.default_document is None:
                raise StaticError("no default document for absolute path")
            ctx = [BNode(self.documents[self.default_document])]
        else:
            ctx = self._e_ContextItem(None, env)
        for step in e.steps:
            if isinstance(step, ast.Step):
                ctx = self._axis_step(ctx, step, env)
            else:
                # non-axis step: evaluate per context item with ., position()
                # and last() bound, concatenating in context order
                out: list = []
                last = len(ctx)
                for position, item in enumerate(ctx, start=1):
                    step_env = dict(env)
                    step_env["fs:ctx"] = [item]
                    step_env["fs:position"] = [position]
                    step_env["fs:last"] = [last]
                    value = self.eval(step.expr, step_env)
                    out.extend(self._filter(value, step.predicates, step_env))
                ctx = out
        return ctx

    def _e_Filter(self, e: ast.Filter, env):
        return self._filter(self.eval(e.base, env), e.predicates, env)

    def _axis_step(self, ctx: list, step: ast.Step, env) -> list:
        results: list = []
        seen: set = set()
        for item in ctx:
            self._tick()
            if not isinstance(item, BNode):
                raise DynamicError(
                    "path step applied to a non-node item", code="err:XPTY0019"
                )
            for hit in self._one_node_axis(item.row, step.axis):
                if hit not in seen and self._node_test(hit, step.test):
                    seen.add(hit)
                    results.append(hit)
        if step.axis is Axis.ATTRIBUTE:
            out: list = [BAttr(h[1]) for h in sorted(results)]
        else:
            out = [BNode(h) for h in sorted(results)]
        if step.predicates:
            out = self._filter(out, step.predicates, env, per_step=True, ctx=ctx, step=step)
        return out

    def _one_node_axis(self, row: int, axis: Axis):
        """Yield raw hits for one context node (attribute hits are
        ``(owner, aid)`` pairs so they sort in document order)."""
        arena = self.arena
        if axis is Axis.ATTRIBUTE:
            order, lo, hi = arena.attr_ranges(np.asarray([row], dtype=np.int64))
            for j in order[int(lo[0]) : int(hi[0])]:
                yield (row, int(j))
            return
        if axis is Axis.SELF:
            yield row
            return
        if axis is Axis.CHILD:
            order, lo, hi = arena.children_ranges(np.asarray([row], dtype=np.int64))
            for j in sorted(int(r) for r in order[int(lo[0]) : int(hi[0])]):
                yield j
            return
        if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            start = row if axis is Axis.DESCENDANT_OR_SELF else row + 1
            for j in range(start, row + int(arena.size[row]) + 1):
                self._tick()
                yield j
            return
        if axis is Axis.PARENT:
            p = int(arena.parent[row])
            if p >= 0:
                yield p
            return
        if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
            cur = row if axis is Axis.ANCESTOR_OR_SELF else int(arena.parent[row])
            while cur >= 0:
                yield cur
                cur = int(arena.parent[cur])
            return
        if axis is Axis.FOLLOWING:
            end = int(arena.frag_end(np.asarray([row], dtype=np.int64))[0])
            for j in range(row + int(arena.size[row]) + 1, end + 1):
                self._tick()
                yield j
            return
        if axis is Axis.PRECEDING:
            base = int(arena.root_of(np.asarray([row], dtype=np.int64))[0])
            for j in range(base, row):
                self._tick()
                if j + int(arena.size[j]) < row:
                    yield j
            return
        if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
            p = int(arena.parent[row])
            if p < 0:
                return
            order, lo, hi = arena.children_ranges(np.asarray([p], dtype=np.int64))
            sibs = sorted(int(r) for r in order[int(lo[0]) : int(hi[0])])
            for j in sibs:
                if axis is Axis.FOLLOWING_SIBLING and j > row:
                    yield j
                if axis is Axis.PRECEDING_SIBLING and j < row:
                    yield j
            return
        raise NotSupportedError(f"axis {axis}")

    def _node_test(self, hit, test) -> bool:
        arena = self.arena
        if isinstance(hit, tuple):  # attribute
            if test.kind == "node":
                return True
            if test.kind != "attribute":
                return False
            if test.name is None:
                return True
            return arena.attr_name[hit[1]] == arena.pool.lookup(test.name)
        if test.kind == "node":
            return True
        if test.kind == "attribute":
            return False
        want = {"element": NK_ELEM, "text": NK_TEXT, "comment": NK_COMMENT,
                "document-node": NK_DOC, "processing-instruction": NK_PI}[test.kind]
        if arena.kind[hit] != want:
            return False
        if test.name is not None and test.kind == "element":
            return arena.name[hit] == arena.pool.lookup(test.name)
        return True

    def _filter(self, seq: list, predicates: list, env, per_step=False, ctx=None, step=None) -> list:
        cur = seq
        for pred in predicates:
            kept = []
            last = len(cur)
            for position, item in enumerate(cur, start=1):
                self._tick()
                new_env = dict(env)
                new_env["fs:ctx"] = [item]
                new_env["fs:position"] = [position]
                new_env["fs:last"] = [last]
                value = self.eval(pred, new_env)
                if len(value) == 1 and isinstance(value[0], _NUMERIC) and not isinstance(value[0], bool):
                    if float(value[0]) == float(position):
                        kept.append(item)
                elif self._ebv(value):
                    kept.append(item)
            cur = kept
        return cur

    # ------------------------------------------------------------ construct
    def _e_CompElement(self, e: ast.CompElement, env):
        name = _string_of_atom(self._first_atom(self.eval(e.name, env)) or "")
        content = self.eval(e.content, env)
        arena = self.arena
        spec: list[tuple[str, int]] = []
        attrs: list[tuple[int, int]] = []
        atom_run: list[str] = []

        def flush():
            if atom_run:
                spec.append(("text", arena.pool.intern(" ".join(atom_run))))
                atom_run.clear()

        for item in content:
            if isinstance(item, BNode):
                flush()
                spec.append(("copy", item.row))
            elif isinstance(item, BAttr):
                flush()
                spec.append(("attr", item.aid))
            else:
                atom_run.append(_lexical(item))
        flush()
        row = arena.new_element(arena.pool.intern(name), attrs, spec)
        return [BNode(row)]

    def _e_CompAttribute(self, e: ast.CompAttribute, env):
        name = _string_of_atom(self._first_atom(self.eval(e.name, env)) or "")
        value = self._joined_string(self.eval(e.value, env))
        aid = self.arena.new_attribute(
            self.arena.pool.intern(name), self.arena.pool.intern(value)
        )
        return [BAttr(aid)]

    def _e_CompText(self, e: ast.CompText, env):
        value = self._joined_string(self.eval(e.content, env))
        row = self.arena.new_text_node(self.arena.pool.intern(value))
        return [BNode(row)]

    def _joined_string(self, seq: list) -> str:
        return " ".join(_string_of_atom(a) for a in self._atomize_seq(seq))

    # ------------------------------------------------------------ functions
    def _e_FunctionCall(self, e: ast.FunctionCall, env):
        udf = self._functions.get((e.name, len(e.args)))
        if udf is not None:
            call_env = {
                p: self.eval(a, env) for p, a in zip(udf.params, e.args)
            }
            return self.eval(udf.body, call_env)
        return self._builtin(e, env)

    def _builtin(self, e: ast.FunctionCall, env):
        name, args = e.name, e.args
        arena = self.arena

        if name == "doc":
            uri = args[0]
            if not isinstance(uri, ast.Literal):
                raise NotSupportedError("fn:doc requires a literal")
            row = self.documents.get(uri.value)
            if row is None:
                raise DynamicError(f"document {uri.value!r} not loaded", code="err:FODC0002")
            return [BNode(row)]
        if name == "root":
            seq = self.eval(args[0], env)
            if not seq:
                return []
            node = seq[0]
            if not isinstance(node, BNode):
                raise DynamicError("fn:root requires a node")
            return [BNode(int(arena.root_of(np.asarray([node.row], dtype=np.int64))[0]))]
        if name == "data":
            return self._atomize_seq(self.eval(args[0], env))
        if name == "string":
            seq = self.eval(args[0], env) if args else self._e_ContextItem(None, env)
            v = self._first_atom(seq)
            return [_string_of_atom(v) if v is not None else ""]
        if name == "number":
            seq = self.eval(args[0], env) if args else self._e_ContextItem(None, env)
            v = self._first_atom(seq)
            return [float(_to_number(v)) if v is not None else float("nan")]
        if name == "count":
            return [len(self.eval(args[0], env))]
        if name in ("sum", "avg", "min", "max"):
            items = self._atomize_seq(self.eval(args[0], env))
            if not items:
                return [0] if name == "sum" else []
            strings = sum(
                1
                for a in items
                if isinstance(a, str) and not isinstance(a, UntypedAtomic)
            )
            if strings:
                # F&O 15.4: min/max over xs:string sequences compare by
                # codepoint order; any other string mix is err:FORG0006
                if name in ("min", "max") and strings == len(items):
                    return [min(items) if name == "min" else max(items)]
                raise DynamicError(
                    f"fn:{name} over non-numeric items", code="err:FORG0006"
                )
            atoms = [_to_number(a) for a in items]
            if name == "sum":
                s = sum(atoms)
            elif name == "avg":
                s = sum(atoms) / len(atoms)
            elif name == "min":
                s = min(atoms)
            else:
                s = max(atoms)
            if all(isinstance(a, int) for a in atoms) and name in ("sum", "min", "max"):
                return [int(s)]
            return [float(s)]
        if name == "empty":
            return [not self.eval(args[0], env)]
        if name == "exists":
            return [bool(self.eval(args[0], env))]
        if name == "not":
            return [not self._ebv(self.eval(args[0], env))]
        if name == "boolean":
            return [self._ebv(self.eval(args[0], env))]
        if name == "true":
            return [True]
        if name == "false":
            return [False]
        if name == "concat":
            out = []
            for a in args:
                v = self._first_atom(self.eval(a, env))
                out.append(_string_of_atom(v) if v is not None else "")
            return ["".join(out)]
        if name == "contains":
            s1 = self._string_arg(args[0], env)
            s2 = self._string_arg(args[1], env)
            return [s2 in s1]
        if name == "starts-with":
            s1 = self._string_arg(args[0], env)
            s2 = self._string_arg(args[1], env)
            return [s1.startswith(s2)]
        if name == "string-length":
            seq = self.eval(args[0], env) if args else self._e_ContextItem(None, env)
            v = self._first_atom(seq)
            return [len(_string_of_atom(v)) if v is not None else 0]
        if name == "ends-with":
            s1 = self._string_arg(args[0], env)
            s2 = self._string_arg(args[1], env)
            return [s1.endswith(s2)]
        if name == "substring-before":
            s1 = self._string_arg(args[0], env)
            s2 = self._string_arg(args[1], env)
            return [s1.partition(s2)[0] if s2 and s2 in s1 else ""]
        if name == "substring-after":
            s1 = self._string_arg(args[0], env)
            s2 = self._string_arg(args[1], env)
            return [s1.partition(s2)[2] if s2 and s2 in s1 else ""]
        if name == "substring":
            s = self._string_arg(args[0], env)
            start = self._single_number(args[1], env)
            if start is None:
                return [""]
            if len(args) == 3:
                length = self._single_number(args[2], env)
                if length is None:
                    return [""]
                return [xpath_substring(s, float(start), float(length))]
            return [xpath_substring(s, float(start))]
        if name == "upper-case":
            return [self._string_arg(args[0], env).upper()]
        if name == "lower-case":
            return [self._string_arg(args[0], env).lower()]
        if name == "normalize-space":
            return [" ".join(self._string_arg(args[0], env).split())]
        if name in ("floor", "ceiling", "round", "abs"):
            v = self._first_atom(self.eval(args[0], env))
            if v is None:
                return []
            n = _to_number(v)
            if isinstance(v, int) and not isinstance(v, bool):
                return [abs(n) if name == "abs" else n]
            import math

            wrap = XSDecimal if isinstance(v, XSDecimal) else float
            n = float(n)
            if math.isnan(n) or math.isinf(n):
                # floor/ceil/round of non-finite doubles are identities
                return [wrap(abs(n) if name == "abs" else n)]
            if name == "floor":
                return [wrap(math.floor(n))]
            if name == "ceiling":
                return [wrap(math.ceil(n))]
            if name == "round":
                return [wrap(math.floor(n + 0.5))]
            return [wrap(abs(n))]
        if name == "string-join":
            sep = " "
            if len(args) == 2 and isinstance(args[1], ast.Literal):
                sep = str(args[1].value)
            atoms = self._atomize_seq(self.eval(args[0], env))
            return [sep.join(_string_of_atom(a) for a in atoms)]
        if name == "fs:item-join":
            return [self._joined_string(self.eval(args[0], env))]
        if name == "distinct-values":
            seen = set()
            out = []
            for a in self._atomize_seq(self.eval(args[0], env)):
                key = _distinct_value_key(a)
                if key not in seen:
                    seen.add(key)
                    out.append(a)
            return out
        if name == "fs:ddo":
            seq = self.eval(args[0], env)
            seen = set()
            nodes = []
            for item in seq:
                if item not in seen:
                    seen.add(item)
                    nodes.append(item)
            return sorted(nodes, key=_node_order_key)
        if name == "reverse":
            return list(reversed(self.eval(args[0], env)))
        if name == "subsequence":
            seq = self.eval(args[0], env)
            start = self._single_number(args[1], env)
            if start is None:
                return []
            b = xpath_round(float(start))
            if len(args) == 3:
                length = self._single_number(args[2], env)
                if length is None:
                    return []
                e = b + xpath_round(float(length))
            else:
                e = len(seq) + 1
            return [x for p, x in enumerate(seq, start=1) if b <= p < e]
        if name == "index-of":
            seq = self._atomize_seq(self.eval(args[0], env))
            needle = self._first_atom(self.eval(args[1], env))
            if needle is None:
                return []
            return [
                p for p, x in enumerate(seq, start=1) if _compare("eq", x, needle)
            ]
        if name == "insert-before":
            seq = self.eval(args[0], env)
            at = self._single_number(args[1], env)
            ins = self.eval(args[2], env)
            if at is None:
                return seq
            cut = max(xpath_round(float(at)) - 1, 0)
            cut = min(cut, len(seq))
            return seq[:cut] + ins + seq[cut:]
        if name == "remove":
            seq = self.eval(args[0], env)
            at = self._single_number(args[1], env)
            if at is None:
                return seq
            p = xpath_round(float(at))
            return [x for i, x in enumerate(seq, start=1) if i != p]
        if name == "deep-equal":
            s1 = self.eval(args[0], env)
            s2 = self.eval(args[1], env)
            if len(s1) != len(s2):
                return [False]
            return [all(self._deep_equal_item(x, y) for x, y in zip(s1, s2))]
        if name in ("zero-or-one", "exactly-one", "one-or-more"):
            return self.eval(args[0], env)
        if name == "position":
            if "fs:position" not in env:
                raise StaticError("fn:position() outside a predicate")
            return env["fs:position"]
        if name == "last":
            if "fs:last" not in env:
                raise StaticError("fn:last() outside a predicate")
            return env["fs:last"]
        if name == "name":
            seq = self.eval(args[0], env)
            if not seq:
                return [""]
            item = seq[0]
            if isinstance(item, BNode):
                nid = int(arena.name[item.row])
                return [arena.pool.value(nid) if nid >= 0 else ""]
            if isinstance(item, BAttr):
                return [arena.pool.value(int(arena.attr_name[item.aid]))]
            return [""]
        raise StaticError(f"unknown function {name}/{len(args)}", code="err:XPST0017")

    def _string_arg(self, e: ast.Expr, env) -> str:
        v = self._first_atom(self.eval(e, env))
        return _string_of_atom(v) if v is not None else ""

    def _deep_equal_item(self, x, y) -> bool:
        from repro.relational.evaluate import _deep_equal_nodes

        node_x = isinstance(x, (BNode, BAttr))
        node_y = isinstance(y, (BNode, BAttr))
        if node_x != node_y:
            return False
        if isinstance(x, BNode) and isinstance(y, BNode):
            return _deep_equal_nodes(self.arena, x.row, y.row)
        if isinstance(x, BAttr) and isinstance(y, BAttr):
            return bool(
                self.arena.attr_name[x.aid] == self.arena.attr_name[y.aid]
                and self.arena.attr_value[x.aid] == self.arena.attr_value[y.aid]
            )
        return _compare("eq", x, y)

    # ---------------------------------------------------------------- model
    def _atomize_seq(self, seq: list) -> list:
        out = []
        for item in seq:
            if isinstance(item, BNode):
                out.append(
                    UntypedAtomic(
                        self.arena.pool.value(self.arena.string_value_id(item.row))
                    )
                )
            elif isinstance(item, BAttr):
                out.append(
                    UntypedAtomic(
                        self.arena.pool.value(int(self.arena.attr_value[item.aid]))
                    )
                )
            else:
                out.append(item)
        return out

    def _ebv(self, seq: list) -> bool:
        if not seq:
            return False
        first = seq[0]
        if isinstance(first, (BNode, BAttr)):
            return True
        if isinstance(first, bool):
            return first
        if isinstance(first, _NUMERIC):
            return first != 0 and first == first
        if isinstance(first, str):
            return len(first) > 0
        return True


# --------------------------------------------------------------------------
# atomic helpers (mirroring repro.relational.items semantics)
# --------------------------------------------------------------------------
def _distinct_value_key(a):
    """fn:distinct-values equality key: numerics compare by value across
    integer/decimal/double (``1`` equals ``1.0``, NaN equals NaN),
    strings and untyped compare as strings, booleans separately."""
    if isinstance(a, bool):
        return ("b", a)
    if isinstance(a, str):  # includes UntypedAtomic
        return ("s", str(a))
    if isinstance(a, _NUMERIC):
        v = float(a)
        return ("n", "NaN") if v != v else ("n", v)
    return ("o", a)


def _is_exact(v) -> bool:
    """True for exact numerics (xs:integer / xs:decimal literals)."""
    return (isinstance(v, int) and not isinstance(v, bool)) or isinstance(
        v, XSDecimal
    )


def _to_number(v) -> float | int:
    if isinstance(v, bool):
        return int(v)
    if isinstance(v, _NUMERIC):
        return v
    try:
        text = str(v).strip()
        if text and ("." in text or "e" in text or "E" in text or text in ("INF", "-INF", "NaN")):
            return float(text)
        return int(text)
    except ValueError:
        return float("nan")


def _lexical(v) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, float):
        return format_double(v)
    return str(v)


def _string_of_atom(v) -> str:
    return _lexical(v)


def _compare(op: str, a, b) -> bool:
    numeric = isinstance(a, _NUMERIC) or isinstance(b, _NUMERIC) or isinstance(a, bool) or isinstance(b, bool)
    if numeric:
        x, y = _to_number(a), _to_number(b)
    else:
        x, y = _string_of_atom(a), _string_of_atom(b)
    if op == "eq":
        return x == y
    if op == "ne":
        return x != y
    if op == "lt":
        return x < y
    if op == "le":
        return x <= y
    if op == "gt":
        return x > y
    return x >= y


def _order_key(atom, descending: bool, empty_greatest: bool):
    """Sort key matching the compiler's order_columns semantics: an empty
    key sorts as ±infinity inside the numeric class, NaN as -infinity."""
    if atom is None:
        sentinel = float("inf") if empty_greatest else float("-inf")
        key = (1, sentinel, "")
        if descending:
            cls, num, s = key
            return (-cls, -num, _InvertedStr(s))
        return key
    if isinstance(atom, bool) or isinstance(atom, _NUMERIC):
        v = float(_to_number(atom))
        if v != v:
            v = float("-inf")
        key = (1, v, "")
    elif isinstance(atom, str):
        key = (2, 0.0, atom)
    else:
        key = (3, 0.0, str(atom))
    if descending:
        cls, num, s = key
        return (-cls, -num, _InvertedStr(s))
    return key


class _InvertedStr:
    """Wrapper giving strings inverted comparison order (descending)."""

    __slots__ = ("s",)

    def __init__(self, s: str):
        self.s = s

    def __lt__(self, other):
        return self.s > other.s

    def __eq__(self, other):
        return isinstance(other, _InvertedStr) and self.s == other.s


def _node_order_key(item):
    if isinstance(item, BNode):
        return (item.row, -1)
    if isinstance(item, BAttr):
        return (9 << 60, item.aid)
    raise DynamicError("node comparison on a non-node item")
