"""Exception hierarchy shared by every Pathfinder subsystem.

The hierarchy mirrors the stages of the stack: XML parsing, XQuery
parsing/static analysis, compilation, and dynamic (runtime) evaluation.
Where the W3C specifications assign an error code (``err:XPST0003`` and
friends), the code is carried in :attr:`PathfinderError.code` so tests can
assert on it without string-matching messages.
"""

from __future__ import annotations


class PathfinderError(Exception):
    """Base class for every error raised by the repro package.

    :param message: human readable description.
    :param code: W3C-style error code (``err:XPST0003``, ...) when one
        applies, otherwise ``None``.
    """

    def __init__(self, message: str, code: str | None = None):
        self.code = code
        if code:
            message = f"[{code}] {message}"
        super().__init__(message)


class XMLSyntaxError(PathfinderError):
    """Raised by :mod:`repro.xml.parser` on malformed XML input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class XQuerySyntaxError(PathfinderError):
    """Raised by the XQuery lexer/parser (spec code ``err:XPST0003``)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        super().__init__(
            f"{message} (line {line}, column {column})", code="err:XPST0003"
        )


class StaticError(PathfinderError):
    """Static (compile-time) XQuery error, e.g. an undefined variable."""


class TypeError_(PathfinderError):
    """XQuery type error (``err:XPTY****`` family)."""


class DynamicError(PathfinderError):
    """Runtime XQuery error, e.g. division by zero (``err:FOAR0001``)."""


class AlgebraError(PathfinderError):
    """An algebra plan is malformed or violates an operator precondition
    (e.g. the disjointness requirement of the union operator)."""


class NotSupportedError(PathfinderError):
    """The construct is valid XQuery but outside the supported dialect."""
