"""Pathfinder: XQuery — The Relational Way (VLDB 2005), reproduced.

A pure-Python reproduction of the Pathfinder XQuery compiler and its
MonetDB-style relational back-end: XML documents are shredded into the
XPath Accelerator encoding, XQuery is loop-lifted into a DAG of plain
relational operators, axis steps run as staircase joins, and the plan is
evaluated column-at-a-time on numpy.

Public entry points:

* :class:`repro.engine.PathfinderEngine` — load documents, run queries,
  explain plans.
* :class:`repro.baseline.interpreter.Interpreter` — the conventional
  nested-loop XQuery interpreter used as the X-Hive-shaped baseline.
* :mod:`repro.xmark` — the XMark benchmark generator and queries.
"""

from repro.engine import PathfinderEngine, QueryResult, ExplainReport

__version__ = "1.0.0"

__all__ = ["PathfinderEngine", "QueryResult", "ExplainReport", "__version__"]
