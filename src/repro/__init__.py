"""Pathfinder: XQuery — The Relational Way (VLDB 2005), reproduced.

A pure-Python reproduction of the Pathfinder XQuery compiler and its
MonetDB-style relational back-end: XML documents are shredded into the
XPath Accelerator encoding, XQuery is loop-lifted into a DAG of plain
relational operators, axis steps run as staircase joins, and the plan is
evaluated column-at-a-time on numpy.

Public entry points (layered API)::

    import repro

    session = repro.connect()                  # Database + Session
    session.database.load_document("d.xml", "<a><b/></a>")
    prepared = session.prepare(
        "declare variable $n external; /a/b[position() <= $n]"
    )
    result = prepared.execute({"n": 1})        # compile once, bind many

* :func:`repro.connect` / :class:`repro.api.Database` — documents,
  arena and the shared compile-once plan cache.
* :class:`repro.api.Session` — per-client settings, variable bindings
  and statistics; ``prepare()`` returns a
  :class:`repro.api.PreparedQuery`.
* :class:`repro.engine.PathfinderEngine` — the legacy monolithic API,
  kept as a thin shim over the layers above.
* :mod:`repro.server` — the HTTP serving subsystem (``python -m repro
  serve``): worker pool, deadlines, hot document management.
* :class:`repro.baseline.interpreter.Interpreter` — the conventional
  nested-loop XQuery interpreter used as the X-Hive-shaped baseline.
* :mod:`repro.xmark` — the XMark benchmark generator and queries.

The API layer is safe for concurrent use: one ``Database`` may be
shared by many sessions on many threads (see
:mod:`repro.api.concurrency` and ``docs/serving.md``).
"""

from repro.api import Database, PlanCache, PreparedQuery, Session, connect
from repro.engine import ExplainReport, PathfinderEngine, QueryResult

__version__ = "1.2.0"

__all__ = [
    "connect",
    "Database",
    "Session",
    "PreparedQuery",
    "PlanCache",
    "PathfinderEngine",
    "QueryResult",
    "ExplainReport",
    "__version__",
]
