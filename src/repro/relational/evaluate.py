"""The memoising, bulk evaluator for algebra plan DAGs.

Evaluation is column-at-a-time (MonetDB style): each operator consumes
whole input tables and produces a whole output table.  Plans are DAGs —
loop-lifting shares subplans heavily — so results are memoised per
operator node, and a shared subplan runs exactly once.

The evaluator needs an :class:`EvalContext` carrying the node arena (for
staircase joins, atomization and node construction) and the string pool.
An optional ``trace`` dict collects every operator's result table, which
powers the demonstrator's "reveal the result computed for any
subexpression" hook (paper Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.encoding.arena import NodeArena
from repro.errors import AlgebraError, DynamicError, TypeError_
from repro.relational import algebra as alg
from repro.relational import items as it
from repro.relational.items import (
    ItemColumn,
    K_ATTR,
    K_BOOL,
    K_DBL,
    K_DEC,
    K_INT,
    K_NODE,
    K_QNAME,
    K_STR,
    K_UNTYPED,
)
from repro.relational.kernels import (
    combine_keys,
    in_set,
    join_indices,
    row_number_per_group,
)
from repro.relational.staircase import naive_step, staircase_step, twig_match
from repro.relational.table import Column, Table


@dataclass
class EvalContext:
    """Everything an algebra plan needs at runtime.

    ``params`` carries the external-variable bindings of this execution
    (prepared-query parameters): name → Python scalar or sequence.  The
    compiled plan references them through ``ParamTable`` leaves, so the
    same plan DAG can be evaluated many times with different bindings.
    """

    arena: NodeArena
    documents: dict[str, int] = field(default_factory=dict)
    trace: dict[int, Table] | None = None
    use_staircase: bool = True
    step_counter: list[int] = field(default_factory=lambda: [0])
    params: dict[str, object] = field(default_factory=dict)

    @property
    def pool(self):
        """The arena's string pool (item encoding/decoding)."""
        return self.arena.pool


def evaluate(root: alg.Op, ctx: EvalContext) -> Table:
    """Evaluate a plan DAG bottom-up with memoisation."""
    memo: dict[int, Table] = {}
    # iterative post-order to survive very deep plans
    stack: list[tuple[alg.Op, bool]] = [(root, False)]
    while stack:
        node, ready = stack.pop()
        if id(node) in memo:
            continue
        if not ready:
            stack.append((node, True))
            for child in node.children:
                if id(child) not in memo:
                    stack.append((child, False))
            continue
        inputs = [memo[id(c)] for c in node.children]
        result = _dispatch(node, inputs, ctx)
        memo[id(node)] = result
        if ctx.trace is not None:
            ctx.trace[id(node)] = result
    return memo[id(root)]


# --------------------------------------------------------------------------
# operator implementations
# --------------------------------------------------------------------------
def _dispatch(node: alg.Op, inputs: list[Table], ctx: EvalContext) -> Table:
    handler = _HANDLERS.get(type(node))
    if handler is None:
        raise AlgebraError(f"no evaluator for {type(node).__name__}")
    return handler(node, inputs, ctx)


def _eval_lit(node: alg.Lit, inputs, ctx) -> Table:
    cols: dict[str, Column] = {}
    for i, name in enumerate(node.schema):
        values = [row[i] for row in node.rows]
        if name in node.item_cols:
            cols[name] = ItemColumn.from_values(values, ctx.pool)
        else:
            cols[name] = np.asarray(values, dtype=np.int64) if values else np.empty(0, dtype=np.int64)
    return Table(cols)


def _eval_project(node: alg.Project, inputs, ctx) -> Table:
    return inputs[0].project(node.cols)


def _operand_column(table: Table, operand, n: int, ctx) -> Column:
    tag, v = operand
    if tag == "col":
        return table.col(v)
    # constant: broadcast — plain ints become numeric columns, everything
    # else becomes a constant item column
    if isinstance(v, (int, np.integer)) and not isinstance(v, bool):
        return np.full(n, int(v), dtype=np.int64)
    kind, payload = it.encode_item(v, ctx.pool)
    return ItemColumn(np.full(n, kind, dtype=np.uint8), np.full(n, payload, dtype=np.int64))


def _compare_columns(op: str, lhs: Column, rhs: Column, ctx) -> np.ndarray:
    if isinstance(lhs, ItemColumn) or isinstance(rhs, ItemColumn):
        if not isinstance(lhs, ItemColumn):
            lhs = ItemColumn.from_ints(lhs)
        if not isinstance(rhs, ItemColumn):
            rhs = ItemColumn.from_ints(rhs)
        return it.compare(op, lhs, rhs, ctx.pool)
    return it._cmp_arrays(op, lhs, rhs)


def _eval_select(node: alg.Select, inputs, ctx) -> Table:
    table = inputs[0]
    n = table.num_rows
    lhs = _operand_column(table, node.lhs, n, ctx)
    rhs = _operand_column(table, node.rhs, n, ctx)
    mask = _compare_columns(node.op, lhs, rhs, ctx)
    return table.take(mask)


def _eval_union(node: alg.Union, inputs, ctx) -> Table:
    return Table.concat(inputs)


def _key_arrays(table: Table, keys: tuple[str, ...]) -> list[np.ndarray]:
    out: list[np.ndarray] = []
    for k in keys:
        col = table.col(k)
        if isinstance(col, ItemColumn):
            kinds, payload = it.join_keys(col)
            out.append(kinds.astype(np.int64))
            out.append(payload)
        else:
            out.append(col)
    return out


def _combined_two_sided(
    left: Table, right: Table, lkeys: tuple[str, ...], rkeys: tuple[str, ...]
) -> tuple[np.ndarray, np.ndarray]:
    la = _key_arrays(left, lkeys)
    ra = _key_arrays(right, rkeys)
    if len(la) != len(ra):
        raise AlgebraError("join key item-ness mismatch between sides")
    nl = left.num_rows
    combined = combine_keys([np.concatenate([a, b]) for a, b in zip(la, ra)])
    return combined[:nl], combined[nl:]


def _eval_difference(node: alg.Difference, inputs, ctx) -> Table:
    left, right = inputs
    keys = node.keys or left.schema
    lk, rk = _combined_two_sided(left, right, tuple(keys), tuple(keys))
    mask = ~in_set(lk, rk)
    return left.take(mask)


def _eval_distinct(node: alg.Distinct, inputs, ctx) -> Table:
    table = inputs[0]
    keys = node.keys or table.schema
    arrays = _key_arrays(table, tuple(keys))
    combined = combine_keys(arrays)
    if node.order_col is not None and table.num_rows:
        # keep the duplicate with the smallest order value (sequence order)
        order = np.argsort(table.num(node.order_col), kind="stable")
        _, first_in_order = np.unique(combined[order], return_index=True)
        first_idx = order[first_in_order]
    else:
        _, first_idx = np.unique(combined, return_index=True)
    first_idx.sort()
    return table.take(first_idx)


def _merged_table(left: Table, right: Table, li: np.ndarray, ri: np.ndarray) -> Table:
    overlap = set(left.schema) & set(right.schema)
    if overlap:
        raise AlgebraError(f"join/cross output schema collision: {sorted(overlap)}")
    cols: dict[str, Column] = {}
    lt = left.take(li)
    rt = right.take(ri)
    cols.update(lt.columns)
    cols.update(rt.columns)
    return Table(cols)


def _eval_join(node: alg.Join, inputs, ctx) -> Table:
    left, right = inputs
    if left.num_rows == 0 or right.num_rows == 0:
        # empty-intermediate early termination: equi-join with an empty
        # side is empty — skip key combination and the hash join
        empty = np.empty(0, dtype=np.int64)
        return _merged_table(left, right, empty, empty)
    lkeys = tuple(l for l, _ in node.keys)
    rkeys = tuple(r for _, r in node.keys)
    lk, rk = _combined_two_sided(left, right, lkeys, rkeys)
    li, ri = join_indices(lk, rk)
    return _merged_table(left, right, li, ri)


def _eval_semijoin(node: alg.SemiJoin, inputs, ctx) -> Table:
    left, right = inputs
    lkeys = tuple(l for l, _ in node.keys)
    rkeys = tuple(r for _, r in node.keys)
    lk, rk = _combined_two_sided(left, right, lkeys, rkeys)
    return left.take(in_set(lk, rk))


def _eval_cross(node: alg.Cross, inputs, ctx) -> Table:
    left, right = inputs
    nl, nr = left.num_rows, right.num_rows
    li = np.repeat(np.arange(nl, dtype=np.int64), nr)
    ri = np.tile(np.arange(nr, dtype=np.int64), nl)
    return _merged_table(left, right, li, ri)


def _order_keys_for(table: Table, order, ctx) -> list[np.ndarray]:
    keys: list[np.ndarray] = []
    for name, descending in order:
        col = table.col(name)
        if isinstance(col, ItemColumn):
            cls, val = it.order_columns(col, ctx.pool)
            if descending:
                cls, val = -cls, -val
            keys.append(cls)
            keys.append(val)
        else:
            keys.append(-col if descending else col)
    return keys


def _eval_rownum(node: alg.RowNum, inputs, ctx) -> Table:
    table = inputs[0]
    n = table.num_rows
    keys = _order_keys_for(table, node.order, ctx)
    if node.group is not None:
        group = table.num(node.group)
        lex_keys = keys[::-1] + [group]  # np.lexsort: last key is primary
        order_idx = np.lexsort(lex_keys) if n else np.empty(0, dtype=np.int64)
        ranks_sorted = row_number_per_group(group[order_idx])
    else:
        if keys:
            order_idx = np.lexsort(keys[::-1]) if n else np.empty(0, dtype=np.int64)
        else:
            order_idx = np.arange(n, dtype=np.int64)
        ranks_sorted = np.arange(1, n + 1, dtype=np.int64)
    out = np.empty(n, dtype=np.int64)
    out[order_idx] = ranks_sorted
    return table.with_column(node.target, out)


def _eval_map(node: alg.Map, inputs, ctx) -> Table:
    table = inputs[0]
    n = table.num_rows
    fn = _MAP_FNS.get(node.fn)
    if fn is None:
        raise AlgebraError(f"unknown map function {node.fn!r}")
    args = [_operand_column(table, a, n, ctx) for a in node.args]
    return table.with_column(node.target, fn(ctx, *args))


def _eval_aggr(node: alg.Aggr, inputs, ctx) -> Table:
    table = inputs[0]
    n = table.num_rows
    if node.group is None:
        groups = np.zeros(n, dtype=np.int64)
    else:
        groups = table.num(node.group)
    if node.order_col is not None:
        order_idx = np.lexsort((table.num(node.order_col), groups))
    else:
        order_idx = np.argsort(groups, kind="stable")
    g_sorted = groups[order_idx]
    starts = np.nonzero(
        np.concatenate(([True], g_sorted[1:] != g_sorted[:-1]))
    )[0] if n else np.empty(0, dtype=np.int64)
    group_vals = g_sorted[starts] if n else np.empty(0, dtype=np.int64)
    counts = np.diff(np.concatenate((starts, [n]))) if n else np.empty(0, dtype=np.int64)

    if node.kind == "count":
        agg_col: Column = counts.astype(np.int64)
    elif node.kind in ("sum", "avg", "min", "max"):
        col = table.col(node.arg)
        if not isinstance(col, ItemColumn):
            col = ItemColumn.from_ints(col)
        col = col.take(order_idx)
        stringish = np.isin(col.kinds, np.array([K_STR, K_QNAME], dtype=np.uint8))
        if len(col) and stringish.any():
            agg_col = _string_aggregate(node, col, stringish, starts, ctx)
        else:
            if col.is_homogeneous(K_INT) and node.kind in ("sum", "min", "max"):
                vals = col.data.astype(np.float64)
                integral = True
            else:
                vals = it.to_double(col, ctx.pool)
                integral = False
            if len(vals) == 0:
                reduced = np.empty(0, dtype=np.float64)
            elif node.kind == "sum":
                reduced = np.add.reduceat(vals, starts)
            elif node.kind == "min":
                reduced = np.minimum.reduceat(vals, starts)
            elif node.kind == "max":
                reduced = np.maximum.reduceat(vals, starts)
            else:  # avg
                reduced = np.add.reduceat(vals, starts) / counts
            if integral:
                agg_col = ItemColumn.from_ints(reduced.astype(np.int64))
            else:
                agg_col = ItemColumn.from_doubles(reduced)
    elif node.kind == "str_join":
        col = table.item(node.arg).take(order_idx)
        sids = it.to_string_ids(col, ctx.pool)
        pool = ctx.pool
        pieces = [pool.value(int(s)) for s in sids]
        joined: list[str] = []
        for i, s in enumerate(starts):
            e = n if i + 1 == len(starts) else starts[i + 1]
            joined.append(node.sep.join(pieces[s:e]))
        agg_col = ItemColumn.from_pooled(
            K_STR, np.asarray([pool.intern(x) for x in joined], dtype=np.int64)
        )
    else:
        raise AlgebraError(f"unknown aggregate {node.kind!r}")

    if node.group is None:
        if n == 0:
            # count over empty input still yields one row (value 0);
            # other aggregates yield no row (the compiler fills defaults)
            if node.kind == "count":
                return Table({node.target: np.asarray([0], dtype=np.int64)})
            empty: Column
            if isinstance(agg_col, np.ndarray):
                empty = np.empty(0, dtype=np.int64)
            else:
                empty = ItemColumn.empty()
            return Table({node.target: empty})
        return Table({node.target: agg_col})
    return Table({node.group: group_vals, node.target: agg_col})


def _string_aggregate(node, col, stringish, starts, ctx) -> ItemColumn:
    """Aggregation when string items are present, judged **per group**:
    ``fn:min``/``fn:max`` over an all-string group compare by codepoint
    order (F&O 15.4); a group mixing strings and numbers — and every
    ``fn:sum``/``fn:avg`` group containing a string — is ``err:FORG0006``.
    Groups without strings keep the numeric semantics."""
    n = len(col)
    if node.kind not in ("min", "max"):
        raise DynamicError(
            f"fn:{node.kind} over non-numeric items", code="err:FORG0006"
        )
    pool = ctx.pool
    pick = min if node.kind == "min" else max
    kinds_out = np.empty(len(starts), dtype=np.uint8)
    data_out = np.empty(len(starts), dtype=np.int64)
    for i, s in enumerate(starts):
        e = starts[i + 1] if i + 1 < len(starts) else n
        group = col.take(slice(s, e))
        group_str = stringish[s:e]
        if group_str.all():
            sid = pool.intern(pick(pool.value(int(x)) for x in group.data))
            kinds_out[i], data_out[i] = K_STR, sid
        elif group_str.any():
            raise DynamicError(
                f"fn:{node.kind} over mixed string/numeric items",
                code="err:FORG0006",
            )
        elif group.is_homogeneous(K_INT):
            value = int(pick(group.data))
            kinds_out[i], data_out[i] = K_INT, value
        else:
            value = float(pick(it.to_double(group, pool)))
            kinds_out[i], data_out[i] = K_DBL, int(it._bits(np.float64(value))[()])
    return ItemColumn(kinds_out, data_out)


def _eval_step(node: alg.StepJoin, inputs, ctx) -> Table:
    table = inputs[0]
    iters = table.num(node.iter_col)
    nodes = _ctx_nodes(table.col(node.item_col))
    kind = K_ATTR if node.axis.value == "attribute" else K_NODE
    if len(nodes) == 0:
        # empty-intermediate early termination: no context nodes means
        # no result — skip the axis kernel (this is greedy mode's
        # runtime safety net for mis-ordered plans, and a free win for
        # every mode)
        return Table(
            {node.iter_col: iters, node.item_col: ItemColumn.of_kind(kind, nodes)}
        )
    step = staircase_step if ctx.use_staircase else naive_step
    ctx.step_counter[0] += 1
    out_iter, rows = step(ctx.arena, iters, nodes, node.axis, node.test)
    return Table(
        {node.iter_col: out_iter, node.item_col: ItemColumn.of_kind(kind, rows)}
    )


def _ctx_nodes(item: Column) -> np.ndarray:
    """Context-node rows of a step input column (type-checked)."""
    if isinstance(item, ItemColumn):
        if len(item) and not np.all(item.kinds == K_NODE):
            if np.any(item.kinds == K_ATTR):
                raise DynamicError(
                    "axis steps from attribute nodes are not supported"
                )
            raise DynamicError(
                "path step applied to a non-node item", code="err:XPTY0019"
            )
        return item.data
    return item


def _eval_twig(node: alg.StructuralTwigJoin, inputs, ctx) -> Table:
    table = inputs[0]
    iters = table.num(node.iter_col)
    nodes = _ctx_nodes(table.col(node.item_col))
    if len(nodes) == 0:
        # empty-intermediate early termination, as in _eval_step
        return Table(
            {node.iter_col: iters, node.item_col: ItemColumn.of_kind(K_NODE, nodes)}
        )
    ctx.step_counter[0] += 1
    if ctx.use_staircase:
        out_iter, rows = twig_match(ctx.arena, iters, nodes, node.steps)
    else:
        # tree-unaware mode chains the naive baseline pairwise, so the
        # staircase/naive differential keeps covering the twig operator
        out_iter, rows = iters, nodes
        for axis, test in node.steps:
            out_iter, rows = naive_step(ctx.arena, out_iter, rows, axis, test)
    return Table(
        {node.iter_col: out_iter, node.item_col: ItemColumn.of_kind(K_NODE, rows)}
    )


def _eval_atomize(node: alg.Atomize, inputs, ctx) -> Table:
    table = inputs[0]
    col = table.item(node.arg)
    kinds = col.kinds.copy()
    data = col.data.copy()
    arena = ctx.arena
    m = col.kinds == K_NODE
    if m.any():
        data[m] = arena.string_value_ids(col.data[m])
        kinds[m] = K_UNTYPED
    m = col.kinds == K_ATTR
    if m.any():
        data[m] = arena.attr_value[col.data[m]]
        kinds[m] = K_UNTYPED
    return table.with_column(node.target, ItemColumn(kinds, data))


def _content_spec(arena, pool, kinds, data) -> list[tuple[str, int]]:
    """Turn one iteration's content items into arena constructor entries,
    merging runs of adjacent atomic items into single text entries."""
    spec: list[tuple[str, int]] = []
    atom_run: list[str] = []

    def flush():
        if atom_run:
            spec.append(("text", pool.intern(" ".join(atom_run))))
            atom_run.clear()

    for kind, payload in zip(kinds, data):
        kind = int(kind)
        payload = int(payload)
        if kind == K_NODE:
            flush()
            spec.append(("copy", payload))
        elif kind == K_ATTR:
            flush()
            spec.append(("attr", payload))
        else:
            atom_run.append(it.lexical(kind, payload, pool))
    flush()
    return spec


def _eval_elem(node: alg.ElemConstr, inputs, ctx) -> Table:
    names, content = inputs
    arena, pool = ctx.arena, ctx.pool
    n_iter = names.num("iter")
    n_item = names.item("item")
    c_iter = content.num("iter")
    c_kinds = content.item("item").kinds
    c_data = content.item("item").data
    if "pos" in content.columns:
        order = np.lexsort((content.num("pos"), c_iter))
    else:
        order = np.argsort(c_iter, kind="stable")
    c_iter, c_kinds, c_data = c_iter[order], c_kinds[order], c_data[order]
    out_nodes = np.empty(len(n_iter), dtype=np.int64)
    lo = np.searchsorted(c_iter, n_iter, side="left")
    hi = np.searchsorted(c_iter, n_iter, side="right")
    name_sids = it.to_string_ids(n_item, pool)
    for i in range(len(n_iter)):
        spec = _content_spec(arena, pool, c_kinds[lo[i]:hi[i]], c_data[lo[i]:hi[i]])
        out_nodes[i] = arena.new_element(int(name_sids[i]), [], spec)
    return Table({"iter": n_iter, "item": ItemColumn.from_nodes(out_nodes)})


def _eval_text(node: alg.TextConstr, inputs, ctx) -> Table:
    content = inputs[0]
    arena, pool = ctx.arena, ctx.pool
    iters = content.num("iter")
    sids = it.to_string_ids(content.item("item"), pool)
    out = np.empty(len(iters), dtype=np.int64)
    for i, sid in enumerate(sids):
        out[i] = arena.new_text_node(int(sid))
    return Table({"iter": iters, "item": ItemColumn.from_nodes(out)})


def _eval_attr(node: alg.AttrConstr, inputs, ctx) -> Table:
    names, values = inputs
    arena, pool = ctx.arena, ctx.pool
    n_iter = names.num("iter")
    name_sids = it.to_string_ids(names.item("item"), pool)
    v_iter = values.num("iter")
    value_sids = it.to_string_ids(values.item("item"), pool)
    by_iter = {int(i): int(s) for i, s in zip(v_iter, value_sids)}
    empty = pool.intern("")
    out = np.empty(len(n_iter), dtype=np.int64)
    for i in range(len(n_iter)):
        sid = by_iter.get(int(n_iter[i]), empty)
        out[i] = arena.new_attribute(int(name_sids[i]), sid)
    return Table({"iter": n_iter, "item": ItemColumn.of_kind(K_ATTR, out)})


def _eval_genrange(node: alg.GenRange, inputs, ctx) -> Table:
    table = inputs[0]
    iters = table.num("iter")
    lo_col = table.col(node.lo_col)
    hi_col = table.col(node.hi_col)
    lo = lo_col.data if isinstance(lo_col, ItemColumn) else lo_col
    hi = hi_col.data if isinstance(hi_col, ItemColumn) else hi_col
    from repro.relational.kernels import multi_arange

    counts = np.maximum(hi + 1 - lo, 0)
    values = multi_arange(lo, hi + 1)
    out_iter = np.repeat(iters, counts)
    pos = row_number_per_group(out_iter) if len(out_iter) else np.empty(0, dtype=np.int64)
    return Table(
        {"iter": out_iter, "pos": pos, "item": ItemColumn.from_ints(values)}
    )


def _eval_param(node: alg.ParamTable, inputs, ctx) -> Table:
    if node.name not in ctx.params:
        raise DynamicError(
            f"no binding for external variable ${node.name}",
            code="err:XPDY0002",
        )
    value = ctx.params[node.name]
    if isinstance(value, (list, tuple)):
        values = list(value)
    else:
        values = [value]
    col = ItemColumn.from_values(values, ctx.pool)
    if node.type_name is not None:
        # unknown type names are rejected at compile time (compile_module)
        allowed = it.PARAM_TYPE_KINDS[node.type_name]
        bad = ~np.isin(col.kinds, np.asarray(allowed, dtype=np.uint8))
        if bad.any():
            i = int(np.nonzero(bad)[0][0])
            raise TypeError_(
                f"binding for ${node.name} does not match declared type "
                f"{node.type_name}: item {i + 1} is {values[i]!r}",
                code="err:XPTY0004",
            )
    pos = np.arange(1, len(values) + 1, dtype=np.int64)
    return Table({"pos": pos, "item": col})


def _eval_docroot(node: alg.DocRoot, inputs, ctx) -> Table:
    row = ctx.documents.get(node.uri)
    if row is None:
        raise DynamicError(f"document {node.uri!r} is not loaded", code="err:FODC0002")
    # the per-query paging choke point: fault the document's fragment in
    # before any step kernel touches its rows
    ctx.arena.ensure_rows((row,))
    return Table(
        {
            "iter": np.asarray([1], dtype=np.int64),
            "pos": np.asarray([1], dtype=np.int64),
            "item": ItemColumn.from_nodes([row]),
        }
    )


_HANDLERS: dict[type, Callable] = {
    alg.Lit: _eval_lit,
    alg.Project: _eval_project,
    alg.Select: _eval_select,
    alg.Union: _eval_union,
    alg.Difference: _eval_difference,
    alg.Distinct: _eval_distinct,
    alg.Join: _eval_join,
    alg.SemiJoin: _eval_semijoin,
    alg.Cross: _eval_cross,
    alg.RowNum: _eval_rownum,
    alg.Map: _eval_map,
    alg.Aggr: _eval_aggr,
    alg.StepJoin: _eval_step,
    alg.StructuralTwigJoin: _eval_twig,
    alg.Atomize: _eval_atomize,
    alg.ElemConstr: _eval_elem,
    alg.TextConstr: _eval_text,
    alg.AttrConstr: _eval_attr,
    alg.DocRoot: _eval_docroot,
    alg.GenRange: _eval_genrange,
    alg.ParamTable: _eval_param,
}


# --------------------------------------------------------------------------
# map functions (the ⊛ operator repertoire)
# --------------------------------------------------------------------------
def _as_item(col: Column) -> ItemColumn:
    return col if isinstance(col, ItemColumn) else ItemColumn.from_ints(col)


def _fn_arith(op):
    def fn(ctx, a, b):
        return it.arithmetic(op, _as_item(a), _as_item(b), ctx.pool)

    return fn


def _fn_cmp(op):
    def fn(ctx, a, b):
        return ItemColumn.from_bools(
            _compare_columns(op, a, b, ctx)
        )

    return fn


def _fn_neg(ctx, a):
    return it.negate(_as_item(a), ctx.pool)


def _fn_and(ctx, a, b):
    return ItemColumn.from_bools((_as_item(a).data != 0) & (_as_item(b).data != 0))


def _fn_or(ctx, a, b):
    return ItemColumn.from_bools((_as_item(a).data != 0) | (_as_item(b).data != 0))


def _fn_not(ctx, a):
    return ItemColumn.from_bools(_as_item(a).data == 0)


def _fn_ebv(ctx, a):
    return ItemColumn.from_bools(it.ebv(_as_item(a), ctx.pool))


def _fn_is_node(ctx, a):
    kinds = _as_item(a).kinds
    return ItemColumn.from_bools((kinds == K_NODE) | (kinds == K_ATTR))


def _fn_kind_code(ctx, a):
    return _as_item(a).kinds.astype(np.int64)


def _fn_is_numeric(ctx, a):
    kinds = _as_item(a).kinds
    return ItemColumn.from_bools(
        (kinds == K_INT) | (kinds == K_DBL) | (kinds == K_DEC)
    )


def _fn_node_kind(ctx, a):
    """Arena node kind of node items (-1 for atomics, -2 for attributes)."""
    a = _as_item(a)
    out = np.full(len(a), -1, dtype=np.int64)
    m = a.kinds == K_NODE
    if m.any():
        out[m] = ctx.arena.kind[a.data[m]]
    out[a.kinds == K_ATTR] = -2
    return out


def _fn_root_of(ctx, a):
    a = _as_item(a)
    if len(a) and not np.all(a.kinds == K_NODE):
        raise DynamicError("fn:root requires nodes", code="err:XPTY0004")
    return ItemColumn.from_nodes(ctx.arena.root_of(a.data))


def _fn_cast_dbl(ctx, a):
    return ItemColumn.from_doubles(it.to_double(_as_item(a), ctx.pool))


def _fn_cast_dec(ctx, a):
    return ItemColumn.from_decimals(it.to_double(_as_item(a), ctx.pool))


#: kinds whose items compare numerically in fn:distinct-values
_DV_NUMERIC = np.array([K_INT, K_DBL, K_DEC], dtype=np.uint8)
#: kinds whose items compare as strings in fn:distinct-values
_DV_STRINGS = np.array([K_STR, K_UNTYPED, K_QNAME], dtype=np.uint8)


def _fn_atom_cls(ctx, a):
    """fn:distinct-values equality class: numerics compare with numerics
    (``1 eq 1.0``), strings/untyped with each other, booleans apart."""
    a = _as_item(a)
    out = np.full(len(a), 3, dtype=np.int64)
    out[np.isin(a.kinds, _DV_NUMERIC)] = 0
    out[np.isin(a.kinds, _DV_STRINGS)] = 1
    out[a.kinds == K_BOOL] = 2
    return out


def _fn_atom_key(ctx, a):
    """fn:distinct-values equality key within the class: numerics compare
    by value (canonical double bits, one NaN), strings by surrogate."""
    a = _as_item(a)
    out = a.data.astype(np.int64).copy()
    numeric = np.isin(a.kinds, _DV_NUMERIC)
    if numeric.any():
        v = it.to_double(a.take(numeric), ctx.pool)
        # canonical NaN bits: distinct-values treats NaN as equal to NaN
        v = np.where(np.isnan(v), np.float64("nan"), v)
        out[numeric] = it._bits(v)
    return out


def _fn_cast_int(ctx, a):
    vals = it.to_double(_as_item(a), ctx.pool)
    if np.any(np.isnan(vals)):
        raise DynamicError("cannot cast to xs:integer", code="err:FORG0001")
    return ItemColumn.from_ints(np.trunc(vals).astype(np.int64))


def _fn_cast_str(ctx, a):
    return ItemColumn.from_pooled(K_STR, it.to_string_ids(_as_item(a), ctx.pool))


def _fn_node_eq(ctx, a, b):
    a, b = _as_item(a), _as_item(b)
    return ItemColumn.from_bools((a.data == b.data) & (a.kinds == b.kinds))


def _fn_node_before(ctx, a, b):
    return ItemColumn.from_bools(_as_item(a).data < _as_item(b).data)


def _fn_node_after(ctx, a, b):
    return ItemColumn.from_bools(_as_item(a).data > _as_item(b).data)


def _str_pairs(ctx, a, b):
    pool = ctx.pool
    sa = it.to_string_ids(_as_item(a), pool)
    sb = it.to_string_ids(_as_item(b), pool)
    return (
        [pool.value(int(x)) for x in sa],
        [pool.value(int(x)) for x in sb],
    )


def _fn_contains(ctx, a, b):
    xs, ys = _str_pairs(ctx, a, b)
    return ItemColumn.from_bools([y in x for x, y in zip(xs, ys)])


def _fn_starts_with(ctx, a, b):
    xs, ys = _str_pairs(ctx, a, b)
    return ItemColumn.from_bools([x.startswith(y) for x, y in zip(xs, ys)])


def _fn_string_length(ctx, a):
    pool = ctx.pool
    sa = it.to_string_ids(_as_item(a), pool)
    return ItemColumn.from_ints([len(pool.value(int(x))) for x in sa])


def _fn_concat(ctx, a, b):
    xs, ys = _str_pairs(ctx, a, b)
    pool = ctx.pool
    return ItemColumn.from_pooled(
        K_STR, [pool.intern(x + y) for x, y in zip(xs, ys)]
    )


def _fn_ends_with(ctx, a, b):
    xs, ys = _str_pairs(ctx, a, b)
    return ItemColumn.from_bools([x.endswith(y) for x, y in zip(xs, ys)])


def _fn_substring_before(ctx, a, b):
    xs, ys = _str_pairs(ctx, a, b)
    pool = ctx.pool
    return ItemColumn.from_pooled(
        K_STR,
        [pool.intern(x.partition(y)[0] if y and y in x else "") for x, y in zip(xs, ys)],
    )


def _fn_substring_after(ctx, a, b):
    xs, ys = _str_pairs(ctx, a, b)
    pool = ctx.pool
    return ItemColumn.from_pooled(
        K_STR,
        [pool.intern(x.partition(y)[2] if y and y in x else "") for x, y in zip(xs, ys)],
    )


def _decode_strings(ctx, a):
    pool = ctx.pool
    sa = it.to_string_ids(_as_item(a), pool)
    return [pool.value(int(x)) for x in sa]


def _str_map_fn(transform):
    def fn(ctx, a):
        pool = ctx.pool
        return ItemColumn.from_pooled(
            K_STR, [pool.intern(transform(s)) for s in _decode_strings(ctx, a)]
        )

    return fn


def _fn_substring(ctx, a, start, length=None):
    """XPath substring: 1-based start, rounding per the F&O spec (NaN or
    infinite positions select no characters instead of crashing)."""
    xs = _decode_strings(ctx, a)
    starts = it.to_double(_as_item(start), ctx.pool)
    lengths = None if length is None else it.to_double(_as_item(length), ctx.pool)
    pool = ctx.pool
    out = []
    for i, s in enumerate(xs):
        n = None if lengths is None else float(lengths[i])
        out.append(pool.intern(it.xpath_substring(s, float(starts[i]), n)))
    return ItemColumn.from_pooled(K_STR, out)


def _round_fn(kind):
    def fn(ctx, a):
        item = _as_item(a)
        if item.is_homogeneous(it.K_INT):
            data = np.abs(item.data) if kind == "abs" else item.data
            return ItemColumn.from_ints(data)
        v = it.to_double(item, ctx.pool)
        if kind == "floor":
            r = np.floor(v)
        elif kind == "ceiling":
            r = np.ceil(v)
        elif kind == "round":
            r = np.floor(v + 0.5)  # XPath rounds .5 up
        else:  # abs
            r = np.abs(v)
        if item.is_homogeneous(K_DEC):
            return ItemColumn.from_decimals(r)
        return ItemColumn.from_doubles(r)

    return fn


def _fn_elem_name_is(ctx, a, b):
    """Is item a an element named like (string column/const) b?"""
    a = _as_item(a)
    pool = ctx.pool
    sb = it.to_string_ids(_as_item(b), pool)
    arena = ctx.arena
    out = np.zeros(len(a), dtype=bool)
    m = a.kinds == K_NODE
    if m.any():
        rows = a.data[m]
        from repro.encoding.arena import NK_ELEM

        out_m = (arena.kind[rows] == NK_ELEM) & (arena.name[rows] == sb[m])
        out[m] = out_m
    return ItemColumn.from_bools(out)


def _deep_equal_nodes(arena, x: int, y: int) -> bool:
    """Structural equality of two subtrees (fn:deep-equal node case)."""
    if arena.kind[x] != arena.kind[y]:
        return False
    from repro.encoding.arena import NK_COMMENT, NK_ELEM, NK_PI, NK_TEXT

    kind = int(arena.kind[x])
    if kind in (NK_TEXT, NK_COMMENT):
        return arena.value[x] == arena.value[y]
    if kind == NK_PI:
        return arena.name[x] == arena.name[y] and arena.value[x] == arena.value[y]
    if kind == NK_ELEM and arena.name[x] != arena.name[y]:
        return False
    # attributes: same name/value multiset
    ox, lx, hx = arena.attr_ranges(np.asarray([x], dtype=np.int64))
    oy, ly, hy = arena.attr_ranges(np.asarray([y], dtype=np.int64))
    ax = sorted(
        (int(arena.attr_name[j]), int(arena.attr_value[j]))
        for j in ox[int(lx[0]) : int(hx[0])]
    )
    ay = sorted(
        (int(arena.attr_name[j]), int(arena.attr_value[j]))
        for j in oy[int(ly[0]) : int(hy[0])]
    )
    if ax != ay:
        return False
    # children pairwise (comments/PIs included for simplicity)
    ox, lx, hx = arena.children_ranges(np.asarray([x], dtype=np.int64))
    oy, ly, hy = arena.children_ranges(np.asarray([y], dtype=np.int64))
    cx = sorted(int(r) for r in ox[int(lx[0]) : int(hx[0])])
    cy = sorted(int(r) for r in oy[int(ly[0]) : int(hy[0])])
    if len(cx) != len(cy):
        return False
    return all(_deep_equal_nodes(arena, i, j) for i, j in zip(cx, cy))


def _fn_deep_equal(ctx, a, b):
    a, b = _as_item(a), _as_item(b)
    arena, pool = ctx.arena, ctx.pool
    out = np.zeros(len(a), dtype=bool)
    for i in range(len(a)):
        ka, kb = int(a.kinds[i]), int(b.kinds[i])
        va, vb = int(a.data[i]), int(b.data[i])
        node_a = ka in (K_NODE, K_ATTR)
        node_b = kb in (K_NODE, K_ATTR)
        if node_a != node_b:
            out[i] = False
        elif ka == K_NODE and kb == K_NODE:
            out[i] = _deep_equal_nodes(arena, va, vb)
        elif ka == K_ATTR and kb == K_ATTR:
            out[i] = (
                arena.attr_name[va] == arena.attr_name[vb]
                and arena.attr_value[va] == arena.attr_value[vb]
            )
        else:
            out[i] = bool(
                it.compare("eq", a.take([i]), b.take([i]), pool)[0]
            )
    return ItemColumn.from_bools(out)


def _fn_node_name(ctx, a):
    a = _as_item(a)
    arena, pool = ctx.arena, ctx.pool
    out = np.empty(len(a), dtype=np.int64)
    empty = pool.intern("")
    for i in range(len(a)):
        kind, payload = int(a.kinds[i]), int(a.data[i])
        if kind == K_NODE:
            nid = int(arena.name[payload])
            out[i] = nid if nid >= 0 else empty
        elif kind == K_ATTR:
            out[i] = int(arena.attr_name[payload])
        else:
            out[i] = empty
    return ItemColumn.from_pooled(K_STR, out)


_MAP_FNS: dict[str, Callable] = {
    "add": _fn_arith("add"),
    "sub": _fn_arith("sub"),
    "mul": _fn_arith("mul"),
    "div": _fn_arith("div"),
    "idiv": _fn_arith("idiv"),
    "mod": _fn_arith("mod"),
    "neg": _fn_neg,
    "eq": _fn_cmp("eq"),
    "ne": _fn_cmp("ne"),
    "lt": _fn_cmp("lt"),
    "le": _fn_cmp("le"),
    "gt": _fn_cmp("gt"),
    "ge": _fn_cmp("ge"),
    "and": _fn_and,
    "or": _fn_or,
    "not": _fn_not,
    "ebv": _fn_ebv,
    "is_node": _fn_is_node,
    "kind_code": _fn_kind_code,
    "is_numeric": _fn_is_numeric,
    "node_kind": _fn_node_kind,
    "root_of": _fn_root_of,
    "cast_dbl": _fn_cast_dbl,
    "cast_dec": _fn_cast_dec,
    "cast_int": _fn_cast_int,
    "cast_str": _fn_cast_str,
    "atom_cls": _fn_atom_cls,
    "atom_key": _fn_atom_key,
    "node_eq": _fn_node_eq,
    "node_before": _fn_node_before,
    "node_after": _fn_node_after,
    "contains": _fn_contains,
    "starts_with": _fn_starts_with,
    "ends_with": _fn_ends_with,
    "substring_before": _fn_substring_before,
    "substring_after": _fn_substring_after,
    "substring2": _fn_substring,
    "substring3": _fn_substring,
    "string_length": _fn_string_length,
    "concat": _fn_concat,
    "upper_case": _str_map_fn(str.upper),
    "lower_case": _str_map_fn(str.lower),
    "normalize_space": _str_map_fn(lambda s: " ".join(s.split())),
    "floor": _round_fn("floor"),
    "ceiling": _round_fn("ceiling"),
    "round": _round_fn("round"),
    "abs": _round_fn("abs"),
    "elem_name_is": _fn_elem_name_is,
    "node_name": _fn_node_name,
    "deep_equal": _fn_deep_equal,
}
