"""Static plan validation: check algebra preconditions before evaluation.

The paper's "assembly-style" algebra is efficient exactly because of the
restrictions it obeys (disjoint unions, equi-joins only, π without
duplicate elimination).  This validator walks a plan DAG and checks every
operator's static preconditions — referenced columns exist, join output
schemas don't collide, unions agree on schemas, aggregates reference real
columns — so compiler bugs surface as precise static errors instead of
deep evaluator failures.  The test suite validates every compiled XMark
plan (optimized and unoptimized) and every differential-battery plan.
"""

from __future__ import annotations

from repro.errors import AlgebraError
from repro.relational import algebra as alg
from repro.relational.optimizer import schema_of


def validate(plan: alg.Op) -> int:
    """Validate a plan DAG; returns the operator count, raises
    :class:`AlgebraError` with the offending operator's label otherwise."""
    memo: dict = {}
    count = 0
    for node in alg.walk(plan):
        count += 1
        try:
            _check(node, memo)
        except AlgebraError as exc:
            raise AlgebraError(f"{node.label()}: {exc}") from None
    return count


def _require(schema: tuple[str, ...], *cols: str) -> None:
    for c in cols:
        if c is not None and c not in schema:
            raise AlgebraError(f"references unknown column {c!r} (have {schema})")


def _operand_check(schema, operand):
    tag, v = operand
    if tag == "col":
        _require(schema, v)


def _check(node: alg.Op, memo) -> None:
    child_schemas = [schema_of(c, memo) for c in node.children]

    if isinstance(node, alg.Lit):
        if len(set(node.schema)) != len(node.schema):
            raise AlgebraError("duplicate column names in literal schema")
        for row in node.rows:
            if len(row) != len(node.schema):
                raise AlgebraError("row arity differs from schema")
        unknown = node.item_cols - frozenset(node.schema)
        if unknown:
            raise AlgebraError(f"item_cols not in schema: {sorted(unknown)}")
        return

    if isinstance(node, alg.Project):
        (schema,) = child_schemas
        news = [n for n, _ in node.cols]
        if len(set(news)) != len(news):
            raise AlgebraError("duplicate output columns")
        _require(schema, *[old for _, old in node.cols])
        return

    if isinstance(node, alg.Select):
        (schema,) = child_schemas
        _operand_check(schema, node.lhs)
        _operand_check(schema, node.rhs)
        return

    if isinstance(node, alg.Union):
        if not node.inputs:
            raise AlgebraError("union of zero inputs")
        first = set(child_schemas[0])
        for s in child_schemas[1:]:
            if set(s) != first:
                raise AlgebraError(
                    f"union inputs disagree: {sorted(first)} vs {sorted(s)}"
                )
        return

    if isinstance(node, alg.Difference):
        left, right = child_schemas
        _require(left, *node.keys)
        _require(right, *node.keys)
        return

    if isinstance(node, alg.Distinct):
        (schema,) = child_schemas
        _require(schema, *node.keys)
        if node.order_col:
            _require(schema, node.order_col)
        return

    if isinstance(node, (alg.Join, alg.SemiJoin)):
        left, right = child_schemas
        _require(left, *[l for l, _ in node.keys])
        _require(right, *[r for _, r in node.keys])
        if isinstance(node, alg.Join):
            overlap = set(left) & set(right)
            if overlap:
                raise AlgebraError(f"output schema collision: {sorted(overlap)}")
        return

    if isinstance(node, alg.Cross):
        left, right = child_schemas
        overlap = set(left) & set(right)
        if overlap:
            raise AlgebraError(f"output schema collision: {sorted(overlap)}")
        return

    if isinstance(node, alg.RowNum):
        (schema,) = child_schemas
        if node.target in schema:
            raise AlgebraError(f"target {node.target!r} already exists")
        _require(schema, *[c for c, _ in node.order])
        if node.group:
            _require(schema, node.group)
        return

    if isinstance(node, alg.Map):
        (schema,) = child_schemas
        for a in node.args:
            _operand_check(schema, a)
        return

    if isinstance(node, alg.Aggr):
        (schema,) = child_schemas
        if node.kind not in ("count", "sum", "avg", "min", "max", "str_join"):
            raise AlgebraError(f"unknown aggregate {node.kind!r}")
        if node.kind != "count" and node.arg is None:
            raise AlgebraError(f"{node.kind} needs an argument column")
        _require(schema, *(c for c in (node.arg, node.group, node.order_col) if c))
        return

    if isinstance(node, alg.StepJoin):
        (schema,) = child_schemas
        _require(schema, node.iter_col, node.item_col)
        return

    if isinstance(node, alg.StructuralTwigJoin):
        (schema,) = child_schemas
        _require(schema, node.iter_col, node.item_col)
        if not node.steps:
            raise AlgebraError("twig join with zero steps")
        return

    if isinstance(node, alg.Atomize):
        (schema,) = child_schemas
        _require(schema, node.arg)
        return

    if isinstance(node, alg.GenRange):
        (schema,) = child_schemas
        _require(schema, "iter", node.lo_col, node.hi_col)
        return

    if isinstance(node, (alg.ElemConstr, alg.AttrConstr)):
        for s in child_schemas:
            _require(s, "iter", "item")
        return

    if isinstance(node, alg.TextConstr):
        _require(child_schemas[0], "iter", "item")
        return

    if isinstance(node, alg.DocRoot):
        return

    if isinstance(node, alg.ParamTable):
        if not node.name:
            raise AlgebraError("parameter table without a variable name")
        return

    raise AlgebraError(f"unknown operator {type(node).__name__}")
