"""Vectorised array kernels shared by the relational operators.

These are the little building blocks a column store is made of: batched
range materialisation, segmented running maxima (the heart of the staircase
join's pruning step), dense group numbering and multi-column factorisation
for hash-free equi-joins.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def multi_arange(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], stops[i])`` for all i, vectorised.

    This is the kernel behind the staircase join's scan phase: after
    pruning, each context node contributes one contiguous ``pre`` range and
    the result is the concatenation of those ranges.
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    lengths = np.maximum(stops - starts, 0)
    total = int(lengths.sum())
    if total == 0:
        return _EMPTY
    # Classic cumsum trick: start from all-ones, then at each range start
    # inject a jump that rebases the running sum onto ``starts[i]``.
    out = np.ones(total, dtype=np.int64)
    first = np.zeros(len(lengths), dtype=np.int64)
    nonempty = lengths > 0
    idx = np.nonzero(nonempty)[0]
    offsets = np.concatenate(([0], np.cumsum(lengths[idx])[:-1]))
    prev_end = np.concatenate(([0], (starts[idx] + lengths[idx])[:-1]))
    first = starts[idx] - prev_end + 1
    out[offsets] = first
    out[0] = starts[idx[0]]
    np.cumsum(out, out=out)
    return out


def repeat_index(counts: np.ndarray) -> np.ndarray:
    """Return ``[0,0,...,1,1,...]`` repeating index i ``counts[i]`` times."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(len(counts), dtype=np.int64), counts)


def segmented_cummax(values: np.ndarray, group_ids: np.ndarray) -> np.ndarray:
    """Running maximum of ``values`` that restarts at each group boundary.

    ``group_ids`` must be non-decreasing (rows sorted by group).  Uses the
    offset trick: adding ``group * BIG`` makes maxima from earlier groups
    irrelevant, so one global ``maximum.accumulate`` suffices.
    """
    values = np.asarray(values, dtype=np.int64)
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if len(values) == 0:
        return _EMPTY
    lo = int(values.min())
    hi = int(values.max())
    span = hi - lo + 1
    shifted = (values - lo) + group_ids * span
    running = np.maximum.accumulate(shifted)
    return running - group_ids * span + lo


def group_starts(sorted_ids: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first row of each group (ids pre-sorted)."""
    sorted_ids = np.asarray(sorted_ids)
    if len(sorted_ids) == 0:
        return np.empty(0, dtype=bool)
    mask = np.empty(len(sorted_ids), dtype=bool)
    mask[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=mask[1:])
    return mask


def dense_group_ids(sorted_ids: np.ndarray) -> np.ndarray:
    """Renumber pre-sorted group ids densely as 0,1,2,..."""
    starts = group_starts(sorted_ids)
    return np.cumsum(starts) - 1


def row_number_per_group(sorted_ids: np.ndarray) -> np.ndarray:
    """1-based row number within each group (ids pre-sorted)."""
    n = len(sorted_ids)
    if n == 0:
        return _EMPTY
    starts = group_starts(sorted_ids)
    idx = np.arange(n, dtype=np.int64)
    base = np.zeros(n, dtype=np.int64)
    base[starts] = idx[starts]
    np.maximum.accumulate(base, out=base)
    return idx - base + 1


def factorize(column: np.ndarray) -> tuple[np.ndarray, int]:
    """Map values to dense codes ``0..k-1``; returns ``(codes, k)``."""
    uniq, codes = np.unique(np.asarray(column), return_inverse=True)
    return codes.astype(np.int64), len(uniq)


def combine_keys(columns: Sequence[np.ndarray]) -> np.ndarray:
    """Collapse a multi-column key into one collision-free int64 column.

    Each column is factorised to a dense domain and the codes are mixed by
    positional weighting (like row-major indexing into the cross product of
    the domains), so equality of the combined key is exactly equality of
    the tuple.
    """
    if len(columns) == 1:
        return np.asarray(columns[0], dtype=np.int64)
    combined = None
    for col in columns:
        codes, k = factorize(col)
        if combined is None:
            combined = codes
        else:
            combined = combined * np.int64(k) + codes
    return combined


def join_indices(
    left_key: np.ndarray, right_key: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Inner equi-join: row-index pairs where keys match.

    Sort-merge on the right side: the right key is sorted once, each left
    key probes via binary search, and matches are materialised with
    :func:`multi_arange`.  Output preserves left order (then right-sorted
    order within a key), which keeps plans deterministic.
    """
    left_key = np.asarray(left_key, dtype=np.int64)
    right_key = np.asarray(right_key, dtype=np.int64)
    if len(left_key) == 0 or len(right_key) == 0:
        return _EMPTY, _EMPTY
    order = np.argsort(right_key, kind="stable")
    sorted_right = right_key[order]
    lo = np.searchsorted(sorted_right, left_key, side="left")
    hi = np.searchsorted(sorted_right, left_key, side="right")
    counts = hi - lo
    left_idx = repeat_index(counts)
    right_idx = order[multi_arange(lo, hi)]
    return left_idx, right_idx


def coalesce_ranges(
    starts: np.ndarray, stops: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Merge overlapping half-open ranges; ``starts`` must be ascending.

    The twig join's candidate-generation kernel: the subtree regions of a
    sorted context set are nested or disjoint, so coalescing them yields
    disjoint ranges whose concatenation enumerates every candidate row
    exactly once (no per-context duplicate materialisation).
    """
    starts = np.asarray(starts, dtype=np.int64)
    stops = np.asarray(stops, dtype=np.int64)
    if len(starts) == 0:
        return _EMPTY, _EMPTY
    running = np.maximum.accumulate(stops)
    keep = np.concatenate(([True], starts[1:] > running[:-1]))
    idx = np.nonzero(keep)[0]
    last = np.concatenate((idx[1:] - 1, [len(starts) - 1]))
    return starts[keep], running[last]


def in_set(keys: np.ndarray, probe: np.ndarray) -> np.ndarray:
    """Membership mask: ``keys[i] in probe`` (semi-join kernel)."""
    keys = np.asarray(keys, dtype=np.int64)
    probe = np.unique(np.asarray(probe, dtype=np.int64))
    if len(keys) == 0:
        return np.empty(0, dtype=bool)
    if len(probe) == 0:
        return np.zeros(len(keys), dtype=bool)
    pos = np.searchsorted(probe, keys)
    pos = np.minimum(pos, len(probe) - 1)
    return probe[pos] == keys
