"""Polymorphic ``item`` columns and the shared string pool.

The XQuery data model is a sequence of *items* (atomic values or nodes).
Pathfinder encodes sequences relationally as ``iter | pos | item`` tables
where ``item`` is a polymorphic column.  MonetDB realises the polymorphic
column with BATs plus the ``mposjoin`` operator; here an
:class:`ItemColumn` carries a ``kinds`` byte array alongside an ``int64``
payload array:

========== ===========================================================
kind        payload
========== ===========================================================
``K_INT``   the integer value itself
``K_DBL``   IEEE-754 bit pattern of the double (via ``view(int64)``)
``K_STR``   surrogate id into the :class:`StringPool`
``K_BOOL``  0 or 1
``K_NODE``  global node id (arena row index, document ordered)
``K_ATTR``  global attribute id (attribute-arena row index)
``K_UNTYPED`` surrogate id into the pool (``xs:untypedAtomic``)
``K_QNAME`` surrogate id into the pool
========== ===========================================================

The :class:`StringPool` plays the role of the paper's *property BATs*:
every distinct string is stored once and identified by its surrogate, so
value comparisons and equi-joins on strings reduce to ``int64`` equality
(Section 3.1, "surrogate sharing ... avoids expensive string comparisons").
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DynamicError, TypeError_

K_INT = 0
K_DBL = 1
K_STR = 2
K_BOOL = 3
K_NODE = 4
K_ATTR = 5
K_UNTYPED = 6
K_QNAME = 7
K_DEC = 8

KIND_NAMES = {
    K_INT: "xs:integer",
    K_DBL: "xs:double",
    K_STR: "xs:string",
    K_BOOL: "xs:boolean",
    K_NODE: "node",
    K_ATTR: "attribute",
    K_UNTYPED: "xs:untypedAtomic",
    K_QNAME: "xs:QName",
    K_DEC: "xs:decimal",
}


class XSDecimal(float):
    """An ``xs:decimal`` value (a float subclass used as a type tag).

    The engine stores decimals with double precision, but the *static
    type* matters for conformance: dividing exact numerics (integer or
    decimal) by zero is ``err:FOAR0001``, while only ``xs:double``
    division may yield INF/NaN (F&O 6.2.4).  The lexer tags decimal
    literals (``1.5``) with this class so both back-ends can tell
    ``1.0 div 0.0`` (an error) apart from ``1.0e0 div 0e0`` (INF).
    """

    __slots__ = ()

#: declared external-variable type → acceptable item kinds at bind time
#: (the compiler rejects declarations outside this table statically)
PARAM_TYPE_KINDS: dict[str, tuple[int, ...]] = {
    "xs:integer": (K_INT,),
    "xs:int": (K_INT,),
    "xs:long": (K_INT,),
    # numeric promotion: an integer binding satisfies a double declaration
    "xs:double": (K_DBL, K_DEC, K_INT),
    "xs:decimal": (K_DEC, K_DBL, K_INT),
    "xs:float": (K_DBL, K_DEC, K_INT),
    "xs:string": (K_STR,),
    "xs:untypedAtomic": (K_STR, K_UNTYPED),
    "xs:boolean": (K_BOOL,),
}

#: kinds whose payload is a pool surrogate
_POOLED = (K_STR, K_UNTYPED, K_QNAME)
#: kinds that participate in numeric arithmetic without casting
_NUMERIC = (K_INT, K_DBL, K_DEC)
#: exact numeric kinds — division by zero raises instead of yielding INF
_EXACT = (K_INT, K_DEC)

_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_U8 = np.empty(0, dtype=np.uint8)

_POOLED_ARR = np.array(_POOLED, dtype=np.uint8)
_EXACT_ARR = np.array(_EXACT, dtype=np.uint8)


def pooled_strings(
    kinds: np.ndarray, data: np.ndarray, pool: "StringPool"
) -> tuple[list[bool], "Iterable[str]"]:
    """Batch-decode every pooled payload in an item column.

    Returns ``(mask, strings)``: ``mask[i]`` says whether item ``i``
    carries a pool surrogate, and ``strings`` iterates the decoded
    strings of exactly those items in order — one
    :meth:`StringPool.values` call instead of a ``pool.value`` round
    trip per item.  The shared decode core of ``ItemColumn.to_values``
    and the result serializer.
    """
    pooled = np.isin(kinds, _POOLED_ARR)
    decoded = pool.values(data[pooled].tolist()) if pooled.any() else []
    return pooled.tolist(), iter(decoded)


class StringPool:
    """Interning pool for strings with memoised numeric casts.

    Surrogate ids are dense, starting at 0, and stable for the lifetime of
    the pool.  ``doubles_for`` memoises the ``xs:untypedAtomic -> xs:double``
    cast per surrogate, which makes repeated casts of shared text content
    (very common in XMark documents) O(1) after the first occurrence.

    Interning is thread-safe: concurrent queries share one pool, and a
    check-then-append race would mint two surrogates for equal strings —
    breaking the surrogate-equality property every string comparison
    relies on.  The common already-interned case stays lock-free (a dict
    read); only genuine misses take the mutex.
    """

    def __init__(self):
        self._strings: list[str] = []
        self._ids: dict[str, int] = {}
        self._doubles = np.empty(0, dtype=np.float64)
        self._intern_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._strings)

    def intern(self, s: str) -> int:
        """Return the surrogate for ``s``, creating one if necessary."""
        sid = self._ids.get(s)
        if sid is not None:
            return sid
        with self._intern_lock:
            sid = self._ids.get(s)
            if sid is None:
                sid = len(self._strings)
                # append before publishing so value(sid) can never miss
                self._strings.append(s)
                self._ids[s] = sid
            return sid

    def lookup(self, s: str) -> int:
        """Return the surrogate for ``s`` or ``-1`` if it was never interned.

        Useful for constant predicates: a constant that is not in the pool
        cannot match any stored string.
        """
        return self._ids.get(s, -1)

    def value(self, sid: int) -> str:
        """Return the string for a surrogate id."""
        return self._strings[sid]

    def values(self, sids: Iterable[int]) -> list[str]:
        """Decode many surrogates at once."""
        strings = self._strings
        return [strings[int(i)] for i in sids]

    def intern_many(self, values: Sequence[str]) -> np.ndarray:
        """Intern a batch of strings, returning their surrogates.

        Hits resolve lock-free; the misses (if any) take the intern
        mutex once for the whole batch rather than once per string —
        the store's fragment adoption interns thousands of distinct
        strings in one call, where per-string locking dominates.
        """
        out = np.empty(len(values), dtype=np.int64)
        ids = self._ids
        misses = []
        for i, v in enumerate(values):
            sid = ids.get(v)
            if sid is None:
                misses.append(i)
            else:
                out[i] = sid
        if misses:
            with self._intern_lock:
                strings = self._strings
                for i in misses:
                    v = values[i]
                    sid = ids.get(v)
                    if sid is None:
                        sid = len(strings)
                        strings.append(v)
                        ids[v] = sid
                    out[i] = sid
        return out

    def doubles_for(self, sids: np.ndarray) -> np.ndarray:
        """Cast pooled strings to doubles, elementwise (NaN when invalid).

        The cast is memoised per surrogate: thanks to surrogate sharing a
        column with many duplicate strings is parsed once per distinct
        value, not once per row.  The memo array grows under the intern
        lock and is indexed through a local snapshot, so a concurrent
        grow can never shrink it out from under this thread's read.
        """
        doubles = self._doubles
        if len(doubles) < len(self._strings):
            with self._intern_lock:
                doubles = self._doubles
                cached = len(doubles)
                n = len(self._strings)
                if cached < n:
                    grown = np.empty(n, dtype=np.float64)
                    grown[:cached] = doubles
                    for i in range(cached, n):
                        grown[i] = _parse_double(self._strings[i])
                    self._doubles = doubles = grown
        return doubles[sids]

    def sort_ranks(self, sids: np.ndarray) -> np.ndarray:
        """Return ranks such that rank order == lexicographic string order.

        Ranks are local to the given array (dense over its distinct
        values); they are only meant to be used as sort keys.
        """
        uniq, inverse = np.unique(np.asarray(sids, dtype=np.int64), return_inverse=True)
        decoded = [self._strings[int(i)] for i in uniq]
        order = sorted(range(len(decoded)), key=decoded.__getitem__)
        ranks_of_uniq = np.empty(len(uniq), dtype=np.int64)
        ranks_of_uniq[order] = np.arange(len(uniq), dtype=np.int64)
        return ranks_of_uniq[inverse]

    def bytes_used(self) -> int:
        """Approximate heap footprint of the pooled strings (for E3)."""
        return sum(len(s.encode("utf-8")) for s in self._strings)


def _parse_double(s: str) -> float:
    text = s.strip()
    if not text:
        return math.nan
    try:
        return float(text)
    except ValueError:
        if text == "INF":
            return math.inf
        if text == "-INF":
            return -math.inf
        return math.nan


def _bits(values: np.ndarray) -> np.ndarray:
    """View float64 values as their int64 bit patterns (canonical zero)."""
    values = np.asarray(values, dtype=np.float64)
    values = values + 0.0  # normalises -0.0 to +0.0
    return values.view(np.int64)


def _unbits(payload: np.ndarray) -> np.ndarray:
    return np.asarray(payload, dtype=np.int64).view(np.float64)


class ItemColumn:
    """A column of XQuery items: parallel ``kinds`` and ``data`` arrays."""

    __slots__ = ("kinds", "data")

    def __init__(self, kinds: np.ndarray, data: np.ndarray):
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.data = np.asarray(data, dtype=np.int64)
        if self.kinds.shape != self.data.shape:
            raise ValueError("kinds/data length mismatch")

    # ---------------------------------------------------------------- build
    @classmethod
    def empty(cls) -> "ItemColumn":
        """A zero-length item column."""
        return cls(_EMPTY_U8, _EMPTY_I64)

    @classmethod
    def of_kind(cls, kind: int, data: np.ndarray) -> "ItemColumn":
        """A column whose every item has ``kind`` with payloads ``data``."""
        data = np.asarray(data, dtype=np.int64)
        return cls(np.full(len(data), kind, dtype=np.uint8), data)

    @classmethod
    def from_ints(cls, values) -> "ItemColumn":
        """Encode integers as ``xs:integer`` items."""
        return cls.of_kind(K_INT, np.asarray(values, dtype=np.int64))

    @classmethod
    def from_doubles(cls, values) -> "ItemColumn":
        """Encode floats as ``xs:double`` items (payload = raw IEEE bits)."""
        return cls.of_kind(K_DBL, _bits(np.asarray(values, dtype=np.float64)))

    @classmethod
    def from_decimals(cls, values) -> "ItemColumn":
        """Encode floats as ``xs:decimal`` items (payload = raw IEEE bits)."""
        return cls.of_kind(K_DEC, _bits(np.asarray(values, dtype=np.float64)))

    @classmethod
    def from_bools(cls, values) -> "ItemColumn":
        """Encode a boolean mask as ``xs:boolean`` items."""
        return cls.of_kind(K_BOOL, np.asarray(values, dtype=bool).astype(np.int64))

    @classmethod
    def from_nodes(cls, node_ids) -> "ItemColumn":
        """Encode arena node ids as node items."""
        return cls.of_kind(K_NODE, np.asarray(node_ids, dtype=np.int64))

    @classmethod
    def from_pooled(cls, kind: int, sids) -> "ItemColumn":
        """Encode pooled string ids as string/untypedAtomic items."""
        if kind not in _POOLED:
            raise ValueError("from_pooled requires a pooled kind")
        return cls.of_kind(kind, np.asarray(sids, dtype=np.int64))

    @classmethod
    def from_values(cls, values: Sequence, pool: StringPool) -> "ItemColumn":
        """Encode arbitrary Python scalars (bool/int/float/str)."""
        n = len(values)
        kinds = np.empty(n, dtype=np.uint8)
        data = np.empty(n, dtype=np.int64)
        for i, v in enumerate(values):
            if isinstance(v, bool):
                kinds[i] = K_BOOL
                data[i] = int(v)
            elif isinstance(v, int):
                kinds[i] = K_INT
                try:
                    data[i] = v
                except OverflowError:
                    raise TypeError_(
                        f"integer {v} exceeds the engine's 64-bit item range"
                    ) from None
            elif isinstance(v, XSDecimal):
                kinds[i] = K_DEC
                data[i] = _bits(np.float64(v))
            elif isinstance(v, float):
                kinds[i] = K_DBL
                data[i] = _bits(np.float64(v))
            elif isinstance(v, str):
                kinds[i] = K_STR
                data[i] = pool.intern(v)
            else:
                raise TypeError_(f"cannot encode {type(v).__name__} as an item")
        return cls(kinds, data)

    # ------------------------------------------------------------ structure
    def __len__(self) -> int:
        return len(self.data)

    def take(self, idx) -> "ItemColumn":
        """Row selection/reordering by index array or boolean mask."""
        return ItemColumn(self.kinds[idx], self.data[idx])

    @staticmethod
    def concat(columns: Sequence["ItemColumn"]) -> "ItemColumn":
        """Concatenate item columns (empty input gives an empty column)."""
        if not columns:
            return ItemColumn.empty()
        return ItemColumn(
            np.concatenate([c.kinds for c in columns]),
            np.concatenate([c.data for c in columns]),
        )

    def repeat(self, counts) -> "ItemColumn":
        """Repeat each item ``counts[i]`` times (``np.repeat`` semantics)."""
        return ItemColumn(np.repeat(self.kinds, counts), np.repeat(self.data, counts))

    def is_homogeneous(self, kind: int) -> bool:
        """True when every item (if any) has exactly ``kind``."""
        return bool(len(self) == 0 or np.all(self.kinds == kind))

    # -------------------------------------------------------------- decode
    def to_values(self, pool: StringPool) -> list:
        """Decode back to Python scalars (nodes decode to their ids).

        Pooled payloads (string/untyped/QName) are decoded with one
        batched :meth:`StringPool.values` call rather than a
        ``pool.value`` round-trip per item.
        """
        pooled, strings = pooled_strings(self.kinds, self.data, pool)
        out = []
        for kind, payload, is_pooled in zip(
            self.kinds.tolist(), self.data.tolist(), pooled
        ):
            out.append(
                next(strings) if is_pooled else decode_item(kind, payload, pool)
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ItemColumn(n={len(self)}, kinds={set(self.kinds.tolist())})"


def decode_item(kind: int, payload: int, pool: StringPool):
    """Decode a single (kind, payload) pair to a Python value."""
    if kind == K_INT:
        return payload
    if kind == K_DBL:
        return float(np.int64(payload).view(np.float64))
    if kind == K_DEC:
        return XSDecimal(np.int64(payload).view(np.float64))
    if kind == K_BOOL:
        return bool(payload)
    if kind in _POOLED:
        return pool.value(payload)
    return payload  # node / attribute ids stay numeric


def encode_item(value, pool: StringPool) -> tuple[int, int]:
    """Encode one Python scalar as a (kind, payload) pair."""
    if isinstance(value, bool):
        return K_BOOL, int(value)
    if isinstance(value, int):
        return K_INT, int(value)
    if isinstance(value, XSDecimal):
        return K_DEC, int(_bits(np.float64(value))[()])
    if isinstance(value, float):
        return K_DBL, int(_bits(np.float64(value))[()])
    if isinstance(value, str):
        return K_STR, pool.intern(value)
    raise TypeError_(f"cannot encode {type(value).__name__} as an item")


# --------------------------------------------------------------------------
# casts
# --------------------------------------------------------------------------
def to_double(col: ItemColumn, pool: StringPool) -> np.ndarray:
    """Cast every item to ``xs:double`` (NaN when a string is not numeric).

    Node items may not appear here: the compiler atomizes before any
    arithmetic, so a node reaching an arithmetic map is a compiler bug.
    """
    kinds, data = col.kinds, col.data
    if col.is_homogeneous(K_INT):
        return data.astype(np.float64)
    if col.is_homogeneous(K_DBL):
        return _unbits(data)
    out = np.empty(len(col), dtype=np.float64)
    m = kinds == K_INT
    if m.any():
        out[m] = data[m].astype(np.float64)
    m = (kinds == K_DBL) | (kinds == K_DEC)
    if m.any():
        out[m] = _unbits(data[m])
    m = kinds == K_BOOL
    if m.any():
        out[m] = data[m].astype(np.float64)
    m = (kinds == K_STR) | (kinds == K_UNTYPED)
    if m.any():
        out[m] = pool.doubles_for(data[m])
    m = (kinds == K_NODE) | (kinds == K_ATTR)
    if m.any():
        raise DynamicError(
            "node item in numeric context (missing atomization)", code="err:XPTY0004"
        )
    return out


def to_string_ids(col: ItemColumn, pool: StringPool) -> np.ndarray:
    """Cast every item to a pooled string surrogate (lexical form)."""
    kinds, data = col.kinds, col.data
    if len(col) == 0:
        return _EMPTY_I64
    if col.is_homogeneous(K_STR) or col.is_homogeneous(K_UNTYPED):
        return data.copy()
    out = np.empty(len(col), dtype=np.int64)
    pooled = np.isin(kinds, np.array(_POOLED, dtype=np.uint8))
    out[pooled] = data[pooled]
    rest = ~pooled
    if rest.any():
        idx = np.nonzero(rest)[0]
        for i in idx:
            out[i] = pool.intern(lexical(int(kinds[i]), int(data[i]), pool))
    return out


def lexical(kind: int, payload: int, pool: StringPool) -> str:
    """The XQuery lexical (string) form of one atomic item."""
    if kind == K_INT:
        return str(payload)
    if kind in (K_DBL, K_DEC):
        return format_double(float(np.int64(payload).view(np.float64)))
    if kind == K_BOOL:
        return "true" if payload else "false"
    if kind in _POOLED:
        return pool.value(payload)
    raise TypeError_(f"no lexical form for kind {KIND_NAMES.get(kind, kind)}")


def xpath_round(v: float) -> int:
    """fn:round semantics: round half toward positive infinity."""
    return int(math.floor(v + 0.5))


def xpath_substring(s: str, start: float, length: float | None = None) -> str:
    """``fn:substring`` per F&O 7.4.3, including the NaN/±INF edge cases.

    The spec keeps the characters at positions ``p`` with ``round(start)
    <= p`` and (three-argument form) ``p < round(start) + round(length)``;
    every comparison involving NaN is false, so a NaN start or length
    yields ``""`` — it must not crash the rounding step.
    """
    if math.isnan(start):
        return ""
    lo = start if math.isinf(start) else math.floor(start + 0.5)
    if length is None:
        hi = math.inf
    else:
        if math.isnan(length):
            return ""
        hi = lo + (length if math.isinf(length) else math.floor(length + 0.5))
        if math.isnan(hi):  # -INF start + INF length
            return ""
    begin = max(lo, 1)
    if math.isinf(begin) or hi <= begin:
        return ""
    end = len(s) + 1 if math.isinf(hi) else min(int(hi), len(s) + 1)
    return s[int(begin) - 1 : end - 1]


def format_double(v: float) -> str:
    """Serialise a double the way XQuery does for the common cases."""
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "INF" if v > 0 else "-INF"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


# --------------------------------------------------------------------------
# elementwise operations
# --------------------------------------------------------------------------
_ARITH = {"add", "sub", "mul", "div", "idiv", "mod"}
_CMP = {"eq", "ne", "lt", "le", "gt", "ge"}


def _int_arith(op: str, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Integer-payload arithmetic for ``add/sub/mul/idiv/mod`` (zero-free y)."""
    if op == "add":
        return x + y
    if op == "sub":
        return x - y
    if op == "mul":
        return x * y
    if op == "idiv":
        # XQuery idiv truncates toward zero; numpy floor-divides.
        q = np.abs(x) // np.abs(y)
        return np.where((x < 0) != (y < 0), -q, q)
    return np.fmod(x.astype(np.float64), y.astype(np.float64)).astype(np.int64)


def arithmetic(op: str, a: ItemColumn, b: ItemColumn, pool: StringPool) -> ItemColumn:
    """Elementwise arithmetic with XQuery numeric promotion.

    Promotion is decided **per row**: integer op integer stays integral
    for ``add/sub/mul/idiv/mod``; two exact numerics (integer/decimal)
    stay decimal; anything else promotes to double.  Untyped operands are
    cast to double first (the F&O rule for untypedAtomic in arithmetic).
    Per-row typing matters for plan-rewrite stability — a row's result
    type may not depend on which other rows happen to share the column,
    or pruning rows would change results.  Dividing exact numerics by
    zero is ``err:FOAR0001`` — only ``xs:double`` division yields
    INF/NaN (``idiv`` by zero raises for every numeric type, F&O 6.2.5).
    """
    if op not in _ARITH:
        raise ValueError(f"unknown arithmetic op {op!r}")
    int_rows = (a.kinds == K_INT) & (b.kinds == K_INT)
    integral = op in ("add", "sub", "mul", "idiv", "mod")
    if integral and int_rows.all():
        x, y = a.data, b.data
        if op in ("idiv", "mod") and np.any(y == 0):
            raise DynamicError("integer division by zero", code="err:FOAR0001")
        return ItemColumn.from_ints(_int_arith(op, x, y))
    exact_rows = np.isin(a.kinds, _EXACT_ARR) & np.isin(b.kinds, _EXACT_ARR)
    x = to_double(a, pool)
    y = to_double(b, pool)
    if op == "idiv":
        # idiv returns xs:integer whatever the operand types (F&O 6.2.5)
        if np.any(y == 0):
            raise DynamicError("integer division by zero", code="err:FOAR0001")
        with np.errstate(invalid="ignore"):
            return ItemColumn.from_ints(np.trunc(x / y).astype(np.int64))
    if op in ("div", "mod") and np.any(exact_rows & (y == 0)):
        raise DynamicError(
            "integer/decimal division by zero", code="err:FOAR0001"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        if op == "add":
            r = x + y
        elif op == "sub":
            r = x - y
        elif op == "mul":
            r = x * y
        elif op == "div":
            r = x / y
        else:  # mod
            r = np.fmod(x, y)
    # closure over exact numerics: integer div integer (and any op mixing
    # integers with decimals) has type xs:decimal, so nested division by
    # zero is still detected
    kinds = np.where(exact_rows, K_DEC, K_DBL).astype(np.uint8)
    data = _bits(r)
    if integral and int_rows.any():
        # redo the all-integer rows in int64 so they keep exact payloads
        kinds[int_rows] = K_INT
        data[int_rows] = _int_arith(op, a.data[int_rows], b.data[int_rows])
    return ItemColumn(kinds, data)


def negate(a: ItemColumn, pool: StringPool) -> ItemColumn:
    """Unary minus with the same per-row promotion as :func:`arithmetic`."""
    int_rows = a.kinds == K_INT
    if int_rows.all():
        return ItemColumn.from_ints(-a.data)
    kinds = np.where(np.isin(a.kinds, _EXACT_ARR), K_DEC, K_DBL).astype(np.uint8)
    data = _bits(-to_double(a, pool))
    if int_rows.any():
        kinds[int_rows] = K_INT
        data[int_rows] = -a.data[int_rows]
    return ItemColumn(kinds, data)


def compare(op: str, a: ItemColumn, b: ItemColumn, pool: StringPool) -> np.ndarray:
    """Elementwise general-comparison semantics; returns a bool array.

    Per pair: if either side is numeric (int/double/bool) the comparison is
    numeric (untyped/string operands are cast, non-numeric strings compare
    false); if both sides are strings/untyped the comparison is
    lexicographic.
    """
    if op not in _CMP:
        raise ValueError(f"unknown comparison op {op!r}")
    n = len(a)
    if n != len(b):
        raise ValueError("comparison arity mismatch")
    if n == 0:
        return np.empty(0, dtype=bool)
    numeric_a = np.isin(a.kinds, np.array(_NUMERIC + (K_BOOL,), dtype=np.uint8))
    numeric_b = np.isin(b.kinds, np.array(_NUMERIC + (K_BOOL,), dtype=np.uint8))
    use_numeric = numeric_a | numeric_b
    out = np.zeros(n, dtype=bool)
    if use_numeric.any():
        xa = to_double(a.take(use_numeric), pool)
        xb = to_double(b.take(use_numeric), pool)
        out[use_numeric] = _cmp_arrays(op, xa, xb)
    strings = ~use_numeric
    if strings.any():
        sa = to_string_ids(a.take(strings), pool)
        sb = to_string_ids(b.take(strings), pool)
        if op == "eq":
            out[strings] = sa == sb
        elif op == "ne":
            out[strings] = sa != sb
        else:
            joint = np.concatenate([sa, sb])
            ranks = pool.sort_ranks(joint)
            ra, rb = ranks[: len(sa)], ranks[len(sa):]
            out[strings] = _cmp_arrays(op, ra, rb)
    return out


def _cmp_arrays(op: str, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    if op == "eq":
        return x == y
    if op == "ne":
        return x != y
    if op == "lt":
        return x < y
    if op == "le":
        return x <= y
    if op == "gt":
        return x > y
    return x >= y


def ebv(col: ItemColumn, pool: StringPool) -> np.ndarray:
    """Effective boolean value of each *single* item (bool array)."""
    kinds, data = col.kinds, col.data
    out = np.zeros(len(col), dtype=bool)
    m = kinds == K_BOOL
    out[m] = data[m] != 0
    m = kinds == K_INT
    out[m] = data[m] != 0
    m = (kinds == K_DBL) | (kinds == K_DEC)
    if m.any():
        v = _unbits(data[m])
        out[m] = (v != 0) & ~np.isnan(v)
    m = np.isin(kinds, np.array(_POOLED, dtype=np.uint8))
    if m.any():
        lengths = np.fromiter(
            (len(pool.value(int(s))) for s in data[m]), dtype=np.int64, count=int(m.sum())
        )
        out[m] = lengths > 0
    m = (kinds == K_NODE) | (kinds == K_ATTR)
    out[m] = True
    return out


def order_columns(col: ItemColumn, pool: StringPool) -> list[np.ndarray]:
    """Sort keys for an item column, usable with ``np.lexsort``.

    Returns ``[class, value]`` where ``class`` separates numeric items from
    strings from nodes (mixed-type ``order by`` keys sort by class first,
    a pragmatic total order) and ``value`` orders within the class.
    NaN sorts first within numerics (XQuery's "empty least" treats NaN as
    least among doubles).
    """
    kinds, data = col.kinds, col.data
    n = len(col)
    cls = np.zeros(n, dtype=np.int64)
    val = np.zeros(n, dtype=np.float64)
    numeric = np.isin(kinds, np.array(_NUMERIC + (K_BOOL,), dtype=np.uint8))
    if numeric.any():
        cls[numeric] = 1
        v = to_double(col.take(numeric), pool)
        v = np.where(np.isnan(v), -np.inf, v)
        val[numeric] = v
    pooled = np.isin(kinds, np.array(_POOLED, dtype=np.uint8))
    if pooled.any():
        cls[pooled] = 2
        val[pooled] = pool.sort_ranks(data[pooled]).astype(np.float64)
    nodes = (kinds == K_NODE) | (kinds == K_ATTR)
    if nodes.any():
        cls[nodes] = 3
        val[nodes] = data[nodes].astype(np.float64)
    return [cls, val]


def join_keys(col: ItemColumn) -> tuple[np.ndarray, np.ndarray]:
    """Normalise an item column for equi-join key comparison.

    Returns ``(kinds, payload)`` with untyped folded into string so that a
    ``K_STR`` probe matches ``K_UNTYPED`` content (both carry pool ids).
    The compiler casts both join sides to a common kind, so this is a
    safety net rather than full cross-kind equality.
    """
    kinds = col.kinds.copy()
    kinds[kinds == K_UNTYPED] = K_STR
    # decimals carry double bit patterns, so value-equal keys match
    kinds[kinds == K_DEC] = K_DBL
    return kinds, col.data
