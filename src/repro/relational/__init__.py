"""The relational column-store substrate (the MonetDB stand-in).

This subpackage implements everything below the dashed line of the paper's
Figure 1: typed columns, tables, the "assembly-style" relational algebra of
Table 1 (projection, selection, disjoint union, difference, duplicate
elimination, equi-join, cross product, row numbering, staircase join, node
construction and elementwise arithmetic/comparison maps), a memoizing DAG
evaluator, the staircase-join kernels, and a peephole plan optimizer.
"""

from repro.relational.items import (
    ItemColumn,
    StringPool,
    K_INT,
    K_DBL,
    K_STR,
    K_BOOL,
    K_NODE,
    K_ATTR,
    K_UNTYPED,
    K_QNAME,
)
from repro.relational.table import Table

__all__ = [
    "ItemColumn",
    "StringPool",
    "Table",
    "K_INT",
    "K_DBL",
    "K_STR",
    "K_BOOL",
    "K_NODE",
    "K_ATTR",
    "K_UNTYPED",
    "K_QNAME",
]
