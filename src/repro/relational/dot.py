"""Plan rendering: Graphviz dot output and a compact ASCII tree.

The demo system's "graphical output of relational query plans at
different compilation stages" (paper Section 4, Figure 5).  ``to_dot``
emits standard Graphviz which can be rendered offline; ``to_ascii``
prints an indented tree with shared subplans referenced by id so DAG
sharing stays visible.
"""

from __future__ import annotations

from repro.relational import algebra as alg


def to_dot(root: alg.Op, title: str = "plan") -> str:
    """Render a plan DAG as a Graphviz digraph."""
    ids: dict[int, str] = {}
    lines = [
        "digraph plan {",
        f'  label="{title}";',
        "  node [shape=box, fontname=monospace, fontsize=10];",
    ]
    for node in alg.walk(root):
        name = f"n{len(ids)}"
        ids[id(node)] = name
        label = node.label().replace('"', '\\"')
        lines.append(f'  {name} [label="{label}"];')
        for child in node.children:
            lines.append(f"  {name} -> {ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)


def to_ascii(root: alg.Op) -> str:
    """Render a plan as an indented tree; shared subplans print once and
    are referenced as ``@N`` afterwards."""
    numbering: dict[int, int] = {}
    shared: set[int] = set()
    _find_shared(root, {}, shared)
    lines: list[str] = []
    _ascii_walk(root, 0, numbering, shared, lines)
    return "\n".join(lines)


def _find_shared(node: alg.Op, seen: dict[int, int], shared: set[int]) -> None:
    stack = [node]
    while stack:
        n = stack.pop()
        count = seen.get(id(n), 0)
        seen[id(n)] = count + 1
        if count == 0:
            stack.extend(n.children)
        else:
            shared.add(id(n))


def _ascii_walk(node, depth, numbering, shared, lines) -> None:
    indent = "  " * depth
    if id(node) in numbering:
        lines.append(f"{indent}@{numbering[id(node)]}")
        return
    tag = ""
    if id(node) in shared:
        numbering[id(node)] = len(numbering) + 1
        tag = f"  [@{numbering[id(node)]}]"
    lines.append(f"{indent}{node.label()}{tag}")
    for child in node.children:
        _ascii_walk(child, depth + 1, numbering, shared, lines)
