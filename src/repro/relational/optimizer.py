"""Peephole plan optimization.

Loop-lifted plans are large and mechanical — the paper reports ~120
operators for XMark Q8 before optimization and cites peephole-style
rewriting [Grust, "Purely Relational FLWORs", XIME-P 2005] as the remedy.
The optimizer here works the same way: local rewrites applied over the
DAG until a fixpoint, exploiting the restrictions of the assembly-style
algebra (π never removes duplicates, ∪ is disjoint, all joins equi-joins):

* **common subexpression elimination** — structurally identical subplans
  are shared (loop-lifting emits the same ``loop`` relation many times);
* **projection pruning** (the compiler's *icols* analysis) — only columns
  an ancestor actually consumes are kept; dead ``Map``/``RowNum``/
  ``Atomize`` targets are dropped entirely;
* **projection merging** — π ∘ π collapses, identity π disappears;
* **literal folding** — σ/π over literal tables evaluate at compile time,
  unions of literals concatenate;
* **empty propagation** — operators over provably empty inputs collapse
  to empty literal tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlgebraError
from repro.relational import algebra as alg


# --------------------------------------------------------------------------
# static schema inference
# --------------------------------------------------------------------------
def schema_of(op: alg.Op, memo: dict[int, tuple[str, ...]] | None = None) -> tuple[str, ...]:
    """Infer the output schema of a plan node (column names)."""
    if memo is None:
        memo = {}
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    result = _schema(op, memo)
    memo[id(op)] = result
    return result


def _schema(op: alg.Op, memo) -> tuple[str, ...]:
    if isinstance(op, alg.Lit):
        return op.schema
    if isinstance(op, alg.Project):
        return tuple(new for new, _ in op.cols)
    if isinstance(op, (alg.Select,)):
        return schema_of(op.child, memo)
    if isinstance(op, alg.Union):
        return schema_of(op.inputs[0], memo)
    if isinstance(op, (alg.Difference, alg.SemiJoin)):
        return schema_of(op.left, memo)
    if isinstance(op, alg.Distinct):
        return schema_of(op.child, memo)
    if isinstance(op, (alg.Join, alg.Cross)):
        return schema_of(op.left, memo) + schema_of(op.right, memo)
    if isinstance(op, (alg.RowNum, alg.Map)):
        base = schema_of(op.child, memo)
        return base if op.target in base else base + (op.target,)
    if isinstance(op, alg.Atomize):
        base = schema_of(op.child, memo)
        return base if op.target in base else base + (op.target,)
    if isinstance(op, alg.Aggr):
        return (op.group, op.target) if op.group else (op.target,)
    if isinstance(op, alg.StepJoin):
        return (op.iter_col, op.item_col)
    if isinstance(op, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
        return ("iter", "item")
    if isinstance(op, (alg.DocRoot, alg.GenRange)):
        return ("iter", "pos", "item")
    if isinstance(op, alg.ParamTable):
        return ("pos", "item")
    raise AlgebraError(f"cannot infer schema of {type(op).__name__}")


def _item_cols_of(op: alg.Op, memo: dict[int, frozenset]) -> frozenset:
    """Which output columns are polymorphic item columns (best effort)."""
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    result = _item_cols(op, memo)
    memo[id(op)] = result
    return result


def _item_cols(op: alg.Op, memo) -> frozenset:
    if isinstance(op, alg.Lit):
        return op.item_cols
    if isinstance(op, alg.Project):
        child = _item_cols_of(op.child, memo)
        return frozenset(new for new, old in op.cols if old in child)
    if isinstance(op, (alg.Select, alg.Distinct)):
        return _item_cols_of(op.child, memo)
    if isinstance(op, alg.Union):
        return _item_cols_of(op.inputs[0], memo)
    if isinstance(op, (alg.Difference, alg.SemiJoin)):
        return _item_cols_of(op.left, memo)
    if isinstance(op, (alg.Join, alg.Cross)):
        return _item_cols_of(op.left, memo) | _item_cols_of(op.right, memo)
    if isinstance(op, alg.RowNum):
        return _item_cols_of(op.child, memo)
    if isinstance(op, alg.Map):
        base = _item_cols_of(op.child, memo)
        if op.fn == "kind_code":
            return base - {op.target}
        return base | {op.target}
    if isinstance(op, alg.Atomize):
        return _item_cols_of(op.child, memo) | {op.target}
    if isinstance(op, alg.Aggr):
        if op.kind == "count":
            return frozenset()
        return frozenset({op.target})
    if isinstance(op, alg.StepJoin):
        return frozenset({op.item_col})
    if isinstance(op, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
        return frozenset({"item"})
    if isinstance(op, (alg.DocRoot, alg.GenRange, alg.ParamTable)):
        return frozenset({"item"})
    return frozenset()


# --------------------------------------------------------------------------
# optimizer driver
# --------------------------------------------------------------------------
@dataclass
class OptimizerStats:
    """Before/after operator counts (benchmark E6 reports these)."""

    ops_before: int = 0
    ops_after: int = 0
    passes: int = 0

    @property
    def reduction_pct(self) -> float:
        if self.ops_before == 0:
            return 0.0
        return 100.0 * (self.ops_before - self.ops_after) / self.ops_before


def optimize(root: alg.Op, stats: OptimizerStats | None = None) -> alg.Op:
    """Apply all rewrite passes to a fixpoint (bounded) and return the
    rewritten plan."""
    if stats is not None:
        stats.ops_before = alg.op_count(root)
    for i in range(8):
        before = alg.op_count(root)
        root = _cse(root)
        root = _fold(root)
        root = _prune(root)
        root = _merge_projects(root)
        root = _cse(root)
        after = alg.op_count(root)
        if stats is not None:
            stats.passes = i + 1
        if after == before:
            break
    if stats is not None:
        stats.ops_after = alg.op_count(root)
    return root


# --------------------------------------------------------------------------
# pass: common subexpression elimination (hash consing)
# --------------------------------------------------------------------------
def _cse(root: alg.Op) -> alg.Op:
    canon: dict[tuple, alg.Op] = {}
    rebuilt: dict[int, alg.Op] = {}
    for node in alg.walk(root):
        child_ids = tuple(id(rebuilt[id(c)]) for c in node.children)
        new_children = tuple(rebuilt[id(c)] for c in node.children)
        candidate = _with_children(node, new_children)
        key = candidate.struct_key(child_ids)
        existing = canon.get(key)
        if existing is None:
            canon[key] = candidate
            rebuilt[id(node)] = candidate
        else:
            rebuilt[id(node)] = existing
    return rebuilt[id(root)]


def _with_children(node: alg.Op, children: tuple[alg.Op, ...]) -> alg.Op:
    """Clone ``node`` with new children (no-op when nothing changed)."""
    if tuple(node.children) == children:
        return node
    if isinstance(node, alg.Project):
        return alg.Project(children[0], node.cols)
    if isinstance(node, alg.Select):
        return alg.Select(children[0], node.op, node.lhs, node.rhs)
    if isinstance(node, alg.Union):
        return alg.Union(children)
    if isinstance(node, alg.Difference):
        return alg.Difference(children[0], children[1], node.keys)
    if isinstance(node, alg.Distinct):
        return alg.Distinct(children[0], node.keys, node.order_col)
    if isinstance(node, alg.Join):
        return alg.Join(children[0], children[1], node.keys)
    if isinstance(node, alg.SemiJoin):
        return alg.SemiJoin(children[0], children[1], node.keys)
    if isinstance(node, alg.Cross):
        return alg.Cross(children[0], children[1])
    if isinstance(node, alg.RowNum):
        return alg.RowNum(children[0], node.target, node.order, node.group)
    if isinstance(node, alg.Map):
        return alg.Map(children[0], node.fn, node.target, node.args)
    if isinstance(node, alg.Aggr):
        return alg.Aggr(
            children[0], node.kind, node.target, node.arg, node.group,
            node.sep, node.order_col,
        )
    if isinstance(node, alg.StepJoin):
        return alg.StepJoin(children[0], node.axis, node.test, node.iter_col, node.item_col)
    if isinstance(node, alg.Atomize):
        return alg.Atomize(children[0], node.target, node.arg)
    if isinstance(node, alg.ElemConstr):
        return alg.ElemConstr(children[0], children[1])
    if isinstance(node, alg.TextConstr):
        return alg.TextConstr(children[0])
    if isinstance(node, alg.AttrConstr):
        return alg.AttrConstr(children[0], children[1])
    if isinstance(node, alg.GenRange):
        return alg.GenRange(children[0], node.lo_col, node.hi_col)
    if isinstance(node, (alg.Lit, alg.DocRoot, alg.ParamTable)):
        return node
    raise AlgebraError(f"cannot clone {type(node).__name__}")


# --------------------------------------------------------------------------
# pass: literal folding and empty propagation
# --------------------------------------------------------------------------
def _is_empty_lit(op: alg.Op) -> bool:
    return isinstance(op, alg.Lit) and not op.rows


def _empty_like(op: alg.Op) -> alg.Lit:
    memo: dict[int, tuple[str, ...]] = {}
    imemo: dict[int, frozenset] = {}
    return alg.Lit(schema_of(op, memo), (), _item_cols_of(op, imemo))


def _fold(root: alg.Op) -> alg.Op:
    rebuilt: dict[int, alg.Op] = {}
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        rebuilt[id(node)] = _fold_one(_with_children(node, children))
    return rebuilt[id(root)]


def _fold_one(node: alg.Op) -> alg.Op:
    # constructors have side effects; never fold them away
    if isinstance(node, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
        return node
    if isinstance(node, alg.Select):
        child = node.child
        if _is_empty_lit(child):
            return child
        if isinstance(child, alg.Lit) and _foldable_pred(node, child):
            return _fold_select_lit(node, child)
    if isinstance(node, alg.Project):
        child = node.child
        if isinstance(child, alg.Lit):
            idx = {name: i for i, name in enumerate(child.schema)}
            if all(old in idx for _, old in node.cols):
                rows = tuple(
                    tuple(row[idx[old]] for _, old in node.cols) for row in child.rows
                )
                new_items = frozenset(
                    new for new, old in node.cols if old in child.item_cols
                )
                return alg.Lit(tuple(n for n, _ in node.cols), rows, new_items)
    if isinstance(node, alg.Union):
        inputs = [i for i in node.inputs if not _is_empty_lit(i)]
        if not inputs:
            return node.inputs[0]
        if len(inputs) == 1:
            return inputs[0]
        if len(inputs) != len(node.inputs):
            return alg.Union(tuple(inputs))
        if all(isinstance(i, alg.Lit) for i in inputs):
            first = inputs[0]
            if all(i.schema == first.schema and i.item_cols == first.item_cols for i in inputs):
                rows = tuple(r for i in inputs for r in i.rows)
                return alg.Lit(first.schema, rows, first.item_cols)
    if isinstance(node, (alg.Map, alg.RowNum, alg.Distinct, alg.Atomize)):
        if _is_empty_lit(node.child):
            return _empty_like(node)
    if isinstance(node, alg.StepJoin):
        if _is_empty_lit(node.child):
            return alg.Lit(
                (node.iter_col, node.item_col), (), frozenset({node.item_col})
            )
    if isinstance(node, (alg.Join, alg.Cross)):
        if _is_empty_lit(node.left) or _is_empty_lit(node.right):
            return _empty_like(node)
    if isinstance(node, alg.SemiJoin):
        if _is_empty_lit(node.left) or _is_empty_lit(node.right):
            return _empty_like(node)
    if isinstance(node, alg.Difference):
        if _is_empty_lit(node.left):
            return node.left
        if _is_empty_lit(node.right):
            return node.left
    return node


def _foldable_pred(node: alg.Select, child: alg.Lit) -> bool:
    for tag, v in (node.lhs, node.rhs):
        if tag == "col" and v in child.item_cols:
            return False  # item comparisons need the pool; leave to runtime
        if tag == "const" and not isinstance(v, (int, bool)):
            return False
    return True


def _fold_select_lit(node: alg.Select, child: alg.Lit) -> alg.Lit:
    idx = {name: i for i, name in enumerate(child.schema)}
    import operator

    ops = {
        "eq": operator.eq,
        "ne": operator.ne,
        "lt": operator.lt,
        "le": operator.le,
        "gt": operator.gt,
        "ge": operator.ge,
    }
    fn = ops[node.op]

    def val(row, operand):
        tag, v = operand
        return row[idx[v]] if tag == "col" else v

    rows = tuple(
        row for row in child.rows if fn(val(row, node.lhs), val(row, node.rhs))
    )
    return alg.Lit(child.schema, rows, child.item_cols)


# --------------------------------------------------------------------------
# pass: projection pruning (icols)
# --------------------------------------------------------------------------
def _prune(root: alg.Op) -> alg.Op:
    """Required-column (icols) pruning in two passes.

    Pass 1 walks parents-before-children accumulating, per node, the union
    of the columns its parents need.  Pass 2 rebuilds each node exactly
    once against its accumulated requirement — shared subplans stay shared
    (pruning per parent would duplicate them).
    """
    schema_memo: dict[int, tuple[str, ...]] = {}
    required = frozenset(schema_of(root, schema_memo))
    # pass 1: accumulate requirements top-down in reverse topological order
    topo = list(alg.walk(root))  # children before parents
    req: dict[int, frozenset] = {id(root): required}
    for node in reversed(topo):
        node_req = req.get(id(node), frozenset())
        node_req &= frozenset(schema_of(node, schema_memo))
        req[id(node)] = node_req
        for child, child_req in _child_requirements(node, node_req, schema_memo):
            req[id(child)] = req.get(id(child), frozenset()) | child_req
    # pass 2: rebuild bottom-up
    rebuilt: dict[int, alg.Op] = {}
    for node in topo:
        rebuilt[id(node)] = _prune_rewrite(node, req[id(node)], rebuilt, schema_memo)
    # the root must deliver exactly its original schema
    return _restrict(rebuilt[id(root)], required, schema_memo)


def _child_requirements(op, required, schema_memo):
    """Which columns each child must deliver for ``op`` to produce
    ``required`` (mirrors the construction rules of ``_prune_rewrite``)."""
    if isinstance(op, alg.Lit):
        return []
    if isinstance(op, alg.Project):
        cols = [(new, old) for new, old in op.cols if new in required] or list(op.cols[:1])
        return [(op.child, frozenset(old for _, old in cols))]
    if isinstance(op, alg.Select):
        return [(op.child, required | _operand_cols(op.lhs, op.rhs))]
    if isinstance(op, alg.Union):
        return [(i, required) for i in op.inputs]
    if isinstance(op, alg.Difference):
        keys = frozenset(op.keys)
        return [(op.left, required | keys), (op.right, keys)]
    if isinstance(op, alg.Distinct):
        extra = frozenset([op.order_col]) if op.order_col else frozenset()
        return [(op.child, required | frozenset(op.keys) | extra)]
    if isinstance(op, (alg.Join, alg.SemiJoin)):
        lkeys = frozenset(l for l, _ in op.keys)
        rkeys = frozenset(r for _, r in op.keys)
        lschema = frozenset(schema_of(op.left, schema_memo))
        out = [(op.left, (required & lschema) | lkeys)]
        if isinstance(op, alg.SemiJoin):
            out.append((op.right, rkeys))
        else:
            rschema = frozenset(schema_of(op.right, schema_memo))
            out.append((op.right, (required & rschema) | rkeys))
        return out
    if isinstance(op, alg.Cross):
        lschema = frozenset(schema_of(op.left, schema_memo))
        rschema = frozenset(schema_of(op.right, schema_memo))
        lreq = (required & lschema) or frozenset(list(lschema)[:1])
        rreq = (required & rschema) or frozenset(list(rschema)[:1])
        return [(op.left, lreq), (op.right, rreq)]
    if isinstance(op, alg.RowNum):
        if op.target not in required:
            return [(op.child, required)]
        child_req = (required - {op.target}) | frozenset(c for c, _ in op.order)
        if op.group:
            child_req |= {op.group}
        return [(op.child, child_req)]
    if isinstance(op, alg.Map):
        if op.target not in required:
            return [(op.child, required)]
        return [(op.child, (required - {op.target}) | _operand_cols(*op.args))]
    if isinstance(op, alg.Atomize):
        if op.target not in required:
            return [(op.child, required)]
        return [(op.child, (required - {op.target}) | {op.arg})]
    if isinstance(op, alg.Aggr):
        child_req = frozenset(filter(None, (op.arg, op.group, op.order_col)))
        if not child_req:
            child_req = frozenset(schema_of(op.child, schema_memo)[:1])
        return [(op.child, child_req)]
    if isinstance(op, alg.StepJoin):
        return [(op.child, frozenset({op.iter_col, op.item_col}))]
    if isinstance(op, alg.GenRange):
        return [(op.child, frozenset({"iter", op.lo_col, op.hi_col}))]
    # constructors / DocRoot: children keep their full schemas
    return [
        (c, frozenset(schema_of(c, schema_memo))) for c in op.children
    ]


def _restrict(op: alg.Op, required: frozenset, schema_memo) -> alg.Op:
    """Wrap ``op`` in a projection keeping only ``required`` columns."""
    schema = schema_of(op, schema_memo)
    keep = tuple(c for c in schema if c in required)
    if keep == schema:
        return op
    return alg.Project(op, tuple((c, c) for c in keep))


def _operand_cols(*operands) -> frozenset:
    return frozenset(v for tag, v in operands if tag == "col")


def _prune_rewrite(op, required, rebuilt, schema_memo):
    # children were already pruned against their accumulated requirements
    def rec(child, req):
        return rebuilt[id(child)]

    if isinstance(op, alg.Lit):
        keep = tuple(c for c in op.schema if c in required) or op.schema[:1]
        if keep == op.schema:
            return op
        idx = {name: i for i, name in enumerate(op.schema)}
        rows = tuple(tuple(row[idx[c]] for c in keep) for row in op.rows)
        return alg.Lit(keep, rows, op.item_cols & frozenset(keep))

    if isinstance(op, alg.Project):
        cols = tuple((new, old) for new, old in op.cols if new in required)
        if not cols:
            cols = op.cols[:1]
        child_req = frozenset(old for _, old in cols)
        child = rec(op.child, child_req)
        return alg.Project(child, cols)

    # NB: downstream of here, operators are allowed to deliver *more*
    # columns than required — extra columns are cut at the next enclosing
    # projection.  Only Union branches and Difference/SemiJoin right sides
    # need exact schemas, and they get explicit restrictions.
    if isinstance(op, alg.Select):
        child_req = required | _operand_cols(op.lhs, op.rhs)
        child = rec(op.child, child_req)
        return alg.Select(child, op.op, op.lhs, op.rhs)

    if isinstance(op, alg.Union):
        inputs = tuple(
            _restrict(rec(i, required), required, schema_memo) for i in op.inputs
        )
        return alg.Union(inputs)

    if isinstance(op, alg.Difference):
        keys = frozenset(op.keys)
        left = rec(op.left, required | keys)
        right = _restrict(rec(op.right, keys), keys, schema_memo)
        return alg.Difference(left, right, op.keys)

    if isinstance(op, alg.Distinct):
        keys = frozenset(op.keys)
        extra = frozenset([op.order_col]) if op.order_col else frozenset()
        child = rec(op.child, required | keys | extra)
        return alg.Distinct(child, op.keys, op.order_col)

    if isinstance(op, (alg.Join, alg.SemiJoin)):
        lkeys = frozenset(l for l, _ in op.keys)
        rkeys = frozenset(r for _, r in op.keys)
        lschema = frozenset(schema_of(op.left, schema_memo))
        left = rec(op.left, (required & lschema) | lkeys)
        if isinstance(op, alg.SemiJoin):
            right = _restrict(rec(op.right, rkeys), rkeys, schema_memo)
            return alg.SemiJoin(left, right, op.keys)
        rschema = frozenset(schema_of(op.right, schema_memo))
        right = rec(op.right, (required & rschema) | rkeys)
        return alg.Join(left, right, op.keys)

    if isinstance(op, alg.Cross):
        lschema = frozenset(schema_of(op.left, schema_memo))
        rschema = frozenset(schema_of(op.right, schema_memo))
        lreq = required & lschema
        rreq = required & rschema
        left = rec(op.left, lreq or frozenset(list(lschema)[:1]))
        right = rec(op.right, rreq or frozenset(list(rschema)[:1]))
        return alg.Cross(left, right)

    if isinstance(op, alg.RowNum):
        if op.target not in required:
            return rec(op.child, required)
        child_req = (required - {op.target}) | frozenset(c for c, _ in op.order)
        if op.group:
            child_req |= {op.group}
        child = rec(op.child, child_req)
        return alg.RowNum(child, op.target, op.order, op.group)

    if isinstance(op, alg.Map):
        if op.target not in required:
            return rec(op.child, required)
        child_req = (required - {op.target}) | _operand_cols(*op.args)
        child = rec(op.child, child_req)
        return alg.Map(child, op.fn, op.target, op.args)

    if isinstance(op, alg.Atomize):
        if op.target not in required:
            return rec(op.child, required)
        child_req = (required - {op.target}) | {op.arg}
        child = rec(op.child, child_req)
        return alg.Atomize(child, op.target, op.arg)

    if isinstance(op, alg.Aggr):
        child_req = frozenset(filter(None, (op.arg, op.group, op.order_col)))
        child = rec(op.child, child_req or frozenset(schema_of(op.child, schema_memo)[:1]))
        return alg.Aggr(
            child, op.kind, op.target, op.arg, op.group, op.sep, op.order_col
        )

    if isinstance(op, alg.StepJoin):
        child = rec(op.child, frozenset({op.iter_col, op.item_col}))
        child = _restrict(child, frozenset({op.iter_col, op.item_col}), schema_memo)
        return alg.StepJoin(child, op.axis, op.test, op.iter_col, op.item_col)

    if isinstance(op, alg.GenRange):
        need = frozenset({"iter", op.lo_col, op.hi_col})
        child = rec(op.child, need)
        return alg.GenRange(child, op.lo_col, op.hi_col)

    if isinstance(
        op,
        (alg.ElemConstr, alg.TextConstr, alg.AttrConstr, alg.DocRoot, alg.ParamTable),
    ):
        # children have fixed small schemas; just recurse with them
        children = tuple(
            rec(c, frozenset(schema_of(c, schema_memo))) for c in op.children
        )
        return _with_children(op, children)

    raise AlgebraError(f"prune: unhandled op {type(op).__name__}")


# --------------------------------------------------------------------------
# pass: projection merging / identity removal
# --------------------------------------------------------------------------
def _merge_projects(root: alg.Op) -> alg.Op:
    schema_memo: dict[int, tuple[str, ...]] = {}
    rebuilt: dict[int, alg.Op] = {}
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        new = _with_children(node, children)
        if isinstance(new, alg.Project):
            child = new.child
            if isinstance(child, alg.Project):
                inner = dict((n, o) for n, o in child.cols)
                new = alg.Project(
                    child.child, tuple((n, inner[o]) for n, o in new.cols)
                )
                child = new.child
            child_schema = schema_of(child, schema_memo)
            if tuple(n for n, _ in new.cols) == child_schema and all(
                n == o for n, o in new.cols
            ):
                new = child
        rebuilt[id(node)] = new
    return rebuilt[id(root)]
