"""The rewrite-pass plan optimizer.

Loop-lifted plans are large and mechanical — the paper reports ~120
operators for XMark Q8 before optimization and cites peephole-style
rewriting [Grust, "Purely Relational FLWORs", XIME-P 2005] as the remedy.
This module organises that rewriting as an ordered pipeline of **named
rewrite passes** over the algebra DAG, run to a fixpoint by
:func:`optimize`.  Each pass is a pure ``plan → plan`` transform that
reports how many rewrites fired; per-pass statistics (operator counts,
rewrites, estimated root cardinality) surface through
:class:`OptimizerStats` into ``Session.explain`` and the CLI.

The default pipeline, in order (see ``docs/ARCHITECTURE.md`` for a worked
example):

* **cse** — hash-consing: structurally identical subplans are shared
  (loop-lifting emits the same ``loop`` relation many times);
* **fold** — compile-time evaluation: σ/π over literal tables, unions of
  literals, and empty-input propagation;
* **fuse_select** — ``σ (t = true) ∘ ⊛ t:cmp(a,b)`` becomes a direct
  ``σ a cmp b``, exposing the comparison to the passes below;
* **pushdown** — selections (σ) and semijoin restrictions (⋉) move below
  π, ⋈, ×, ⊛, ∪, ϱ, δ, aggregates and staircase joins whenever they only
  constrain one input, so downstream operators see fewer rows;
* **join_recognition** — ``σ (a = b)`` over a cross product (or over an
  equi-join, as an extra key) becomes an equi-join when both columns are
  plain numeric columns;
* **distinct_elim** — δ over provably duplicate-free input is dropped
  (e.g. directly above a staircase join, whose output is already
  sorted-distinct per iteration);
* **prune** — required-column (*icols*) analysis: only columns an
  ancestor consumes are kept; dead ``Map``/``RowNum``/``Atomize``
  targets are dropped entirely;
* **merge_projects** — π ∘ π collapses, identity π disappears;
* **join_order** — join inputs are swapped (under a schema-restoring π)
  so the side the sort-merge kernel sorts is the one estimated smaller,
  using :class:`CardinalityEstimator` seeded from literal/document leaves.

All rewrites except ``join_order`` are row-order-exact; ``join_order``
preserves the multiset of rows and refuses to reorder joins beneath any
consumer whose result could depend on physical row order (δ/str_join
without an order column, ϱ with ambiguous ties — see
:func:`_order_sensitive`).  The plan-equivalence test corpus guards all
of it end to end.

:func:`optimize` additionally selects between three planning strategies
(:data:`OPTIMIZER_MODES`): ``cost`` runs the default pipeline above to a
fixpoint; ``greedy`` runs one round of the three highest-impact passes
plus a statistics-free syntax-ranked join ordering (no fixpoint, no
fingerprints, no cardinality estimation — a fraction of the planning
cost); ``wcoj`` appends a ``twig_collapse`` pass fusing chains of
staircase steps into one multi-way
:class:`~repro.relational.algebra.StructuralTwigJoin`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.encoding.axes import Axis
from repro.errors import AlgebraError
from repro.relational import algebra as alg


# --------------------------------------------------------------------------
# static schema inference
# --------------------------------------------------------------------------
def schema_of(op: alg.Op, memo: dict[int, tuple[str, ...]] | None = None) -> tuple[str, ...]:
    """Infer the output schema of a plan node (column names)."""
    if memo is None:
        memo = {}
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    result = _schema(op, memo)
    memo[id(op)] = result
    return result


def _schema(op: alg.Op, memo) -> tuple[str, ...]:
    if isinstance(op, alg.Lit):
        return op.schema
    if isinstance(op, alg.Project):
        return tuple(new for new, _ in op.cols)
    if isinstance(op, (alg.Select,)):
        return schema_of(op.child, memo)
    if isinstance(op, alg.Union):
        return schema_of(op.inputs[0], memo)
    if isinstance(op, (alg.Difference, alg.SemiJoin)):
        return schema_of(op.left, memo)
    if isinstance(op, alg.Distinct):
        return schema_of(op.child, memo)
    if isinstance(op, (alg.Join, alg.Cross)):
        return schema_of(op.left, memo) + schema_of(op.right, memo)
    if isinstance(op, (alg.RowNum, alg.Map)):
        base = schema_of(op.child, memo)
        return base if op.target in base else base + (op.target,)
    if isinstance(op, alg.Atomize):
        base = schema_of(op.child, memo)
        return base if op.target in base else base + (op.target,)
    if isinstance(op, alg.Aggr):
        return (op.group, op.target) if op.group else (op.target,)
    if isinstance(op, (alg.StepJoin, alg.StructuralTwigJoin)):
        return (op.iter_col, op.item_col)
    if isinstance(op, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
        return ("iter", "item")
    if isinstance(op, (alg.DocRoot, alg.GenRange)):
        return ("iter", "pos", "item")
    if isinstance(op, alg.ParamTable):
        return ("pos", "item")
    raise AlgebraError(f"cannot infer schema of {type(op).__name__}")


def _item_cols_of(op: alg.Op, memo: dict[int, frozenset]) -> frozenset:
    """Which output columns are polymorphic item columns (best effort)."""
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    result = _item_cols(op, memo)
    memo[id(op)] = result
    return result


def _item_cols(op: alg.Op, memo) -> frozenset:
    if isinstance(op, alg.Lit):
        return op.item_cols
    if isinstance(op, alg.Project):
        child = _item_cols_of(op.child, memo)
        return frozenset(new for new, old in op.cols if old in child)
    if isinstance(op, (alg.Select, alg.Distinct)):
        return _item_cols_of(op.child, memo)
    if isinstance(op, alg.Union):
        return _item_cols_of(op.inputs[0], memo)
    if isinstance(op, (alg.Difference, alg.SemiJoin)):
        return _item_cols_of(op.left, memo)
    if isinstance(op, (alg.Join, alg.Cross)):
        return _item_cols_of(op.left, memo) | _item_cols_of(op.right, memo)
    if isinstance(op, alg.RowNum):
        return _item_cols_of(op.child, memo)
    if isinstance(op, alg.Map):
        base = _item_cols_of(op.child, memo)
        if op.fn in ("kind_code", "atom_cls", "atom_key"):
            return base - {op.target}
        return base | {op.target}
    if isinstance(op, alg.Atomize):
        return _item_cols_of(op.child, memo) | {op.target}
    if isinstance(op, alg.Aggr):
        if op.kind == "count":
            return frozenset()
        return frozenset({op.target})
    if isinstance(op, (alg.StepJoin, alg.StructuralTwigJoin)):
        return frozenset({op.item_col})
    if isinstance(op, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
        return frozenset({"item"})
    if isinstance(op, (alg.DocRoot, alg.GenRange, alg.ParamTable)):
        return frozenset({"item"})
    return frozenset()


# --------------------------------------------------------------------------
# cardinality estimation
# --------------------------------------------------------------------------
#: crude textbook selectivities for σ predicates (column vs constant /
#: column vs column); only *relative* magnitudes matter, for join ordering
_SEL_EQ_CONST = 0.1
_SEL_CMP_CONST = 0.4
_SEL_COL_COL = 0.25

#: per-axis output growth factors used by :class:`CardinalityEstimator`
_UNIT_AXES = frozenset({Axis.SELF, Axis.PARENT, Axis.ATTRIBUTE})
_DEEP_AXES = frozenset(
    {Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.FOLLOWING, Axis.PRECEDING}
)


@dataclass
class CardinalityEstimator:
    """Simple bottom-up row-count estimates for plan DAGs.

    Estimates are seeded at the leaves — ``Lit`` row counts, ``DocRoot``
    (one row), ``GenRange`` expansion — and scaled upward with document
    statistics taken from the :class:`~repro.encoding.arena.NodeArena`
    (total shredded nodes per document, mean branching factor).  They are
    deliberately crude: the only consumer that *decides* anything with
    them is the ``join_order`` pass, which needs no more than "which join
    input is likely larger"; ``OptimizerStats`` additionally reports them
    for observability.
    """

    #: per-document shredded node counts (uri → rows of the node table)
    doc_rows: dict[str, float] = field(default_factory=dict)
    #: mean children per element — the child-axis growth factor
    child_fanout: float = 4.0
    #: growth factor of descendant-flavoured axes
    descendant_fanout: float = 16.0

    @classmethod
    def from_database(cls, arena, documents: dict[str, int]) -> "CardinalityEstimator":
        """Seed an estimator from a node arena and its document catalog."""
        # statistics must not fault cold fragments in: subtree_nodes and
        # logical_column answer from the paging records/memmaps directly
        doc_rows = {
            uri: float(arena.subtree_nodes(root)) for uri, root in documents.items()
        }
        total = sum(doc_rows.values())
        child_fanout, descendant_fanout = 4.0, 16.0
        if total > 1 and arena.num_nodes:
            level = arena.logical_column("level")
            depth = float(level.max()) if len(level) else 1.0
            depth = max(depth, 1.0)
            # nodes ≈ fanout^depth  ⇒  fanout ≈ nodes^(1/depth)
            child_fanout = min(max(total ** (1.0 / depth), 2.0), 64.0)
            descendant_fanout = min(max(child_fanout**2, 16.0), total)
        return cls(doc_rows, child_fanout, descendant_fanout)

    def estimate(self, op: alg.Op, memo: dict | None = None) -> float:
        """Estimated number of output rows of ``op`` (never below 0).

        ``memo`` is keyed by the operator objects themselves (operators
        hash by identity), so one memo can safely be reused across
        several plans sharing subtrees.
        """
        if memo is None:
            memo = {}
        cached = memo.get(op)
        if cached is not None:
            return cached
        result = self._estimate(op, memo)
        memo[op] = result
        return result

    def _estimate(self, op: alg.Op, memo) -> float:
        est = lambda c: self.estimate(c, memo)  # noqa: E731
        if isinstance(op, alg.Lit):
            return float(len(op.rows))
        if isinstance(op, alg.DocRoot):
            return 1.0
        if isinstance(op, alg.ParamTable):
            return 4.0  # bindings are unknown at compile time
        if isinstance(op, (alg.Project, alg.Map, alg.Atomize, alg.RowNum)):
            return est(op.child)
        if isinstance(op, alg.Select):
            consts = sum(1 for tag, _ in (op.lhs, op.rhs) if tag == "const")
            if consts:
                sel = _SEL_EQ_CONST if op.op == "eq" else _SEL_CMP_CONST
            else:
                sel = _SEL_COL_COL
            return est(op.child) * sel
        if isinstance(op, alg.Union):
            return sum(est(i) for i in op.inputs)
        if isinstance(op, alg.Difference):
            return est(op.left) * 0.6
        if isinstance(op, alg.SemiJoin):
            return est(op.left) * 0.6
        if isinstance(op, alg.Distinct):
            return est(op.child) * 0.6
        if isinstance(op, alg.Join):
            # assume a foreign-key-flavoured equi-join
            return max(est(op.left), est(op.right))
        if isinstance(op, alg.Cross):
            return est(op.left) * est(op.right)
        if isinstance(op, alg.Aggr):
            if op.group is None:
                return 1.0
            return max(est(op.child) * 0.2, 1.0)
        if isinstance(op, alg.StepJoin):
            if op.axis in _UNIT_AXES:
                fanout = 1.0
            elif op.axis in _DEEP_AXES:
                fanout = self.descendant_fanout
                if self.doc_rows and self._reaches_doc(op.child, memo):
                    # a descendant-flavoured step fanning out of a document
                    # root scans whole documents, not a fixed factor
                    fanout = max(fanout, max(self.doc_rows.values()))
            else:
                fanout = self.child_fanout
            return est(op.child) * fanout
        if isinstance(op, alg.StructuralTwigJoin):
            rows = est(op.child)
            for axis, _ in op.steps:
                if axis in _UNIT_AXES:
                    rows *= 1.0
                elif axis in _DEEP_AXES:
                    rows *= self.descendant_fanout
                else:
                    rows *= self.child_fanout
            return rows
        if isinstance(op, alg.GenRange):
            return est(op.child) * 8.0
        if isinstance(op, (alg.ElemConstr, alg.AttrConstr)):
            return est(op.children[0])
        if isinstance(op, alg.TextConstr):
            return est(op.content)
        return 1.0

    def _reaches_doc(self, op: alg.Op, memo) -> bool:
        """Does ``op``'s subtree contain a ``DocRoot`` leaf?  (Memoised in
        the same dict as the row estimates, under tagged keys.)"""
        key = ("doc", op)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = False  # cycle-safe default; plans are DAGs anyway
        result = isinstance(op, alg.DocRoot) or any(
            self._reaches_doc(c, memo) for c in op.children
        )
        memo[key] = result
        return result


# --------------------------------------------------------------------------
# uniqueness analysis (feeds the distinct_elim pass)
# --------------------------------------------------------------------------
_MAX_UNIQUE_SETS = 8


def _unique_sets(op: alg.Op, memo: dict[int, frozenset]) -> frozenset:
    """Column sets on which ``op``'s output rows are provably unique.

    The empty set means the relation has at most one row (then every key
    set is trivially unique).  Best-effort and capped: missing facts are
    always safe, they only make ``distinct_elim`` fire less.
    """
    cached = memo.get(id(op))
    if cached is not None:
        return cached
    # deterministic truncation: prefer the most general (smallest) facts
    ordered = sorted(_unique(op, memo), key=lambda s: (len(s), sorted(s)))
    result = frozenset(ordered[:_MAX_UNIQUE_SETS])
    memo[id(op)] = result
    return result


def _unique(op: alg.Op, memo) -> frozenset:
    if isinstance(op, alg.Lit):
        return frozenset({frozenset()}) if len(op.rows) <= 1 else frozenset()
    if isinstance(op, (alg.DocRoot,)):
        return frozenset({frozenset()})
    if isinstance(op, alg.ParamTable):
        return frozenset({frozenset({"pos"})})
    if isinstance(op, (alg.StepJoin, alg.StructuralTwigJoin)):
        return frozenset({frozenset({op.iter_col, op.item_col})})
    if isinstance(op, alg.GenRange):
        # each iteration's range has distinct values and dense pos — but
        # only if no iteration occurs twice in the input
        if any(u <= frozenset({"iter"}) for u in _unique_sets(op.child, memo)):
            return frozenset(
                {frozenset({"iter", "pos"}), frozenset({"iter", "item"})}
            )
        return frozenset()
    if isinstance(op, alg.Distinct):
        return _unique_sets(op.child, memo) | frozenset({frozenset(op.keys)})
    if isinstance(op, (alg.Select, alg.SemiJoin, alg.Difference)):
        return _unique_sets(op.children[0], memo)
    if isinstance(op, (alg.Map, alg.Atomize)):
        # the target may overwrite a column: facts mentioning it go stale
        return frozenset(
            s for s in _unique_sets(op.child, memo) if op.target not in s
        )
    if isinstance(op, alg.RowNum):
        base = frozenset(
            s for s in _unique_sets(op.child, memo) if op.target not in s
        )
        mine = frozenset({op.target}) if op.group is None else frozenset(
            {op.group, op.target}
        )
        return base | frozenset({mine})
    if isinstance(op, alg.Project):
        out = set()
        by_old: dict[str, str] = {}
        for new, old in op.cols:
            by_old.setdefault(old, new)
        for s in _unique_sets(op.child, memo):
            if all(c in by_old for c in s):
                out.add(frozenset(by_old[c] for c in s))
        return frozenset(out)
    if isinstance(op, alg.Aggr):
        if op.group is None:
            return frozenset({frozenset()})
        return frozenset({frozenset({op.group})})
    if isinstance(op, (alg.Join, alg.Cross)):
        lsets = _unique_sets(op.left, memo)
        rsets = _unique_sets(op.right, memo)
        out = {ls | rs for ls in lsets for rs in rsets}
        if isinstance(op, alg.Join):
            # right unique on the join keys ⇒ each left row matches ≤ 1
            rkeys = frozenset(r for _, r in op.keys)
            if any(rs <= rkeys for rs in rsets):
                out |= set(lsets)
            lkeys = frozenset(l for l, _ in op.keys)
            if any(ls <= lkeys for ls in lsets):
                out |= set(rsets)
        return frozenset(out)
    return frozenset()


# --------------------------------------------------------------------------
# optimizer statistics
# --------------------------------------------------------------------------
@dataclass
class PassStats:
    """Aggregated statistics of one named rewrite pass across all rounds."""

    #: registry name of the pass (see :data:`PASS_NAMES`)
    name: str
    #: how many fixpoint rounds ran this pass
    runs: int = 0
    #: total rewrites the pass fired
    rewrites: int = 0
    #: operator count before the pass first ran
    ops_before: int = 0
    #: operator count after the pass most recently ran
    ops_after: int = 0
    #: estimated root cardinality after the pass most recently ran
    est_rows: float | None = None
    #: total wall-clock seconds spent inside the pass across all rounds
    seconds: float = 0.0


@dataclass
class OptimizerStats:
    """Plan-level and per-pass optimizer counters (benchmark E6, explain)."""

    #: operator count of the plan handed to :func:`optimize`
    ops_before: int = 0
    #: operator count of the returned plan
    ops_after: int = 0
    #: fixpoint rounds executed
    passes: int = 0
    #: per-pass statistics, in pipeline order
    pass_stats: list[PassStats] = field(default_factory=list)
    #: estimated root cardinality of the optimized plan
    estimated_rows: float | None = None

    @property
    def reduction_pct(self) -> float:
        """Plan-size reduction achieved, as a percentage of ``ops_before``."""
        if self.ops_before == 0:
            return 0.0
        return 100.0 * (self.ops_before - self.ops_after) / self.ops_before

    def pass_table(self) -> str:
        """The per-pass statistics as an aligned text table."""
        header = (
            f"{'pass':<18}{'runs':>5}{'fired':>7}{'ops in':>8}"
            f"{'ops out':>9}{'est rows':>10}{'ms':>8}"
        )
        lines = [header]
        for p in self.pass_stats:
            est = f"{p.est_rows:,.0f}" if p.est_rows is not None else "-"
            lines.append(
                f"{p.name:<18}{p.runs:>5}{p.rewrites:>7}{p.ops_before:>8}"
                f"{p.ops_after:>9}{est:>10}{p.seconds * 1000.0:>8.2f}"
            )
        return "\n".join(lines)


# --------------------------------------------------------------------------
# optimizer driver
# --------------------------------------------------------------------------
@dataclass(frozen=True)
class RewritePass:
    """A named, stats-reporting transform over the algebra DAG."""

    #: registry name (what ``disabled=`` and the CLI refer to)
    name: str
    #: one-line description (docs, ``--explain`` output)
    description: str
    #: the transform: ``(root, estimator) → (new_root, rewrites_fired)``
    fn: Callable[[alg.Op, "CardinalityEstimator"], tuple[alg.Op, int]]


_MAX_ROUNDS = 10

#: the selectable planning strategies (see :func:`optimize`)
OPTIMIZER_MODES: tuple[str, ...] = ("cost", "greedy", "wcoj")


#: the passes ``greedy`` keeps from the default pipeline (one round each):
#: cse dedups the shared-subtree DAG, pushdown moves selections below the
#: joins, prune drops dead columns — the three with the largest measured
#: execution impact; everything else is planning cost greedy does without
_GREEDY_PASS_NAMES: tuple[str, ...] = ("cse", "pushdown", "prune")


def _pipeline_for_mode(
    mode: str,
) -> tuple[tuple[RewritePass, ...], tuple[RewritePass, ...]]:
    """(fixpoint passes, post-fixpoint passes) for an optimizer mode.

    ``twig_collapse`` is a *post* pass: it must only fire once the
    pipeline has converged, because a collapsed twig hides its pairwise
    steps from pushdown and join ordering — collapsing mid-fixpoint
    measurably regressed plans whose steps still had selections to push.
    """
    if mode == "greedy":
        loop = tuple(p for p in PASSES if p.name in _GREEDY_PASS_NAMES)
        return loop + (_GREEDY_PASS,), ()
    if mode == "wcoj":
        return PASSES, (_TWIG_PASS,)
    return PASSES, ()


def pass_names_for_mode(mode: str) -> tuple[str, ...]:
    """Every pass name :func:`optimize` accepts in ``disabled`` under
    ``mode``: the default registry (:data:`PASS_NAMES`) plus the mode's
    own passes (``greedy_order``, ``twig_collapse``) — what the CLI
    validates ``--disable-pass`` against."""
    names = list(PASS_NAMES)
    loop, post = _pipeline_for_mode(mode)
    names.extend(p.name for p in loop + post if p.name not in names)
    return tuple(names)


def optimize(
    root: alg.Op,
    stats: OptimizerStats | None = None,
    *,
    disabled: frozenset[str] | set[str] | tuple = frozenset(),
    estimator: CardinalityEstimator | None = None,
    trace: list | None = None,
    mode: str = "cost",
) -> alg.Op:
    """Run the rewrite-pass pipeline to a (bounded) fixpoint.

    ``mode`` selects the planning strategy (:data:`OPTIMIZER_MODES`):

    * ``cost`` — the default pipeline; ``join_order`` decides with the
      cardinality estimator and per-pass statistics include estimates;
    * ``greedy`` — no statistics anywhere: a single round of the three
      highest-impact passes (:data:`_GREEDY_PASS_NAMES`) plus the
      syntax-ranked ``greedy_order`` pass, with no fixpoint iteration,
      no structural fingerprints and no cardinality estimates —
      planning cost drops sharply, plan quality may too (execution-time
      early termination on empty intermediates limits the downside);
    * ``wcoj`` — the ``cost`` pipeline plus a final ``twig_collapse``
      pass that fuses chains of pairwise staircase steps into one
      multi-way :class:`~repro.relational.algebra.StructuralTwigJoin`.

    ``disabled`` names passes to skip (must be members of
    :data:`PASS_NAMES` or of the selected mode's pipeline); ``estimator``
    seeds cardinality estimation (a default, statistics-free estimator is
    used when omitted); ``trace``, when a list, receives one
    ``(pass_name, plan)`` snapshot after every pass application that
    changed the plan — the hook behind ``examples/plan_explorer.py``'s
    per-pass diffs.
    """
    if mode not in OPTIMIZER_MODES:
        raise AlgebraError(
            f"unknown optimizer mode {mode!r}; "
            f"available: {', '.join(OPTIMIZER_MODES)}"
        )
    pipeline, post = _pipeline_for_mode(mode)
    allowed = set(PASS_NAMES) | {p.name for p in pipeline + post}
    unknown = set(disabled) - allowed
    if unknown:
        raise AlgebraError(
            f"unknown optimizer pass(es) {sorted(unknown)}; "
            f"available: {', '.join(PASS_NAMES)}"
        )
    collect = stats is not None
    estimates = mode != "greedy"
    est = estimator if estimator is not None else CardinalityEstimator()
    active = [p for p in pipeline if p.name not in set(disabled)]
    post_active = [p for p in post if p.name not in set(disabled)]
    per = {p.name: PassStats(p.name) for p in (*active, *post_active)}
    # one object-keyed estimate memo for the whole run: shared subtrees
    # surviving a pass keep their cached estimates
    est_memo: dict = {}
    cur_ops = alg.op_count(root) if collect else 0
    if collect:
        stats.ops_before = cur_ops

    def _apply(p: RewritePass) -> None:
        nonlocal root, cur_ops
        if collect:
            ps = per[p.name]
            if ps.runs == 0:
                ps.ops_before = cur_ops
        t0 = time.perf_counter()
        new_root, fired = p.fn(root, est)
        elapsed = time.perf_counter() - t0
        if collect:
            ps.runs += 1
            ps.rewrites += fired
            ps.seconds += elapsed
            if fired:
                cur_ops = alg.op_count(new_root)
            ps.ops_after = cur_ops
            if estimates:
                ps.est_rows = est.estimate(new_root, est_memo)
        if trace is not None and fired and new_root is not root:
            trace.append((p.name, new_root))
        root = new_root

    rounds = 0
    fingerprint = _fingerprint(root) if estimates else None
    for i in range(_MAX_ROUNDS):
        rounds = i + 1
        for p in active:
            _apply(p)
        if not estimates:
            # greedy: one round, no fixpoint iteration — each pass gets
            # one shot and execution-time early termination on empty
            # intermediates covers what a second round would have won
            break
        next_fingerprint = _fingerprint(root)
        if next_fingerprint == fingerprint:
            break
        fingerprint = next_fingerprint
    for p in post_active:
        # post passes fire exactly once, on the converged plan (wcoj's
        # twig_collapse: fused twigs must not hide steps from the loop)
        _apply(p)
    if collect:
        stats.passes = rounds
        stats.ops_after = alg.op_count(root)
        stats.pass_stats = list(per.values())
        if estimates:
            stats.estimated_rows = est.estimate(root, est_memo)
    return root


def _fingerprint(root: alg.Op) -> tuple:
    """A structural fingerprint of the DAG (fixpoint detection).

    Exact, not a hash: two fingerprints compare equal iff the canonical
    key sets (and the root's canonical id) are identical.
    """
    canon: dict[tuple, int] = {}
    ids: dict[int, int] = {}
    for node in alg.walk(root):
        key = node.struct_key(tuple(ids[id(c)] for c in node.children))
        ids[id(node)] = canon.setdefault(key, len(canon))
    return (ids[id(root)], frozenset(canon))


def _rewrite_bottom_up(root: alg.Op, rewrite_one) -> tuple[alg.Op, int]:
    """Shared pass skeleton: rebuild the DAG children-first, offering
    every node to ``rewrite_one(node) -> Op | None``; counts the nodes it
    rewrote.  New passes usually only need a ``rewrite_one``."""
    rebuilt: dict[int, alg.Op] = {}
    fired = 0
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        new = _with_children(node, children)
        replacement = rewrite_one(new)
        if replacement is not None and replacement is not new:
            new = replacement
            fired += 1
        rebuilt[id(node)] = new
    return rebuilt[id(root)], fired


# --------------------------------------------------------------------------
# pass: common subexpression elimination (hash consing)
# --------------------------------------------------------------------------
def _cse(root: alg.Op, est) -> tuple[alg.Op, int]:
    canon: dict[tuple, alg.Op] = {}
    rebuilt: dict[int, alg.Op] = {}
    fired = 0
    for node in alg.walk(root):
        child_ids = tuple(id(rebuilt[id(c)]) for c in node.children)
        new_children = tuple(rebuilt[id(c)] for c in node.children)
        candidate = _with_children(node, new_children)
        key = candidate.struct_key(child_ids)
        existing = canon.get(key)
        if existing is None:
            canon[key] = candidate
            rebuilt[id(node)] = candidate
        else:
            rebuilt[id(node)] = existing
            fired += 1
    return rebuilt[id(root)], fired


def _with_children(node: alg.Op, children: tuple[alg.Op, ...]) -> alg.Op:
    """Clone ``node`` with new children (no-op when nothing changed)."""
    if tuple(node.children) == children:
        return node
    if isinstance(node, alg.Project):
        return alg.Project(children[0], node.cols)
    if isinstance(node, alg.Select):
        return alg.Select(children[0], node.op, node.lhs, node.rhs)
    if isinstance(node, alg.Union):
        return alg.Union(children)
    if isinstance(node, alg.Difference):
        return alg.Difference(children[0], children[1], node.keys)
    if isinstance(node, alg.Distinct):
        return alg.Distinct(children[0], node.keys, node.order_col)
    if isinstance(node, alg.Join):
        return alg.Join(children[0], children[1], node.keys)
    if isinstance(node, alg.SemiJoin):
        return alg.SemiJoin(children[0], children[1], node.keys)
    if isinstance(node, alg.Cross):
        return alg.Cross(children[0], children[1])
    if isinstance(node, alg.RowNum):
        return alg.RowNum(children[0], node.target, node.order, node.group)
    if isinstance(node, alg.Map):
        return alg.Map(children[0], node.fn, node.target, node.args)
    if isinstance(node, alg.Aggr):
        return alg.Aggr(
            children[0], node.kind, node.target, node.arg, node.group,
            node.sep, node.order_col,
        )
    if isinstance(node, alg.StepJoin):
        return alg.StepJoin(children[0], node.axis, node.test, node.iter_col, node.item_col)
    if isinstance(node, alg.StructuralTwigJoin):
        return alg.StructuralTwigJoin(
            children[0], node.steps, node.iter_col, node.item_col
        )
    if isinstance(node, alg.Atomize):
        return alg.Atomize(children[0], node.target, node.arg)
    if isinstance(node, alg.ElemConstr):
        return alg.ElemConstr(children[0], children[1])
    if isinstance(node, alg.TextConstr):
        return alg.TextConstr(children[0])
    if isinstance(node, alg.AttrConstr):
        return alg.AttrConstr(children[0], children[1])
    if isinstance(node, alg.GenRange):
        return alg.GenRange(children[0], node.lo_col, node.hi_col)
    if isinstance(node, (alg.Lit, alg.DocRoot, alg.ParamTable)):
        return node
    raise AlgebraError(f"cannot clone {type(node).__name__}")


# --------------------------------------------------------------------------
# pass: literal folding and empty propagation
# --------------------------------------------------------------------------
def _is_empty_lit(op: alg.Op) -> bool:
    return isinstance(op, alg.Lit) and not op.rows


def _empty_like(op: alg.Op) -> alg.Lit:
    memo: dict[int, tuple[str, ...]] = {}
    imemo: dict[int, frozenset] = {}
    return alg.Lit(schema_of(op, memo), (), _item_cols_of(op, imemo))


def _fold(root: alg.Op, est) -> tuple[alg.Op, int]:
    return _rewrite_bottom_up(root, _fold_one)


def _fold_one(node: alg.Op) -> alg.Op:
    # constructors have side effects; never fold them away
    if isinstance(node, (alg.ElemConstr, alg.TextConstr, alg.AttrConstr)):
        return node
    if isinstance(node, alg.Select):
        child = node.child
        if _is_empty_lit(child):
            return child
        if isinstance(child, alg.Lit) and _foldable_pred(node, child):
            return _fold_select_lit(node, child)
    if isinstance(node, alg.Project):
        child = node.child
        if isinstance(child, alg.Lit):
            idx = {name: i for i, name in enumerate(child.schema)}
            if all(old in idx for _, old in node.cols):
                rows = tuple(
                    tuple(row[idx[old]] for _, old in node.cols) for row in child.rows
                )
                new_items = frozenset(
                    new for new, old in node.cols if old in child.item_cols
                )
                return alg.Lit(tuple(n for n, _ in node.cols), rows, new_items)
    if isinstance(node, alg.Union):
        inputs = [i for i in node.inputs if not _is_empty_lit(i)]
        if not inputs:
            return node.inputs[0]
        if len(inputs) == 1:
            return inputs[0]
        if len(inputs) != len(node.inputs):
            return alg.Union(tuple(inputs))
        if all(isinstance(i, alg.Lit) for i in inputs):
            first = inputs[0]
            if all(i.schema == first.schema and i.item_cols == first.item_cols for i in inputs):
                rows = tuple(r for i in inputs for r in i.rows)
                return alg.Lit(first.schema, rows, first.item_cols)
    if isinstance(node, (alg.Map, alg.RowNum, alg.Distinct, alg.Atomize)):
        if _is_empty_lit(node.child):
            return _empty_like(node)
    if isinstance(node, alg.Map):
        child = node.child
        if isinstance(child, alg.Lit):
            folded = _fold_map_lit(node, child)
            if folded is not None:
                return folded
    if isinstance(node, alg.Atomize):
        child = node.child
        if isinstance(child, alg.Lit) and node.arg in child.item_cols:
            # literal rows hold Python scalars, never nodes: fn:data is the
            # identity, so the target column is a copy of the argument
            idx = child.schema.index(node.arg)
            return _lit_with_column(
                child, node.target, [row[idx] for row in child.rows]
            )
    if isinstance(node, (alg.StepJoin, alg.StructuralTwigJoin)):
        if _is_empty_lit(node.child):
            return alg.Lit(
                (node.iter_col, node.item_col), (), frozenset({node.item_col})
            )
    if isinstance(node, (alg.Join, alg.Cross)):
        if _is_empty_lit(node.left) or _is_empty_lit(node.right):
            return _empty_like(node)
    if isinstance(node, alg.SemiJoin):
        if _is_empty_lit(node.left) or _is_empty_lit(node.right):
            return _empty_like(node)
    if isinstance(node, alg.Difference):
        if _is_empty_lit(node.left):
            return node.left
        if _is_empty_lit(node.right):
            return node.left
    return node


#: ⊛ functions foldable over literal int/bool operands: exactly those whose
#: evaluator kernel reduces to Python's own int/bool semantics there
_FOLD_MAP_FNS: dict[str, Callable] = {
    "ebv": lambda a: bool(a),
    "not": lambda a: not bool(a),
    # literal ints are xs:integer items, literal bools xs:boolean items
    "is_numeric": lambda a: not isinstance(a, bool),
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "eq": lambda a, b: bool(a == b),
    "ne": lambda a, b: bool(a != b),
    "lt": lambda a, b: bool(a < b),
    "le": lambda a, b: bool(a <= b),
    "gt": lambda a, b: bool(a > b),
    "ge": lambda a, b: bool(a >= b),
}


def _lit_with_column(child: alg.Lit, target: str, values: list) -> alg.Lit:
    """``child`` extended (or overwritten) with item column ``target``."""
    if target in child.schema:
        idx = child.schema.index(target)
        rows = tuple(
            row[:idx] + (v,) + row[idx + 1 :] for row, v in zip(child.rows, values)
        )
        return alg.Lit(child.schema, rows, child.item_cols | {target})
    rows = tuple(row + (v,) for row, v in zip(child.rows, values))
    return alg.Lit(
        child.schema + (target,), rows, child.item_cols | {target}
    )


def _fold_map_lit(node: alg.Map, child: alg.Lit) -> alg.Lit | None:
    fn = _FOLD_MAP_FNS.get(node.fn)
    if fn is None:
        return None
    idx = {name: i for i, name in enumerate(child.schema)}

    def values(operand):
        tag, v = operand
        if tag == "const":
            if not isinstance(v, (int, bool)):
                return None
            return [v] * len(child.rows)
        col = [row[idx[v]] for row in child.rows]
        if not all(isinstance(x, (int, bool)) for x in col):
            return None
        return col

    args = [values(a) for a in node.args]
    if any(a is None for a in args):
        return None
    return _lit_with_column(child, node.target, [fn(*xs) for xs in zip(*args)] if args else [])


def _foldable_pred(node: alg.Select, child: alg.Lit) -> bool:
    """Can this σ-over-literal evaluate at compile time?

    Item-column operands are allowed only when every involved value is an
    int or bool: there the general comparison is the numeric comparison
    Python's operators implement.  Strings, doubles and nodes need the
    runtime item machinery (string pool, NaN rules) — left to the
    evaluator.
    """
    for tag, v in (node.lhs, node.rhs):
        if tag == "col" and v in child.item_cols:
            idx = child.schema.index(v)
            if not all(isinstance(row[idx], (int, bool)) for row in child.rows):
                return False
        if tag == "const" and not isinstance(v, (int, bool)):
            return False
    return True


def _fold_select_lit(node: alg.Select, child: alg.Lit) -> alg.Lit:
    idx = {name: i for i, name in enumerate(child.schema)}
    import operator

    ops = {
        "eq": operator.eq,
        "ne": operator.ne,
        "lt": operator.lt,
        "le": operator.le,
        "gt": operator.gt,
        "ge": operator.ge,
    }
    fn = ops[node.op]

    def val(row, operand):
        tag, v = operand
        return row[idx[v]] if tag == "col" else v

    rows = tuple(
        row for row in child.rows if fn(val(row, node.lhs), val(row, node.rhs))
    )
    if rows == child.rows:
        return child
    return alg.Lit(child.schema, rows, child.item_cols)


# --------------------------------------------------------------------------
# pass: select/map comparison fusion
# --------------------------------------------------------------------------
_CMP_FNS = frozenset({"eq", "ne", "lt", "le", "gt", "ge"})
_CMP_NEGATED = {"eq": "ne", "ne": "eq"}


def _fuse_select(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Rewrite ``σ (t = true) ∘ ⊛ t:cmp(a, b)`` into ``⊛ t ∘ σ a cmp b``.

    Loop-lifting funnels every comparison through a ⊛ that materialises a
    boolean column which a σ then tests against a constant.  Applying the
    comparison *as* the selection predicate (and recomputing the — now
    constant — boolean column on the survivors, so the schema is
    unchanged) lets prune drop the dead ⊛ and exposes the comparison to
    pushdown and join recognition.  Both paths evaluate comparisons with
    the same general-comparison kernel, so the rewrite is exact.
    """
    return _rewrite_bottom_up(root, _fuse_one)


def _fuse_one(node: alg.Op) -> alg.Op | None:
    if not isinstance(node, alg.Select) or node.op not in ("eq", "ne"):
        return None
    m = node.child
    if not isinstance(m, alg.Map) or m.fn not in _CMP_FNS or len(m.args) != 2:
        return None
    if ("col", m.target) in m.args:
        return None
    for probe, other in ((node.lhs, node.rhs), (node.rhs, node.lhs)):
        if probe != ("col", m.target):
            continue
        if other[0] != "const" or not isinstance(other[1], bool):
            continue
        want = other[1] if node.op == "eq" else not other[1]
        sel_op = m.fn if want else _CMP_NEGATED.get(m.fn)
        if sel_op is None:
            return None  # ordering comparisons have no NaN-exact negation
        selected = alg.Select(m.child, sel_op, m.args[0], m.args[1])
        return alg.Map(selected, m.fn, m.target, m.args)
    return None


# --------------------------------------------------------------------------
# pass: selection / semijoin pushdown
# --------------------------------------------------------------------------
def _parent_counts(root: alg.Op) -> dict[int, int]:
    counts: dict[int, int] = {}
    for node in alg.walk(root):
        for child in node.children:
            counts[id(child)] = counts.get(id(child), 0) + 1
    return counts


def _pushdown(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Move σ and ⋉ filters below operators they don't depend on.

    A filter constrains a set of columns; whenever its immediate child
    produces those columns unchanged from one of *its* inputs (a π
    rename, one side of a ⋈/×, a ⊛ that writes a different column, every
    branch of a ∪, whole iterations of a ϱ/staircase join/aggregate …)
    the filter sinks below it, so the bypassed operator — and everything
    between the filter and wherever it lands — processes fewer rows.

    To keep the rewrite a strict win on DAG-shaped plans, filters do not
    sink into shared subplans (the unfiltered subplan would still be
    evaluated for its other parents) except through π/σ, which cost
    nothing to duplicate.
    """
    counts = _parent_counts(root)
    schema_memo: dict[int, tuple[str, ...]] = {}
    rebuilt: dict[int, alg.Op] = {}
    fired = 0
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        new = _with_children(node, children)
        if isinstance(new, alg.Select):
            filt = ("select", new.op, new.lhs, new.rhs)
            sunk = _sink(filt, new.child, counts, schema_memo)
            if sunk is not None:
                new = sunk
                fired += 1
        elif isinstance(new, alg.SemiJoin):
            filt = ("semi", new.right, new.keys)
            sunk = _sink(filt, new.left, counts, schema_memo)
            if sunk is not None:
                new = sunk
                fired += 1
        elif isinstance(new, (alg.Map, alg.Atomize)):
            sunk = _sink_map(new, counts, schema_memo)
            if sunk is not None:
                new = sunk
                fired += 1
        if id(new) not in counts:
            # the rewritten node inherits the original's parent count, so
            # later filters see sunk subtrees shared by several parents
            counts[id(new)] = counts.get(id(node), 1)
        rebuilt[id(node)] = new
    return rebuilt[id(root)], fired


def _filter_cols(filt) -> frozenset:
    if filt[0] == "select":
        _, _, lhs, rhs = filt
        return frozenset(v for tag, v in (lhs, rhs) if tag == "col")
    _, _, keys = filt
    return frozenset(l for l, _ in keys)


def _filter_rename(filt, mapping: dict[str, str]):
    """Rewrite a filter's column references through a π rename."""
    if filt[0] == "select":
        _, op, lhs, rhs = filt

        def ren(operand):
            tag, v = operand
            return (tag, mapping[v]) if tag == "col" else operand

        return ("select", op, ren(lhs), ren(rhs))
    _, right, keys = filt
    return ("semi", right, tuple((mapping[l], r) for l, r in keys))


def _attach(filt, node: alg.Op) -> alg.Op:
    """Place a filter directly above ``node``."""
    if filt[0] == "select":
        _, op, lhs, rhs = filt
        return alg.Select(node, op, lhs, rhs)
    _, right, keys = filt
    return alg.SemiJoin(node, right, keys)


def _sink_or_attach(filt, node, counts, memo, shared: bool) -> alg.Op:
    sunk = _sink(filt, node, counts, memo, shared)
    return sunk if sunk is not None else _attach(filt, node)


def _sink(filt, x: alg.Op, counts, memo, shared: bool = False) -> alg.Op | None:
    """Push ``filt`` below ``x``; returns the new subtree or None.

    ``shared`` is True once the descent has passed through any node with
    more than one consumer: from there on, every rebuilt node is a copy
    whose original still runs for the other consumers, so only π/σ —
    which cost nothing to duplicate — may be traversed, and the filter
    attaches above the first expensive operator instead of forking it.
    """
    cols = _filter_cols(filt)
    if not cols:
        return None
    shared = shared or counts.get(id(x), 1) > 1
    if shared and not isinstance(x, (alg.Project, alg.Select)):
        return None  # don't duplicate shared, non-trivial subplans
    if isinstance(x, alg.Project):
        mapping = dict(x.cols)
        if not all(c in mapping for c in cols):
            return None
        inner = _filter_rename(filt, mapping)
        return alg.Project(
            _sink_or_attach(inner, x.child, counts, memo, shared), x.cols
        )
    if isinstance(x, alg.Select):
        # only worthwhile when the filter makes it below the inner σ too
        # (a bare σ/σ swap would oscillate between rounds)
        body = _sink(filt, x.child, counts, memo, shared)
        if body is None:
            return None
        return alg.Select(body, x.op, x.lhs, x.rhs)
    if isinstance(x, alg.Union):
        return alg.Union(
            tuple(_sink_or_attach(filt, b, counts, memo, shared) for b in x.inputs)
        )
    if isinstance(x, (alg.Join, alg.Cross)):
        lschema = frozenset(schema_of(x.left, memo))
        rschema = frozenset(schema_of(x.right, memo))
        if cols <= lschema:
            left = _sink_or_attach(filt, x.left, counts, memo, shared)
            if isinstance(x, alg.Join):
                return alg.Join(left, x.right, x.keys)
            return alg.Cross(left, x.right)
        if cols <= rschema:
            right = _sink_or_attach(filt, x.right, counts, memo, shared)
            if isinstance(x, alg.Join):
                return alg.Join(x.left, right, x.keys)
            return alg.Cross(x.left, right)
        return None
    if isinstance(x, alg.SemiJoin):
        left = _sink_or_attach(filt, x.left, counts, memo, shared)
        return alg.SemiJoin(left, x.right, x.keys)
    if isinstance(x, alg.Difference):
        left = _sink_or_attach(filt, x.left, counts, memo, shared)
        return alg.Difference(left, x.right, x.keys)
    if isinstance(x, (alg.Map, alg.Atomize)):
        if x.target in cols:
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return _with_children(x, (child,))
    if isinstance(x, alg.RowNum):
        # whole iterations (= ϱ groups) may be filtered without renumbering
        if x.group is None or not cols <= {x.group} or x.target in cols:
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return alg.RowNum(child, x.target, x.order, x.group)
    if isinstance(x, alg.Aggr):
        if x.group is None or not cols <= {x.group}:
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return alg.Aggr(
            child, x.kind, x.target, x.arg, x.group, x.sep, x.order_col
        )
    if isinstance(x, alg.Distinct):
        if not cols <= set(x.keys):
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return alg.Distinct(child, x.keys, x.order_col)
    if isinstance(x, alg.StepJoin):
        if not cols <= {x.iter_col}:
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return alg.StepJoin(child, x.axis, x.test, x.iter_col, x.item_col)
    if isinstance(x, alg.StructuralTwigJoin):
        if not cols <= {x.iter_col}:
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return alg.StructuralTwigJoin(child, x.steps, x.iter_col, x.item_col)
    if isinstance(x, alg.GenRange):
        if not cols <= {"iter"}:
            return None
        child = _sink_or_attach(filt, x.child, counts, memo, shared)
        return alg.GenRange(child, x.lo_col, x.hi_col)
    return None


def _sink_map(m, counts, memo) -> alg.Op | None:
    """Push a ⊛/atomize below ∪ (per branch) or × (onto the side that
    holds its operands), where it runs over fewer rows and may reach a
    literal table that ``fold`` can evaluate at compile time."""
    x = m.child
    if counts.get(id(x), 1) > 1:
        return None
    if m.target in schema_of(x, memo):
        return None  # overwrite semantics: leave in place
    args = (
        frozenset({m.arg})
        if isinstance(m, alg.Atomize)
        else _operand_cols(*m.args)
    )
    if isinstance(x, alg.Union):
        branches = []
        for b in x.inputs:
            mb = _with_children(m, (b,))
            sunk = _sink_map(mb, counts, memo)
            branches.append(sunk if sunk is not None else mb)
        return alg.Union(tuple(branches))
    if isinstance(x, alg.Cross):
        lschema = frozenset(schema_of(x.left, memo))
        rschema = frozenset(schema_of(x.right, memo))
        if args <= lschema:
            ml = _with_children(m, (x.left,))
            sunk = _sink_map(ml, counts, memo)
            return alg.Cross(sunk if sunk is not None else ml, x.right)
        if args <= rschema:
            mr = _with_children(m, (x.right,))
            sunk = _sink_map(mr, counts, memo)
            return alg.Cross(x.left, sunk if sunk is not None else mr)
    return None


# --------------------------------------------------------------------------
# pass: join recognition (σ= over × / ⋈ becomes an equi-join key)
# --------------------------------------------------------------------------
def _join_recognition(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Turn ``σ (a = b)`` over × into ⋈, or add a key to an existing ⋈.

    Sound only for plain numeric columns: equality of item columns
    follows general-comparison rules (untypedAtomic coerces, ``10`` =
    ``10.0``) which the surrogate-equality join kernel does not
    implement, so item operands are left alone.  Exact including row
    order: the sort-merge join emits matches left-major with ties in
    right order, which is precisely the filtered cross product.
    """
    schema_memo: dict[int, tuple[str, ...]] = {}
    item_memo: dict[int, frozenset] = {}
    return _rewrite_bottom_up(
        root, lambda new: _join_rec_one(new, schema_memo, item_memo)
    )


def _join_rec_one(node: alg.Op, schema_memo, item_memo) -> alg.Op | None:
    if not isinstance(node, alg.Select) or node.op != "eq":
        return None
    child = node.child
    if not isinstance(child, (alg.Cross, alg.Join)):
        return None
    if node.lhs[0] != "col" or node.rhs[0] != "col":
        return None
    a, b = node.lhs[1], node.rhs[1]
    items = _item_cols_of(child, item_memo)
    if a in items or b in items:
        return None
    lschema = frozenset(schema_of(child.left, schema_memo))
    rschema = frozenset(schema_of(child.right, schema_memo))
    if a in lschema and b in rschema:
        key = (a, b)
    elif b in lschema and a in rschema:
        key = (b, a)
    else:
        return None
    keys = (child.keys if isinstance(child, alg.Join) else ()) + (key,)
    return alg.Join(child.left, child.right, keys)


# --------------------------------------------------------------------------
# pass: redundant distinct elimination
# --------------------------------------------------------------------------
def _distinct_elim(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Drop δ whose input is provably duplicate-free on its keys.

    The staircase join's post-condition — output duplicate-free and
    document-ordered per iteration — is the flagship case; the
    uniqueness facts of :func:`_unique_sets` generalise it through π
    renames, filters, row numbering and key joins.
    """
    unique_memo: dict[int, frozenset] = {}

    def elim(new: alg.Op) -> alg.Op | None:
        if not isinstance(new, alg.Distinct):
            return None
        keys = frozenset(new.keys)
        if any(u <= keys for u in _unique_sets(new.child, unique_memo)):
            return new.child
        return None

    return _rewrite_bottom_up(root, elim)


# --------------------------------------------------------------------------
# pass: projection pruning (icols)
# --------------------------------------------------------------------------
def _prune(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Required-column (icols) pruning in two passes.

    Pass 1 walks parents-before-children accumulating, per node, the union
    of the columns its parents need.  Pass 2 rebuilds each node exactly
    once against its accumulated requirement — shared subplans stay shared
    (pruning per parent would duplicate them).
    """
    schema_memo: dict[int, tuple[str, ...]] = {}
    required = frozenset(schema_of(root, schema_memo))
    # pass 1: accumulate requirements top-down in reverse topological order
    topo = list(alg.walk(root))  # children before parents
    req: dict[int, frozenset] = {id(root): required}
    for node in reversed(topo):
        node_req = req.get(id(node), frozenset())
        node_req &= frozenset(schema_of(node, schema_memo))
        req[id(node)] = node_req
        for child, child_req in _child_requirements(node, node_req, schema_memo):
            req[id(child)] = req.get(id(child), frozenset()) | child_req
    # pass 2: rebuild bottom-up
    fired = [0]
    rebuilt: dict[int, alg.Op] = {}
    for node in topo:
        rebuilt[id(node)] = _prune_rewrite(
            node, req[id(node)], rebuilt, schema_memo, fired
        )
    # the root must deliver exactly its original schema
    return _restrict(rebuilt[id(root)], required, schema_memo), fired[0]


def _child_requirements(op, required, schema_memo):
    """Which columns each child must deliver for ``op`` to produce
    ``required`` (mirrors the construction rules of ``_prune_rewrite``)."""
    if isinstance(op, alg.Lit):
        return []
    if isinstance(op, alg.Project):
        cols = [(new, old) for new, old in op.cols if new in required] or list(op.cols[:1])
        return [(op.child, frozenset(old for _, old in cols))]
    if isinstance(op, alg.Select):
        return [(op.child, required | _operand_cols(op.lhs, op.rhs))]
    if isinstance(op, alg.Union):
        return [(i, required) for i in op.inputs]
    if isinstance(op, alg.Difference):
        keys = frozenset(op.keys)
        return [(op.left, required | keys), (op.right, keys)]
    if isinstance(op, alg.Distinct):
        extra = frozenset([op.order_col]) if op.order_col else frozenset()
        return [(op.child, required | frozenset(op.keys) | extra)]
    if isinstance(op, (alg.Join, alg.SemiJoin)):
        lkeys = frozenset(l for l, _ in op.keys)
        rkeys = frozenset(r for _, r in op.keys)
        lschema = frozenset(schema_of(op.left, schema_memo))
        out = [(op.left, (required & lschema) | lkeys)]
        if isinstance(op, alg.SemiJoin):
            out.append((op.right, rkeys))
        else:
            rschema = frozenset(schema_of(op.right, schema_memo))
            out.append((op.right, (required & rschema) | rkeys))
        return out
    if isinstance(op, alg.Cross):
        lschema = frozenset(schema_of(op.left, schema_memo))
        rschema = frozenset(schema_of(op.right, schema_memo))
        lreq = (required & lschema) or frozenset(list(lschema)[:1])
        rreq = (required & rschema) or frozenset(list(rschema)[:1])
        return [(op.left, lreq), (op.right, rreq)]
    if isinstance(op, alg.RowNum):
        if op.target not in required:
            return [(op.child, required)]
        child_req = (required - {op.target}) | frozenset(c for c, _ in op.order)
        if op.group:
            child_req |= {op.group}
        return [(op.child, child_req)]
    if isinstance(op, alg.Map):
        if op.target not in required:
            return [(op.child, required)]
        return [(op.child, (required - {op.target}) | _operand_cols(*op.args))]
    if isinstance(op, alg.Atomize):
        if op.target not in required:
            return [(op.child, required)]
        return [(op.child, (required - {op.target}) | {op.arg})]
    if isinstance(op, alg.Aggr):
        child_req = frozenset(filter(None, (op.arg, op.group, op.order_col)))
        if not child_req:
            child_req = frozenset(schema_of(op.child, schema_memo)[:1])
        return [(op.child, child_req)]
    if isinstance(op, (alg.StepJoin, alg.StructuralTwigJoin)):
        return [(op.child, frozenset({op.iter_col, op.item_col}))]
    if isinstance(op, alg.GenRange):
        return [(op.child, frozenset({"iter", op.lo_col, op.hi_col}))]
    # constructors / DocRoot: children keep their full schemas
    return [
        (c, frozenset(schema_of(c, schema_memo))) for c in op.children
    ]


def _restrict(op: alg.Op, required: frozenset, schema_memo) -> alg.Op:
    """Wrap ``op`` in a projection keeping only ``required`` columns."""
    schema = schema_of(op, schema_memo)
    keep = tuple(c for c in schema if c in required)
    if keep == schema:
        return op
    return alg.Project(op, tuple((c, c) for c in keep))


def _operand_cols(*operands) -> frozenset:
    return frozenset(v for tag, v in operands if tag == "col")


def _prune_rewrite(op, required, rebuilt, schema_memo, fired):
    # children were already pruned against their accumulated requirements
    def rec(child, req):
        return rebuilt[id(child)]

    if isinstance(op, alg.Lit):
        keep = tuple(c for c in op.schema if c in required) or op.schema[:1]
        if keep == op.schema:
            return op
        fired[0] += 1
        idx = {name: i for i, name in enumerate(op.schema)}
        rows = tuple(tuple(row[idx[c]] for c in keep) for row in op.rows)
        return alg.Lit(keep, rows, op.item_cols & frozenset(keep))

    if isinstance(op, alg.Project):
        cols = tuple((new, old) for new, old in op.cols if new in required)
        if not cols:
            cols = op.cols[:1]
        if cols != op.cols:
            fired[0] += 1
        child_req = frozenset(old for _, old in cols)
        child = rec(op.child, child_req)
        return alg.Project(child, cols)

    # NB: downstream of here, operators are allowed to deliver *more*
    # columns than required — extra columns are cut at the next enclosing
    # projection.  Only Union branches and Difference/SemiJoin right sides
    # need exact schemas, and they get explicit restrictions.
    if isinstance(op, alg.Select):
        child_req = required | _operand_cols(op.lhs, op.rhs)
        child = rec(op.child, child_req)
        return alg.Select(child, op.op, op.lhs, op.rhs)

    if isinstance(op, alg.Union):
        inputs = tuple(
            _restrict(rec(i, required), required, schema_memo) for i in op.inputs
        )
        return alg.Union(inputs)

    if isinstance(op, alg.Difference):
        keys = frozenset(op.keys)
        left = rec(op.left, required | keys)
        right = _restrict(rec(op.right, keys), keys, schema_memo)
        return alg.Difference(left, right, op.keys)

    if isinstance(op, alg.Distinct):
        keys = frozenset(op.keys)
        extra = frozenset([op.order_col]) if op.order_col else frozenset()
        child = rec(op.child, required | keys | extra)
        return alg.Distinct(child, op.keys, op.order_col)

    if isinstance(op, (alg.Join, alg.SemiJoin)):
        lkeys = frozenset(l for l, _ in op.keys)
        rkeys = frozenset(r for _, r in op.keys)
        lschema = frozenset(schema_of(op.left, schema_memo))
        left = rec(op.left, (required & lschema) | lkeys)
        if isinstance(op, alg.SemiJoin):
            right = _restrict(rec(op.right, rkeys), rkeys, schema_memo)
            return alg.SemiJoin(left, right, op.keys)
        rschema = frozenset(schema_of(op.right, schema_memo))
        right = rec(op.right, (required & rschema) | rkeys)
        return alg.Join(left, right, op.keys)

    if isinstance(op, alg.Cross):
        lschema = frozenset(schema_of(op.left, schema_memo))
        rschema = frozenset(schema_of(op.right, schema_memo))
        lreq = required & lschema
        rreq = required & rschema
        left = rec(op.left, lreq or frozenset(list(lschema)[:1]))
        right = rec(op.right, rreq or frozenset(list(rschema)[:1]))
        return alg.Cross(left, right)

    if isinstance(op, alg.RowNum):
        if op.target not in required:
            fired[0] += 1
            return rec(op.child, required)
        child_req = (required - {op.target}) | frozenset(c for c, _ in op.order)
        if op.group:
            child_req |= {op.group}
        child = rec(op.child, child_req)
        return alg.RowNum(child, op.target, op.order, op.group)

    if isinstance(op, alg.Map):
        if op.target not in required:
            fired[0] += 1
            return rec(op.child, required)
        child_req = (required - {op.target}) | _operand_cols(*op.args)
        child = rec(op.child, child_req)
        return alg.Map(child, op.fn, op.target, op.args)

    if isinstance(op, alg.Atomize):
        if op.target not in required:
            fired[0] += 1
            return rec(op.child, required)
        child_req = (required - {op.target}) | {op.arg}
        child = rec(op.child, child_req)
        return alg.Atomize(child, op.target, op.arg)

    if isinstance(op, alg.Aggr):
        child_req = frozenset(filter(None, (op.arg, op.group, op.order_col)))
        child = rec(op.child, child_req or frozenset(schema_of(op.child, schema_memo)[:1]))
        return alg.Aggr(
            child, op.kind, op.target, op.arg, op.group, op.sep, op.order_col
        )

    if isinstance(op, alg.StepJoin):
        child = rec(op.child, frozenset({op.iter_col, op.item_col}))
        child = _restrict(child, frozenset({op.iter_col, op.item_col}), schema_memo)
        return alg.StepJoin(child, op.axis, op.test, op.iter_col, op.item_col)

    if isinstance(op, alg.StructuralTwigJoin):
        child = rec(op.child, frozenset({op.iter_col, op.item_col}))
        child = _restrict(child, frozenset({op.iter_col, op.item_col}), schema_memo)
        return alg.StructuralTwigJoin(child, op.steps, op.iter_col, op.item_col)

    if isinstance(op, alg.GenRange):
        need = frozenset({"iter", op.lo_col, op.hi_col})
        child = rec(op.child, need)
        return alg.GenRange(child, op.lo_col, op.hi_col)

    if isinstance(
        op,
        (alg.ElemConstr, alg.TextConstr, alg.AttrConstr, alg.DocRoot, alg.ParamTable),
    ):
        # children have fixed small schemas; just recurse with them
        children = tuple(
            rec(c, frozenset(schema_of(c, schema_memo))) for c in op.children
        )
        return _with_children(op, children)

    raise AlgebraError(f"prune: unhandled op {type(op).__name__}")


# --------------------------------------------------------------------------
# pass: projection merging / identity removal
# --------------------------------------------------------------------------
def _merge_projects(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Collapse π ∘ π chains and remove identity projections."""
    schema_memo: dict[int, tuple[str, ...]] = {}

    def merge(new: alg.Op) -> alg.Op | None:
        if not isinstance(new, alg.Project):
            return None
        child = new.child
        if isinstance(child, alg.Project):
            inner = dict((n, o) for n, o in child.cols)
            new = alg.Project(
                child.child, tuple((n, inner[o]) for n, o in new.cols)
            )
            child = new.child
        child_schema = schema_of(child, schema_memo)
        if tuple(n for n, _ in new.cols) == child_schema and all(
            n == o for n, o in new.cols
        ):
            return child
        return new

    return _rewrite_bottom_up(root, merge)


# --------------------------------------------------------------------------
# pass: cost-based join input ordering
# --------------------------------------------------------------------------
#: only swap when one side is estimated this much larger — estimates are
#: crude, and each swap costs a schema-restoring projection
_SWAP_RATIO = 4.0


def _order_sensitive(root: alg.Op) -> set[int]:
    """Ids of nodes whose *physical* row order can influence results.

    Most consumers are insensitive to physical order (filters preserve
    it, ϱ orders by named columns), but three are not: δ without an
    ``order_col`` whose keys don't cover the child schema (which
    duplicate survives depends on row order), order-sensitive aggregates
    (``str_join``) without an ``order_col``, and ϱ whose order keys +
    group don't provably determine a unique rank (ties break by physical
    order).  Everything beneath such a consumer must keep its row order.
    """
    schema_memo: dict[int, tuple[str, ...]] = {}
    unique_memo: dict[int, frozenset] = {}
    sensitive_roots: list[alg.Op] = []
    for node in alg.walk(root):
        if isinstance(node, alg.Distinct) and node.order_col is None:
            if set(node.keys) < set(schema_of(node.child, schema_memo)):
                sensitive_roots.append(node.child)
        elif isinstance(node, alg.Aggr):
            if node.kind == "str_join" and node.order_col is None:
                sensitive_roots.append(node.child)
        elif isinstance(node, alg.RowNum):
            determined = frozenset(c for c, _ in node.order)
            if node.group:
                determined |= {node.group}
            if not any(
                u <= determined for u in _unique_sets(node.child, unique_memo)
            ):
                sensitive_roots.append(node.child)
    marked: set[int] = set()
    stack = sensitive_roots
    while stack:
        n = stack.pop()
        if id(n) in marked:
            continue
        marked.add(id(n))
        stack.extend(n.children)
    return marked


def _join_order(root: alg.Op, est: CardinalityEstimator) -> tuple[alg.Op, int]:
    """Put the estimated-smaller join input on the right-hand side.

    The sort-merge join kernel sorts its *right* input and probes it with
    the left, so sorting the smaller side is cheaper.  A swapped join is
    wrapped in a projection restoring the original column order.  Row
    order within the join changes, so joins beneath a physical-order-
    sensitive consumer (see :func:`_order_sensitive`) are left alone.
    """
    est_memo: dict = {}
    schema_memo: dict[int, tuple[str, ...]] = {}
    sensitive = _order_sensitive(root)

    def reorder(new: alg.Op) -> alg.Op | None:
        if not isinstance(new, alg.Join):
            return None
        left_rows = est.estimate(new.left, est_memo)
        right_rows = est.estimate(new.right, est_memo)
        if right_rows <= _SWAP_RATIO * max(left_rows, 1.0):
            return None
        original = schema_of(new, schema_memo)
        swapped = alg.Join(new.right, new.left, tuple((r, l) for l, r in new.keys))
        return alg.Project(swapped, tuple((c, c) for c in original))

    # sensitivity is keyed by the ids of the *original* nodes, so this
    # pass keeps its own loop instead of using _rewrite_bottom_up
    rebuilt: dict[int, alg.Op] = {}
    fired = 0
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        new = _with_children(node, children)
        if id(node) not in sensitive:
            replacement = reorder(new)
            if replacement is not None:
                new = replacement
                fired += 1
        rebuilt[id(node)] = new
    return rebuilt[id(root)], fired


# --------------------------------------------------------------------------
# pass: greedy (statistics-free) join input ordering
# --------------------------------------------------------------------------
#: syntax-visible relative size factors: a named test keeps a step
#: selective, a wildcard does not, and descendant-flavoured axes fan out
#: far more than child steps — the ranking only needs relative magnitudes
_GREEDY_CHILD_NAMED = 2.0
_GREEDY_CHILD_WILD = 8.0
_GREEDY_DEEP_NAMED = 8.0
_GREEDY_DEEP_WILD = 32.0


def _step_factor(axis: Axis, test) -> float:
    """Syntax-only growth factor of one axis step (greedy mode)."""
    if axis in _UNIT_AXES:
        return 1.0
    named = getattr(test, "name", None) is not None
    if axis in _DEEP_AXES:
        return _GREEDY_DEEP_NAMED if named else _GREEDY_DEEP_WILD
    return _GREEDY_CHILD_NAMED if named else _GREEDY_CHILD_WILD


def _syntax_score(op: alg.Op, memo: dict) -> float:
    """Relative subtree size ranked purely by plan syntax.

    The greedy mode's stand-in for cardinality estimation: no document
    statistics are consulted.  Steps are ranked by axis kind and by
    name-test vs wildcard, attached σ predicates shrink their input by
    the textbook selectivities, and the combinators compose
    multiplicatively — exactly enough signal to answer "which join input
    is likely larger" without ever touching the arena.
    """
    cached = memo.get(op)
    if cached is not None:
        return cached
    memo[op] = 1.0  # cycle-safe default; plans are DAGs anyway
    score = _syntax_score_of(op, memo)
    memo[op] = score
    return score


def _syntax_score_of(op: alg.Op, memo) -> float:
    rec = lambda c: _syntax_score(c, memo)  # noqa: E731
    if isinstance(op, alg.Lit):
        return float(len(op.rows))
    if isinstance(op, alg.DocRoot):
        return 1.0
    if isinstance(op, alg.ParamTable):
        return 4.0
    if isinstance(op, alg.StepJoin):
        return rec(op.child) * _step_factor(op.axis, op.test)
    if isinstance(op, alg.StructuralTwigJoin):
        score = rec(op.child)
        for axis, test in op.steps:
            score *= _step_factor(axis, test)
        return score
    if isinstance(op, alg.Select):
        consts = sum(1 for tag, _ in (op.lhs, op.rhs) if tag == "const")
        if consts:
            sel = _SEL_EQ_CONST if op.op == "eq" else _SEL_CMP_CONST
        else:
            sel = _SEL_COL_COL
        return rec(op.child) * sel
    if isinstance(op, alg.Union):
        return sum(rec(i) for i in op.inputs)
    if isinstance(op, (alg.Difference, alg.SemiJoin, alg.Distinct)):
        return rec(op.children[0]) * 0.6
    if isinstance(op, alg.Join):
        return max(rec(op.left), rec(op.right))
    if isinstance(op, alg.Cross):
        return rec(op.left) * rec(op.right)
    if isinstance(op, alg.Aggr):
        if op.group is None:
            return 1.0
        return max(rec(op.child) * 0.2, 1.0)
    if isinstance(op, alg.GenRange):
        return rec(op.child) * 8.0
    if not op.children:
        return 1.0
    return rec(op.children[0])


def _greedy_order(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Statistics-free join input ordering (the ``greedy`` mode).

    Same contract and safety discipline as :func:`_join_order` — swap
    under a schema-restoring π, never beneath an order-sensitive
    consumer — but ranks the two inputs with :func:`_syntax_score`
    instead of the cardinality estimator, so planning needs no document
    statistics at all.
    """
    score_memo: dict = {}
    schema_memo: dict[int, tuple[str, ...]] = {}
    sensitive = _order_sensitive(root)

    def reorder(new: alg.Op) -> alg.Op | None:
        if not isinstance(new, alg.Join):
            return None
        left_score = _syntax_score(new.left, score_memo)
        right_score = _syntax_score(new.right, score_memo)
        if right_score <= _SWAP_RATIO * max(left_score, 1.0):
            return None
        original = schema_of(new, schema_memo)
        swapped = alg.Join(new.right, new.left, tuple((r, l) for l, r in new.keys))
        return alg.Project(swapped, tuple((c, c) for c in original))

    rebuilt: dict[int, alg.Op] = {}
    fired = 0
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        new = _with_children(node, children)
        if id(node) not in sensitive:
            replacement = reorder(new)
            if replacement is not None:
                new = replacement
                fired += 1
        rebuilt[id(node)] = new
    return rebuilt[id(root)], fired


# --------------------------------------------------------------------------
# pass: twig collapse (the wcoj mode's multi-way join recognition)
# --------------------------------------------------------------------------
#: axes the twig join's merged scan handles (forward, subtree-shaped)
_TWIG_AXES = frozenset({Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF})

#: minimum chain length worth collapsing — a two-step chain gains nothing
#: over two staircase steps, the twig's advantage grows with chain depth
_TWIG_MIN_STEPS = 3


def _twig_collapse(root: alg.Op, est) -> tuple[alg.Op, int]:
    """Fuse chains of pairwise staircase steps into one twig join.

    A run of ``StepJoin`` operators where each feeds exactly the next
    (sole consumer, matching iter/item columns, subtree-shaped axes)
    evaluates as k separate staircase joins, each materialising its full
    intermediate frontier.  Collapsing the run into one
    :class:`~repro.relational.algebra.StructuralTwigJoin` lets the
    evaluator match the whole chain with a single merged scan.  Fires
    only at the *top* of a maximal chain, so bottom-up rewriting never
    collapses a partial suffix.
    """
    counts = _parent_counts(root)
    # ids of steps continued by (the sole input of) a chain-compatible
    # step above them — they fold into the collapse fired at the top
    continued: set[int] = set()
    for node in alg.walk(root):
        if isinstance(node, alg.StepJoin) and node.axis in _TWIG_AXES:
            c = node.child
            if (
                isinstance(c, alg.StepJoin)
                and c.axis in _TWIG_AXES
                and c.iter_col == node.iter_col
                and c.item_col == node.item_col
                and counts.get(id(c), 1) == 1
            ):
                continued.add(id(c))
    # chain membership is keyed by the ids of the *original* nodes, so
    # this pass keeps its own loop instead of using _rewrite_bottom_up
    rebuilt: dict[int, alg.Op] = {}
    fired = 0
    for node in alg.walk(root):
        children = tuple(rebuilt[id(c)] for c in node.children)
        new = _with_children(node, children)
        if (
            isinstance(node, alg.StepJoin)
            and node.axis in _TWIG_AXES
            and id(node) not in continued
            and id(node.child) in continued
        ):
            steps = [(node.axis, node.test)]
            base = node.child
            while id(base) in continued:
                steps.append((base.axis, base.test))
                base = base.child
            if len(steps) >= _TWIG_MIN_STEPS:
                steps.reverse()
                new = alg.StructuralTwigJoin(
                    rebuilt[id(base)], tuple(steps), node.iter_col, node.item_col
                )
                fired += 1
        rebuilt[id(node)] = new
    return rebuilt[id(root)], fired


# --------------------------------------------------------------------------
# the registry
# --------------------------------------------------------------------------
#: the default pipeline, in application order
PASSES: tuple[RewritePass, ...] = (
    RewritePass("cse", "share structurally identical subplans", _cse),
    RewritePass("fold", "evaluate σ/π/∪ over literals, propagate empty inputs", _fold),
    RewritePass("fuse_select", "fuse σ(t=true) with the ⊛ comparison feeding it", _fuse_select),
    RewritePass("pushdown", "push σ/⋉ below π, ⋈, ×, ⊛, ∪, ϱ, δ, aggregates, steps", _pushdown),
    RewritePass("join_recognition", "turn σ= over × into an equi-join", _join_recognition),
    RewritePass("distinct_elim", "drop δ over provably duplicate-free input", _distinct_elim),
    RewritePass("prune", "keep only columns an ancestor consumes (icols)", _prune),
    RewritePass("merge_projects", "collapse π∘π, remove identity π", _merge_projects),
    RewritePass("join_order", "sort the estimated-smaller join input", _join_order),
)

#: names of all registered passes, in pipeline order
PASS_NAMES: tuple[str, ...] = tuple(p.name for p in PASSES)

#: ``greedy`` mode's drop-in replacement for ``join_order``
_GREEDY_PASS = RewritePass(
    "greedy_order", "sort the syntax-ranked-smaller join input (no statistics)",
    _greedy_order,
)

#: ``wcoj`` mode's extra pass, appended after the default pipeline
_TWIG_PASS = RewritePass(
    "twig_collapse", "fuse chains of staircase steps into one twig join",
    _twig_collapse,
)
