"""Staircase join: tree-aware XPath axis evaluation on the encoding.

The staircase join [Grust/van Keulen/Teubner, VLDB 2003] makes an RDBMS
"watch its axis steps": for a *set* of context nodes it evaluates an XPath
axis in one scan by (a) **pruning** context nodes whose axis region is
covered by another context node's region, (b) **partitioning** the
remaining regions so no output is produced twice, and (c) **skipping**
rows that cannot qualify.  With the arena's row-id-equals-pre property the
regions are integer ranges, so the scan phase is a batched range
materialisation.

Everything here is *per iteration* (``iter``): the loop-lifted plans
evaluate one axis step for many iterations at once, so pruning and
deduplication are segmented by ``iter``.

:func:`staircase_step` is the tree-aware implementation;
:func:`naive_step` is the deliberately tree-unaware baseline (a region
selection per context node, duplicates removed at the end) used by the E5
ablation benchmark — it is what a stock RDBMS would do and is asymptotically
worse on recursive axes, which is the paper's Q6/Q7 headline.
"""

from __future__ import annotations

import numpy as np

from repro.encoding.arena import (
    NK_COMMENT,
    NK_DOC,
    NK_ELEM,
    NK_PI,
    NK_TEXT,
    NodeArena,
)
from repro.encoding.axes import Axis, NodeTest
from repro.errors import DynamicError
from repro.relational.kernels import (
    coalesce_ranges,
    group_starts,
    join_indices,
    multi_arange,
    segmented_cummax,
)

_EMPTY = np.empty(0, dtype=np.int64)

_KIND_OF_TEST = {
    "element": NK_ELEM,
    "text": NK_TEXT,
    "comment": NK_COMMENT,
    "processing-instruction": NK_PI,
    "document-node": NK_DOC,
}


def node_test_mask(arena: NodeArena, rows: np.ndarray, test: NodeTest) -> np.ndarray:
    """Boolean mask of arena rows satisfying a node test."""
    if test.kind == "node":
        return np.ones(len(rows), dtype=bool)
    if test.kind == "attribute":
        return np.zeros(len(rows), dtype=bool)
    want = _KIND_OF_TEST[test.kind]
    mask = arena.kind[rows] == want
    if test.name is not None:
        name_id = arena.pool.lookup(test.name)
        mask &= arena.name[rows] == name_id
    return mask


def attr_test_mask(arena: NodeArena, attr_ids: np.ndarray, test: NodeTest) -> np.ndarray:
    """Boolean mask of attribute ids satisfying an attribute node test."""
    if test.kind == "node":
        return np.ones(len(attr_ids), dtype=bool)
    if test.kind != "attribute":
        return np.zeros(len(attr_ids), dtype=bool)
    if test.name is None:
        return np.ones(len(attr_ids), dtype=bool)
    name_id = arena.pool.lookup(test.name)
    return arena.attr_name[attr_ids] == name_id


def _sorted_distinct_contexts(
    iters: np.ndarray, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    order = np.lexsort((nodes, iters))
    iters, nodes = iters[order], nodes[order]
    if len(iters):
        # a pair repeats only if both iter and node repeat
        keep = np.concatenate(([True], (iters[1:] != iters[:-1]) | (nodes[1:] != nodes[:-1])))
        iters, nodes = iters[keep], nodes[keep]
    return iters, nodes


def _dedupe_sorted_pairs(
    iters: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    order = np.lexsort((rows, iters))
    iters, rows = iters[order], rows[order]
    if len(iters):
        keep = np.concatenate(
            ([True], (iters[1:] != iters[:-1]) | (rows[1:] != rows[:-1]))
        )
        iters, rows = iters[keep], rows[keep]
    return iters, rows


def staircase_step(
    arena: NodeArena,
    iters: np.ndarray,
    nodes: np.ndarray,
    axis: Axis,
    test: NodeTest,
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``axis::test`` for a batch of (iter, context-node) pairs.

    Returns ``(iters, rows)`` sorted by (iter, document order) and
    duplicate-free per iter — the axis-step post-condition.  For
    ``Axis.ATTRIBUTE`` the returned rows are attribute ids, otherwise
    arena node rows.
    """
    iters = np.asarray(iters, dtype=np.int64)
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(iters) == 0:
        return _EMPTY, _EMPTY
    # axes never leave the context nodes' fragments, so faulting those
    # fragments in covers every row (and attribute) this step can read
    arena.ensure_rows(nodes)
    iters, nodes = _sorted_distinct_contexts(iters, nodes)
    return _step_sorted(arena, iters, nodes, axis, test)


def _step_sorted(
    arena: NodeArena,
    iters: np.ndarray,
    nodes: np.ndarray,
    axis: Axis,
    test: NodeTest,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-axis staircase body; contexts must already be sorted by
    (iter, document order) and duplicate-free — which is also the output
    post-condition, so steps chain without re-sorting (the twig join's
    fused loop relies on exactly that)."""
    if axis is Axis.ATTRIBUTE:
        order, lo, hi = arena.attr_ranges(nodes)
        out_iter = np.repeat(iters, hi - lo)
        attr_ids = order[multi_arange(lo, hi)]
        mask = attr_test_mask(arena, attr_ids, test)
        out_iter, attr_ids = out_iter[mask], attr_ids[mask]
        return _dedupe_sorted_pairs(out_iter, attr_ids)

    if axis is Axis.SELF:
        mask = node_test_mask(arena, nodes, test)
        return iters[mask], nodes[mask]

    if axis is Axis.CHILD:
        order, lo, hi = arena.children_ranges(nodes)
        out_iter = np.repeat(iters, hi - lo)
        rows = order[multi_arange(lo, hi)]
        mask = node_test_mask(arena, rows, test)
        out_iter, rows = out_iter[mask], rows[mask]
        return _dedupe_sorted_pairs(out_iter, rows)

    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        ends = nodes + arena.size[nodes]
        running = segmented_cummax(ends, iters)
        keep = group_starts(iters).copy()
        if len(iters) > 1:
            keep[1:] |= nodes[1:] > running[:-1]
        c_iter, c_node, c_end = iters[keep], nodes[keep], ends[keep]
        starts = c_node if axis is Axis.DESCENDANT_OR_SELF else c_node + 1
        rows = multi_arange(starts, c_end + 1)
        out_iter = np.repeat(c_iter, np.maximum(c_end + 1 - starts, 0))
        mask = node_test_mask(arena, rows, test)
        return out_iter[mask], rows[mask]

    if axis is Axis.PARENT:
        parents = arena.parent[nodes]
        valid = parents >= 0
        out_iter, rows = iters[valid], parents[valid]
        mask = node_test_mask(arena, rows, test)
        return _dedupe_sorted_pairs(out_iter[mask], rows[mask])

    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        acc_i: list[np.ndarray] = []
        acc_r: list[np.ndarray] = []
        cur_i, cur_r = iters, nodes
        if axis is Axis.ANCESTOR_OR_SELF:
            acc_i.append(cur_i)
            acc_r.append(cur_r)
        while len(cur_r):
            parents = arena.parent[cur_r]
            valid = parents >= 0
            cur_i, cur_r = cur_i[valid], parents[valid]
            if len(cur_r) == 0:
                break
            # dedupe as we climb: many contexts converge onto few ancestors
            cur_i, cur_r = _dedupe_sorted_pairs(cur_i, cur_r)
            acc_i.append(cur_i)
            acc_r.append(cur_r)
        if not acc_i:
            return _EMPTY, _EMPTY
        out_iter = np.concatenate(acc_i)
        rows = np.concatenate(acc_r)
        mask = node_test_mask(arena, rows, test)
        return _dedupe_sorted_pairs(out_iter[mask], rows[mask])

    if axis is Axis.FOLLOWING:
        starts = nodes + arena.size[nodes] + 1
        fends = arena.frag_end(nodes)
        frags = arena.frag[nodes]
        boundary = group_starts(iters) | np.concatenate(
            ([True], frags[1:] != frags[:-1])
        ) if len(iters) else np.empty(0, dtype=bool)
        group_idx = np.nonzero(boundary)[0]
        mins = np.minimum.reduceat(starts, group_idx)
        g_iter = iters[group_idx]
        g_end = fends[group_idx]
        rows = multi_arange(mins, g_end + 1)
        out_iter = np.repeat(g_iter, np.maximum(g_end + 1 - mins, 0))
        mask = node_test_mask(arena, rows, test)
        return out_iter[mask], rows[mask]

    if axis is Axis.PRECEDING:
        frags = arena.frag[nodes]
        bases = np.asarray(arena.frag_base, dtype=np.int64)[frags]
        boundary = group_starts(iters) | np.concatenate(
            ([True], frags[1:] != frags[:-1])
        ) if len(iters) else np.empty(0, dtype=bool)
        group_idx = np.nonzero(boundary)[0]
        group_last = np.concatenate((group_idx[1:] - 1, [len(iters) - 1]))
        maxs = nodes[group_last]  # contexts sorted: max node per group is last
        g_iter = iters[group_idx]
        g_base = bases[group_idx]
        rows = multi_arange(g_base, maxs)
        out_iter = np.repeat(g_iter, np.maximum(maxs - g_base, 0))
        keep = rows + arena.size[rows] < np.repeat(maxs, np.maximum(maxs - g_base, 0))
        out_iter, rows = out_iter[keep], rows[keep]
        mask = node_test_mask(arena, rows, test)
        return out_iter[mask], rows[mask]

    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        parents = arena.parent[nodes]
        valid = parents >= 0
        iters_v, nodes_v, parents_v = iters[valid], nodes[valid], parents[valid]
        order, lo, hi = arena.children_ranges(parents_v)
        counts = hi - lo
        out_iter = np.repeat(iters_v, counts)
        ctx = np.repeat(nodes_v, counts)
        rows = order[multi_arange(lo, hi)]
        if axis is Axis.FOLLOWING_SIBLING:
            keep = rows > ctx
        else:
            keep = rows < ctx
        out_iter, rows = out_iter[keep], rows[keep]
        mask = node_test_mask(arena, rows, test)
        return _dedupe_sorted_pairs(out_iter[mask], rows[mask])

    raise DynamicError(f"unsupported axis {axis}")


#: axes a StructuralTwigJoin chain may contain (node-kind, downward)
TWIG_AXES = (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF)


def twig_match(
    arena: NodeArena,
    iters: np.ndarray,
    nodes: np.ndarray,
    steps: tuple,
) -> tuple[np.ndarray, np.ndarray]:
    """Match a whole chain of axis steps in one pass (the ``wcoj`` twig).

    ``steps`` is ``((axis, test), ...)`` with axes from :data:`TWIG_AXES`.
    Semantically identical to folding :func:`staircase_step` over the
    chain — same sorted, duplicate-free-per-iter output — but evaluated
    as one multi-way join:

    * an **all-child chain** runs bottom-up: the distinct context
      subtrees are coalesced into disjoint pre ranges
      (:func:`~repro.relational.kernels.coalesce_ranges`), candidates for
      the *last* step's test are materialised once from those ranges, and
      each survivor walks its parent chain upward checking the earlier
      tests — the chain's k-th ancestor is then joined back against the
      ``(iter, context)`` pairs.  No intermediate frontier is ever
      materialised, which is the worst-case-optimal property;
    * a **mixed chain** runs the staircase per-axis bodies fused: each
      step's output already satisfies the sorted-distinct post-condition,
      so the per-step context re-sort of the pairwise pipeline is
      skipped, and an empty frontier terminates the whole match early.
    """
    iters = np.asarray(iters, dtype=np.int64)
    nodes = np.asarray(nodes, dtype=np.int64)
    if len(iters) == 0 or not steps:
        return _EMPTY, _EMPTY
    arena.ensure_rows(nodes)
    iters, nodes = _sorted_distinct_contexts(iters, nodes)
    if all(axis is Axis.CHILD for axis, _ in steps):
        return _twig_child_chain(arena, iters, nodes, [t for _, t in steps])
    cur_i, cur_n = iters, nodes
    for axis, test in steps:
        if len(cur_i) == 0:
            return _EMPTY, _EMPTY  # empty-intermediate early termination
        cur_i, cur_n = _step_sorted(arena, cur_i, cur_n, axis, test)
    return cur_i, cur_n


def _twig_candidates(
    arena: NodeArena, starts: np.ndarray, stops: np.ndarray, test: NodeTest
) -> np.ndarray:
    """Rows inside the disjoint sorted ranges that satisfy ``test``.

    Scans the kind/name columns as one contiguous slice over the
    covering span — no row-index materialisation, no gathers — then
    drops matches that fall in gaps between ranges.  Gap rows may be
    paged-out garbage, which is fine: they never survive the range
    filter, and a single range has no gaps at all.
    """
    if test.kind == "attribute":
        return _EMPTY
    if test.kind == "node":
        return multi_arange(starts, stops)
    lo, hi = int(starts[0]), int(stops[-1])
    mask = arena.kind[lo:hi] == _KIND_OF_TEST[test.kind]
    if test.name is not None:
        mask &= arena.name[lo:hi] == arena.pool.lookup(test.name)
    cand = np.flatnonzero(mask)
    cand += lo
    if len(starts) > 1:
        pos = np.searchsorted(starts, cand, side="right") - 1
        cand = cand[cand < stops[pos]]
    return cand


def _twig_child_chain(
    arena: NodeArena,
    iters: np.ndarray,
    nodes: np.ndarray,
    tests: list[NodeTest],
) -> tuple[np.ndarray, np.ndarray]:
    """All-child twig: candidate scan + parent-chain walk + context join.

    A node matches a k-step child chain iff its k-th ancestor is a
    context node and the i-th node on the walk up satisfies the i-th
    test from the end.  Each candidate has exactly one k-th ancestor, so
    the joined output has no duplicates by construction.
    """
    k = len(tests)
    cnodes = np.unique(nodes)
    starts, stops = coalesce_ranges(cnodes + 1, cnodes + arena.size[cnodes] + 1)
    cand = _twig_candidates(arena, starts, stops, tests[-1])
    cur = cand
    for j in range(k - 2, -1, -1):
        if len(cur) == 0:
            return _EMPTY, _EMPTY
        cur = arena.parent[cur]
        ok = cur >= 0
        if not ok.all():
            cand, cur = cand[ok], cur[ok]
        m = node_test_mask(arena, cur, tests[j])
        if not m.all():
            cand, cur = cand[m], cur[m]
    if len(cur) == 0:
        return _EMPTY, _EMPTY
    anchors = arena.parent[cur]  # each survivor's k-th ancestor
    li, ri = join_indices(nodes, anchors)
    out_iter, rows = iters[li], cand[ri]
    order = np.lexsort((rows, out_iter))
    return out_iter[order], rows[order]


def naive_step(
    arena: NodeArena,
    iters: np.ndarray,
    nodes: np.ndarray,
    axis: Axis,
    test: NodeTest,
) -> tuple[np.ndarray, np.ndarray]:
    """Tree-unaware baseline: one region selection per context node.

    This is what the paper's "RDBMS gives away significant opportunities
    for optimization" refers to: for every context node the *whole
    fragment* is scanned with the region predicate, duplicates are produced
    for overlapping regions and removed only at the end.  Complexity is
    O(contexts × fragment size) regardless of result size.
    """
    iters = np.asarray(iters, dtype=np.int64)
    nodes = np.asarray(nodes, dtype=np.int64)
    if axis is Axis.ATTRIBUTE:
        # attributes live outside the region plane; share the index path
        return staircase_step(arena, iters, nodes, axis, test)
    arena.ensure_rows(nodes)
    out_i: list[np.ndarray] = []
    out_r: list[np.ndarray] = []
    bases = np.asarray(arena.frag_base, dtype=np.int64)
    size = arena.size
    parent = arena.parent
    for it, v in zip(iters, nodes):
        v = int(v)
        base = int(bases[arena.frag[v]])
        end = base + int(size[base])
        rows = np.arange(base, end + 1, dtype=np.int64)
        if axis is Axis.SELF:
            mask = rows == v
        elif axis is Axis.CHILD:
            mask = parent[rows] == v
        elif axis is Axis.DESCENDANT:
            mask = (rows > v) & (rows <= v + size[v])
        elif axis is Axis.DESCENDANT_OR_SELF:
            mask = (rows >= v) & (rows <= v + size[v])
        elif axis is Axis.PARENT:
            mask = rows == parent[v]
        elif axis is Axis.ANCESTOR:
            mask = (rows < v) & (rows + size[rows] >= v)
        elif axis is Axis.ANCESTOR_OR_SELF:
            mask = (rows <= v) & (rows + size[rows] >= v)
        elif axis is Axis.FOLLOWING:
            mask = rows > v + size[v]
        elif axis is Axis.PRECEDING:
            mask = (rows < v) & (rows + size[rows] < v)
        elif axis is Axis.FOLLOWING_SIBLING:
            mask = (parent[rows] == parent[v]) & (rows > v) if parent[v] >= 0 else np.zeros(len(rows), bool)
        elif axis is Axis.PRECEDING_SIBLING:
            mask = (parent[rows] == parent[v]) & (rows < v) if parent[v] >= 0 else np.zeros(len(rows), bool)
        else:
            raise DynamicError(f"unsupported axis {axis}")
        hits = rows[mask]
        out_i.append(np.full(len(hits), it, dtype=np.int64))
        out_r.append(hits)
    if not out_i:
        return _EMPTY, _EMPTY
    out_iter = np.concatenate(out_i)
    rows = np.concatenate(out_r)
    mask = node_test_mask(arena, rows, test)
    return _dedupe_sorted_pairs(out_iter[mask], rows[mask])
