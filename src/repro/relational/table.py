"""In-memory column-store tables.

A :class:`Table` is an ordered mapping from column names to columns.  A
column is either a plain ``int64`` numpy array (used for ``iter``, ``pos``
and the various bookkeeping columns the loop-lifting compiler introduces)
or an :class:`~repro.relational.items.ItemColumn` for polymorphic XQuery
items.  Tables are immutable by convention: operators build new tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence, Union

import numpy as np

from repro.errors import AlgebraError
from repro.relational.items import ItemColumn

Column = Union[np.ndarray, ItemColumn]

_EMPTY = np.empty(0, dtype=np.int64)


def as_num(column: Column) -> np.ndarray:
    """View a column as a plain int64 array (payload for item columns)."""
    if isinstance(column, ItemColumn):
        return column.data
    return column


class Table:
    """A named collection of equal-length columns."""

    __slots__ = ("columns",)

    def __init__(self, columns: Mapping[str, Column]):
        self.columns: dict[str, Column] = dict(columns)
        n = None
        for name, col in self.columns.items():
            ln = len(col)
            if n is None:
                n = ln
            elif ln != n:
                raise AlgebraError(f"column {name!r} has length {ln}, expected {n}")

    # --------------------------------------------------------------- build
    @classmethod
    def empty(cls, names: Iterable[str]) -> "Table":
        """A zero-row table with the given column names."""
        return cls({name: _EMPTY for name in names})

    # ----------------------------------------------------------- structure
    @property
    def num_rows(self) -> int:
        """Number of rows (every column has this length)."""
        for col in self.columns.values():
            return len(col)
        return 0

    @property
    def schema(self) -> tuple[str, ...]:
        """Column names, in insertion order."""
        return tuple(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def col(self, name: str) -> Column:
        """The column ``name`` (numeric array or :class:`ItemColumn`)."""
        try:
            return self.columns[name]
        except KeyError:
            raise AlgebraError(
                f"unknown column {name!r}; have {sorted(self.columns)}"
            ) from None

    def num(self, name: str) -> np.ndarray:
        """The column as a plain numeric array (item payload if an item)."""
        return as_num(self.col(name))

    def item(self, name: str) -> ItemColumn:
        """The column as an :class:`ItemColumn` (must be one)."""
        col = self.col(name)
        if not isinstance(col, ItemColumn):
            raise AlgebraError(f"column {name!r} is numeric, expected items")
        return col

    def take(self, idx) -> "Table":
        """Row selection / reordering by index array or boolean mask."""
        out = {}
        for name, col in self.columns.items():
            if isinstance(col, ItemColumn):
                out[name] = col.take(idx)
            else:
                out[name] = col[idx]
        return Table(out)

    def with_column(self, name: str, col: Column) -> "Table":
        """A copy with column ``name`` added (or replaced)."""
        out = dict(self.columns)
        out[name] = col
        return Table(out)

    def project(self, mapping: Sequence[tuple[str, str]]) -> "Table":
        """π: keep/rename/duplicate columns; ``mapping`` is (new, old)."""
        out = {}
        for new, old in mapping:
            if new in out:
                raise AlgebraError(f"duplicate output column {new!r} in projection")
            out[new] = self.col(old)
        return Table(out)

    @staticmethod
    def concat(tables: Sequence["Table"]) -> "Table":
        """Disjoint union: concatenate tables with identical schemas."""
        tables = [t for t in tables]
        if not tables:
            raise AlgebraError("union of zero tables")
        schema = tables[0].schema
        for t in tables[1:]:
            if set(t.schema) != set(schema):
                raise AlgebraError(
                    f"union schema mismatch: {schema} vs {t.schema}"
                )
        out: dict[str, Column] = {}
        for name in schema:
            cols = [t.col(name) for t in tables]
            if any(isinstance(c, ItemColumn) for c in cols):
                cols = [
                    c
                    if isinstance(c, ItemColumn)
                    else ItemColumn.from_ints(c)
                    for c in cols
                ]
                out[name] = ItemColumn.concat(cols)
            else:
                out[name] = np.concatenate(cols) if cols else _EMPTY
        return Table(out)

    def to_rows(self, pool) -> list[tuple]:
        """Decode to Python row tuples (tests / debugging)."""
        decoded = []
        for name in self.schema:
            col = self.columns[name]
            if isinstance(col, ItemColumn):
                decoded.append(col.to_values(pool))
            else:
                decoded.append([int(v) for v in col])
        return list(zip(*decoded)) if decoded else []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({', '.join(self.schema)}; {self.num_rows} rows)"
