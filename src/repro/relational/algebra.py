"""The relational algebra of the paper's Table 1, as an operator DAG.

Operators are immutable nodes with identity-based hashing (plans are DAGs;
shared subplans are evaluated once by the memoising evaluator).  The
algebra is deliberately "assembly-style", mirroring the restrictions the
paper exploits:

* all joins are equi-joins (``Join``), theta predicates are a ``Select``
  over a join/cross product;
* π (``Project``) renames/duplicates columns and never eliminates
  duplicate rows;
* ∪ (``Union``) is disjoint union — plain concatenation;
* ϱ (``RowNum``) is the MonetDB ``mark``-style row numbering with optional
  grouping and ordering;
* the staircase join (``StepJoin``), node constructors (``ElemConstr``,
  ``TextConstr``, ``AttrConstr``) and atomization (``Atomize``) are the
  "short-hands for efficient implementations" of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.encoding.axes import Axis, NodeTest

#: A scalar operand of Select/Map: a column reference or a constant.
Operand = tuple  # ("col", name) | ("const", python value)


def col(name: str) -> Operand:
    """Operand referencing column ``name``."""
    return ("col", name)


def const(value) -> Operand:
    """Operand holding a literal value."""
    return ("const", value)


@dataclass(frozen=True, eq=False)
class Op:
    """Base class of all algebra operators."""

    @property
    def children(self) -> tuple["Op", ...]:
        """The operator's input plans."""
        return ()

    def label(self) -> str:
        """Short human-readable label (dot / ASCII plan rendering)."""
        return type(self).__name__

    def struct_key(self, child_ids: tuple[int, ...]) -> tuple:
        """Structural identity key given dedup ids of the children (CSE)."""
        return (type(self).__name__,) + self._params() + (child_ids,)

    def _params(self) -> tuple:
        return ()


@dataclass(frozen=True, eq=False)
class Lit(Op):
    """A literal table.  ``item_cols`` marks polymorphic columns; their
    values in ``rows`` are Python scalars, encoded at evaluation time."""

    schema: tuple[str, ...]
    rows: tuple[tuple, ...]
    item_cols: frozenset = field(default_factory=frozenset)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        if not self.rows:
            return f"∅({','.join(self.schema)})"
        return f"lit({','.join(self.schema)};{len(self.rows)}r)"

    def _params(self) -> tuple:
        # NB: row values are tagged with their Python type — ``True == 1``
        # and ``hash(True) == hash(1)``, so untyped rows would let CSE merge
        # a boolean literal table with an integer one.
        typed_rows = tuple(
            tuple((type(v).__name__, v) for v in row) for row in self.rows
        )
        return (self.schema, typed_rows, tuple(sorted(self.item_cols)))


@dataclass(frozen=True, eq=False)
class Project(Op):
    """π — keep/rename/duplicate columns.  ``cols`` is ``(new, old)``."""

    child: Op
    cols: tuple[tuple[str, str], ...]

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        parts = [n if n == o else f"{n}:{o}" for n, o in self.cols]
        return f"π {','.join(parts)}"

    def _params(self):
        return (self.cols,)


@dataclass(frozen=True, eq=False)
class Select(Op):
    """σ — keep rows satisfying a simple comparison predicate."""

    child: Op
    op: str  # eq ne lt le gt ge
    lhs: Operand
    rhs: Operand

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"σ {_fmt(self.lhs)} {self.op} {_fmt(self.rhs)}"

    def _params(self):
        return (self.op, self.lhs, self.rhs)


@dataclass(frozen=True, eq=False)
class Union(Op):
    """∪ — disjoint union (concatenation) of same-schema inputs."""

    inputs: tuple[Op, ...]

    @property
    def children(self):
        """The operator's input plans."""
        return self.inputs

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "∪"


@dataclass(frozen=True, eq=False)
class Difference(Op):
    """\\ — rows of ``left`` whose key is absent from ``right``."""

    left: Op
    right: Op
    keys: tuple[str, ...]

    @property
    def children(self):
        """The operator's input plans."""
        return (self.left, self.right)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"\\ {','.join(self.keys)}"

    def _params(self):
        return (self.keys,)


@dataclass(frozen=True, eq=False)
class Distinct(Op):
    """δ — duplicate elimination on ``keys``.

    Keeps the first occurrence; "first" means smallest ``order_col`` value
    when one is given (sequence order), physical row order otherwise.
    """

    child: Op
    keys: tuple[str, ...]
    order_col: str | None = None

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"δ {','.join(self.keys)}"

    def _params(self):
        return (self.keys, self.order_col)


@dataclass(frozen=True, eq=False)
class Join(Op):
    """⋈ — inner equi-join on ``keys`` = ((lcol, rcol), ...).

    Output schema is the union of both sides' columns, which must be
    disjoint (the compiler renames first, exactly like the paper's plans).
    """

    left: Op
    right: Op
    keys: tuple[tuple[str, str], ...]

    @property
    def children(self):
        """The operator's input plans."""
        return (self.left, self.right)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "⋈ " + ",".join(f"{l}={r}" for l, r in self.keys)

    def _params(self):
        return (self.keys,)


@dataclass(frozen=True, eq=False)
class SemiJoin(Op):
    """⋉ — rows of ``left`` with at least one key match in ``right``."""

    left: Op
    right: Op
    keys: tuple[tuple[str, str], ...]

    @property
    def children(self):
        """The operator's input plans."""
        return (self.left, self.right)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "⋉ " + ",".join(f"{l}={r}" for l, r in self.keys)

    def _params(self):
        return (self.keys,)


@dataclass(frozen=True, eq=False)
class Cross(Op):
    """× — Cartesian product (schemas must be disjoint)."""

    left: Op
    right: Op

    @property
    def children(self):
        """The operator's input plans."""
        return (self.left, self.right)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "×"


@dataclass(frozen=True, eq=False)
class RowNum(Op):
    """ϱ — dense 1-based row numbering.

    Numbers rows by ``order`` (sequence of ``(column, descending)``)
    within each ``group`` (or globally when ``group`` is None).  This is
    MonetDB's ``mark`` / SQL:1999 ``DENSE_RANK`` in the paper's notation
    ``%target:(order)/group``.
    """

    child: Op
    target: str
    order: tuple[tuple[str, bool], ...]
    group: str | None = None

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        order = ",".join(c + ("↓" if d else "") for c, d in self.order)
        group = f"/{self.group}" if self.group else ""
        return f"ϱ {self.target}:({order}){group}"

    def _params(self):
        return (self.target, self.order, self.group)


@dataclass(frozen=True, eq=False)
class Map(Op):
    """⊛ — elementwise function over columns/constants (arith, cmp, ...)."""

    child: Op
    fn: str
    target: str
    args: tuple[Operand, ...]

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"⊛ {self.target}:{self.fn}({','.join(_fmt(a) for a in self.args)})"

    def _params(self):
        return (self.fn, self.target, self.args)


@dataclass(frozen=True, eq=False)
class Aggr(Op):
    """Aggregation (count/sum/min/max/avg/str_join) per ``group``.

    Output schema: ``(group, target)`` — or just ``(target,)`` with a
    single row when ``group`` is None.  Groups absent from the input are
    absent from the output (the compiler fills defaults explicitly, e.g.
    ``fn:count`` of an empty sequence).
    """

    child: Op
    kind: str
    target: str
    arg: str | None
    group: str | None
    sep: str = " "
    order_col: str | None = None  # order-sensitive aggregates (str_join)

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        group = f"/{self.group}" if self.group else ""
        return f"{self.kind} {self.target}:{self.arg or '*'}{group}"

    def _params(self):
        return (self.kind, self.target, self.arg, self.group, self.sep, self.order_col)


@dataclass(frozen=True, eq=False)
class StepJoin(Op):
    """Staircase join: evaluate an XPath axis step for every context node.

    Input: a table with columns ``(iter_col, item_col)`` of node items.
    Output: ``(iter_col, item_col)`` — the axis result, duplicate-free and
    document-ordered per ``iter`` (the axis-step post-condition XQuery
    requires).
    """

    child: Op
    axis: Axis
    test: NodeTest
    iter_col: str = "iter"
    item_col: str = "item"

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"⤲ {self.axis.value}::{self.test}"

    def _params(self):
        return (self.axis, self.test, self.iter_col, self.item_col)


@dataclass(frozen=True, eq=False)
class StructuralTwigJoin(Op):
    """Multi-way structural join: a chain of axis steps matched as one twig.

    ``steps`` is the ordered chain ``((axis, test), ...)`` that a run of
    pairwise :class:`StepJoin` operators would have evaluated one at a
    time; the ``wcoj`` optimizer mode collapses such runs into this single
    operator.  The evaluator matches the whole chain in one pass over the
    sorted pre/size ranges (worst-case-optimal in the spirit of leapfrog
    triejoin: no intermediate result is ever materialised beyond the
    frontier of context nodes).  Output has the same post-condition as the
    final ``StepJoin`` it replaces: ``(iter_col, item_col)``, duplicate-
    free and document-ordered per ``iter``.
    """

    child: Op
    steps: tuple[tuple[Axis, NodeTest], ...]
    iter_col: str = "iter"
    item_col: str = "item"

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        path = "/".join(f"{a.value}::{t}" for a, t in self.steps)
        return f"⋈⤲ {path}"

    def _params(self):
        return (self.steps, self.iter_col, self.item_col)


@dataclass(frozen=True, eq=False)
class Atomize(Op):
    """fn:data — typed-value extraction: nodes become ``xs:untypedAtomic``
    string values, atomic items pass through."""

    child: Op
    target: str
    arg: str

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"data {self.target}:{self.arg}"

    def _params(self):
        return (self.target, self.arg)


@dataclass(frozen=True, eq=False)
class ElemConstr(Op):
    """ε — element construction, one new element per ``iter``.

    ``names`` has columns ``(iter, item)`` (one QName string per iter);
    ``content`` has ``(iter, pos, item)`` whose items are copied into the
    new element: node items are deep-copied subtrees, attribute items
    become attributes, adjacent atomic items merge into text nodes.
    Output: ``(iter, item)`` with the freshly constructed node ids.
    """

    names: Op
    content: Op

    @property
    def children(self):
        """The operator's input plans."""
        return (self.names, self.content)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "ε elem"


@dataclass(frozen=True, eq=False)
class TextConstr(Op):
    """τ — text-node construction, one new text node per ``iter``.

    ``content`` has ``(iter, item)`` with one string per iter.
    """

    content: Op

    @property
    def children(self):
        """The operator's input plans."""
        return (self.content,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "τ text"


@dataclass(frozen=True, eq=False)
class AttrConstr(Op):
    """Attribute construction: ``names``/``values`` are ``(iter, item)``
    string tables; output ``(iter, item)`` of fresh attribute items."""

    names: Op
    values: Op

    @property
    def children(self):
        """The operator's input plans."""
        return (self.names, self.values)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return "ε attr"


@dataclass(frozen=True, eq=False)
class GenRange(Op):
    """``lo to hi`` range expansion: input has per-iter integer columns
    ``lo_col``/``hi_col``; output is ``(iter, pos, item)`` with one row per
    integer of each iter's inclusive range."""

    child: Op
    lo_col: str
    hi_col: str

    @property
    def children(self):
        """The operator's input plans."""
        return (self.child,)

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"range {self.lo_col}..{self.hi_col}"

    def _params(self):
        return (self.lo_col, self.hi_col)


@dataclass(frozen=True, eq=False)
class DocRoot(Op):
    """fn:doc — one row ``(iter=1, pos=1, item=document node)``."""

    uri: str

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        return f"doc({self.uri!r})"

    def _params(self):
        return (self.uri,)


@dataclass(frozen=True, eq=False)
class ParamTable(Op):
    """An external-variable parameter table (``declare variable $x
    external``).

    A leaf whose contents are *not* known at compile time: at evaluation
    the binding supplied through ``EvalContext.params[name]`` expands to
    one row ``(pos, item)`` per item of the bound sequence (dense ``pos``
    1..n).  This is what makes a compiled plan reusable across
    executions — the plan cache stores the DAG once, and each execution
    resolves the parameter table against its own bindings.  When
    ``type_name`` is set (``declare variable $x as xs:integer external``)
    the binding is type-checked at bind time.
    """

    name: str
    type_name: str | None = None

    def label(self) -> str:
        """Rendered operator label (plan printing)."""
        suffix = f" as {self.type_name}" if self.type_name else ""
        return f"param ${self.name}{suffix}"

    def _params(self):
        return (self.name, self.type_name)


def _fmt(operand: Operand) -> str:
    tag, v = operand
    return str(v) if tag == "col" else repr(v)


# --------------------------------------------------------------------------
# DAG utilities
# --------------------------------------------------------------------------
def walk(root: Op) -> Iterator[Op]:
    """Yield every distinct operator of the DAG, children before parents."""
    seen: set[int] = set()
    stack: list[tuple[Op, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for child in node.children:
                if id(child) not in seen:
                    stack.append((child, False))


def op_count(root: Op) -> int:
    """Number of distinct operators in the plan DAG (paper: Q8 ≈ 120)."""
    return sum(1 for _ in walk(root))
