"""Edge-case battery for the loop-lifting compiler, differential vs the
baseline interpreter on every case."""

import pytest

from tests.conftest import run_baseline, run_pf

EDGE_CASES = [
    # scoping
    "let $x := 1 return let $x := $x + 1 return $x",
    "for $x in (1,2) return let $y := $x * 10 return ($y, $x)",
    "for $x in (1,2) for $x in (3,4) return $x",  # rebinding
    "let $x := (1,2,3) return for $y in $x return $y + count($x)",
    # where/order interplay
    "for $x in (5,3,4,1,2) where $x > 1 order by $x return $x",
    "for $x in (1,2,3), $y in (1,2,3) where $x < $y order by $y, $x descending return concat($x, '-', $y)",
    "for $x at $p in ('c','a','b') order by $x return $p",
    # predicates
    "(1 to 10)[. > 3][. < 7][2]",
    "/site/a[position() > 1]/text()",
    "/site/a[position() = last()]/text()",
    "//a[../deep]/text()",
    "//a[count(ancestor::*) = 2]/text()",
    "(//a)[last() - 1]/text()",
    # nested quantifiers
    "some $x in (1,2) satisfies every $y in (3,4) satisfies $y > $x",
    "every $x in () satisfies $x > 100",  # vacuous truth
    "some $x in () satisfies true()",
    # empty-sequence propagation
    "count(for $x in () return 1)",
    "sum(()) + count(())",
    "if (()) then 'y' else 'n'",
    "() = ()",
    "string(())",
    # heterogeneous sequences
    "for $x in (1, 'a', 2.5, /site/b) return string($x)",
    "data((5, /site/a[1], 'x'))",
    # constructors in odd positions
    "count((<a/>, <b/>))",
    "name((<first/>, <second/>)[2])",
    "<o>{ () }</o>",
    "for $i in (1,2) return <n>{ <m>{$i}</m> }</n>",
    "string(<a>x<b>y</b>z</a>)",
    # conditionals nested in FLWOR
    "for $x in (1,2,3) return if ($x = 2) then ($x, $x) else $x",
    "for $x in (1,2) where (if ($x = 1) then true() else false()) return $x",
    # typeswitch across iterations
    "for $x in (1, 'a') return typeswitch ($x) case xs:integer return $x + 1 default return 0",
    # arithmetic type preservation
    "1 + 1 instance of xs:integer",
    "(1 div 1) instance of xs:integer",
    "2.0 instance of xs:double",
    # set operations
    "count((//a | //b) except //a)",
    "count(//* intersect //a)",
    # deep paths
    "/site/nest/deep/a/../../a/text()",
    "count(//node())",
    "count(/site//*/text())",
    # functions of functions
    "declare function local:f($s) { count($s) + 1 }; local:f((1,2,3))",
    "declare function local:g($a, $b) { $a * 10 + $b }; for $i in (1,2) return local:g($i, $i)",
    "declare function local:h($x) { $x[1] }; local:h((/site/a[2], /site/a[1]))/text()",
    # string edge cases
    "concat('', '', 'x')",
    "substring('abc', 10)",
    "string-join((), '-')",
    "contains('', '')",
]


@pytest.mark.parametrize(
    "query", EDGE_CASES, ids=[f"edge{i}" for i in range(len(EDGE_CASES))]
)
def test_edge_case_agreement(engine, query):
    assert run_pf(engine, query) == run_baseline(engine, query)
