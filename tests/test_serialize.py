"""Tests for result serialization (the paper's post-processor)."""

import pytest

from repro import PathfinderEngine


@pytest.fixture
def engine():
    e = PathfinderEngine()
    e.load_document("d", '<r><a k="v">text &amp; more</a><b/></r>')
    return e


class TestAtomicSerialization:
    def test_space_between_adjacent_atomics(self, engine):
        assert engine.execute("(1, 2, 3)").serialize() == "1 2 3"

    def test_no_space_around_nodes(self, engine):
        assert engine.execute("(1, /r/b, 2)").serialize() == "1<b/>2"

    def test_booleans(self, engine):
        assert engine.execute("(true(), false())").serialize() == "true false"

    def test_doubles(self, engine):
        assert engine.execute("(1.5, 2e3, 1e0 div 0e0)").serialize() == "1.5 2000 INF"

    def test_strings_escaped(self, engine):
        # XQuery string literals use entity refs for markup characters
        out = engine.execute('"a &lt; b &amp; c"').serialize()
        assert out == "a &lt; b &amp; c"

    def test_empty_sequence_is_empty_string(self, engine):
        assert engine.execute("()").serialize() == ""


class TestNodeSerialization:
    def test_element_round_trip(self, engine):
        out = engine.execute("/r/a").serialize()
        assert out == '<a k="v">text &amp; more</a>'

    def test_attribute_node(self, engine):
        assert engine.execute("/r/a/@k").serialize() == 'k="v"'

    def test_text_node(self, engine):
        assert engine.execute("/r/a/text()").serialize() == "text &amp; more"

    def test_constructed_tree(self, engine):
        out = engine.execute('<x><y z="1"/>{ "t" }</x>').serialize()
        assert out == '<x><y z="1"/>t</x>'

    def test_document_node_serializes_children(self, engine):
        out = engine.execute('doc("d")').serialize()
        assert out.startswith("<r>") and out.endswith("</r>")

    def test_escaping_in_constructed_attribute(self, engine):
        out = engine.execute("<x a='{ \"q&quot;q\" }'/>").serialize()
        assert out == '<x a="q&quot;q"/>'


class TestValuesAPI:
    def test_scalar_types_preserved(self, engine):
        # 1.5 is xs:decimal — decoded as XSDecimal, a float subclass
        vals = engine.execute("(1, 1.5, 2e0, 'x', true())").values()
        assert [type(v).__name__ for v in vals] == [
            "int", "XSDecimal", "float", "str", "bool",
        ]
        assert all(isinstance(v, float) for v in vals[1:3])

    def test_sequence_is_in_order(self, engine):
        vals = engine.execute("for $i in (3, 1, 2) order by $i return $i").values()
        assert vals == [1, 2, 3]

    def test_node_handles_string_value(self, engine):
        (v,) = engine.execute("/r/a").values()
        assert v.string_value() == "text & more"
