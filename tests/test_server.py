"""End-to-end tests of the HTTP serving subsystem over a real socket.

A ``ThreadingHTTPServer`` is bound to an ephemeral port per test class;
requests go through ``urllib`` like any external client's would, so the
whole stack — routing, JSON codec, worker pool, deadlines, catalog
endpoints, stats — is exercised exactly as deployed.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import Database
from repro.server import QueryService, make_server
from repro.server.service import DeadlineExceeded

DOC = "<r><v>1</v><v>2</v><v>3</v></r>"
PARAM_QUERY = (
    "declare variable $n as xs:integer external; /r/v[position() <= $n]/text()"
)
#: a cross-product heavy enough to overrun a millisecond-scale deadline
SLOW_QUERY = (
    "count(for $a in /r/v, $b in /r/v, $c in /r/v, $d in /r/v, "
    "$e in /r/v, $f in /r/v, $g in /r/v, $h in /r/v return 1)"
)


@pytest.fixture(scope="module")
def server():
    """One live server for the whole module: (base_url, service)."""
    database = Database()
    database.load_document("r.xml", DOC)
    service = QueryService(database, workers=2, deadline_seconds=10.0)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.shutdown()
    thread.join(timeout=10)


def request(base: str, path: str, method: str = "GET", body: bytes | None = None):
    """One HTTP round trip; returns (status, decoded JSON)."""
    req = urllib.request.Request(base + path, data=body, method=method)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


def post_query(base: str, payload: dict):
    return request(
        base, "/query", "POST", json.dumps(payload).encode("utf-8")
    )


class TestQueryEndpoint:
    def test_one_shot(self, server):
        base, _ = server
        status, body = post_query(base, {"query": "count(/r/v)"})
        assert status == 200
        assert body["result"] == "3"
        assert body["items"] == 1

    def test_prepared_with_bindings(self, server):
        base, _ = server
        status, body = post_query(
            base, {"query": PARAM_QUERY, "bindings": {"n": 2}}
        )
        assert status == 200
        assert body["result"] == "12"
        assert body["parameters"] == ["n"]

    def test_plan_cache_hit_on_repeat(self, server):
        base, _ = server
        post_query(base, {"query": "count(//v)"})
        status, body = post_query(base, {"query": "count(//v)"})
        assert status == 200
        assert body["from_cache"] is True

    def test_syntax_error_is_400(self, server):
        base, _ = server
        status, body = post_query(base, {"query": "for $x in"})
        assert status == 400
        assert body["kind"] == "XQuerySyntaxError"

    def test_missing_query_field_is_400(self, server):
        base, _ = server
        status, body = post_query(base, {"bindings": {"n": 1}})
        assert status == 400
        assert "query" in body["error"]

    def test_undeclared_binding_is_400(self, server):
        base, _ = server
        status, body = post_query(
            base, {"query": "count(/r/v)", "bindings": {"nope": 1}}
        )
        assert status == 400
        assert "external variable" in body["error"]

    def test_deadline_expiry_is_504(self, server):
        base, _ = server
        status, body = post_query(
            base, {"query": SLOW_QUERY, "deadline": 0.001}
        )
        assert status == 504
        assert body["kind"] == "DeadlineExceeded"


class TestDocumentEndpoints:
    def test_listing(self, server):
        base, _ = server
        status, body = request(base, "/documents")
        assert status == 200
        uris = [d["uri"] for d in body["documents"]]
        assert "r.xml" in uris

    def test_hot_replace_and_epoch(self, server):
        base, _ = server
        status, put1 = request(
            base, "/documents/hot.xml", "PUT", b"<h><x/></h>"
        )
        assert status == 200 and put1["replaced"] is False
        status, q1 = post_query(base, {"query": 'count(doc("hot.xml")//x)'})
        assert q1["result"] == "1"
        status, put2 = request(
            base, "/documents/hot.xml", "PUT", b"<h><x/><x/></h>"
        )
        assert status == 200 and put2["replaced"] is True
        assert put2["epoch"] > put1["epoch"]
        status, q2 = post_query(base, {"query": 'count(doc("hot.xml")//x)'})
        assert q2["result"] == "2"

    def test_delete_then_404(self, server):
        base, _ = server
        request(base, "/documents/gone.xml", "PUT", b"<g/>")
        status, body = request(base, "/documents/gone.xml", "DELETE")
        assert status == 200 and body["unloaded"] is True
        status, body = request(base, "/documents/gone.xml", "DELETE")
        assert status == 404

    def test_empty_body_is_400(self, server):
        base, _ = server
        status, body = request(base, "/documents/empty.xml", "PUT", b"")
        assert status == 400


class TestOperationalEndpoints:
    def test_healthz(self, server):
        base, _ = server
        assert request(base, "/healthz") == (200, {"ok": True})

    def test_explain(self, server):
        base, _ = server
        status, body = request(base, "/explain?q=count(/r/v)")
        assert status == 200
        assert body["ops_after"] <= body["ops_before"]
        assert {p["name"] for p in body["passes"]} >= {"cse", "prune"}

    def test_explain_reports_optimizer_mode_and_pass_timings(self, server):
        base, _ = server
        status, body = request(base, "/explain?q=count(/r/v)")
        assert status == 200
        assert body["optimizer_mode"] == "cost"
        for entry in body["passes"]:
            assert entry["seconds"] >= 0.0

    def test_explain_without_query_is_400(self, server):
        base, _ = server
        status, _ = request(base, "/explain")
        assert status == 400

    def test_stats_surface(self, server):
        base, _ = server
        post_query(base, {"query": "count(/r/v)"})
        status, body = request(base, "/stats")
        assert status == 200
        assert body["requests_total"] >= 1
        assert body["queries_executed"] >= 1
        assert body["in_flight"] == 0
        assert 0.0 <= body["plan_cache"]["hit_rate"] <= 1.0
        assert "cse" in body["optimizer_pass_totals"]
        assert body["queries_by_mode"].get("cost", 0) >= 1

    def test_unknown_route_is_404(self, server):
        base, _ = server
        status, _ = request(base, "/nope")
        assert status == 404


class TestServiceDirect:
    """The protocol-independent core, driven without HTTP."""

    def test_concurrent_requests_against_live_server(self, server):
        base, _ = server
        results = []

        def client():
            for _ in range(5):
                results.append(post_query(base, {"query": "count(/r/v)"}))

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(results) == 20
        assert all(
            status == 200 and body["result"] == "3" for status, body in results
        )

    def test_queued_requests_are_shed_after_deadline(self):
        database = Database()
        database.load_document("r.xml", DOC)
        service = QueryService(database, workers=1, deadline_seconds=0.001)
        try:
            with pytest.raises(DeadlineExceeded):
                service.execute(SLOW_QUERY)
            assert service.stats()["timeouts"] == 1
        finally:
            service.shutdown(wait=True)

    def test_shutdown_rejects_new_work(self):
        service = QueryService(Database(), workers=1)
        service.shutdown()
        from repro.errors import PathfinderError

        with pytest.raises(PathfinderError):
            service.execute("1+1")


class TestKeepAliveIntegrity:
    """Error paths must leave the HTTP/1.1 keep-alive stream in sync."""

    def test_error_response_does_not_desync_connection(self, server):
        import http.client

        base, _ = server
        host, port = base.removeprefix("http://").split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            # a POST with a body to an unknown route: the 404 must drain
            # the body, or it would be parsed as the next request line
            conn.request("POST", "/nope", body=b'{"query": "1+1"}')
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            # the same connection must still serve a valid request
            conn.request("POST", "/query", body=json.dumps({"query": "1+1"}))
            resp = conn.getresponse()
            assert resp.status == 200
            assert json.loads(resp.read())["result"] == "2"
            # PUT without a document name: same contract
            conn.request("PUT", "/documents/", body=b"<x/>")
            resp = conn.getresponse()
            assert resp.status == 404
            resp.read()
            conn.request("POST", "/query", body=json.dumps({"query": "1+1"}))
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
        finally:
            conn.close()


def test_stats_counts_every_failed_request():
    """Compile errors and unexpected failures must both show in /stats."""
    database = Database()
    database.load_document("r.xml", DOC)
    service = QueryService(database, workers=1)
    try:
        from repro.errors import PathfinderError

        with pytest.raises(PathfinderError):
            service.execute("for $x in")  # syntax error
        assert service.stats()["errors"] == 1
    finally:
        service.shutdown(wait=True)


def test_service_honors_optimizer_mode_session_option():
    """A service serving under ``optimizer_mode: greedy`` reports it in
    /explain payloads and counts its queries under that mode in /stats."""
    database = Database()
    database.load_document("r.xml", DOC)
    service = QueryService(
        database, workers=1, session_options={"optimizer_mode": "greedy"}
    )
    try:
        report = service.explain("count(/r/v)")
        assert report["optimizer_mode"] == "greedy"
        service.execute("count(/r/v)")
        by_mode = service.stats()["queries_by_mode"]
        assert by_mode.get("greedy", 0) >= 1
        assert "cost" not in by_mode
    finally:
        service.shutdown(wait=True)


class TestReviewRegressions:
    """Contract details: falsy-but-valid queries, bad deadline types,
    shed/timeout exclusivity."""

    def test_falsy_query_text_is_executed(self, server):
        base, _ = server
        status, body = post_query(base, {"query": "0"})
        assert status == 200
        assert body["result"] == "0"

    def test_non_numeric_deadline_is_400(self, server):
        base, _ = server
        status, body = post_query(
            base, {"query": "1+1", "deadline": [5]}
        )
        assert status == 400
        assert "deadline" in body["error"]

    def test_shed_and_timeout_are_mutually_exclusive(self):
        """A request whose budget expires while queued counts as shed,
        not as a timeout — never both."""
        import threading as _threading

        database = Database()
        database.load_document("r.xml", DOC)
        service = QueryService(database, workers=1, deadline_seconds=60.0)
        try:
            gate = _threading.Event()
            # deterministically occupy the only worker until gate.set()
            blocker = _threading.Thread(
                target=lambda: service._submit(
                    lambda session: gate.wait(30), deadline=30
                )
            )
            blocker.start()
            for _ in range(200):
                if service.stats()["in_flight"] == 1:
                    break
                _threading.Event().wait(0.01)
            with pytest.raises(DeadlineExceeded):
                service.execute("1+1", deadline=0.05)  # queued, then shed
            stats = service.stats()
            assert stats["shed"] == 1
            assert stats["timeouts"] == 0
            gate.set()
            blocker.join(timeout=60)
        finally:
            service.shutdown(wait=True)


class TestChunkedQueryResponses:
    """``POST /query`` streams with chunked transfer encoding, and the
    reassembled body is byte-identical to the buffered JSON payload."""

    def _raw_query(self, base: str, payload: dict):
        """One /query round trip at the http.client level, so the raw
        transfer headers are observable."""
        import http.client
        from urllib.parse import urlparse

        url = urlparse(base)
        conn = http.client.HTTPConnection(url.hostname, url.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/query",
                body=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            body = resp.read()
            return resp, body
        finally:
            conn.close()

    def test_response_is_chunked(self, server):
        base, _ = server
        resp, body = self._raw_query(base, {"query": "/r/v"})
        assert resp.status == 200
        assert resp.getheader("Transfer-Encoding") == "chunked"
        assert resp.getheader("Content-Length") is None
        assert json.loads(body)["result"] == "<v>1</v><v>2</v><v>3</v>"

    def test_body_is_byte_identical_to_buffered_json(self, server):
        """The hand-assembled chunk stream must be exactly what
        ``json.dumps`` of the buffered payload would have produced —
        including string escapes and unicode handling."""
        base, _ = server
        query = '(/r/v, "quote ""and"" backslash \\", "café", "a<b", 1.5)'
        resp, body = self._raw_query(base, {"query": query})
        assert resp.status == 200
        payload = json.loads(body)
        assert body.decode("utf-8") == json.dumps(payload)
        assert "café" in payload["result"]

    def test_multi_chunk_document_result(self, server):
        """A whole-document result streams in more than one TCP chunk
        yet reassembles to the buffered serialization."""
        base, _ = server
        resp, body = self._raw_query(base, {"query": 'doc("r.xml")'})
        assert resp.status == 200
        payload = json.loads(body)
        assert payload["result"] == DOC
        assert body.decode("utf-8") == json.dumps(payload)

    def test_errors_still_buffered_json(self, server):
        base, _ = server
        status, body = post_query(base, {"query": "for $x in"})
        assert status == 400 and body["kind"] == "XQuerySyntaxError"

    def test_stream_deadline_covers_serialization(self):
        """The request budget does not stop at the worker pool: a stream
        consumed after expiry raises DeadlineExceeded and counts as a
        timeout in /stats."""
        import time as _time

        database = Database()
        database.load_document("r.xml", DOC)
        service = QueryService(database, workers=1, deadline_seconds=60.0)
        try:
            meta, chunks = service.execute_stream("/r/v", deadline=0.2)
            assert meta["items"] == 3
            before = service.stats()["timeouts"]
            _time.sleep(0.3)
            with pytest.raises(DeadlineExceeded):
                list(chunks)
            assert service.stats()["timeouts"] == before + 1
        finally:
            service.shutdown()

    def test_stream_happy_path_counts_no_errors(self):
        database = Database()
        database.load_document("r.xml", DOC)
        service = QueryService(database, workers=1)
        try:
            meta, chunks = service.execute_stream("count(/r/v)")
            assert "".join(chunks) == "3"
            stats = service.stats()
            assert stats["errors"] == 0 and stats["timeouts"] == 0
        finally:
            service.shutdown()


class TestStoreEndpoints:
    """The persistence surface over HTTP: /checkpoint, /stats store
    section, and checkpoint-on-shutdown."""

    @pytest.fixture()
    def store_server(self, tmp_path):
        database = Database(store=str(tmp_path / "db.pfstore"))
        database.load_document("r.xml", DOC)
        service = QueryService(database, workers=1, deadline_seconds=10.0)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield base, service
        httpd.shutdown()
        httpd.server_close()
        service.shutdown()
        thread.join(timeout=10)

    def test_stats_has_store_section(self, store_server):
        base, _ = store_server
        status, body = request(base, "/stats")
        assert status == 200
        assert body["store"]["documents"] == 1
        assert body["store"]["wal_records"] == 0

    def test_checkpoint_folds_the_wal(self, store_server):
        base, service = store_server
        status, _ = request(
            base,
            "/update",
            "POST",
            json.dumps({"query": "insert node <x/> into /r"}).encode("utf-8"),
        )
        assert status == 200
        assert service.database.store.wal_bytes > 0
        status, body = request(base, "/checkpoint", "POST")
        assert status == 200
        assert body["documents_rewritten"] == 1
        assert service.database.store.wal_bytes == 0

    def test_checkpoint_without_store_is_400(self, server):
        base, _ = server
        status, body = request(base, "/checkpoint", "POST")
        assert status == 400
        assert "store" in body["error"]

    def test_shutdown_checkpoints(self, tmp_path):
        database = Database(store=str(tmp_path / "db.pfstore"))
        database.load_document("r.xml", DOC)
        service = QueryService(database, workers=1)
        service.execute_update("insert node <x/> into /r")
        assert database.store.wal_bytes > 0
        service.shutdown(wait=True)
        assert database.store.wal_bytes == 0

    def test_serve_parser_accepts_store(self, tmp_path):
        from repro.server.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--store", str(tmp_path / "s"), "--xmark", "0.001"]
        )
        assert args.store == str(tmp_path / "s")


class TestPagedServer:
    """Serving a catalog bigger than the paging budget: lazy recovery,
    the /stats paging section, and byte-budget CLI wiring."""

    @pytest.fixture()
    def paged_server(self, tmp_path):
        seed = Database(store=str(tmp_path / "db.pfstore"))
        seed.load_document("r.xml", DOC)
        seed.load_document("s.xml", "<s><w>9</w></s>")
        # a budget far below the two fragments' column bytes: every
        # request pages its document in and evicts the other
        database = Database.open(str(tmp_path / "db.pfstore"), page_budget_bytes=64)
        service = QueryService(database, workers=1, deadline_seconds=10.0)
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.server_address[1]}"
        yield base, service
        httpd.shutdown()
        httpd.server_close()
        service.shutdown()
        thread.join(timeout=10)

    def test_stats_has_paging_section(self, paged_server):
        base, _ = paged_server
        status, body = request(base, "/stats")
        assert status == 200
        paging = body["paging"]
        assert paging["budget_bytes"] == 64
        assert paging["fragments"] == 2
        for key in (
            "resident_bytes",
            "mapped_bytes",
            "faults",
            "evictions",
            "pinned_fragments",
        ):
            assert key in paging, key

    def test_stats_has_no_paging_section_when_off(self, server):
        base, _ = server
        _, body = request(base, "/stats")
        assert "paging" not in body

    def test_queries_succeed_under_tiny_budget(self, paged_server):
        base, _ = paged_server
        status, body = post_query(base, {"query": "/r/v/text()"})
        assert status == 200
        assert body["result"] == "123"
        status, body = post_query(base, {"query": 'doc("s.xml")/s/w/text()'})
        assert status == 200
        assert body["result"] == "9"
        _, stats = request(base, "/stats")
        assert stats["paging"]["faults"] >= 2

    def test_documents_listing_stays_cold(self, paged_server):
        base, service = paged_server
        status, body = request(base, "/documents")
        assert status == 200
        assert {d["uri"] for d in body["documents"]} == {"r.xml", "s.xml"}
        assert service.database.paging_status()["faults"] == 0

    def test_serve_parser_accepts_page_budget(self, tmp_path):
        from repro.server.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            ["--store", str(tmp_path / "s"), "--page-budget", "65536"]
        )
        assert args.page_budget == 65536
        assert build_serve_parser().parse_args([]).page_budget is None
