"""Tests for the MIL program generator (the demo's compilation artifact)."""

import pytest

from repro import PathfinderEngine
from repro.compiler.milgen import to_mil


@pytest.fixture
def engine():
    e = PathfinderEngine()
    e.load_document("d", "<r><a>1</a><a>2</a></r>")
    return e


class TestMilGeneration:
    def test_figure5_program_shape(self, engine):
        mil = engine.explain("for $v in (10,20) return $v + 100").mil
        assert mil.startswith("# MIL program")
        assert "var t" in mil
        # the paper highlights mark() as MonetDB's no-cost row numbering
        assert ".mark(" in mil
        assert "[add](" in mil
        assert "serialize(" in mil

    def test_staircase_join_call_emitted(self, engine):
        mil = engine.explain("count(//a)").mil
        assert "staircasejoin(" in mil
        assert '"descendant-or-self"' in mil

    def test_query_text_embedded_as_comment(self, engine):
        mil = engine.explain("1 + 1").mil
        assert "# XQuery: 1 + 1" in mil

    def test_every_operator_gets_a_variable_block(self, engine):
        report = engine.explain("for $x in /r/a order by $x return $x/text()")
        from repro.relational import algebra as alg

        mil = report.mil
        n_ops = alg.op_count(report.optimized)
        assert mil.count("# t") >= n_ops

    def test_aggregates_render(self, engine):
        mil = engine.explain("sum(/r/a)").mil
        assert "{sum}(" in mil or "sum(" in mil
        assert ".group()" in mil

    def test_string_literals_escaped(self, engine):
        mil = engine.explain('"say ""hi"""').mil
        assert '\\"hi\\"' in mil

    def test_deterministic(self, engine):
        q = "for $v in (1,2) return $v * 2"
        assert engine.explain(q).mil == engine.explain(q).mil

    def test_direct_to_mil_api(self, engine):
        plan, _ = engine.compile("1 + 2")
        text = to_mil(plan)
        assert "serialize(" in text
