"""Tests for the nested-loop baseline interpreter."""

import pytest

from repro.baseline.interpreter import Interpreter, QueryTimeout
from repro.errors import StaticError
from repro.xquery.core import desugar_module
from repro.xquery.parser import parse_query

from tests.conftest import run_baseline


class TestBasics:
    def test_arithmetic(self, engine):
        assert run_baseline(engine, "1 + 2 * 3") == "7"

    def test_flwor(self, engine):
        out = run_baseline(engine, "for $v in (10,20), $w in (100,200) return $v + $w")
        assert out == "110 210 120 220"

    def test_paths_and_predicates(self, engine):
        assert run_baseline(engine, "/site/a[last()]/text()") == "2"
        assert run_baseline(engine, 'count(//a[@i = "z"])') == "1"

    def test_axes(self, engine):
        assert run_baseline(engine, "count(/site/nest/deep/a/ancestor::*)") == "3"
        assert run_baseline(engine, "count(/site/a[1]/following::*)") == "6"
        assert run_baseline(engine, "count(/site/nest/preceding::node())") == "6"

    def test_order_by(self, engine):
        out = run_baseline(engine, "for $x in (3,1,2) order by $x descending return $x")
        assert out == "3 2 1"

    def test_constructors(self, engine):
        assert run_baseline(engine, '<a v="{1+1}">{ "t" }</a>') == '<a v="2">t</a>'

    def test_typeswitch(self, engine):
        query = 'typeswitch (2.5e0) case xs:double return "d" default return "x"'
        assert run_baseline(engine, query) == "d"

    def test_typeswitch_decimal(self, engine):
        # a decimal literal is xs:decimal, not xs:double
        query = 'typeswitch (2.5) case xs:double return "d" case xs:decimal return "c" default return "x"'
        assert run_baseline(engine, query) == "c"

    def test_undefined_variable(self, engine):
        with pytest.raises(StaticError):
            run_baseline(engine, "$nope")


class TestRecursion:
    def test_recursive_udf(self, engine):
        query = (
            "declare function local:fact($n) "
            "{ if ($n <= 1) then 1 else $n * local:fact($n - 1) }; "
            "local:fact(6)"
        )
        assert run_baseline(engine, query) == "720"

    def test_mutual_style_iteration(self, engine):
        query = (
            "declare function local:sumto($n) "
            "{ if ($n = 0) then 0 else $n + local:sumto($n - 1) }; "
            "local:sumto(10)"
        )
        assert run_baseline(engine, query) == "55"


class TestDeadline:
    def test_timeout_raises(self, engine):
        module = desugar_module(
            parse_query(
                "count(for $a in (1 to 300), $b in (1 to 300), $c in (1 to 300) return 1)"
            )
        )
        interp = Interpreter(engine.arena, engine.documents, engine.default_document)
        interp.set_deadline(0.05)
        with pytest.raises(QueryTimeout):
            interp.execute(module)

    def test_no_deadline_by_default(self, engine):
        module = desugar_module(parse_query("1 + 1"))
        interp = Interpreter(engine.arena, engine.documents, engine.default_document)
        assert interp.execute(module) == [2]


class TestValueIndex:
    def test_index_probe_matches_scan(self, xmark_engine):
        query = """
            for $p in /site/people/person
            let $a := for $t in /site/closed_auctions/closed_auction
                      where $t/buyer/@person = $p/@id
                      return $t
            return count($a)
        """
        plain = run_baseline(xmark_engine, query)
        module = desugar_module(parse_query(query))
        interp = Interpreter(
            xmark_engine.arena,
            xmark_engine.documents,
            xmark_engine.default_document,
            use_indexes=True,
        )
        interp.add_value_index("person")
        assert interp.serialize(interp.execute(module)) == plain

    def test_index_preserves_binding_order(self, engine):
        query = (
            "for $x in /site/a "
            "let $m := for $y in /site/a where $y/@i = $x/@i return $y "
            "return count($m)"
        )
        plain = run_baseline(engine, query)
        module = desugar_module(parse_query(query))
        interp = Interpreter(
            engine.arena, engine.documents, engine.default_document, use_indexes=True
        )
        interp.add_value_index("i")
        assert interp.serialize(interp.execute(module)) == plain
