"""Tests for the SQL host back-end (XQuery on SQL Hosts, paper ref [6]).

The central property: for every plan the SQL host supports, executing the
translated SQL on SQLite produces exactly the result of the numpy
column-store evaluator.
"""

import pytest

from repro import PathfinderEngine
from repro.compiler.serialize import serialize_result
from repro.errors import NotSupportedError
from repro.sqlhost import SQLHostBackend

from tests.conftest import SMALL_XML


@pytest.fixture(scope="module")
def setup():
    engine = PathfinderEngine()
    engine.load_document("doc.xml", SMALL_XML)
    backend = SQLHostBackend(engine.arena, engine.documents)
    yield engine, backend
    backend.close()


def both(setup, query):
    engine, backend = setup
    table = backend.execute_query(query, engine.default_document)
    sql_out = serialize_result(table, engine.arena)
    pf_out = engine.execute(query).serialize()
    return sql_out, pf_out


BATTERY = [
    "1 + 2 * 3",
    "7 idiv 2",
    "7 div 2",
    "-(4.5)",
    "(1, 2, 3)[. > 1]",
    "(1 to 6)[. mod 2 = 0]",
    "count(//a)",
    "/site/a/text()",
    "data(//@i)",
    "sum(/site/a)",
    "min(/site/a) , max(/site/a)",
    "avg((2, 4, 9))",
    "for $x in /site/a where $x/text() = '1' return data($x/@i)",
    "for $x in (3,1,2) order by $x descending return $x",
    'for $x in ("b","c","a") order by $x return $x',
    "string-join(for $a in //a return $a/text(), '|')",
    "distinct-values((1, 2, 1, 'x', 'x'))",
    "if (count(//a) > 2) then 'many' else 'few'",
    "contains(string(/site/nest), '3')",
    "starts-with('hello', 'he')",
    "ends-with('hello', 'lo')",
    "substring('abcde', 2, 3)",
    "substring-after('tattoo', 'tat')",
    "upper-case('aBc') , lower-case('aBc')",
    "normalize-space('  a  b ')",
    "floor(2.7) , ceiling(2.1) , round(2.5) , abs(-3)",
    "string-length('abc')",
    "concat('a', 'b', 'c')",
    "number('2.5') , number('x')",
    "boolean(//a) , not(//zzz)",
    "empty(//zzz) , exists(//a)",
    "some $x in //a satisfies $x/text() = '3'",
    "every $x in //a satisfies string-length($x/text()) = 1",
    "/site/a[1] is /site/a[1]",
    "/site/a[1] << /site/a[2]",
    "count(/site/a[1]/following::node())",
    "count(/site/nest//a/ancestor-or-self::*)",
    "count(/site/a[1]/following-sibling::*)",
    "/site/*[@i]/text()",
    "/site/a[last()]/text()",
    "name(/site/b) , name(/site/b/@f)",
    "root(/site/nest/a) is root(/site/a[1])",
    "typeswitch (5) case xs:integer return 'i' default return 'x'",
    "5 instance of xs:integer",
    "'x' cast as xs:string",
    "let $v := //a return count($v)",
    "for $x in //a return count($x/ancestor::*)",
    "/site/nest/a/ancestor::*/name(.)",
    "(1,2) = (2,3)",
    "(1,2) != (1,2)",
    "declare function local:f($x) { $x * 2 }; local:f(4)",
    # rewrite-pass shapes: pushdown through unions/crosses, fused
    # comparisons, value joins, swapped join inputs (join_order)
    "for $x in //a where $x/text() = '2' return $x/@i",
    "for $x in /site/a for $y in /site/nest//a "
    "where $x/text() = $y/text() return ($x, $y)",
    "(1 to 8)[. mod 3 = 1]",
    "count(for $v in (1,2,3,4) where $v >= 2 return $v * 10)",
]


@pytest.mark.parametrize("query", BATTERY, ids=[f"q{i}" for i in range(len(BATTERY))])
def test_sql_host_matches_columnstore(setup, query):
    sql_out, pf_out = both(setup, query)
    assert sql_out == pf_out


class TestRestrictions:
    def test_constructors_rejected(self, setup):
        engine, backend = setup
        with pytest.raises(NotSupportedError):
            backend.execute_query("<a/>", engine.default_document)

    def test_sql_text_inspectable(self, setup):
        engine, backend = setup
        plan, _ = engine.compile("count(//a)")
        sql = backend.sql_for(plan)
        assert sql.startswith("WITH RECURSIVE")
        assert "ROW_NUMBER() OVER" in sql or "COUNT(*)" in sql

    def test_plan_ctes_shared(self, setup):
        """DAG-shared subplans appear as one CTE, not duplicated SQL."""
        engine, backend = setup
        plan, _ = engine.compile("count(//a) + count(//a)")
        sql = backend.sql_for(plan)
        # the shared count subplan occurs once as a CTE definition
        assert sql.count("descendant-or-self") <= sql.count("WITH") + 2


class TestXMarkOnSQLHost:
    """The non-constructing XMark queries run fully inside SQL."""

    @pytest.fixture(scope="class")
    def xmark_setup(self):
        from repro.xmark import generate_document

        engine = PathfinderEngine()
        engine.load_document("auction.xml", generate_document(0.001, seed=11))
        backend = SQLHostBackend(engine.arena, engine.documents)
        yield engine, backend
        backend.close()

    @pytest.mark.parametrize("name", ["Q1", "Q5", "Q6", "Q7", "Q18"])
    def test_xmark_query(self, xmark_setup, name):
        from repro.xmark import XMARK_QUERIES

        engine, backend = xmark_setup
        query = XMARK_QUERIES[name]
        table = backend.execute_query(query, engine.default_document)
        assert serialize_result(table, engine.arena) == engine.execute(query).serialize()


def test_export_skips_superseded_document_versions():
    """The live-roots export must not copy dead arena rows (replaced
    document versions) into the SQL host."""
    from repro import Database
    from repro.sqlhost.backend import SQLHostBackend

    db = Database()
    db.load_document("r.xml", "<r><v>1</v><v>2</v><v>3</v></r>")
    db.load_document("r.xml", "<r><v>9</v></r>", replace=True)
    backend = SQLHostBackend(db.arena, db.documents)
    try:
        (count,) = backend.connection.execute(
            "SELECT COUNT(*) FROM nodes"
        ).fetchone()
        live_root = db.documents["r.xml"]
        assert count == int(db.arena.size[live_root]) + 1
        assert count < db.arena.num_nodes  # dead version stayed behind
        table = backend.execute_query("count(/r/v)", "r.xml")
        assert table.num_rows == 1  # the trimmed export still evaluates
    finally:
        backend.close()
