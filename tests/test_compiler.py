"""Integration tests: loop-lifting compilation, end to end via the engine.

Each test runs a query through parse → desugar → loop-lift → optimize →
evaluate → serialize and checks the final XDM output.
"""

import pytest

from repro import PathfinderEngine
from repro.errors import NotSupportedError, StaticError

from tests.conftest import run_pf


def q(engine, query):
    return run_pf(engine, query)


class TestLiteralsAndSequences:
    def test_integer(self, engine):
        assert q(engine, "42") == "42"

    def test_string(self, engine):
        assert q(engine, '"hi"') == "hi"

    def test_decimal_and_double(self, engine):
        assert q(engine, "2.5") == "2.5"
        assert q(engine, "1e3") == "1000"

    def test_sequence_order(self, engine):
        assert q(engine, '(1, "a", 2.5)') == "1 a 2.5"

    def test_nested_sequences_flatten(self, engine):
        assert q(engine, "((1,2),(3,(4)))") == "1 2 3 4"

    def test_empty_sequence(self, engine):
        assert q(engine, "()") == ""

    def test_range(self, engine):
        assert q(engine, "2 to 5") == "2 3 4 5"

    def test_empty_range(self, engine):
        assert q(engine, "5 to 2") == ""


class TestArithmetic:
    def test_basic_ops(self, engine):
        assert q(engine, "1 + 2 * 3") == "7"
        assert q(engine, "7 idiv 2") == "3"
        assert q(engine, "7 div 2") == "3.5"
        assert q(engine, "7 mod 3") == "1"
        assert q(engine, "-(3 + 4)") == "-7"

    def test_arith_with_empty_operand_is_empty(self, engine):
        assert q(engine, "1 + ()") == ""

    def test_untyped_node_content_casts(self, engine):
        assert q(engine, "/site/a[1] + 1") == "2"


class TestComparisons:
    def test_value_comparisons(self, engine):
        assert q(engine, "1 lt 2") == "true"
        assert q(engine, '"a" eq "a"') == "true"

    def test_value_comparison_empty_is_empty(self, engine):
        assert q(engine, "() eq 1") == ""

    def test_general_existential(self, engine):
        assert q(engine, "(1, 2, 3) = 2") == "true"
        assert q(engine, "(1, 2, 3) = 9") == "false"
        assert q(engine, "(1, 2) != (1, 2)") == "true"  # existential!

    def test_general_empty_false(self, engine):
        assert q(engine, "() = ()") == "false"

    def test_node_identity(self, engine):
        assert q(engine, "let $x := /site/a[1] return $x is $x") == "true"
        assert q(engine, "/site/a[1] is /site/a[2]") == "false"

    def test_document_order_comparison(self, engine):
        assert q(engine, "/site/a[1] << /site/a[2]") == "true"
        assert q(engine, "/site/a[1] >> /site/a[2]") == "false"


class TestLogic:
    def test_and_or(self, engine):
        assert q(engine, "1 and 2") == "true"
        assert q(engine, "0 or ()") == "false"

    def test_not(self, engine):
        assert q(engine, "not(0)") == "true"

    def test_ebv_of_node_sequence(self, engine):
        assert q(engine, "if (/site/a) then 1 else 2") == "1"
        assert q(engine, "if (/site/zzz) then 1 else 2") == "2"


class TestFLWOR:
    def test_paper_figure3(self, engine):
        out = q(engine, "for $v in (10,20), $w in (100,200) return $v + $w")
        assert out == "110 210 120 220"

    def test_let(self, engine):
        assert q(engine, "let $x := 5, $y := $x + 1 return $y") == "6"

    def test_where(self, engine):
        assert q(engine, "for $x in (1,2,3,4) where $x mod 2 = 0 return $x") == "2 4"

    def test_positional_variable(self, engine):
        assert q(engine, "for $x at $i in (9,8,7) return $i * 10 + $x") == "19 28 37"

    def test_order_by(self, engine):
        assert q(engine, "for $x in (3,1,2) order by $x return $x") == "1 2 3"
        assert q(engine, "for $x in (3,1,2) order by $x descending return $x") == "3 2 1"

    def test_order_by_string_keys(self, engine):
        out = q(engine, 'for $x in ("b","a","c") order by $x return $x')
        assert out == "a b c"

    def test_order_by_multiple_keys(self, engine):
        out = q(
            engine,
            "for $x in (11, 21, 12, 22) order by $x mod 10, $x descending return $x",
        )
        assert out == "21 11 22 12"

    def test_order_by_empty_key_least(self, engine):
        out = q(
            engine,
            "for $x in /site/nest//a order by $x/zzz/text() return $x/text()",
        )
        # empty keys tie; tuple order is preserved (text nodes concatenate)
        assert out == "34"

    def test_nested_flwor_scoping(self, engine):
        out = q(
            engine,
            "for $x in (1,2) return (for $y in (10,20) return $x * $y)",
        )
        assert out == "10 20 20 40"

    def test_for_over_empty_yields_empty(self, engine):
        assert q(engine, "for $x in () return 1") == ""

    def test_where_false_everywhere(self, engine):
        assert q(engine, "for $x in (1,2) where $x > 9 return $x") == ""


class TestConditionals:
    def test_if(self, engine):
        assert q(engine, 'if (1 < 2) then "y" else "n"') == "y"

    def test_if_per_iteration(self, engine):
        out = q(engine, 'for $x in (1,2,3) return if ($x mod 2 = 0) then "e" else "o"')
        assert out == "o e o"

    def test_typeswitch_dispatch(self, engine):
        query = (
            "for $x in (1, \"s\", 2.5) return "
            "typeswitch ($x) "
            "case xs:integer return \"int\" "
            "case xs:string return \"str\" "
            "default return \"other\""
        )
        assert q(engine, query) == "int str other"

    def test_typeswitch_node_cases(self, engine):
        query = (
            "for $x in (/site/a[1], /site/a[1]/text()) return "
            "typeswitch ($x) "
            "case element(a) return \"elem-a\" "
            "case text() return \"text\" "
            "default return \"other\""
        )
        assert q(engine, query) == "elem-a text"

    def test_typeswitch_empty_case(self, engine):
        query = (
            "typeswitch (()) case empty-sequence() return \"empty\" "
            "default return \"full\""
        )
        assert q(engine, query) == "empty"

    def test_typeswitch_binds_variable(self, engine):
        query = "typeswitch (7) case $v as xs:integer return $v + 1 default return 0"
        assert q(engine, query) == "8"

    def test_instance_of(self, engine):
        assert q(engine, "5 instance of xs:integer") == "true"
        assert q(engine, '"x" instance of xs:integer') == "false"


class TestPaths:
    def test_child_steps(self, engine):
        assert q(engine, "/site/a/text()") == "12"

    def test_descendant(self, engine):
        assert q(engine, "count(//a)") == "4"

    def test_attribute_value(self, engine):
        assert q(engine, "data(/site/a[1]/@i)") == "z"

    def test_attribute_in_predicate(self, engine):
        assert q(engine, '/site/a[@i = "z"]/text()') == "1"

    def test_positional_predicates(self, engine):
        assert q(engine, "/site/a[1]/text()") == "1"
        assert q(engine, "/site/a[2]/text()") == "2"
        assert q(engine, "/site/a[last()]/text()") == "2"
        assert q(engine, "/site/a[position() = 2]/text()") == "2"

    def test_boolean_predicate(self, engine):
        assert q(engine, "/site/*[@i]/text()") == "1"

    def test_chained_predicates_renumber(self, engine):
        assert q(engine, "(1 to 6)[. mod 2 = 0][2]") == "4"

    def test_parent_and_ancestor(self, engine):
        assert q(engine, "name(/site/nest/a/..)") == "nest"
        assert q(engine, "count(/site/nest/deep/a/ancestor::*)") == "3"

    def test_siblings(self, engine):
        assert q(engine, "/site/a[1]/following-sibling::a/text()") == "2"
        assert q(engine, "/site/a[2]/preceding-sibling::a/text()") == "1"

    def test_doc_order_and_dedup(self, engine):
        # both <a> parents lead to the same deep <a>; result is distinct
        out = q(engine, "count(/site/nest//a/ancestor-or-self::a)")
        assert out == "2"

    def test_path_result_in_document_order(self, engine):
        out = q(engine, "for $x in (/site/a[2], /site/a[1]) return $x/../a[1]/text()")
        assert out == "11"

    def test_doc_function(self, engine):
        assert q(engine, 'count(doc("doc.xml")/site/a)') == "2"

    def test_root_function(self, engine):
        assert q(engine, "count(root(/site/nest/a))") == "1"

    def test_step_from_atomic_raises(self, engine):
        from repro.errors import DynamicError

        with pytest.raises(DynamicError):
            engine.execute("(1)/a")


class TestBuiltins:
    def test_count_sum_avg_min_max(self, engine):
        assert q(engine, "count((1,2,3))") == "3"
        assert q(engine, "sum((1,2,3))") == "6"
        assert q(engine, "avg((1,2,3))") == "2"
        assert q(engine, "min((3,1,2))") == "1"
        assert q(engine, "max((3,1,2))") == "3"

    def test_aggregates_on_empty(self, engine):
        assert q(engine, "count(())") == "0"
        assert q(engine, "sum(())") == "0"
        assert q(engine, "max(())") == ""

    def test_count_per_iteration(self, engine):
        out = q(engine, "for $x in (1,2) return count(())")
        assert out == "0 0"

    def test_empty_exists(self, engine):
        assert q(engine, "empty(())") == "true"
        assert q(engine, "exists(/site/a)") == "true"

    def test_string_functions(self, engine):
        assert q(engine, 'contains("hello", "ell")') == "true"
        assert q(engine, 'starts-with("hello", "he")') == "true"
        assert q(engine, 'string-length("abc")') == "3"
        assert q(engine, 'concat("a", "b", "c")') == "abc"
        assert q(engine, 'string-join(("a","b"), "-")') == "a-b"

    def test_string_of_node(self, engine):
        assert q(engine, "string(/site/nest)") == "34"

    def test_string_of_empty(self, engine):
        assert q(engine, "string(())") == ""

    def test_number(self, engine):
        assert q(engine, 'number("2.5")') == "2.5"
        assert q(engine, 'number("x")') == "NaN"

    def test_data_on_mixed(self, engine):
        assert q(engine, "data((/site/a[1]/@i, 5))") == "z 5"

    def test_distinct_values(self, engine):
        assert q(engine, "distinct-values((1, 2, 1, 3, 2))") == "1 2 3"

    def test_name(self, engine):
        assert q(engine, "name(/site/b)") == "b"
        assert q(engine, "name(/site/b/@f)") == "f"

    def test_true_false(self, engine):
        assert q(engine, "true()") == "true"
        assert q(engine, "false()") == "false"

    def test_unknown_function_raises(self, engine):
        with pytest.raises(StaticError):
            engine.execute("no-such-fn(1)")

    def test_cardinality_passthroughs(self, engine):
        assert q(engine, "zero-or-one(/site/b/text())") == "x"
        assert q(engine, "exactly-one(5)") == "5"


class TestConstructors:
    def test_direct_element(self, engine):
        assert q(engine, '<a x="1">t</a>') == '<a x="1">t</a>'

    def test_enclosed_atomics_space_joined(self, engine):
        assert q(engine, "<a>{1, 2}</a>") == "<a>1 2</a>"

    def test_avt(self, engine):
        assert q(engine, '<a v="n={1+1}!"/>') == '<a v="n=2!"/>'

    def test_node_copy_is_deep(self, engine):
        out = q(engine, "<wrap>{/site/nest}</wrap>")
        assert out == "<wrap><nest><a>3</a><deep><a>4</a></deep></nest></wrap>"

    def test_copied_node_is_new(self, engine):
        assert q(engine, "let $n := /site/b return <w>{$n}</w>/b is $n") == "false"

    def test_computed_element_attribute_text(self, engine):
        out = q(engine, 'element r { attribute k { 1+1 }, text { "v" } }')
        assert out == '<r k="2">v</r>'

    def test_attribute_collected_from_sequence(self, engine):
        out = q(engine, "<o>{/site/a[1]/@i}</o>")
        assert out == '<o i="z"/>'

    def test_constructed_nodes_per_iteration(self, engine):
        out = q(engine, "for $x in (1,2) return <n v='{$x}'/>")
        assert out == '<n v="1"/><n v="2"/>'

    def test_standalone_attribute_serializes(self, engine):
        assert q(engine, "attribute a { 5 }") == 'a="5"'


class TestUserFunctions:
    def test_simple_udf(self, engine):
        assert q(engine, "declare function local:d($x) { $x * 2 }; local:d(21)") == "42"

    def test_udf_calls_udf(self, engine):
        query = (
            "declare function local:inc($x) { $x + 1 };"
            "declare function local:twice($x) { local:inc(local:inc($x)) };"
            "local:twice(5)"
        )
        assert q(engine, query) == "7"

    def test_udf_over_iterations(self, engine):
        query = "declare function local:sq($x) { $x * $x }; for $i in (1,2,3) return local:sq($i)"
        assert q(engine, query) == "1 4 9"

    def test_unbounded_recursion_rejected(self, engine):
        query = "declare function local:f($x) { local:f($x) }; local:f(1)"
        with pytest.raises(NotSupportedError):
            engine.execute(query)

    def test_declare_variable(self, engine):
        assert q(engine, "declare variable $k := 6; $k * 7") == "42"


class TestJoinRecognition:
    def test_results_match_with_and_without(self, engine):
        query = (
            "for $x in /site/a "
            "let $hits := for $y in /site/nest//a where $y/text() = $x/text() return $y "
            "return count($hits)"
        )
        with_jr = engine.execute(query).serialize()
        engine2 = PathfinderEngine()
        from tests.conftest import SMALL_XML

        engine2.load_document("doc.xml", SMALL_XML)
        from repro.compiler.loop_lifting import Compiler
        from repro.relational.evaluate import EvalContext, evaluate
        from repro.compiler.serialize import serialize_result
        from repro.xquery.core import desugar_module
        from repro.xquery.parser import parse_query

        m = desugar_module(parse_query(query))
        plan = Compiler(
            engine2.documents, engine2.default_document, use_join_recognition=False
        ).compile_module(m)
        ctx = EvalContext(engine2.arena, documents=engine2.documents)
        table = evaluate(plan, ctx)
        without_jr = serialize_result(table, engine2.arena)
        assert with_jr == without_jr

    def test_recognition_triggers_on_attribute_join(self, xmark_engine):
        from repro.compiler.loop_lifting import Compiler
        from repro.relational import algebra as alg
        from repro.xmark import XMARK_QUERIES
        from repro.xquery.core import desugar_module
        from repro.xquery.parser import parse_query

        m = desugar_module(parse_query(XMARK_QUERIES["Q8"]))
        with_jr = Compiler(
            xmark_engine.documents, xmark_engine.default_document
        ).compile_module(m)
        without_jr = Compiler(
            xmark_engine.documents,
            xmark_engine.default_document,
            use_join_recognition=False,
        ).compile_module(m)
        # recognised plans join on the comparison value: strictly more
        # Join operators over the value columns, no EBV where machinery
        assert alg.op_count(with_jr) != alg.op_count(without_jr)
