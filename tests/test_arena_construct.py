"""Tests for runtime node construction in the arena (ε/τ semantics)."""

import numpy as np
import pytest

from repro.encoding.arena import NK_TEXT, NodeArena
from repro.encoding.shred import shred_text
from repro.xml.serializer import serialize_node


@pytest.fixture
def arena():
    return NodeArena()


class TestTextAndAttributeConstruction:
    def test_new_text_node(self, arena):
        sid = arena.pool.intern("hello")
        row = arena.new_text_node(sid)
        assert arena.kind[row] == NK_TEXT
        assert arena.parent[row] == -1
        assert serialize_node(arena, row) == "hello"

    def test_new_attribute_is_parentless(self, arena):
        aid = arena.new_attribute(arena.pool.intern("k"), arena.pool.intern("v"))
        assert arena.attr_owner[aid] == -1

    def test_each_construction_is_a_new_fragment(self, arena):
        r1 = arena.new_text_node(arena.pool.intern("a"))
        r2 = arena.new_text_node(arena.pool.intern("b"))
        assert arena.frag[r1] != arena.frag[r2]
        assert r2 > r1  # document order follows creation order


class TestElementConstruction:
    def test_empty_element(self, arena):
        row = arena.new_element(arena.pool.intern("e"), [], [])
        assert serialize_node(arena, row) == "<e/>"
        assert arena.size[row] == 0 and arena.level[row] == 0

    def test_text_content(self, arena):
        row = arena.new_element(
            arena.pool.intern("e"), [], [("text", arena.pool.intern("hi"))]
        )
        assert serialize_node(arena, row) == "<e>hi</e>"

    def test_attributes(self, arena):
        row = arena.new_element(
            arena.pool.intern("e"),
            [(arena.pool.intern("a"), arena.pool.intern("1"))],
            [],
        )
        assert serialize_node(arena, row) == '<e a="1"/>'

    def test_deep_copy_subtree(self, arena):
        doc = shred_text(arena, '<src><x p="q">t<y/></x></src>')
        x_row = doc + 2
        row = arena.new_element(arena.pool.intern("wrap"), [], [("copy", x_row)])
        assert serialize_node(arena, row) == '<wrap><x p="q">t<y/></x></wrap>'
        # the copy is a distinct node with consistent structure
        assert row != x_row
        assert arena.size[row] == arena.size[x_row] + 1
        copied_x = row + 1
        assert arena.parent[copied_x] == row
        assert arena.level[copied_x] == 1

    def test_copy_preserves_surrogates(self, arena):
        doc = shred_text(arena, "<src><x>shared-text</x></src>")
        x_row = doc + 2
        before_pool = len(arena.pool)
        arena.new_element(arena.pool.intern("w"), [], [("copy", x_row)])
        # 'w' may be new, but the copied text/tag surrogates are shared
        assert len(arena.pool) <= before_pool + 1

    def test_attr_copy_content(self, arena):
        aid = arena.new_attribute(arena.pool.intern("k"), arena.pool.intern("v"))
        row = arena.new_element(arena.pool.intern("e"), [], [("attr", aid)])
        assert serialize_node(arena, row) == '<e k="v"/>'

    def test_mixed_content_order(self, arena):
        doc = shred_text(arena, "<src><y/></src>")
        y_row = doc + 2
        row = arena.new_element(
            arena.pool.intern("e"),
            [],
            [("text", arena.pool.intern("a")), ("copy", y_row),
             ("text", arena.pool.intern("b"))],
        )
        assert serialize_node(arena, row) == "<e>a<y/>b</e>"

    def test_string_value_of_constructed(self, arena):
        row = arena.new_element(
            arena.pool.intern("e"),
            [],
            [("text", arena.pool.intern("ab")), ("text", arena.pool.intern("cd"))],
        )
        assert arena.pool.value(arena.string_value_id(row)) == "abcd"

    def test_indices_refresh_after_construction(self, arena):
        doc = shred_text(arena, "<src><y/></src>")
        row = arena.new_element(
            arena.pool.intern("e"), [], [("copy", doc + 2)]
        )
        # children_ranges must see the new rows
        order, lo, hi = arena.children_ranges(np.asarray([row]))
        kids = [int(k) for k in order[int(lo[0]): int(hi[0])]]
        assert kids == [row + 1]


class TestConstructionThroughQueries:
    def test_nested_constructors(self):
        from repro import PathfinderEngine

        e = PathfinderEngine()
        e.load_document("d", "<r><v>1</v></r>")
        out = e.execute("<a>{<b>{/r/v}</b>}</a>").serialize()
        assert out == "<a><b><v>1</v></b></a>"

    def test_construction_does_not_disturb_documents(self):
        from repro import PathfinderEngine

        e = PathfinderEngine()
        e.load_document("d", "<r><v>1</v></r>")
        before = e.execute("count(//v)").serialize()
        e.execute("<x>{/r/v}</x>")
        # constructed copies live in new fragments, not under doc roots
        assert e.execute("count(//v)").serialize() == before
