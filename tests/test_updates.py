"""The XQuery Update Facility subset, end to end.

Covers the parser productions, the pending-update-list stage, structural
application over the arena (epoch rebuild), the Session/Database write
path with plan-cache invalidation, atomicity under concurrent readers,
and the ``POST /update`` server endpoint.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.errors import DynamicError, StaticError
from repro.xquery import ast
from repro.xquery.core import is_updating
from repro.xquery.parser import parse_query

DOC = "<site><a id='1'>x</a><b><c>mid</c></b><a id='2'>y</a></site>"


@pytest.fixture
def session():
    s = repro.connect()
    s.database.load_document("d.xml", DOC)
    return s


def doc_text(session) -> str:
    return session.execute("/site").serialize()


# ----------------------------------------------------------------- parsing
class TestParsing:
    def test_insert_into(self):
        e = parse_query("insert node <x/> into /site").body
        assert isinstance(e, ast.InsertExpr) and e.position == "into"

    def test_insert_as_first(self):
        e = parse_query("insert nodes <x/> as first into /site").body
        assert isinstance(e, ast.InsertExpr) and e.position == "first"

    def test_insert_as_last(self):
        e = parse_query("insert node <x/> as last into /site").body
        assert e.position == "last"

    def test_insert_before_after(self):
        assert parse_query("insert node <x/> before /site/b").body.position == "before"
        assert parse_query("insert node <x/> after /site/b").body.position == "after"

    def test_delete(self):
        assert isinstance(parse_query("delete node /site/a").body, ast.DeleteExpr)
        assert isinstance(parse_query("delete nodes //a").body, ast.DeleteExpr)

    def test_replace(self):
        e = parse_query("replace node /site/b with <b2/>").body
        assert isinstance(e, ast.ReplaceExpr)

    def test_replace_value(self):
        e = parse_query('replace value of node /site/b with "v"').body
        assert isinstance(e, ast.ReplaceValueExpr)

    def test_rename(self):
        e = parse_query('rename node /site/b as "bb"').body
        assert isinstance(e, ast.RenameExpr)

    def test_is_updating_through_flwor_and_if(self):
        q = (
            "for $x in //a return if ($x/@id = '1') "
            "then delete node $x else rename node $x as 'kept'"
        )
        assert is_updating(parse_query(q).body)
        assert not is_updating(parse_query("count(//a)").body)

    def test_paths_over_update_keyword_names_still_parse(self):
        # 'insert', 'delete', ... remain usable as element names in paths
        for q in ("/site/insert", "//delete", "/site/replace/rename"):
            parse_query(q)

    def test_missing_location_is_syntax_error(self):
        from repro.errors import XQuerySyntaxError

        with pytest.raises(XQuerySyntaxError):
            parse_query("insert node <x/> onto /site")


# ------------------------------------------------------------- primitives
class TestPrimitives:
    def test_insert_into_appends(self, session):
        session.execute_update("insert node <z/> into /site/b")
        assert doc_text(session) == (
            "<site><a id=\"1\">x</a><b><c>mid</c><z/></b><a id=\"2\">y</a></site>"
        )

    def test_insert_as_first(self, session):
        session.execute_update("insert node <z/> as first into /site/b")
        assert "<b><z/><c>mid</c></b>" in doc_text(session)

    def test_insert_before_and_after(self, session):
        session.execute_update(
            "insert node <p/> before /site/b, insert node <q/> after /site/b"
        )
        assert "<p/><b><c>mid</c></b><q/>" in doc_text(session)

    def test_insert_atomic_content_becomes_text(self, session):
        session.execute_update('insert node (1, "two") into /site/b')
        assert "<b><c>mid</c>1 two</b>" in doc_text(session)

    def test_insert_copies_existing_subtree(self, session):
        session.execute_update("insert node /site/b/c into /site/a[1]")
        out = doc_text(session)
        assert '<a id="1">x<c>mid</c></a>' in out
        assert "<b><c>mid</c></b>" in out  # the source is copied, not moved

    def test_insert_attribute(self, session):
        session.execute_update(
            'insert node attribute marked {"yes"} into /site/b'
        )
        assert '<b marked="yes">' in doc_text(session)

    def test_delete_node(self, session):
        session.execute_update("delete node /site/b")
        assert doc_text(session) == '<site><a id="1">x</a><a id="2">y</a></site>'

    def test_delete_multiple_targets(self, session):
        session.execute_update("delete nodes //a")
        assert doc_text(session) == "<site><b><c>mid</c></b></site>"

    def test_delete_attribute(self, session):
        session.execute_update("delete node /site/a[1]/@id")
        assert "<a>x</a>" in doc_text(session)

    def test_replace_node(self, session):
        session.execute_update('replace node /site/b with <nb wins="1"/>')
        assert '<nb wins="1"/>' in doc_text(session)
        assert "<c>mid</c>" not in doc_text(session)

    def test_replace_value_of_element(self, session):
        session.execute_update('replace value of node /site/b with "flat"')
        assert "<b>flat</b>" in doc_text(session)

    def test_replace_value_of_text(self, session):
        session.execute_update(
            'replace value of node /site/b/c/text() with "deep"'
        )
        assert "<c>deep</c>" in doc_text(session)

    def test_replace_value_of_attribute(self, session):
        session.execute_update('replace value of node /site/a[1]/@id with "9"')
        assert '<a id="9">x</a>' in doc_text(session)

    def test_rename_element(self, session):
        session.execute_update('rename node /site/b as "block"')
        assert "<block><c>mid</c></block>" in doc_text(session)

    def test_rename_attribute(self, session):
        session.execute_update('rename node /site/a[1]/@id as "key"')
        assert '<a key="1">x</a>' in doc_text(session)

    def test_flwor_update_per_binding(self, session):
        session.execute_update(
            "for $a in //a return replace value of node $a/@id with 'n'"
        )
        assert doc_text(session).count('id="n"') == 2

    def test_conditional_update(self, session):
        session.execute_update(
            "for $a in //a return if ($a/@id = '1') "
            "then delete node $a else rename node $a as 'kept'"
        )
        out = doc_text(session)
        assert 'id="1"' not in out and '<kept id="2">y</kept>' in out

    def test_external_variable_binding(self, session):
        session.execute_update(
            "declare variable $v external; "
            "replace value of node /site/b with $v",
            {"v": "bound"},
        )
        assert "<b>bound</b>" in doc_text(session)

    def test_applied_summary(self, session):
        summary = session.execute_update(
            "delete node /site/a[1], insert node <n/> into /site/b"
        )
        assert summary["applied"] == {"delete": 1, "insert": 1}
        # 9 original rows, minus <a>+text, plus the inserted <n/>
        assert summary["documents"]["d.xml"]["nodes"] == 8
        assert session.stats.updates_executed == 1


# ----------------------------------------------------------------- errors
class TestErrors:
    def test_undeclared_binding_rejected(self, session):
        from repro.errors import PathfinderError

        with pytest.raises(PathfinderError) as exc:
            session.execute_update(
                'replace value of node /site/b with "x"', {"zzz": 5}
            )
        assert "declares no external variable" in str(exc.value)

    def test_non_updating_query_rejected(self, session):
        with pytest.raises(StaticError) as exc:
            session.execute_update("count(//a)")
        assert exc.value.code == "err:XUST0001"

    def test_updating_query_rejected_on_read_path(self, session):
        with pytest.raises(StaticError) as exc:
            session.execute("delete node /site/b")
        assert exc.value.code == "err:XUST0001"

    def test_delete_document_root_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update("delete node /site")
        assert exc.value.code == "err:XUDY0020"

    def test_duplicate_rename_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update(
                "rename node /site/b as 'x', rename node /site/b as 'y'"
            )
        assert exc.value.code == "err:XUDY0015"

    def test_duplicate_replace_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update(
                "replace node /site/b with <p/>, replace node /site/b with <q/>"
            )
        assert exc.value.code == "err:XUDY0016"

    def test_duplicate_replace_value_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update(
                "replace value of node /site/b with 'x', "
                "replace value of node /site/b with 'y'"
            )
        assert exc.value.code == "err:XUDY0017"

    def test_insert_into_text_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update("insert node <x/> into /site/a[1]/text()")
        assert exc.value.code == "err:XUTY0005"

    def test_insert_before_root_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update("insert node <x/> before /site")
        assert exc.value.code == "err:XUDY0029"

    def test_multi_node_target_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update("replace value of node //a with 'v'")
        assert exc.value.code == "err:XUTY0008"

    def test_update_on_constructed_fragment_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update("delete node (<t><u/></t>)/u")
        assert exc.value.code == "err:XUDY0014"

    def test_attributes_after_content_rejected(self, session):
        with pytest.raises(DynamicError) as exc:
            session.execute_update(
                'insert node (<x/>, attribute a {"1"}) into /site/b'
            )
        assert exc.value.code == "err:XUTY0004"

    def test_failed_update_leaves_tree_untouched(self, session):
        before = doc_text(session)
        epoch = session.database.doc_epochs["d.xml"]
        with pytest.raises(DynamicError):
            session.execute_update(
                "delete node /site/b, rename node /site/b as 'x', "
                "rename node /site/b as 'y'"
            )
        assert doc_text(session) == before
        assert session.database.doc_epochs["d.xml"] == epoch


# ----------------------------------------------- epochs, caches, sessions
class TestEpochsAndCaches:
    def test_epoch_bumps_and_plans_invalidate(self, session):
        db = session.database
        prepared = session.prepare("count(//a)")
        assert prepared.execute().serialize() == "2"
        epoch = db.doc_epochs["d.xml"]

        session.execute_update("insert node <a id='3'>z</a> into /site")
        assert db.doc_epochs["d.xml"] > epoch
        # the held PreparedQuery revalidates and sees the new tree
        assert prepared.execute().serialize() == "3"

    def test_other_documents_stay_hot(self, session):
        db = session.database
        db.load_document("other.xml", "<o><k/></o>")
        other = session.prepare("count(doc('other.xml')//k)")
        other.execute()
        epoch = db.doc_epochs["other.xml"]
        hits_before = db.plan_cache.stats.hits

        session.execute_update("delete node /site/b")
        assert db.doc_epochs["other.xml"] == epoch
        session.prepare("count(doc('other.xml')//k)")
        assert db.plan_cache.stats.hits > hits_before

    def test_second_session_observes_update(self, session):
        reader = session.database.connect()
        assert reader.execute("count(//a)").serialize() == "2"
        session.execute_update("delete node /site/a[1]")
        assert reader.execute("count(//a)").serialize() == "1"

    def test_catalog_snapshot_reflects_new_root(self, session):
        session.execute_update("delete node /site/b")
        [entry] = session.database.catalog_snapshot()
        assert entry["nodes"] == 6  # 9 rows originally, minus <b><c>mid</c>

    def test_repeated_updates_accumulate(self, session):
        for i in range(5):
            session.execute_update("insert node <w/> into /site/b")
        assert session.execute("count(//w)").serialize() == "5"


class TestConcurrentReaders:
    def test_readers_never_see_torn_documents(self):
        """Readers racing an updater must observe consistent document
        states: <pair> always holds equally many <l> and <r> children."""
        db = repro.connect().database
        db.load_document("race.xml", "<pair/>", default=True)
        stop = threading.Event()
        bad: list[str] = []

        def reader():
            s = db.connect()
            while not stop.is_set():
                out = s.execute(
                    "string-join((string(count(/pair/l)), "
                    "string(count(/pair/r))), ',')"
                ).serialize()
                left, right = out.split(",")
                if left != right:
                    bad.append(out)
                    return

        threads = [threading.Thread(target=reader, daemon=True) for _ in range(3)]
        for t in threads:
            t.start()
        writer = db.connect()
        try:
            for _ in range(20):
                writer.execute_update(
                    "insert node <l/> as first into /pair, "
                    "insert node <r/> as last into /pair"
                )
        finally:
            stop.set()
        for t in threads:
            t.join(timeout=30)
        assert not bad, f"torn reads observed: {bad}"
        assert writer.execute("count(/pair/l)").serialize() == "20"


# ------------------------------------------------------------------ server
@pytest.fixture()
def server():
    from repro import Database
    from repro.server import QueryService, make_server

    database = Database()
    database.load_document("d.xml", DOC)
    service = QueryService(database, workers=2, deadline_seconds=10.0)
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.shutdown()
    thread.join(timeout=10)


def post(base: str, path: str, payload: dict):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as err:
        return err.code, json.load(err)


class TestUpdateEndpoint:
    def test_post_update_applies_and_queries_see_it(self, server):
        base, service = server
        status, body = post(base, "/query", {"query": "count(//a)"})
        assert (status, body["result"]) == (200, "2")

        status, body = post(
            base, "/update", {"query": "insert node <a id='3'/> into /site"}
        )
        assert status == 200
        assert body["applied"] == {"insert": 1}
        assert body["documents"]["d.xml"]["epoch"] > 1

        status, body = post(base, "/query", {"query": "count(//a)"})
        assert (status, body["result"]) == (200, "3")
        assert service.stats()["updates_executed"] == 1

    def test_post_update_with_bindings(self, server):
        base, _ = server
        status, body = post(
            base,
            "/update",
            {
                "query": (
                    "declare variable $v external; "
                    "replace value of node /site/b/c with $v"
                ),
                "bindings": {"v": "net"},
            },
        )
        assert status == 200
        status, body = post(base, "/query", {"query": "string(/site/b/c)"})
        assert body["result"] == "net"

    def test_non_updating_query_is_400(self, server):
        base, _ = server
        status, body = post(base, "/update", {"query": "count(//a)"})
        assert status == 400
        assert "XUST0001" in body["error"]

    def test_updating_query_on_query_route_is_400(self, server):
        base, _ = server
        status, body = post(base, "/query", {"query": "delete node /site/b"})
        assert status == 400
        assert "XUST0001" in body["error"]
