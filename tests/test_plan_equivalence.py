"""Plan-equivalence corpus: every optimizer pass preserves semantics.

Runs a corpus of XMark and regression queries in three optimizer
configurations — fully on, each rewrite pass individually disabled, and
fully off — and asserts identical serialized results.  This is the guard
rail for every new rewrite: a pass that changes any query's output at
any configuration fails here, including order-sensitive differences
(serialization fixes the sequence order).

The same corpus also runs under every planning strategy
(``optimizer_mode``: cost, greedy, wcoj) — the three modes may pick
different plans but must never pick different answers.
"""

from __future__ import annotations

import pytest

from repro.api.database import Database
from repro.relational.optimizer import OPTIMIZER_MODES, PASS_NAMES
from repro.xmark import XMARK_QUERIES, generate_document

#: regression queries exercising plan shapes the XMark set misses
REGRESSION_QUERIES = {
    "positional-predicate": "/site/a[2]/text()",
    "where-eq": 'for $a in /site/a where $a/@i = "z" return $a',
    "where-range": "for $v in (1,2,3,4,5) where $v >= 2 return $v * 10",
    "nested-flwor": (
        "for $a in /site/a for $b in /site/b "
        'where $a/@i = "z" return ($a/text(), $b/text())'
    ),
    "quantifier": "some $a in /site//a satisfies $a = '2'",
    "order-by": "for $a in /site//a order by $a descending return $a/text()",
    "if-else": "for $v in (1,2,3) return if ($v > 1) then $v else -$v",
    "distinct-values": "distinct-values(/site//a)",
    "count-filter": "count(/site//a[. >= '2'])",
    "constructor": '<r>{ for $a in /site/a return <x v="{$a/@i}">{$a/text()}</x> }</r>',
    "union-paths": "(/site/a, /site/b)",
    "empty-where": "for $a in /site/a where empty($a/@q) return $a/text()",
}

REGRESSION_XML = (
    '<site><a i="z">1</a><a>2</a><b f="q">x</b>'
    "<nest><a>3</a><deep><a>4</a></deep></nest></site>"
)

#: every configuration under test: the full pipeline, each pass knocked
#: out individually, and the optimizer fully off
CONFIGS = [("all", frozenset())] + [
    (f"no-{name}", frozenset({name})) for name in PASS_NAMES
]

#: every planning strategy, plus each mode-specific pass knocked out
MODE_CONFIGS = [(mode, frozenset()) for mode in OPTIMIZER_MODES] + [
    ("wcoj", frozenset({"twig_collapse"})),
    ("greedy", frozenset({"greedy_order"})),
]


@pytest.fixture(scope="module")
def xmark_db():
    db = Database()
    db.load_document("auction.xml", generate_document(0.0005, seed=7))
    return db


@pytest.fixture(scope="module")
def small_db():
    db = Database()
    db.load_document("doc.xml", REGRESSION_XML)
    return db


def _run(
    db: Database,
    query: str,
    disabled: frozenset,
    optimizer: bool = True,
    mode: str = "cost",
) -> str:
    session = db.connect(
        use_optimizer=optimizer, disabled_passes=disabled, optimizer_mode=mode
    )
    return session.execute(query).serialize()


@pytest.mark.parametrize("query", sorted(XMARK_QUERIES))
def test_xmark_equivalence(xmark_db, query):
    text = XMARK_QUERIES[query]
    reference = _run(xmark_db, text, frozenset(), optimizer=False)
    for label, disabled in CONFIGS:
        assert _run(xmark_db, text, disabled) == reference, (
            f"{query} differs with optimizer config {label}"
        )


@pytest.mark.parametrize("query", sorted(REGRESSION_QUERIES))
def test_regression_equivalence(small_db, query):
    text = REGRESSION_QUERIES[query]
    reference = _run(small_db, text, frozenset(), optimizer=False)
    for label, disabled in CONFIGS:
        assert _run(small_db, text, disabled) == reference, (
            f"{query} differs with optimizer config {label}"
        )


@pytest.mark.parametrize("query", sorted(XMARK_QUERIES))
def test_xmark_mode_equivalence(xmark_db, query):
    text = XMARK_QUERIES[query]
    reference = _run(xmark_db, text, frozenset(), optimizer=False)
    for mode, disabled in MODE_CONFIGS:
        assert _run(xmark_db, text, disabled, mode=mode) == reference, (
            f"{query} differs under optimizer mode {mode} "
            f"(disabled: {sorted(disabled) or 'none'})"
        )


@pytest.mark.parametrize("query", sorted(REGRESSION_QUERIES))
def test_regression_mode_equivalence(small_db, query):
    text = REGRESSION_QUERIES[query]
    reference = _run(small_db, text, frozenset(), optimizer=False)
    for mode, disabled in MODE_CONFIGS:
        assert _run(small_db, text, disabled, mode=mode) == reference, (
            f"{query} differs under optimizer mode {mode} "
            f"(disabled: {sorted(disabled) or 'none'})"
        )
