"""Unit tests for the algebra operators and the DAG evaluator."""

import pytest

from repro.encoding.arena import NodeArena
from repro.encoding.axes import Axis, element
from repro.encoding.shred import shred_text
from repro.errors import AlgebraError, DynamicError
from repro.relational import algebra as alg
from repro.relational.algebra import col, const
from repro.relational.evaluate import EvalContext, evaluate


def ctx():
    return EvalContext(NodeArena())


def rows(plan, context=None):
    context = context or ctx()
    table = evaluate(plan, context)
    return table.schema, table.to_rows(context.pool)


LIT = alg.Lit(
    ("iter", "pos", "item"),
    ((1, 1, 10), (1, 2, 20), (2, 1, 30)),
    frozenset({"item"}),
)


class TestBasicOperators:
    def test_lit(self):
        schema, data = rows(LIT)
        assert schema == ("iter", "pos", "item")
        assert data == [(1, 1, 10), (1, 2, 20), (2, 1, 30)]

    def test_project_rename_and_duplicate(self):
        p = alg.Project(LIT, (("a", "item"), ("b", "item"), ("iter", "iter")))
        schema, data = rows(p)
        assert schema == ("a", "b", "iter")
        assert data[0] == (10, 10, 1)

    def test_project_unknown_column_raises(self):
        with pytest.raises(AlgebraError):
            rows(alg.Project(LIT, (("x", "nope"),)))

    def test_select_numeric(self):
        s = alg.Select(LIT, "eq", col("iter"), const(1))
        assert rows(s)[1] == [(1, 1, 10), (1, 2, 20)]

    def test_select_item_vs_const(self):
        s = alg.Select(LIT, "gt", col("item"), const(15))
        assert rows(s)[1] == [(1, 2, 20), (2, 1, 30)]

    def test_select_col_vs_col(self):
        s = alg.Select(LIT, "eq", col("iter"), col("pos"))
        assert rows(s)[1] == [(1, 1, 10)]

    def test_union_disjoint(self):
        u = alg.Union((LIT, LIT))
        assert len(rows(u)[1]) == 6

    def test_union_schema_mismatch_raises(self):
        other = alg.Lit(("x",), ((1,),))
        with pytest.raises(AlgebraError):
            rows(alg.Union((LIT, other)))

    def test_difference(self):
        left = alg.Lit(("iter",), ((1,), (2,), (3,)))
        right = alg.Lit(("iter",), ((2,),))
        d = alg.Difference(left, right, ("iter",))
        assert rows(d)[1] == [(1,), (3,)]

    def test_distinct_keeps_first(self):
        t = alg.Lit(("a", "b"), ((1, 7), (1, 8), (2, 9)))
        d = alg.Distinct(t, ("a",))
        assert rows(d)[1] == [(1, 7), (2, 9)]

    def test_cross(self):
        a = alg.Lit(("x",), ((1,), (2,)))
        b = alg.Lit(("y",), ((7,), (8,)))
        assert rows(alg.Cross(a, b))[1] == [(1, 7), (1, 8), (2, 7), (2, 8)]

    def test_cross_schema_collision_raises(self):
        with pytest.raises(AlgebraError):
            rows(alg.Cross(LIT, LIT))


class TestJoins:
    def test_equi_join(self):
        a = alg.Lit(("x", "v"), ((1, 10), (2, 20)))
        b = alg.Lit(("y", "w"), ((2, 7), (2, 8), (3, 9)))
        j = alg.Join(a, b, (("x", "y"),))
        assert rows(j)[1] == [(2, 20, 2, 7), (2, 20, 2, 8)]

    def test_join_on_item_columns(self):
        a = alg.Lit(("x", "v"), ((1, "k"), (2, "m")), frozenset({"v"}))
        b = alg.Lit(("y", "w"), ((7, "m"),), frozenset({"w"}))
        j = alg.Join(a, b, (("v", "w"),))
        assert rows(j)[1] == [(2, "m", 7, "m")]

    def test_multi_key_join(self):
        a = alg.Lit(("x", "v"), ((1, 5), (1, 6)))
        b = alg.Lit(("y", "w"), ((1, 5), (1, 6)))
        j = alg.Join(a, b, (("x", "y"), ("v", "w")))
        assert len(rows(j)[1]) == 2

    def test_semijoin(self):
        a = alg.Lit(("x",), ((1,), (2,), (3,)))
        b = alg.Lit(("y",), ((2,), (2,)))
        assert rows(alg.SemiJoin(a, b, (("x", "y"),)))[1] == [(2,)]


class TestRowNumAndMap:
    def test_rownum_global(self):
        r = alg.RowNum(LIT, "n", (("iter", False), ("pos", False)), None)
        assert [row[-1] for row in rows(r)[1]] == [1, 2, 3]

    def test_rownum_grouped(self):
        r = alg.RowNum(LIT, "n", (("pos", False),), "iter")
        assert [row[-1] for row in rows(r)[1]] == [1, 2, 1]

    def test_rownum_descending(self):
        r = alg.RowNum(LIT, "n", (("item", True),), None)
        assert [row[-1] for row in rows(r)[1]] == [3, 2, 1]

    def test_rownum_orders_item_strings(self):
        t = alg.Lit(("iter", "item"), ((1, "b"), (2, "a")), frozenset({"item"}))
        r = alg.RowNum(t, "n", (("item", False),), None)
        assert [row[-1] for row in rows(r)[1]] == [2, 1]

    def test_map_arith(self):
        m = alg.Map(LIT, "add", "r", (col("item"), const(5)))
        assert [row[-1] for row in rows(m)[1]] == [15, 25, 35]

    def test_map_comparison(self):
        m = alg.Map(LIT, "ge", "r", (col("item"), const(20)))
        assert [row[-1] for row in rows(m)[1]] == [False, True, True]

    def test_map_string_functions(self):
        t = alg.Lit(("item",), (("hello",), ("hi",)), frozenset({"item"}))
        m = alg.Map(t, "contains", "r", (col("item"), const("ell")))
        assert [row[-1] for row in rows(m)[1]] == [True, False]

    def test_map_unknown_fn_raises(self):
        with pytest.raises(AlgebraError):
            rows(alg.Map(LIT, "frobnicate", "r", (col("item"),)))


class TestAggregates:
    def test_count_grouped(self):
        a = alg.Aggr(LIT, "count", "n", None, "iter")
        assert rows(a)[1] == [(1, 2), (2, 1)]

    def test_count_global_empty_input(self):
        empty = alg.Lit(("iter", "item"), (), frozenset({"item"}))
        a = alg.Aggr(empty, "count", "n", None, None)
        assert rows(a)[1] == [(0,)]

    def test_sum_int_stays_int(self):
        a = alg.Aggr(LIT, "sum", "s", "item", "iter")
        assert rows(a)[1] == [(1, 30), (2, 30)]

    def test_min_max_avg(self):
        assert rows(alg.Aggr(LIT, "min", "m", "item", "iter"))[1] == [(1, 10), (2, 30)]
        assert rows(alg.Aggr(LIT, "max", "m", "item", "iter"))[1] == [(1, 20), (2, 30)]
        assert rows(alg.Aggr(LIT, "avg", "m", "item", "iter"))[1] == [(1, 15.0), (2, 30.0)]

    def test_str_join(self):
        t = alg.Lit(("iter", "s"), ((1, "a"), (1, "b"), (2, "c")), frozenset({"s"}))
        a = alg.Aggr(t, "str_join", "j", "s", "iter", sep="-")
        assert rows(a)[1] == [(1, "a-b"), (2, "c")]


class TestTreeOperators:
    def _doc_ctx(self):
        context = ctx()
        doc = shred_text(context.arena, "<r><a>x</a><a>y</a></r>")
        context.documents["d"] = doc
        return context, doc

    def test_step_join(self):
        context, doc = self._doc_ctx()
        lit = alg.Lit(("iter", "item"), ((1, doc),), frozenset({"item"}))
        # force item column to be node-kinded via DocRoot instead
        plan = alg.StepJoin(
            alg.Project(alg.DocRoot("d"), (("iter", "iter"), ("item", "item"))),
            Axis.DESCENDANT,
            element("a"),
        )
        table = evaluate(plan, context)
        assert table.num_rows == 2

    def test_step_join_rejects_atomics(self):
        context, _ = self._doc_ctx()
        lit = alg.Lit(("iter", "item"), ((1, 5),), frozenset({"item"}))
        with pytest.raises(DynamicError):
            evaluate(alg.StepJoin(lit, Axis.CHILD, element()), context)

    def test_atomize(self):
        context, doc = self._doc_ctx()
        plan = alg.Atomize(alg.DocRoot("d"), "v", "item")
        table = evaluate(plan, context)
        vals = table.item("v").to_values(context.pool)
        assert vals == ["xy"]

    def test_genrange(self):
        t = alg.Lit(("iter", "lo", "hi"), ((1, 2, 4), (2, 5, 4)))
        g = alg.GenRange(t, "lo", "hi")
        assert rows(g)[1] == [(1, 1, 2), (1, 2, 3), (1, 3, 4)]

    def test_docroot_missing_raises(self):
        with pytest.raises(DynamicError):
            evaluate(alg.DocRoot("missing"), ctx())

    def test_elem_constr(self):
        context, doc = self._doc_ctx()
        names = alg.Lit(("iter", "item"), ((1, "out"),), frozenset({"item"}))
        content = alg.Lit(
            ("iter", "pos", "item"), ((1, 1, "hello"),), frozenset({"item"})
        )
        table = evaluate(alg.ElemConstr(names, content), context)
        from repro.xml.serializer import serialize_node

        node = int(table.item("item").data[0])
        assert serialize_node(context.arena, node) == "<out>hello</out>"

    def test_dag_shared_subplan_evaluated_once(self):
        context = ctx()
        trace = {}
        context.trace = trace
        shared = alg.Map(LIT, "add", "r", (col("item"), const(1)))
        u = alg.Union((alg.Project(shared, (("iter", "iter"),)),
                       alg.Project(shared, (("iter", "iter"),))))
        evaluate(u, context)
        # the shared Map appears exactly once in the trace
        labels = [id for id in trace]
        assert len(labels) == len(set(labels))


class TestDagUtilities:
    def test_walk_children_first(self):
        order = list(alg.walk(alg.Union((LIT, alg.Project(LIT, (("iter", "iter"),))))))
        assert isinstance(order[0], alg.Lit)
        assert isinstance(order[-1], alg.Union)

    def test_op_count_counts_shared_once(self):
        p = alg.Project(LIT, (("iter", "iter"),))
        u = alg.Union((p, p))
        assert alg.op_count(u) == 3
