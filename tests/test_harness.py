"""Smoke tests for the benchmark harness and report generators.

The benchmark harness is part of the deliverable (it regenerates every
table/figure), so its machinery is covered here: engine loading/caching,
row construction, DNF handling and each report function.
"""

import io
from contextlib import redirect_stdout

from benchmarks import harness, report


class TestHarness:
    def test_load_engines_cached(self):
        a = harness.load_engines(0.0005, seed=3)
        b = harness.load_engines(0.0005, seed=3)
        assert a is b
        assert a.node_count > 0 and a.xml_bytes > 0

    def test_run_query_row(self):
        engines = harness.load_engines(0.0005, seed=3)
        row = harness.run_query(engines, "Q1", timeout=20.0)
        assert row.pathfinder_seconds > 0
        assert row.speedup is None or row.speedup > 0

    def test_baseline_timeout_reports_dnf(self):
        engines = harness.load_engines(0.0008, seed=3)
        result = harness.time_baseline(engines, "Q9", timeout=0.001)
        assert result is None  # DNF

    def test_baseline_with_indexes(self):
        engines = harness.load_engines(0.0005, seed=3)
        t = harness.time_baseline(engines, "Q8", timeout=30.0, use_indexes=True)
        assert t is not None and t > 0

    def test_fmt_seconds(self):
        assert harness.fmt_seconds(None) == "DNF"
        assert harness.fmt_seconds(0.1234) == "0.123"
        assert harness.fmt_seconds(42.0) == "42.0"


class TestReports:
    def _run(self, fn, *args, **kwargs):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            fn(*args, **kwargs)
        return buffer.getvalue()

    def test_storage_report(self):
        out = self._run(report.report_storage, scales=(0.0005,))
        assert "overhead %" in out

    def test_figure5_report(self):
        out = self._run(report.report_figure5)
        assert "110 120" in out and "operators" in out

    def test_optimizer_report_lines(self):
        out = self._run(report.report_optimizer, ablation_scale=0.0005, ablation_reps=1)
        assert out.count("%") >= 20  # one reduction per query
        assert "pass ablation" in out and "pushdown" in out

    def test_table3_single_scale(self):
        out = self._run(report.report_table3, scales=(0.0005,), timeout=10.0)
        assert "Q20" in out and "PF@0.0005" in out

    def test_prepared_report(self):
        from benchmarks.bench_prepared import report_prepared

        out = self._run(report_prepared, scale=0.0005, reps=2)
        assert "speedup" in out and "Q8" in out

    def test_prepared_rows_show_amortization(self):
        from benchmarks.bench_prepared import run_prepared_bench

        rows = run_prepared_bench(scale=0.0005, reps=2, queries=("Q1",))
        assert rows[0]["cold_seconds"] > rows[0]["prepared_seconds"]

    def test_serve_bench_rows(self):
        """The serving sweep runs end to end over a real socket and
        reports throughput and latency percentiles per worker count,
        in both connection modes (keep-alive and per-request close)."""
        from benchmarks.bench_serve import run_serve_bench

        rows = run_serve_bench(
            scale=0.0005, seconds=0.4, worker_counts=(1, 2), queries=("Q1",)
        )
        assert [(r["workers"], r["connection"]) for r in rows] == [
            (1, "keep-alive"),
            (1, "close"),
            (2, "keep-alive"),
            (2, "close"),
        ]
        for row in rows:
            assert row["requests"] > 0
            assert row["throughput_rps"] > 0
            assert row["p50_ms"] <= row["p99_ms"]

    def test_main_dispatch_unknown(self):
        assert report.main(["report.py", "nonsense"]) == 1

    def test_main_dispatch_known(self):
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = report.main(["report.py", "storage"])
        assert code == 0
