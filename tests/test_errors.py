"""Error behaviour: both engines raise the right W3C-coded errors."""

import pytest

from repro import PathfinderEngine
from repro.baseline.interpreter import Interpreter
from repro.errors import (
    DynamicError,
    NotSupportedError,
    PathfinderError,
    StaticError,
    XQuerySyntaxError,
)
from repro.xquery.core import desugar_module
from repro.xquery.parser import parse_query

from tests.conftest import SMALL_XML


@pytest.fixture
def engine():
    e = PathfinderEngine()
    e.load_document("doc.xml", SMALL_XML)
    return e


def baseline_raises(engine, query, exc_type):
    module = desugar_module(parse_query(query))
    interp = Interpreter(engine.arena, engine.documents, engine.default_document)
    with pytest.raises(exc_type):
        interp.execute(module)


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "for $x in",
            "let $x 5 return $x",
            "1 +",
            "if (1) then 2",
            "<a></b>",
            "$",
            "fn:doc(",
            "typeswitch (1) default return 2",  # no case
            "((1,2)",
        ],
    )
    def test_parse_errors_carry_code(self, query):
        with pytest.raises(XQuerySyntaxError) as exc:
            parse_query(query)
        assert exc.value.code == "err:XPST0003"


class TestStaticErrors:
    def test_undefined_variable_xpst0008(self, engine):
        with pytest.raises(StaticError) as exc:
            engine.execute("$nope")
        assert exc.value.code == "err:XPST0008"
        baseline_raises(engine, "$nope", StaticError)

    def test_unknown_function_xpst0017(self, engine):
        with pytest.raises(StaticError) as exc:
            engine.execute("frobnicate(1)")
        assert exc.value.code == "err:XPST0017"
        baseline_raises(engine, "frobnicate(1)", StaticError)

    def test_wrong_arity_is_unknown_function(self, engine):
        with pytest.raises(StaticError):
            engine.execute("count(1, 2, 3)")

    def test_context_item_absent_xpdy0002(self, engine):
        with pytest.raises(StaticError) as exc:
            engine.execute("position()")
        assert exc.value.code == "err:XPDY0002"

    def test_missing_document(self, engine):
        with pytest.raises(PathfinderError) as exc:
            engine.execute('doc("nope.xml")/a')
        assert exc.value.code == "err:FODC0002"

    def test_duplicate_function_declaration(self, engine):
        query = (
            "declare function local:f($x) { $x }; "
            "declare function local:f($y) { $y }; 1"
        )
        with pytest.raises(StaticError):
            engine.execute(query)


class TestDynamicErrors:
    def test_integer_division_by_zero_foar0001(self, engine):
        with pytest.raises(DynamicError) as exc:
            engine.execute("1 idiv 0")
        assert exc.value.code == "err:FOAR0001"
        baseline_raises(engine, "1 idiv 0", DynamicError)

    def test_step_on_atomic_xpty0019(self, engine):
        with pytest.raises(DynamicError) as exc:
            engine.execute("(1, 2)/a")
        assert exc.value.code == "err:XPTY0019"
        baseline_raises(engine, "(1, 2)/a", DynamicError)

    def test_double_div_by_zero_is_inf_not_error(self, engine):
        # only xs:double division may yield INF/NaN (F&O 6.2.4)
        assert engine.execute("1e0 div 0e0").serialize() == "INF"
        assert engine.execute("-1e0 div 0e0").serialize() == "-INF"
        assert engine.execute("0e0 div 0e0").serialize() == "NaN"

    def test_exact_numeric_div_by_zero_foar0001(self, engine):
        for query in ("1 div 0", "1.0 div 0.0", "1.0 div 0"):
            with pytest.raises(DynamicError) as exc:
                engine.execute(query)
            assert exc.value.code == "err:FOAR0001"
            baseline_raises(engine, query, DynamicError)


class TestNotSupported:
    def test_dynamic_doc_uri(self, engine):
        with pytest.raises(NotSupportedError):
            engine.execute('let $u := "doc.xml" return doc($u)')

    def test_unbounded_recursion_in_compiler(self, engine):
        query = "declare function local:f($x) { local:f($x + 1) }; local:f(0)"
        with pytest.raises(NotSupportedError):
            engine.execute(query)

    def test_unsupported_cast_target(self, engine):
        with pytest.raises(NotSupportedError):
            engine.execute("1 cast as xs:hexBinary")
