"""Crash-recovery fault injection for the persistent document store.

The store invokes its ``fault_hook`` at every file-system boundary
(fragment write/fsync, manifest write/replace, WAL append/fsync/
truncate, checkpoint begin/end).  The central test runs a fixed
workload once cleanly to enumerate every fault point and record each
consistent catalog state, then re-runs it once per fault point with an
injected crash there, reopens the store cold, and asserts the recovered
catalog — documents, epochs, default, full serialized content — equals
one of the recorded consistent states.  An update is therefore always
recovered to exactly its pre- or post-state, never a torn mix.

Torn-tail tests corrupt the WAL directly (garbage bytes, bad CRC,
half-written record) and assert recovery stops at the last intact
record and truncates the damage away.
"""

import json
import os

import pytest

from repro.api.database import Database
from repro.encoding.store import DocumentStore, StoreCrash, StoreError
from repro.xml.serializer import serialize_node

XML_A = (
    '<site x="1"><a id="a1">hello<b>world</b></a>'
    "<a id='a2'>two</a><!--note-->tail</site>"
)
XML_B = "<r><z>zed</z><z>zed2</z></r>"


class FaultInjector:
    """Raises :class:`StoreCrash` at the N-th fault point it sees."""

    def __init__(self, crash_at: int | None = None):
        self.crash_at = crash_at
        self.count = 0
        self.points: list[str] = []

    def __call__(self, point: str) -> None:
        self.count += 1
        self.points.append(point)
        if self.crash_at is not None and self.count == self.crash_at:
            raise StoreCrash(f"injected crash at fault #{self.count} ({point})")


def _steps():
    """The workload: every store code path, in a deterministic order."""
    return [
        ("load a.xml", lambda db: db.load_document("a.xml", XML_A)),
        (
            "single-op update",
            lambda db: db.connect().execute_update(
                'insert node <n i="1">n</n> into /site'
            ),
        ),
        (
            "multi-op update",
            lambda db: db.connect().execute_update(
                "delete node /site/a[2], "
                "insert node <m/> as first into /site, "
                'rename node /site/a[1] as "aa"'
            ),
        ),
        ("checkpoint", lambda db: db.checkpoint()),
        (
            "post-checkpoint update",
            lambda db: db.connect().execute_update(
                'replace value of node /site/aa with "v2"'
            ),
        ),
        ("load b.xml", lambda db: db.load_document("b.xml", XML_B)),
        (
            "multi-document update",
            lambda db: db.connect().execute_update(
                'insert node <xa/> into doc("a.xml")/site, '
                'insert node <xb/> into doc("b.xml")/r'
            ),
        ),
        ("unload b.xml", lambda db: db.unload_document("b.xml")),
    ]


def _state(db: Database) -> dict:
    """The full observable catalog: uri → (epoch, serialized tree)."""
    return {
        "default": db.default_document,
        "docs": {
            uri: (db.doc_epochs[uri], serialize_node(db.arena, root))
            for uri, root in db.documents.items()
        },
    }


@pytest.mark.parametrize("page_budget", [None, 4096], ids=["eager", "paged"])
def test_every_fault_point_recovers_to_a_consistent_state(tmp_path, page_budget):
    # pass 1, no crash: enumerate the fault points and record every
    # consistent state the workload moves through
    probe = FaultInjector()
    clean = Database(
        store=DocumentStore(str(tmp_path / "clean"), fault_hook=probe),
        page_budget_bytes=page_budget,
    )
    states = [_state(clean)]
    for _label, step in _steps():
        step(clean)
        states.append(_state(clean))
    total = probe.count
    assert total > 40  # sanity: the workload crosses many fault points

    # pass 2..N+1: crash at each fault point, reopen cold, compare
    for n in range(1, total + 1):
        path = str(tmp_path / f"crash-{n}")
        injector = FaultInjector(crash_at=n)
        db = Database(
            store=DocumentStore(path, fault_hook=injector),
            page_budget_bytes=page_budget,
        )
        crashed_at = None
        try:
            for _label, step in _steps():
                step(db)
        except StoreCrash:
            crashed_at = injector.points[-1]
        assert crashed_at is not None, n  # every n <= total must fire

        recovered = Database.open(path, page_budget_bytes=page_budget)
        state = _state(recovered)
        assert state in states, (n, crashed_at, state)

        # recovery must also leave no unreferenced fragment directories
        manifest = recovered.store.manifest["documents"]
        live = {meta["dir"] for meta in manifest.values()}
        docs_dir = os.path.join(recovered.store.path, "docs")
        on_disk = {os.path.join("docs", entry) for entry in os.listdir(docs_dir)}
        assert on_disk == live, (n, crashed_at)


class TestTornWal:
    def _populate(self, path: str) -> tuple[dict, dict]:
        """A store with two un-checkpointed WAL records; returns the
        consistent states after update 1 and update 2."""
        db = Database(store=path)
        db.load_document("a.xml", XML_A)
        db.connect().execute_update("insert node <one/> into /site")
        state1 = _state(db)
        db.connect().execute_update("delete nodes //b")
        state2 = _state(db)
        assert db.store.wal_records == 2
        return state1, state2

    def test_garbage_tail_is_discarded_and_truncated(self, tmp_path):
        path = str(tmp_path / "db")
        _state1, state2 = self._populate(path)
        wal = os.path.join(path, "wal.log")
        intact = os.path.getsize(wal)
        with open(wal, "ab") as handle:
            handle.write(b'{"crc": 1, "rec"')  # a torn, newline-less append
        recovered = Database.open(path)
        assert _state(recovered) == state2
        assert os.path.getsize(wal) == intact  # damage truncated away

    def test_bad_crc_ends_the_log(self, tmp_path):
        path = str(tmp_path / "db")
        _state1, state2 = self._populate(path)
        wal = os.path.join(path, "wal.log")
        bogus = {"crc": 12345, "rec": {"seq": 3, "docs": []}}
        with open(wal, "ab") as handle:
            handle.write((json.dumps(bogus) + "\n").encode("utf-8"))
        recovered = Database.open(path)
        assert _state(recovered) == state2

    def test_half_written_record_recovers_to_previous_update(self, tmp_path):
        path = str(tmp_path / "db")
        state1, _state2 = self._populate(path)
        wal = os.path.join(path, "wal.log")
        with open(wal, "rb") as handle:
            raw = handle.read()
        first_line_end = raw.index(b"\n") + 1
        cut = first_line_end + (len(raw) - first_line_end) // 2
        with open(wal, "wb") as handle:
            handle.write(raw[:cut])  # record 2 torn mid-line
        recovered = Database.open(path)
        assert _state(recovered) == state1

    def test_updates_continue_after_truncated_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        state1, _state2 = self._populate(path)
        wal = os.path.join(path, "wal.log")
        with open(wal, "rb") as handle:
            raw = handle.read()
        with open(wal, "wb") as handle:
            handle.write(raw[: raw.index(b"\n") + 1])
        recovered = Database.open(path)
        assert _state(recovered) == state1
        recovered.connect().execute_update("insert node <again/> into /site")
        final = _state(recovered)
        assert _state(Database.open(path)) == final


class TestStoreErrors:
    def test_unsupported_format_raises(self, tmp_path):
        path = str(tmp_path / "db")
        Database(store=path).load_document("a.xml", XML_A)
        manifest = os.path.join(path, "MANIFEST.json")
        with open(manifest, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["format"] = 99
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        with pytest.raises(StoreError):
            Database.open(path)

    def test_checkpoint_without_store_raises(self):
        from repro.errors import PathfinderError

        with pytest.raises(PathfinderError):
            Database().checkpoint()

    def test_load_fragment_unknown_uri_raises(self, tmp_path):
        store = DocumentStore(str(tmp_path / "db"))
        from repro.encoding.arena import NodeArena

        with pytest.raises(StoreError):
            store.load_fragment(NodeArena(), "nope.xml")
